# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("clocksync")
subdirs("flash")
subdirs("ftl")
subdirs("net")
subdirs("semel")
subdirs("milana")
subdirs("workload")
