# Empty compiler generated dependencies file for milana_net.
# This may be replaced when dependencies are built.
