file(REMOVE_RECURSE
  "libmilana_net.a"
)
