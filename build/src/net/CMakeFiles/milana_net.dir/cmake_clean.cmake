file(REMOVE_RECURSE
  "CMakeFiles/milana_net.dir/network.cc.o"
  "CMakeFiles/milana_net.dir/network.cc.o.d"
  "libmilana_net.a"
  "libmilana_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
