file(REMOVE_RECURSE
  "libmilana_flash.a"
)
