# Empty dependencies file for milana_flash.
# This may be replaced when dependencies are built.
