file(REMOVE_RECURSE
  "CMakeFiles/milana_flash.dir/ssd.cc.o"
  "CMakeFiles/milana_flash.dir/ssd.cc.o.d"
  "libmilana_flash.a"
  "libmilana_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
