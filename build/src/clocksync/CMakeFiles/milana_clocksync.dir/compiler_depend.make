# Empty compiler generated dependencies file for milana_clocksync.
# This may be replaced when dependencies are built.
