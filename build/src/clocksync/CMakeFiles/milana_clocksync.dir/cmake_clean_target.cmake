file(REMOVE_RECURSE
  "libmilana_clocksync.a"
)
