file(REMOVE_RECURSE
  "CMakeFiles/milana_clocksync.dir/clock.cc.o"
  "CMakeFiles/milana_clocksync.dir/clock.cc.o.d"
  "CMakeFiles/milana_clocksync.dir/sync.cc.o"
  "CMakeFiles/milana_clocksync.dir/sync.cc.o.d"
  "libmilana_clocksync.a"
  "libmilana_clocksync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_clocksync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
