# Empty dependencies file for milana_workload.
# This may be replaced when dependencies are built.
