file(REMOVE_RECURSE
  "CMakeFiles/milana_workload.dir/cluster.cc.o"
  "CMakeFiles/milana_workload.dir/cluster.cc.o.d"
  "CMakeFiles/milana_workload.dir/micro.cc.o"
  "CMakeFiles/milana_workload.dir/micro.cc.o.d"
  "CMakeFiles/milana_workload.dir/retwis.cc.o"
  "CMakeFiles/milana_workload.dir/retwis.cc.o.d"
  "libmilana_workload.a"
  "libmilana_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
