file(REMOVE_RECURSE
  "libmilana_workload.a"
)
