file(REMOVE_RECURSE
  "libmilana_common.a"
)
