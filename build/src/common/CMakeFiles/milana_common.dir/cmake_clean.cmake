file(REMOVE_RECURSE
  "CMakeFiles/milana_common.dir/histogram.cc.o"
  "CMakeFiles/milana_common.dir/histogram.cc.o.d"
  "CMakeFiles/milana_common.dir/logging.cc.o"
  "CMakeFiles/milana_common.dir/logging.cc.o.d"
  "CMakeFiles/milana_common.dir/random.cc.o"
  "CMakeFiles/milana_common.dir/random.cc.o.d"
  "CMakeFiles/milana_common.dir/stats.cc.o"
  "CMakeFiles/milana_common.dir/stats.cc.o.d"
  "CMakeFiles/milana_common.dir/types.cc.o"
  "CMakeFiles/milana_common.dir/types.cc.o.d"
  "CMakeFiles/milana_common.dir/zipf.cc.o"
  "CMakeFiles/milana_common.dir/zipf.cc.o.d"
  "libmilana_common.a"
  "libmilana_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
