# Empty compiler generated dependencies file for milana_common.
# This may be replaced when dependencies are built.
