file(REMOVE_RECURSE
  "CMakeFiles/milana_milana.dir/centiman.cc.o"
  "CMakeFiles/milana_milana.dir/centiman.cc.o.d"
  "CMakeFiles/milana_milana.dir/client.cc.o"
  "CMakeFiles/milana_milana.dir/client.cc.o.d"
  "CMakeFiles/milana_milana.dir/server.cc.o"
  "CMakeFiles/milana_milana.dir/server.cc.o.d"
  "CMakeFiles/milana_milana.dir/txn_table.cc.o"
  "CMakeFiles/milana_milana.dir/txn_table.cc.o.d"
  "libmilana_milana.a"
  "libmilana_milana.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_milana.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
