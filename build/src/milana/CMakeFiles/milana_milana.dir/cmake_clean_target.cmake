file(REMOVE_RECURSE
  "libmilana_milana.a"
)
