# Empty compiler generated dependencies file for milana_milana.
# This may be replaced when dependencies are built.
