file(REMOVE_RECURSE
  "libmilana_sim.a"
)
