# Empty dependencies file for milana_sim.
# This may be replaced when dependencies are built.
