file(REMOVE_RECURSE
  "CMakeFiles/milana_sim.dir/event_queue.cc.o"
  "CMakeFiles/milana_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/milana_sim.dir/simulator.cc.o"
  "CMakeFiles/milana_sim.dir/simulator.cc.o.d"
  "libmilana_sim.a"
  "libmilana_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
