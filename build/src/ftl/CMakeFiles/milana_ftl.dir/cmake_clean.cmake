file(REMOVE_RECURSE
  "CMakeFiles/milana_ftl.dir/dram.cc.o"
  "CMakeFiles/milana_ftl.dir/dram.cc.o.d"
  "CMakeFiles/milana_ftl.dir/kv_backend.cc.o"
  "CMakeFiles/milana_ftl.dir/kv_backend.cc.o.d"
  "CMakeFiles/milana_ftl.dir/mftl.cc.o"
  "CMakeFiles/milana_ftl.dir/mftl.cc.o.d"
  "CMakeFiles/milana_ftl.dir/pack_log.cc.o"
  "CMakeFiles/milana_ftl.dir/pack_log.cc.o.d"
  "CMakeFiles/milana_ftl.dir/sftl.cc.o"
  "CMakeFiles/milana_ftl.dir/sftl.cc.o.d"
  "CMakeFiles/milana_ftl.dir/vftl.cc.o"
  "CMakeFiles/milana_ftl.dir/vftl.cc.o.d"
  "libmilana_ftl.a"
  "libmilana_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
