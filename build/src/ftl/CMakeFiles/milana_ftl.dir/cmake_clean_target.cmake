file(REMOVE_RECURSE
  "libmilana_ftl.a"
)
