
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/dram.cc" "src/ftl/CMakeFiles/milana_ftl.dir/dram.cc.o" "gcc" "src/ftl/CMakeFiles/milana_ftl.dir/dram.cc.o.d"
  "/root/repo/src/ftl/kv_backend.cc" "src/ftl/CMakeFiles/milana_ftl.dir/kv_backend.cc.o" "gcc" "src/ftl/CMakeFiles/milana_ftl.dir/kv_backend.cc.o.d"
  "/root/repo/src/ftl/mftl.cc" "src/ftl/CMakeFiles/milana_ftl.dir/mftl.cc.o" "gcc" "src/ftl/CMakeFiles/milana_ftl.dir/mftl.cc.o.d"
  "/root/repo/src/ftl/pack_log.cc" "src/ftl/CMakeFiles/milana_ftl.dir/pack_log.cc.o" "gcc" "src/ftl/CMakeFiles/milana_ftl.dir/pack_log.cc.o.d"
  "/root/repo/src/ftl/sftl.cc" "src/ftl/CMakeFiles/milana_ftl.dir/sftl.cc.o" "gcc" "src/ftl/CMakeFiles/milana_ftl.dir/sftl.cc.o.d"
  "/root/repo/src/ftl/vftl.cc" "src/ftl/CMakeFiles/milana_ftl.dir/vftl.cc.o" "gcc" "src/ftl/CMakeFiles/milana_ftl.dir/vftl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flash/CMakeFiles/milana_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/milana_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/milana_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
