# Empty compiler generated dependencies file for milana_ftl.
# This may be replaced when dependencies are built.
