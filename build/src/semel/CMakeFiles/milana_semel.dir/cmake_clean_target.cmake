file(REMOVE_RECURSE
  "libmilana_semel.a"
)
