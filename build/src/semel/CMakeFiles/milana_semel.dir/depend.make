# Empty dependencies file for milana_semel.
# This may be replaced when dependencies are built.
