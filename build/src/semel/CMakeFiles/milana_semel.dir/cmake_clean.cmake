file(REMOVE_RECURSE
  "CMakeFiles/milana_semel.dir/client.cc.o"
  "CMakeFiles/milana_semel.dir/client.cc.o.d"
  "CMakeFiles/milana_semel.dir/server.cc.o"
  "CMakeFiles/milana_semel.dir/server.cc.o.d"
  "CMakeFiles/milana_semel.dir/shard_map.cc.o"
  "CMakeFiles/milana_semel.dir/shard_map.cc.o.d"
  "libmilana_semel.a"
  "libmilana_semel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_semel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
