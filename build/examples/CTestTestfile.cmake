# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_network "/root/repo/build/examples/social_network")
set_tests_properties(example_social_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank_failover "/root/repo/build/examples/bank_failover")
set_tests_properties(example_bank_failover PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_analytics_snapshot "/root/repo/build/examples/analytics_snapshot")
set_tests_properties(example_analytics_snapshot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
