# Empty compiler generated dependencies file for analytics_snapshot.
# This may be replaced when dependencies are built.
