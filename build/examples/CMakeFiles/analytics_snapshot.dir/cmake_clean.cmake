file(REMOVE_RECURSE
  "CMakeFiles/analytics_snapshot.dir/analytics_snapshot.cpp.o"
  "CMakeFiles/analytics_snapshot.dir/analytics_snapshot.cpp.o.d"
  "analytics_snapshot"
  "analytics_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
