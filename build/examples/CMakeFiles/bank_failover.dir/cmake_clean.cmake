file(REMOVE_RECURSE
  "CMakeFiles/bank_failover.dir/bank_failover.cpp.o"
  "CMakeFiles/bank_failover.dir/bank_failover.cpp.o.d"
  "bank_failover"
  "bank_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
