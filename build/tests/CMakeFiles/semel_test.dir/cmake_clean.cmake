file(REMOVE_RECURSE
  "CMakeFiles/semel_test.dir/semel_test.cc.o"
  "CMakeFiles/semel_test.dir/semel_test.cc.o.d"
  "semel_test"
  "semel_test.pdb"
  "semel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
