# Empty compiler generated dependencies file for semel_test.
# This may be replaced when dependencies are built.
