file(REMOVE_RECURSE
  "CMakeFiles/clocksync_test.dir/clocksync_test.cc.o"
  "CMakeFiles/clocksync_test.dir/clocksync_test.cc.o.d"
  "clocksync_test"
  "clocksync_test.pdb"
  "clocksync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clocksync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
