file(REMOVE_RECURSE
  "CMakeFiles/pack_log_test.dir/pack_log_test.cc.o"
  "CMakeFiles/pack_log_test.dir/pack_log_test.cc.o.d"
  "pack_log_test"
  "pack_log_test.pdb"
  "pack_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pack_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
