# Empty dependencies file for pack_log_test.
# This may be replaced when dependencies are built.
