file(REMOVE_RECURSE
  "CMakeFiles/milana_test.dir/milana_test.cc.o"
  "CMakeFiles/milana_test.dir/milana_test.cc.o.d"
  "milana_test"
  "milana_test.pdb"
  "milana_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
