# Empty dependencies file for milana_test.
# This may be replaced when dependencies are built.
