# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/clocksync_test[1]_include.cmake")
include("/root/repo/build/tests/flash_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/semel_test[1]_include.cmake")
include("/root/repo/build/tests/milana_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/pack_log_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_fuzz_test[1]_include.cmake")
