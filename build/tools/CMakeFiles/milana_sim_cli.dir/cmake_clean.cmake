file(REMOVE_RECURSE
  "CMakeFiles/milana_sim_cli.dir/milana_sim.cc.o"
  "CMakeFiles/milana_sim_cli.dir/milana_sim.cc.o.d"
  "milana-sim"
  "milana-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/milana_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
