# Empty dependencies file for milana_sim_cli.
# This may be replaced when dependencies are built.
