# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(milana_sim_smoke "/root/repo/build/tools/milana-sim" "--shards=1" "--replicas=1" "--clients=2" "--keys=500" "--seconds=1" "--clocks=perfect")
set_tests_properties(milana_sim_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
