file(REMOVE_RECURSE
  "CMakeFiles/fig7_ptp_vs_ntp.dir/fig7_ptp_vs_ntp.cc.o"
  "CMakeFiles/fig7_ptp_vs_ntp.dir/fig7_ptp_vs_ntp.cc.o.d"
  "fig7_ptp_vs_ntp"
  "fig7_ptp_vs_ntp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ptp_vs_ntp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
