# Empty compiler generated dependencies file for fig7_ptp_vs_ntp.
# This may be replaced when dependencies are built.
