file(REMOVE_RECURSE
  "CMakeFiles/fig6_abort_vs_clients.dir/fig6_abort_vs_clients.cc.o"
  "CMakeFiles/fig6_abort_vs_clients.dir/fig6_abort_vs_clients.cc.o.d"
  "fig6_abort_vs_clients"
  "fig6_abort_vs_clients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_abort_vs_clients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
