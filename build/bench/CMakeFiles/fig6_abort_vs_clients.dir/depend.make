# Empty dependencies file for fig6_abort_vs_clients.
# This may be replaced when dependencies are built.
