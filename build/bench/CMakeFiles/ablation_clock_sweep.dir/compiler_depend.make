# Empty compiler generated dependencies file for ablation_clock_sweep.
# This may be replaced when dependencies are built.
