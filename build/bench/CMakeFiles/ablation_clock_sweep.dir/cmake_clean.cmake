file(REMOVE_RECURSE
  "CMakeFiles/ablation_clock_sweep.dir/ablation_clock_sweep.cc.o"
  "CMakeFiles/ablation_clock_sweep.dir/ablation_clock_sweep.cc.o.d"
  "ablation_clock_sweep"
  "ablation_clock_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clock_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
