file(REMOVE_RECURSE
  "CMakeFiles/fig8_latency_throughput.dir/fig8_latency_throughput.cc.o"
  "CMakeFiles/fig8_latency_throughput.dir/fig8_latency_throughput.cc.o.d"
  "fig8_latency_throughput"
  "fig8_latency_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_latency_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
