file(REMOVE_RECURSE
  "CMakeFiles/ablation_pack_timer.dir/ablation_pack_timer.cc.o"
  "CMakeFiles/ablation_pack_timer.dir/ablation_pack_timer.cc.o.d"
  "ablation_pack_timer"
  "ablation_pack_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pack_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
