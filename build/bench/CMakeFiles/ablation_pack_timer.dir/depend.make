# Empty dependencies file for ablation_pack_timer.
# This may be replaced when dependencies are built.
