
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_ftl_perf.cc" "bench/CMakeFiles/table1_ftl_perf.dir/table1_ftl_perf.cc.o" "gcc" "bench/CMakeFiles/table1_ftl_perf.dir/table1_ftl_perf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/milana_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/milana/CMakeFiles/milana_milana.dir/DependInfo.cmake"
  "/root/repo/build/src/semel/CMakeFiles/milana_semel.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/milana_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/milana_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/flash/CMakeFiles/milana_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/clocksync/CMakeFiles/milana_clocksync.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/milana_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/milana_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
