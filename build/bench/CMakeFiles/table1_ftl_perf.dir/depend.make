# Empty dependencies file for table1_ftl_perf.
# This may be replaced when dependencies are built.
