file(REMOVE_RECURSE
  "CMakeFiles/table1_ftl_perf.dir/table1_ftl_perf.cc.o"
  "CMakeFiles/table1_ftl_perf.dir/table1_ftl_perf.cc.o.d"
  "table1_ftl_perf"
  "table1_ftl_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ftl_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
