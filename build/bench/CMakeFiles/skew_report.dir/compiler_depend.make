# Empty compiler generated dependencies file for skew_report.
# This may be replaced when dependencies are built.
