file(REMOVE_RECURSE
  "CMakeFiles/skew_report.dir/skew_report.cc.o"
  "CMakeFiles/skew_report.dir/skew_report.cc.o.d"
  "skew_report"
  "skew_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
