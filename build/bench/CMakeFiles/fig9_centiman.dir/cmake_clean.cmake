file(REMOVE_RECURSE
  "CMakeFiles/fig9_centiman.dir/fig9_centiman.cc.o"
  "CMakeFiles/fig9_centiman.dir/fig9_centiman.cc.o.d"
  "fig9_centiman"
  "fig9_centiman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_centiman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
