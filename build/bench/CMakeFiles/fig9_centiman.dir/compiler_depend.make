# Empty compiler generated dependencies file for fig9_centiman.
# This may be replaced when dependencies are built.
