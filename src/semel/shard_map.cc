#include "semel/shard_map.hh"

#include <algorithm>

#include "common/logging.hh"

namespace semel {

namespace {

std::uint64_t
hash64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

ShardMap::ShardMap(std::uint32_t num_shards, std::uint32_t virtual_nodes)
    : numShards_(num_shards)
{
    if (num_shards == 0)
        FATAL("ShardMap needs at least one shard");
    for (ShardId s = 0; s < num_shards; ++s) {
        for (std::uint32_t v = 0; v < virtual_nodes; ++v) {
            const std::uint64_t point =
                hash64((static_cast<std::uint64_t>(s) << 32) | v);
            ring_[point] = s;
        }
    }
}

ShardId
ShardMap::shardOf(Key key) const
{
    const std::uint64_t point = hash64(key);
    auto it = ring_.lower_bound(point);
    if (it == ring_.end())
        it = ring_.begin(); // wrap around the ring
    return it->second;
}

void
Master::setReplicas(ShardId shard, std::vector<NodeId> replicas)
{
    if (replicas.empty())
        FATAL("shard " << shard << " needs at least one replica");
    replicas_[shard] = std::move(replicas);
}

NodeId
Master::primaryOf(ShardId shard) const
{
    return replicasOf(shard).front();
}

const std::vector<NodeId> &
Master::replicasOf(ShardId shard) const
{
    auto it = replicas_.find(shard);
    if (it == replicas_.end())
        PANIC("no replicas registered for shard " << shard);
    return it->second;
}

std::vector<NodeId>
Master::backupsOf(ShardId shard) const
{
    const auto &all = replicasOf(shard);
    return std::vector<NodeId>(all.begin() + 1, all.end());
}

void
Master::failover(ShardId shard, NodeId new_primary)
{
    auto it = replicas_.find(shard);
    if (it == replicas_.end())
        PANIC("failover of unknown shard " << shard);
    auto &reps = it->second;
    auto pos = std::find(reps.begin(), reps.end(), new_primary);
    if (pos == reps.end())
        PANIC("failover target " << new_primary
                                 << " is not a replica of shard "
                                 << shard);
    reps.erase(pos);
    reps.insert(reps.begin(), new_primary);
}

} // namespace semel
