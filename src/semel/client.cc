#include "semel/client.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/future.hh"

namespace semel {

Client::Client(sim::Simulator &sim, net::Network &net, NodeId node,
               ClientId client_id, clocksync::Clock &clock,
               const Master &master, const Directory &directory,
               const Config &config)
    : sim_(sim),
      net_(net),
      node_(node),
      clientId_(client_id),
      clock_(clock),
      master_(master),
      directory_(directory),
      config_(config)
{
}

Server *
Client::primaryFor(Key key) const
{
    const ShardId shard = master_.shardMap().shardOf(key);
    Server *primary = directory_.at(master_.primaryOf(shard));
    if (primary == nullptr)
        PANIC("no server registered for primary of shard " << shard);
    return primary;
}

void
Client::noteAcked(Time timestamp)
{
    lastAcked_ = std::max(lastAcked_, timestamp);
}

sim::Task<std::optional<GetResponse>>
Client::get(Key key)
{
    co_return co_await getAt(key, Version{clock_.localNow(), clientId_});
}

sim::Task<std::optional<GetResponse>>
Client::getAt(Key key, Version at)
{
    stats_.counter("client.gets").inc();
    GetRequest req{key, at};
    for (std::uint32_t attempt = 0; attempt <= config_.maxRetries;
         ++attempt) {
        Server *primary = primaryFor(key); // re-resolve across failover
        auto resp = co_await net_.callTyped<GetResponse>(
            node_, primary->nodeId(), primary->handleGet(req));
        if (resp.has_value()) {
            noteAcked(at.timestamp);
            co_return resp;
        }
        stats_.counter("client.get_retries").inc();
    }
    co_return std::nullopt;
}

sim::Task<PutResult>
Client::put(Key key, Value value)
{
    stats_.counter("client.puts").inc();
    // A raw KV put outside any transaction starts its own trace so the
    // server/replication spans it triggers still group together.
    common::TraceContext ctx = common::currentTraceContext();
    if (ctx.traceId == 0)
        ctx.traceId = trace_.newTraceId();
    common::TraceContextScope ctxScope(ctx);
    common::ScopedSpan span(trace_, "semel.client.put");
    span.setArg(static_cast<std::int64_t>(key));
    // The version is chosen once; retries resend the same stamp so the
    // server can deduplicate (idempotence, section 3.3).
    const Version version{clock_.localNow(), clientId_};
    PutRequest req{key, std::move(value), version};
    for (std::uint32_t attempt = 0; attempt <= config_.maxRetries;
         ++attempt) {
        Server *primary = primaryFor(key);
        auto resp = co_await net_.callTyped<PutResponse>(
            node_, primary->nodeId(), primary->handlePut(req));
        if (resp.has_value()) {
            noteAcked(version.timestamp);
            span.setTag(resp->result == PutResult::Ok ? "ok" : "rejected");
            co_return resp->result;
        }
        stats_.counter("client.put_retries").inc();
    }
    span.setTag("failed");
    co_return PutResult::Failed;
}

sim::Task<PutResult>
Client::del(Key key)
{
    stats_.counter("client.deletes").inc();
    const Version version{clock_.localNow(), clientId_};
    for (std::uint32_t attempt = 0; attempt <= config_.maxRetries;
         ++attempt) {
        Server *primary = primaryFor(key);
        auto resp = co_await net_.callTyped<PutResponse>(
            node_, primary->nodeId(),
            primary->handleDelete(key, version));
        if (resp.has_value()) {
            noteAcked(version.timestamp);
            co_return resp->result;
        }
    }
    co_return PutResult::Failed;
}

sim::Task<void>
Client::watermarkLoop()
{
    while (!sim_.stopRequested()) {
        co_await sim::sleepFor(sim_, config_.watermarkPeriod);
        const Time report = lastAcked_;
        if (report == 0)
            continue;
        for (const auto &[node, server] : directory_.all()) {
            Server *srv = server;
            const ClientId cid = clientId_;
            net_.send(node_, node, [srv, cid, report] {
                srv->handleWatermarkReport(cid, report);
            });
        }
    }
}

void
Client::start()
{
    sim::spawn(watermarkLoop());
}

} // namespace semel
