/**
 * @file
 * Key -> shard -> replica-set mapping (paper section 3): "The client
 * library coordinates with a global master to map each key to a data
 * shard and to the shard's primary replica using standard techniques
 * (e.g., consistent hashing)."
 *
 * ShardMap implements a consistent-hash ring with virtual nodes over
 * the shards; the Master maintains the replica sets (first replica is
 * the primary) and performs failover by promoting a backup. Clients
 * hold a reference to the master's map — master lookups are cheap and
 * off the data path, as with a ZooKeeper-backed directory.
 */

#ifndef SEMEL_SHARD_MAP_HH
#define SEMEL_SHARD_MAP_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hh"

namespace semel {

using common::Key;
using common::NodeId;
using common::ShardId;

/** Consistent-hash ring: key -> shard. */
class ShardMap
{
  public:
    explicit ShardMap(std::uint32_t num_shards,
                      std::uint32_t virtual_nodes = 64);

    ShardId shardOf(Key key) const;
    std::uint32_t numShards() const { return numShards_; }

  private:
    std::uint32_t numShards_;
    /** ring position -> shard */
    std::map<std::uint64_t, ShardId> ring_;
};

/** The global master: shard -> replica set (element 0 is primary). */
class Master
{
  public:
    explicit Master(const ShardMap &map) : map_(map) {}

    const ShardMap &shardMap() const { return map_; }

    void setReplicas(ShardId shard, std::vector<NodeId> replicas);

    NodeId primaryOf(ShardId shard) const;
    const std::vector<NodeId> &replicasOf(ShardId shard) const;

    /** Backups of a shard (replicas minus the primary). */
    std::vector<NodeId> backupsOf(ShardId shard) const;

    /**
     * Fail over: promote @p new_primary (must be a current replica) to
     * the head of the replica list.
     */
    void failover(ShardId shard, NodeId new_primary);

  private:
    const ShardMap &map_;
    std::map<ShardId, std::vector<NodeId>> replicas_;
};

} // namespace semel

#endif // SEMEL_SHARD_MAP_HH
