/**
 * @file
 * SEMEL client library (paper section 3): runs on an application
 * server, stamps every operation with the node's PTP/NTP-disciplined
 * clock, routes it to the shard primary via the master's map, retries
 * idempotently on timeouts, and periodically broadcasts its
 * last-acknowledged timestamp for watermark GC.
 */

#ifndef SEMEL_CLIENT_HH
#define SEMEL_CLIENT_HH

#include <optional>

#include "clocksync/clock.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "net/network.hh"
#include "semel/server.hh"
#include "semel/shard_map.hh"
#include "sim/task.hh"

namespace semel {

class Client
{
  public:
    struct Config
    {
        std::uint32_t maxRetries = 3;
        common::Duration watermarkPeriod = 100 * common::kMillisecond;
    };

    Client(sim::Simulator &sim, net::Network &net, NodeId node,
           ClientId client_id, clocksync::Clock &clock,
           const Master &master, const Directory &directory,
           const Config &config);
    virtual ~Client() = default;

    ClientId clientId() const { return clientId_; }
    NodeId nodeId() const { return node_; }
    clocksync::Clock &clock() { return clock_; }

    /** Current LocalTime of this client's clock. */
    Time now() { return clock_.localNow(); }

    /** Read the youngest version as of the client's current time. */
    sim::Task<std::optional<GetResponse>> get(Key key);

    /** Snapshot read at an explicit bound (used by MILANA). */
    sim::Task<std::optional<GetResponse>> getAt(Key key, Version at);

    /** Create a new version stamped with the client's current time. */
    sim::Task<PutResult> put(Key key, Value value);

    /** Delete all versions of a key. */
    sim::Task<PutResult> del(Key key);

    /** Start the periodic watermark broadcast. */
    void start();

    /** Timestamp of the last acknowledged operation. */
    Time lastAcked() const { return lastAcked_; }

    common::StatSet &stats() { return stats_; }

    /** Trace emission handle; disabled until the cluster attaches it. */
    common::Tracer &tracer() { return trace_; }

  protected:
    Server *primaryFor(Key key) const;
    void noteAcked(Time timestamp);
    sim::Task<void> watermarkLoop();

    sim::Simulator &sim_;
    net::Network &net_;
    NodeId node_;
    ClientId clientId_;
    clocksync::Clock &clock_;
    const Master &master_;
    const Directory &directory_;
    Config config_;
    Time lastAcked_ = 0;
    common::StatSet stats_;
    common::Tracer trace_;
};

} // namespace semel

#endif // SEMEL_CLIENT_HH
