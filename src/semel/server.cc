#include "semel/server.hh"

#include <algorithm>
#include <limits>
#include <memory>

#include "common/logging.hh"
#include "sim/future.hh"
#include "sim/sync.hh"

namespace semel {

Server::Server(sim::Simulator &sim, net::Network &net, NodeId id,
               ShardId shard, ftl::KvBackend &backend,
               const Config &config)
    : sim_(sim),
      net_(net),
      id_(id),
      shard_(shard),
      backend_(backend),
      config_(config)
{
    cpu_ = std::make_unique<sim::Semaphore>(sim, config.cpuCores);
}

sim::Task<void>
Server::chargeCpu()
{
    if (config_.requestCpuTime <= 0)
        co_return;
    co_await cpu_->acquire();
    co_await sim::sleepFor(sim_, config_.requestCpuTime);
    cpu_->release();
}

void
Server::setBackups(std::vector<Server *> backups)
{
    backups_ = std::move(backups);
}

void
Server::reserveKeys(std::uint64_t keys)
{
    backend_.reserveKeys(keys);
    latestWritten_.reserve(keys);
}

Version
Server::latestCommitted(Key key) const
{
    auto it = latestWritten_.find(key);
    return it == latestWritten_.end() ? Version::zero() : it->second;
}

void
Server::noteCommitted(Key key, Version version)
{
    auto &latest = latestWritten_[key];
    latest = std::max(latest, version);
}

sim::Task<GetResponse>
Server::handleGet(GetRequest request)
{
    stats_.counter("semel.gets").inc();
    co_await chargeCpu();
    const ftl::GetResult r = co_await backend_.get(request.key, request.at);
    GetResponse resp;
    resp.found = r.found;
    resp.version = r.version;
    resp.value = r.value;
    co_return resp;
}

sim::Task<bool>
Server::replicateToBackups(ReplicateWrite msg)
{
    if (backups_.empty())
        co_return true;
    if (config_.backupAcksNeeded > backups_.size())
        PANIC("quorum " << config_.backupAcksNeeded << " > "
                        << backups_.size() << " backups");

    common::ScopedSpan span(trace_, "semel.repl.write");
    span.setArg(static_cast<std::int64_t>(backups_.size()));
    const Time started = sim_.now();
    auto quorum = std::make_shared<sim::Quorum>(
        sim_, config_.backupAcksNeeded);
    for (Server *backup : backups_) {
        sim::spawn([](Server *self, Server *backup, ReplicateWrite m,
                      std::shared_ptr<sim::Quorum> q) -> sim::Task<void> {
            auto ok = co_await self->net_.callTyped<bool>(
                self->id_, backup->nodeId(),
                backup->handleReplicateWrite(m));
            if (ok.has_value() && *ok)
                q->arrive();
        }(this, backup, msg, quorum));
    }
    // Inconsistent replication: no ordering, just a quorum of acks.
    co_await quorum->wait();
    stats_.histogram("semel.repl_wait").record(sim_.now() - started);
    co_return true;
}

sim::Task<PutResponse>
Server::handlePut(PutRequest request)
{
    stats_.counter("semel.puts").inc();
    common::ScopedSpan span(trace_, "semel.server.put");
    span.setArg(static_cast<std::int64_t>(backups_.size()));
    co_await chargeCpu();
    PutResponse resp;

    const Version latest = latestCommitted(request.key);
    if (request.version == latest && !latest.isZero()) {
        // Retransmitted request we already executed: repeat the reply
        // (idempotence, section 3.3).
        stats_.counter("semel.duplicate_puts").inc();
        resp.result = PutResult::Ok;
        span.setTag("duplicate");
        co_return resp;
    }
    if (request.version < latest) {
        // Stale write: at-most-once semantics reject it.
        stats_.counter("semel.stale_rejects").inc();
        resp.result = PutResult::StaleRejected;
        span.setTag("stale");
        co_return resp;
    }

    // Replicate and persist concurrently; commit requires local
    // durability plus f backup acks (majority of 2f+1).
    ReplicateWrite msg{request.key, request.value, request.version};
    auto replication = std::make_shared<sim::Quorum>(sim_, 1);
    sim::spawn([](Server *self, ReplicateWrite m,
                  std::shared_ptr<sim::Quorum> q) -> sim::Task<void> {
        co_await self->replicateToBackups(m);
        q->arrive();
    }(this, msg, replication));

    const ftl::PutStatus status = co_await backend_.put(
        request.key, request.value, request.version);
    if (status == ftl::PutStatus::StaleVersion) {
        // Single-version backends can lose the race to a newer write
        // that slipped in while this one was queued.
        resp.result = PutResult::StaleRejected;
        span.setTag("stale");
        co_return resp;
    }
    co_await replication->wait();

    noteCommitted(request.key, request.version);
    resp.result = PutResult::Ok;
    // "ok" after the replication quorum: the invariant monitor checks
    // the semel.repl.write span ended before this ack.
    span.setTag("ok");
    co_return resp;
}

sim::Task<PutResponse>
Server::handleDelete(Key key, Version version)
{
    stats_.counter("semel.deletes").inc();
    PutResponse resp;
    const Version latest = latestCommitted(key);
    if (version < latest) {
        resp.result = PutResult::StaleRejected;
        co_return resp;
    }
    // Propagate the delete to backups as a tombstone write.
    for (Server *backup : backups_) {
        Server *self = this;
        net_.send(id_, backup->nodeId(), [backup, key, version] {
            sim::spawn([](Server *b, Key k) -> sim::Task<void> {
                co_await b->backend().erase(k);
            }(backup, key));
        });
        (void)self;
    }
    co_await backend_.erase(key);
    latestWritten_.erase(key);
    resp.result = PutResult::Ok;
    co_return resp;
}

sim::Task<bool>
Server::handleReplicateWrite(ReplicateWrite msg)
{
    stats_.counter("semel.replica_writes").inc();
    // Unordered apply: multi-version backends insert the stamp at its
    // sorted position; single-version backends keep whichever stamp is
    // newest. Either way the acknowledgement is safe — ordering is
    // reconstructed from the stamps.
    (void)co_await backend_.put(msg.key, msg.value, msg.version);
    noteCommitted(msg.key, msg.version);
    co_return true;
}

void
Server::handleWatermarkReport(ClientId client, Time timestamp)
{
    auto &latest = clientReports_[client];
    latest = std::max(latest, timestamp);
    if (config_.expectedClients == 0 ||
        clientReports_.size() < config_.expectedClients)
        return;
    Time min_ts = std::numeric_limits<Time>::max();
    for (const auto &[c, t] : clientReports_)
        min_ts = std::min(min_ts, t);
    if (min_ts > watermark_) {
        watermark_ = min_ts;
        backend_.setWatermark(watermark_);
        stats_.counter("semel.watermark_advances").inc();
    }
}

} // namespace semel
