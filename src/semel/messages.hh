/**
 * @file
 * Wire messages of the SEMEL storage protocol and the MILANA
 * transaction protocol. Plain structs: serialization is immaterial in
 * a single-process simulation, but keeping explicit message types
 * documents exactly what crosses the network (and therefore what each
 * round trip costs).
 */

#ifndef SEMEL_MESSAGES_HH
#define SEMEL_MESSAGES_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "ftl/kv_backend.hh"

namespace semel {

using common::ClientId;
using common::Key;
using common::ShardId;
using common::Time;
using common::Value;
using common::Version;

// ------------------------------------------------------------- SEMEL

struct GetRequest
{
    Key key = 0;
    /** Read the youngest version with stamp <= at. */
    Version at;
};

struct GetResponse
{
    bool found = false;
    /** Server temporarily cannot serve (lease gap / recovery): retry. */
    bool unavailable = false;
    Version version;
    Value value;
    /**
     * MILANA extension (section 4.3): true if the key had a prepared
     * version with timestamp <= the request's `at` when served. A
     * read-only transaction whose reads all come back with this flag
     * false commits locally, with no further messages.
     */
    bool preparedLeqAt = false;
};

struct PutRequest
{
    Key key = 0;
    Value value;
    Version version;
};

enum class PutResult : std::uint8_t
{
    Ok,
    /** Version older than the stored one: rejected (at-most-once). */
    StaleRejected,
    Failed,
};

struct PutResponse
{
    PutResult result = PutResult::Failed;
};

/** Primary -> backup: one timestamped write (unordered replication). */
struct ReplicateWrite
{
    Key key = 0;
    Value value;
    Version version;
};

// ------------------------------------------------------------ MILANA

/** One read observed by a transaction (for validation). */
struct ReadSetEntry
{
    Key key = 0;
    /** The version the transaction read. */
    Version observed;
};

/** One buffered write of a transaction. */
struct WriteSetEntry
{
    Key key = 0;
    Value value;
};

/** Globally unique transaction id. */
struct TxnId
{
    ClientId client = 0;
    std::uint64_t serial = 0;

    auto operator<=>(const TxnId &) const = default;
};

enum class TxnDecision : std::uint8_t
{
    Unknown,
    Commit,
    Abort,
};

/** Client -> participant primary: phase 1 of 2PC. */
struct PrepareRequest
{
    TxnId txn;
    Version commitVersion;
    /** The transaction's begin timestamp (for read validation). */
    Version beginVersion;
    /** Keys of this shard read by the transaction. */
    std::vector<ReadSetEntry> readSet;
    /** Writes of this shard (values pushed at prepare, not before). */
    std::vector<WriteSetEntry> writeSet;
    /** All other participant shards, for recovery (section 4.5). */
    std::vector<ShardId> participants;
};

enum class Vote : std::uint8_t
{
    Commit,
    Abort,
};

/**
 * Why a transaction aborted. The first five mirror the checks of
 * Algorithm 1 in order; the last two are client-side outcomes that
 * never cross the wire but share the same vocabulary so traces and
 * metrics name every abort consistently (OBSERVABILITY.md).
 */
enum class AbortReason : std::uint8_t
{
    None,
    ReadPrepared,
    ReadStale,
    WritePrepared,
    WriteReadConflict,
    WriteStale,
    /** Client side: a read observed an inconsistent snapshot. */
    SnapshotViolated,
    /** Infrastructure: a participant unreachable or recovering. */
    PrepareFailed,
    /**
     * A timestamp-order check failed while a clock fault was active
     * (chaos): the stamps themselves are suspect, not the data. Set by
     * the server, crosses the wire in PrepareResponse::reason.
     */
    ClockSuspect,
    /** The RPC timed out while a fault window was active (chaos). */
    Timeout,
};

constexpr const char *
abortReasonName(AbortReason reason)
{
    switch (reason) {
      case AbortReason::None: return "none";
      case AbortReason::ReadPrepared: return "read_prepared";
      case AbortReason::ReadStale: return "read_stale";
      case AbortReason::WritePrepared: return "write_prepared";
      case AbortReason::WriteReadConflict: return "write_read_conflict";
      case AbortReason::WriteStale: return "write_stale";
      case AbortReason::SnapshotViolated: return "snapshot_violated";
      case AbortReason::PrepareFailed: return "prepare_failed";
      case AbortReason::ClockSuspect: return "clock_suspect";
      case AbortReason::Timeout: return "timeout";
    }
    return "?";
}

struct PrepareResponse
{
    Vote vote = Vote::Abort;
    /** Which check failed when vote == Abort (None on commit). */
    AbortReason reason = AbortReason::None;
};

/** Client -> participant primary: phase 2 outcome notification. */
struct DecisionRequest
{
    TxnId txn;
    TxnDecision decision = TxnDecision::Unknown;
    /**
     * The decision is a late re-application (CTP orphan resolution or
     * recovery replay), not the coordinator's phase-2 message. Late
     * applies can land after newer versions of the same keys committed
     * elsewhere — safe on the multi-version backend (latestCommitted
     * folds with max) and exempted from the invariant monitor's
     * commit-timestamp monotonicity check.
     */
    bool late = false;
};

struct DecisionResponse
{
    bool ok = false;
};

/**
 * Primary -> backup: replicate a transaction-table update. Carries
 * the full prepare record (status PREPARED) or the final outcome
 * (COMMITTED/ABORTED). Backups apply these in any order (Figure 5);
 * a new primary reconstructs order during recovery.
 */
enum class TxnRecordKind : std::uint8_t
{
    Prepared,
    Committed,
    Aborted,
};

struct ReplicateTxnRecord
{
    TxnRecordKind kind = TxnRecordKind::Prepared;
    TxnId txn;
    Version commitVersion;
    std::vector<WriteSetEntry> writeSet;
    std::vector<ShardId> participants;
};

/** Participant -> participant: CTP status query (section 4.5). */
struct TxnStatusRequest
{
    TxnId txn;
};

enum class TxnStatus : std::uint8_t
{
    Unknown, ///< never saw a prepare for it
    Prepared,
    Committed,
    Aborted,
};

struct TxnStatusResponse
{
    TxnStatus status = TxnStatus::Unknown;
};

} // namespace semel

#endif // SEMEL_MESSAGES_HH
