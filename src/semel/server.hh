/**
 * @file
 * SEMEL storage server (paper section 3).
 *
 * A server is one replica of one shard. The primary services client
 * gets and puts; writes are replicated to the backups with
 * *inconsistent replication* (section 3.2): each backup applies and
 * acknowledges a timestamped write as soon as it receives it —
 * ordering is explicit in the version stamps, so no operation log or
 * sequencing is needed — and the primary acknowledges the client once
 * the write is locally durable and f of the 2f backups have
 * acknowledged (majority of 2f+1 replicas).
 *
 * Linearizability (section 3.3): the primary rejects writes whose
 * version stamp is not newer than the key's latest committed stamp
 * (at-most-once), repeats its earlier response for exact duplicates
 * (idempotence), and serves reads from the named snapshot version.
 *
 * Watermarks (section 3.1): clients periodically report the timestamp
 * of their last acknowledged operation; once every expected client has
 * reported, the minimum becomes the GC watermark handed to the
 * backend.
 */

#ifndef SEMEL_SERVER_HH
#define SEMEL_SERVER_HH

#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/trace.hh"
#include "ftl/kv_backend.hh"
#include "net/network.hh"
#include "semel/messages.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace semel {

using common::NodeId;

class Server
{
  public:
    struct Config
    {
        /** Backup acknowledgements required before a write commits
         *  (f, out of 2f backups). */
        std::uint32_t backupAcksNeeded = 1;
        /** Number of clients that must report before the watermark
         *  advances (0 disables watermark GC). */
        std::uint32_t expectedClients = 0;
        /** Request-processing CPU model: cores available to the
         *  server process... */
        std::uint32_t cpuCores = 8;
        /** ...and CPU time consumed per request handled. Bounds the
         *  server's request rate at cpuCores / requestCpuTime. */
        common::Duration requestCpuTime = 100 * common::kMicrosecond;
    };

    Server(sim::Simulator &sim, net::Network &net, NodeId id,
           ShardId shard, ftl::KvBackend &backend, const Config &config);
    virtual ~Server() = default;

    NodeId nodeId() const { return id_; }
    ShardId shard() const { return shard_; }
    ftl::KvBackend &backend() { return backend_; }

    /** Wire the backup replicas this server replicates to (primary). */
    void setBackups(std::vector<Server *> backups);
    const std::vector<Server *> &backups() const { return backups_; }

    /**
     * Pre-size the per-key DRAM state and the backend's mapping table
     * for a bulk load of @p keys distinct keys, so populate performs
     * zero rehashes.
     */
    virtual void reserveKeys(std::uint64_t keys);

    // -------------------------------------------------- RPC handlers

    /** Read the youngest version with stamp <= request.at. */
    virtual sim::Task<GetResponse> handleGet(GetRequest request);

    /** Timestamped write: validate freshness, persist, replicate. */
    virtual sim::Task<PutResponse> handlePut(PutRequest request);

    /** Delete all versions of a key (propagated like a write). */
    sim::Task<PutResponse> handleDelete(Key key, Version version);

    /** Backup side: apply one replicated write, in any order. */
    sim::Task<bool> handleReplicateWrite(ReplicateWrite msg);

    /** Client watermark report (one-way). */
    void handleWatermarkReport(ClientId client, Time timestamp);

    // ---------------------------------------------------- inspection

    /** Latest committed version stamp of a key (zero if none). */
    Version latestCommitted(Key key) const;

    Time watermark() const { return watermark_; }

    common::StatSet &stats() { return stats_; }

    /** Trace emission handle; disabled until the cluster attaches it. */
    common::Tracer &tracer() { return trace_; }

  protected:
    /** Charge one request's CPU cost (queueing on the core pool). */
    sim::Task<void> chargeCpu();

    /**
     * Replicate a write to the backups and wait for the configured
     * quorum of acknowledgements. Returns true on quorum.
     */
    sim::Task<bool> replicateToBackups(ReplicateWrite msg);

    /** Record a key's newest committed stamp. */
    void noteCommitted(Key key, Version version);

    sim::Simulator &sim_;
    net::Network &net_;
    NodeId id_;
    ShardId shard_;
    ftl::KvBackend &backend_;
    Config config_;
    std::vector<Server *> backups_;

    /** DRAM: newest committed stamp per key (at-most-once checks). */
    std::unordered_map<Key, Version> latestWritten_;

    /** Core pool for the request-processing cost model. */
    std::unique_ptr<sim::Semaphore> cpu_;

    /** Latest report per client; min over all = watermark. */
    std::map<ClientId, Time> clientReports_;
    Time watermark_ = 0;

    common::StatSet stats_;
    common::Tracer trace_;
};

/** NodeId -> Server lookup used by clients and the cluster builder. */
class Directory
{
  public:
    void
    add(Server *server)
    {
        servers_[server->nodeId()] = server;
    }

    Server *
    at(NodeId id) const
    {
        auto it = servers_.find(id);
        return it == servers_.end() ? nullptr : it->second;
    }

    const std::map<NodeId, Server *> &all() const { return servers_; }

  private:
    std::map<NodeId, Server *> servers_;
};

} // namespace semel

#endif // SEMEL_SERVER_HH
