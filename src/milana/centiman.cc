#include "milana/centiman.hh"

#include <algorithm>
#include <limits>

namespace milana {

void
CentimanSystem::registerClient(common::ClientId client)
{
    expected_.insert(client);
}

void
CentimanSystem::reportDecided(common::ClientId client, common::Time ts)
{
    latest_[client] = std::max(latest_[client], ts);
    auto &count = sinceDissemination_[client];
    ++count;
    if (count >= every_ || !published_.count(client)) {
        count = 0;
        published_[client] = latest_[client];
    }
}

common::Time
CentimanSystem::watermark() const
{
    if (published_.size() < expected_.size() || expected_.empty())
        return 0;
    common::Time w = std::numeric_limits<common::Time>::max();
    for (const auto &[client, ts] : published_)
        w = std::min(w, ts);
    return w;
}

CentimanClient::CentimanClient(sim::Simulator &sim, net::Network &net,
                               NodeId node, ClientId client_id,
                               clocksync::Clock &clock,
                               const semel::Master &master,
                               const semel::Directory &directory,
                               const semel::Client::Config &config,
                               const TxnConfig &txn_config,
                               CentimanSystem &system)
    : MilanaClient(sim, net, node, client_id, clock, master, directory,
                   config, txn_config),
      system_(system)
{
    system_.registerClient(client_id);
}

sim::Task<CommitResult>
CentimanClient::decideCommit(Transaction &txn)
{
    CommitResult result;
    if (!txn.readOnly()) {
        result = co_await twoPhaseCommit(txn, false);
    } else if (txn.snapshotViolated_) {
        txn.abortReason_ = semel::AbortReason::SnapshotViolated;
        result = CommitResult::Aborted;
    } else {
        stats().counter("centiman.ro_txns").inc();
        // Local check: the whole snapshot must lie below the
        // (lazily disseminated) watermark.
        const common::Time watermark = system_.watermark();
        bool below = true;
        for (const auto &[key, cached] : txn.readSet_) {
            if (cached.found &&
                cached.observed.timestamp > watermark) {
                below = false;
                break;
            }
        }
        if (below) {
            stats().counter("centiman.local_validated").inc();
            result = CommitResult::Committed;
        } else {
            // Remote validation at the shard validators.
            stats().counter("centiman.remote_validated").inc();
            result = co_await twoPhaseCommit(txn, true);
        }
    }
    system_.reportDecided(clientId(), clock().localNow());
    co_return result;
}

} // namespace milana
