#include "milana/client.hh"

#include <algorithm>
#include <memory>

#include "common/chaos.hh"
#include "common/logging.hh"
#include "sim/future.hh"
#include "sim/sync.hh"

namespace milana {

MilanaClient::MilanaClient(sim::Simulator &sim, net::Network &net,
                           NodeId node, ClientId client_id,
                           clocksync::Clock &clock,
                           const semel::Master &master,
                           const semel::Directory &directory,
                           const semel::Client::Config &config,
                           const TxnConfig &txn_config)
    : semel::Client(sim, net, node, client_id, clock, master, directory,
                    config),
      tcfg_(txn_config)
{
}

MilanaServer *
MilanaClient::milanaPrimaryFor(common::ShardId shard) const
{
    auto *server = dynamic_cast<MilanaServer *>(
        directory_.at(master_.primaryOf(shard)));
    if (server == nullptr)
        PANIC("shard " << shard << " primary is not a MILANA server");
    return server;
}

Transaction
MilanaClient::beginTransaction(TxnHint hint)
{
    Transaction txn;
    txn.id_ = TxnId{clientId_, nextSerial_++};
    txn.begin_ = Version{clock_.localNow(), clientId_};
    txn.active_ = true;
    txn.hint_ = hint;
    txn.traceId_ = trace_.newTraceId();
    stats_.counter("txn.begun").inc();
    common::TraceContextScope ctx(common::TraceContext{txn.traceId_, 0});
    trace_.instant("milana.txn.begin",
                   hint == TxnHint::ReadWrite ? "rw_hint" : "default",
                   /*arg=*/0, /*arg2=*/txn.begin_.timestamp);
    return txn;
}

MilanaServer *
MilanaClient::anyReplicaFor(Key key, common::Rng &rng) const
{
    const common::ShardId shard = master_.shardMap().shardOf(key);
    const auto &replicas = master_.replicasOf(shard);
    const auto pick = replicas[rng.nextBounded(replicas.size())];
    auto *server = dynamic_cast<MilanaServer *>(directory_.at(pick));
    if (server == nullptr)
        PANIC("replica " << pick << " is not a MILANA server");
    return server;
}

sim::Task<TxnRead>
MilanaClient::get(Transaction &txn, Key key)
{
    TxnRead result;
    if (!txn.active_)
        PANIC("get on inactive transaction");
    // Reads run under the transaction's trace so server-side spans
    // chain back to it.
    common::TraceContextScope ctx(
        common::TraceContext{txn.traceId_, 0});

    // Reads of our own buffered writes come from the write set.
    if (auto wit = txn.writeSet_.find(key); wit != txn.writeSet_.end()) {
        result.ok = true;
        result.found = true;
        result.value = wit->second;
        co_return result;
    }
    // Repeat reads come from the read cache.
    if (auto rit = txn.readSet_.find(key); rit != txn.readSet_.end()) {
        result.ok = true;
        result.found = rit->second.found;
        result.value = rit->second.value;
        co_return result;
    }

    const bool hinted_rw = txn.hint_ == TxnHint::ReadWrite;

    // Section 4.3 "aggressive caching": a hinted read-write
    // transaction may serve reads from the inter-transaction cache —
    // it will validate remotely, so stale entries surface as aborts.
    if (hinted_rw && tcfg_.interTxnCacheCapacity > 0) {
        if (auto cit = interTxnCache_.find(key);
            cit != interTxnCache_.end()) {
            stats_.counter("txn.cache_hits").inc();
            trace_.instant("milana.txn.read", "cache",
                           static_cast<std::int64_t>(key),
                           cit->second.observed.timestamp);
            txn.readSet_[key] = cit->second;
            result.ok = true;
            result.found = cit->second.found;
            result.value = cit->second.value;
            co_return result;
        }
    }

    std::optional<GetResponse> resp;
    if (hinted_rw && tcfg_.readFromAnyReplica) {
        // Section 4.6 relaxation: read from any replica; the primary
        // re-validates the observed version at prepare time.
        MilanaServer *replica = anyReplicaFor(key, replicaRng_);
        stats_.counter("txn.replica_reads").inc();
        GetRequest req{key, txn.begin_};
        resp = co_await net_.callTyped<GetResponse>(
            node_, replica->nodeId(), replica->handleGet(req));
    } else {
        resp = co_await getAt(key, txn.begin_);
    }
    if (!resp.has_value() || resp->unavailable) {
        stats_.counter("txn.read_failures").inc();
        if (chaos_ != nullptr && chaos_->anyActive()) {
            txn.abortReason_ = semel::AbortReason::Timeout;
            trace_.instant("milana.txn.fault_active",
                           chaos_->activeFaultName(),
                           static_cast<std::int64_t>(key));
        }
        co_return result; // ok = false
    }

    Transaction::CachedRead cached;
    cached.found = resp->found;
    cached.value = resp->value;
    cached.observed = resp->found ? resp->version : Version::zero();
    // Snapshot consistency bookkeeping (section 4.3): a prepared write
    // at or below ts_begin, or a returned version above ts_begin (only
    // possible on single-version storage), breaks the snapshot.
    if (resp->preparedLeqAt ||
        (resp->found && resp->version > txn.begin_))
        txn.snapshotViolated_ = true;
    trace_.instant("milana.txn.read", resp->found ? "hit" : "miss",
                   static_cast<std::int64_t>(key),
                   cached.observed.timestamp);
    txn.readSet_[key] = cached;
    if (tcfg_.interTxnCacheCapacity > 0) {
        if (interTxnCache_.size() >= tcfg_.interTxnCacheCapacity)
            interTxnCache_.erase(interTxnCache_.begin());
        interTxnCache_[key] = cached;
    }

    result.ok = true;
    result.found = cached.found;
    result.value = cached.value;
    co_return result;
}

void
MilanaClient::put(Transaction &txn, Key key, Value value)
{
    if (!txn.active_)
        PANIC("put on inactive transaction");
    txn.writeSet_[key] = std::move(value);
}

void
MilanaClient::abortTransaction(Transaction &txn)
{
    txn.active_ = false;
    txn.readSet_.clear();
    txn.writeSet_.clear();
    stats_.counter("txn.client_aborts").inc();
    common::TraceContextScope ctx(common::TraceContext{txn.traceId_, 0});
    trace_.instant("milana.txn.client_abort");
    noteAcked(clock_.localNow());
}

sim::Task<CommitResult>
MilanaClient::commitReadOnlyLocal(Transaction &txn)
{
    // Local validation (section 4.3): zero messages. The transaction
    // commits iff every value in its read set came from a consistent
    // snapshot at ts_begin.
    stats_.counter("txn.local_validations").inc();
    if (txn.snapshotViolated_) {
        stats_.counter("txn.local_validation_fail").inc();
        txn.abortReason_ = semel::AbortReason::SnapshotViolated;
        co_return CommitResult::Aborted;
    }
    co_return CommitResult::Committed;
}

sim::Task<CommitResult>
MilanaClient::twoPhaseCommit(Transaction &txn, bool read_only)
{
    const Version commit_version{clock_.localNow(), clientId_};
    txn.commitVersion_ = commit_version;

    // Partition read and write sets by participant shard.
    std::map<common::ShardId, semel::PrepareRequest> by_shard;
    for (const auto &[key, cached] : txn.readSet_) {
        auto &req = by_shard[master_.shardMap().shardOf(key)];
        req.readSet.push_back(ReadSetEntry{key, cached.observed});
    }
    for (const auto &[key, value] : txn.writeSet_) {
        auto &req = by_shard[master_.shardMap().shardOf(key)];
        req.writeSet.push_back(semel::WriteSetEntry{key, value});
    }
    std::vector<common::ShardId> participants;
    for (const auto &[shard, req] : by_shard)
        participants.push_back(shard);

    struct VoteState
    {
        explicit VoteState(sim::Simulator &s, std::uint32_t n)
            : all(s, n)
        {
        }
        sim::Quorum all;
        bool anyAbort = false;
        bool anyFailure = false;
        /** First abort reason reported by a participant. */
        semel::AbortReason reason = semel::AbortReason::None;
    };
    auto votes = std::make_shared<VoteState>(
        sim_, static_cast<std::uint32_t>(by_shard.size()));

    for (auto &[shard, req] : by_shard) {
        req.txn = txn.id_;
        req.commitVersion = commit_version;
        req.beginVersion = txn.begin_;
        req.participants = participants;
        MilanaServer *primary = milanaPrimaryFor(shard);

        sim::spawn([](MilanaClient *self, MilanaServer *primary,
                      semel::PrepareRequest request,
                      std::shared_ptr<VoteState> votes)
                       -> sim::Task<void> {
            std::optional<semel::PrepareResponse> resp;
            for (std::uint32_t attempt = 0;
                 attempt <= self->tcfg_.prepareRetries && !resp;
                 ++attempt) {
                resp = co_await self->net_.callTyped<semel::PrepareResponse>(
                    self->nodeId(), primary->nodeId(),
                    primary->handlePrepare(request));
            }
            if (!resp.has_value()) {
                votes->anyFailure = true;
            } else if (resp->vote == Vote::Abort) {
                votes->anyAbort = true;
                if (votes->reason == semel::AbortReason::None)
                    votes->reason = resp->reason;
            }
            votes->all.arrive();
        }(this, primary, req, votes));
    }

    co_await votes->all.wait();

    CommitResult result;
    TxnDecision decision;
    if (votes->anyFailure) {
        result = CommitResult::Failed;
        decision = TxnDecision::Abort;
        // Under an active fault the lost RPC is (almost certainly) the
        // fault's doing: report Timeout so retry policies and metrics
        // can tell infrastructure chaos from a dead shard.
        txn.abortReason_ = (chaos_ != nullptr && chaos_->anyActive())
                               ? semel::AbortReason::Timeout
                               : semel::AbortReason::PrepareFailed;
    } else if (votes->anyAbort) {
        result = CommitResult::Aborted;
        decision = TxnDecision::Abort;
        txn.abortReason_ = votes->reason != semel::AbortReason::None
                               ? votes->reason
                               : semel::AbortReason::PrepareFailed;
    } else {
        result = CommitResult::Committed;
        decision = TxnDecision::Commit;
    }

    // Read-only transactions prepared nothing: no decision phase.
    if (!read_only) {
        // Report to the application now; notify participants
        // asynchronously (section 4.2).
        for (const auto &shard : participants) {
            MilanaServer *primary = milanaPrimaryFor(shard);
            sim::spawn([](MilanaClient *self, MilanaServer *primary,
                          semel::DecisionRequest request)
                           -> sim::Task<void> {
                (void)co_await
                    self->net_.callTyped<semel::DecisionResponse>(
                        self->nodeId(), primary->nodeId(),
                        primary->handleDecision(request));
            }(this, primary,
              semel::DecisionRequest{txn.id_, decision}));
        }
    }
    co_return result;
}

sim::Task<CommitResult>
MilanaClient::decideCommit(Transaction &txn)
{
    if (txn.readOnly() && tcfg_.localValidation)
        co_return co_await commitReadOnlyLocal(txn);
    if (txn.readOnly()) {
        // Remote validation of the read-only snapshot (w/o LV). The
        // client-side inconsistency evidence is decisive either way.
        if (txn.snapshotViolated_) {
            txn.abortReason_ = semel::AbortReason::SnapshotViolated;
            co_return CommitResult::Aborted;
        }
        co_return co_await twoPhaseCommit(txn, true);
    }
    co_return co_await twoPhaseCommit(txn, false);
}

sim::Task<CommitResult>
MilanaClient::commitTransaction(Transaction &txn)
{
    if (!txn.active_)
        PANIC("commit on inactive transaction");
    txn.active_ = false;

    common::TraceContextScope ctx(common::TraceContext{txn.traceId_, 0});
    common::ScopedSpan span(trace_, "milana.txn.commit",
                            txn.readOnly() ? "ro" : "rw");
    // The commit end's arg carries ts_begin so offline tools and the
    // invariant monitor can check committed reads against the snapshot.
    span.setArg(txn.begin_.timestamp);

    const CommitResult result = co_await decideCommit(txn);

    switch (result) {
      case CommitResult::Committed:
        stats_.counter("txn.committed").inc();
        span.setTag("committed");
        span.setArg2(txn.commitVersion_.timestamp != 0
                         ? txn.commitVersion_.timestamp
                         : txn.begin_.timestamp);
        if (tcfg_.interTxnCacheCapacity > 0) {
            // Committed writes refresh the cache at the new version.
            for (const auto &[key, value] : txn.writeSet_) {
                Transaction::CachedRead fresh;
                fresh.found = true;
                fresh.value = value;
                fresh.observed = txn.commitVersion_;
                interTxnCache_[key] = fresh;
            }
        }
        break;
      case CommitResult::Aborted:
        stats_.counter("txn.aborted").inc();
        stats_.counter(std::string("txn.abort.") +
                       semel::abortReasonName(txn.abortReason_))
            .inc();
        span.setTag(semel::abortReasonName(txn.abortReason_));
        // Cached reads may have caused the conflict: drop them so the
        // retry reads fresh data.
        for (const auto &[key, cached] : txn.readSet_)
            interTxnCache_.erase(key);
        break;
      case CommitResult::Failed:
        stats_.counter("txn.failed").inc();
        span.setTag("failed");
        break;
    }
    // Chaos attribution: a transaction that died while a fault was
    // active carries the fault's name in its trace, so
    // trace-report --txn=<id> answers "why did this txn die?".
    if (result != CommitResult::Committed && chaos_ != nullptr &&
        chaos_->anyActive()) {
        stats_.counter("txn.fault_active_aborts").inc();
        trace_.instant("milana.txn.fault_active",
                       chaos_->activeFaultName());
    }
    // Watermark input: the timestamp of the latest *decided*
    // transaction (section 4.4).
    noteAcked(clock_.localNow());
    co_return result;
}

} // namespace milana
