/**
 * @file
 * Centiman-style local validation baseline (paper section 5.3,
 * following Ding et al., SoCC'15).
 *
 * Centiman lets a client validate a read-only transaction locally only
 * when the whole snapshot it read lies *below the watermark* — the
 * timestamp below which all transactions are known to be fully
 * processed. The watermark is disseminated lazily (the paper's
 * experiment: every 1,000 transactions), so under contention hot keys
 * carry versions younger than the watermark and the local check fails,
 * forcing a remote validation round trip to the shard validators.
 *
 * MILANA's multi-version storage lets it validate *every* read-only
 * transaction locally instead (the prepared-flag argument of section
 * 4.3), which is exactly the gap Figure 9 measures: equal throughput
 * at low contention, ~20% MILANA advantage at high contention, and a
 * Centiman local-validation success rate falling from ~89% (alpha 0.4)
 * to ~25% (alpha 0.8).
 *
 * The validators are the shard primaries (one per shard, co-located
 * with storage, unreplicated), matching the experimental setup.
 */

#ifndef MILANA_CENTIMAN_HH
#define MILANA_CENTIMAN_HH

#include <map>
#include <set>

#include "milana/client.hh"

namespace milana {

/**
 * The shared watermark service: tracks each client's latest decided
 * timestamp, but publishes updates only every `disseminateEvery`
 * decisions per client — the dissemination lag that makes the local
 * check fail under contention.
 */
class CentimanSystem
{
  public:
    explicit CentimanSystem(std::uint32_t disseminate_every = 1000)
        : every_(disseminate_every)
    {
    }

    void registerClient(common::ClientId client);

    /** A client decided a transaction at local time @p ts. */
    void reportDecided(common::ClientId client, common::Time ts);

    /** The currently published watermark (0 until every registered
     *  client has published at least once). */
    common::Time watermark() const;

  private:
    std::uint32_t every_;
    std::set<common::ClientId> expected_;
    std::map<common::ClientId, common::Time> published_;
    std::map<common::ClientId, std::uint32_t> sinceDissemination_;
    std::map<common::ClientId, common::Time> latest_;
};

class CentimanClient : public MilanaClient
{
  public:
    CentimanClient(sim::Simulator &sim, net::Network &net, NodeId node,
                   ClientId client_id, clocksync::Clock &clock,
                   const semel::Master &master,
                   const semel::Directory &directory,
                   const semel::Client::Config &config,
                   const TxnConfig &txn_config, CentimanSystem &system);

  protected:
    sim::Task<CommitResult> decideCommit(Transaction &txn) override;

  private:
    CentimanSystem &system_;
};

} // namespace milana

#endif // MILANA_CENTIMAN_HH
