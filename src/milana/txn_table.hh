/**
 * @file
 * The MILANA primary's transaction table and per-key concurrency-
 * control state (paper section 4.1).
 *
 * The transaction table records transactions that have prepared but
 * whose outcome has not yet been applied; it is replicated to the
 * backups as it changes and rebuilt by a new primary on failover
 * (Algorithm 2).
 *
 * Per active key the primary keeps, in DRAM only:
 *   - ts_latestRead:      newest begin-timestamp that read the key;
 *   - ts_prepared:        the (single) prepared-but-undecided write;
 *   - ts_latestCommitted: newest committed write stamp.
 * ts_latestRead is not recoverable after failover; leases make that
 * safe (section 4.5).
 */

#ifndef MILANA_TXN_TABLE_HH
#define MILANA_TXN_TABLE_HH

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "semel/messages.hh"

namespace milana {

using common::Key;
using common::ShardId;
using common::Time;
using common::Version;
using semel::TxnId;
using semel::TxnStatus;
using semel::WriteSetEntry;

/** One transaction known to a primary. */
struct TxnEntry
{
    TxnId txn;
    Version commitVersion;
    std::vector<WriteSetEntry> writeSet;
    std::vector<ShardId> participants;
    TxnStatus status = TxnStatus::Prepared;
    /** TrueTime when this primary prepared it (for CTP timeouts). */
    Time preparedAt = 0;
};

class TxnTable
{
  public:
    void insert(TxnEntry entry);

    TxnEntry *find(const TxnId &txn);
    const TxnEntry *find(const TxnId &txn) const;

    /** Remove a decided transaction, remembering its outcome. */
    void resolve(const TxnId &txn, TxnStatus outcome);

    /** Status of a transaction: live entry, remembered outcome, or
     *  Unknown. Feeds the CTP status queries. */
    TxnStatus statusOf(const TxnId &txn) const;

    /** Prepared transactions older than the given deadline. */
    std::vector<TxnId> preparedBefore(Time deadline) const;

    std::size_t size() const { return entries_.size(); }

    const std::map<TxnId, TxnEntry> &entries() const { return entries_; }

  private:
    std::map<TxnId, TxnEntry> entries_;
    /** Outcomes of resolved transactions (for idempotent decisions
     *  and CTP queries). */
    std::map<TxnId, TxnStatus> outcomes_;
};

/** Per-key OCC state (DRAM only). */
struct KeyState
{
    Version latestRead;
    Version latestCommitted;
    /** The prepared-but-undecided write, if any. */
    std::optional<Version> prepared;
    /** Owner of the prepared mark. */
    TxnId preparedBy;
};

class KeyStateTable
{
  public:
    /** State for a key, creating a default entry on first touch. */
    KeyState &state(Key key) { return states_[key]; }

    const KeyState *
    find(Key key) const
    {
        auto it = states_.find(key);
        return it == states_.end() ? nullptr : &it->second;
    }

    void clear() { states_.clear(); }

    /** Pre-size for a bulk load of @p keys keys (zero rehashes). */
    void reserve(std::size_t keys) { states_.reserve(keys); }

  private:
    std::unordered_map<Key, KeyState> states_;
};

} // namespace milana

#endif // MILANA_TXN_TABLE_HH
