#include "milana/server.hh"

#include <algorithm>
#include <memory>

#include "common/chaos.hh"
#include "common/logging.hh"
#include "sim/future.hh"
#include "sim/sync.hh"

namespace milana {

using common::kMillisecond;

MilanaServer::MilanaServer(sim::Simulator &sim, net::Network &net,
                           NodeId id, common::ShardId shard,
                           ftl::KvBackend &backend,
                           clocksync::Clock &clock,
                           const semel::Server::Config &config,
                           const MilanaConfig &milana_config,
                           semel::Master &master,
                           semel::Directory &directory)
    : semel::Server(sim, net, id, shard, backend, config),
      mcfg_(milana_config),
      clock_(clock),
      master_(master),
      directory_(directory)
{
}

void
MilanaServer::reserveKeys(std::uint64_t keys)
{
    semel::Server::reserveKeys(keys);
    keyStateReady_.reserve(keys);
    keys_.reserve(keys);
}

void
MilanaServer::start()
{
    started_ = true;
    if (mcfg_.enableLeases && !backups_.empty())
        sim::spawn(leaseLoop());
    sim::spawn(ctpScanLoop());
}

sim::Task<void>
MilanaServer::loadKey(Key key, Value value, Version version)
{
    (void)co_await backend_.put(key, value, version);
    noteCommitted(key, version);
    auto &ks = keys_.state(key);
    ks.latestCommitted = std::max(ks.latestCommitted, version);
    keyStateReady_.insert(key);
}

sim::Task<void>
MilanaServer::ensureKeyState(Key key)
{
    if (keyStateReady_.contains(key))
        co_return;
    // Rebuild ts_latestCommitted from the version stamps in storage
    // (section 4.5); ts_latestRead is unrecoverable — the lease wait
    // already covered it.
    const ftl::GetResult latest = co_await backend_.getLatest(key);
    auto &ks = keys_.state(key);
    if (latest.found)
        ks.latestCommitted = std::max(ks.latestCommitted, latest.version);
    keyStateReady_.insert(key);
}

// ------------------------------------------------------------- reads

sim::Task<GetResponse>
MilanaServer::handleGet(GetRequest request)
{
    stats_.counter("milana.gets").inc();
    common::ScopedSpan span(trace_, "milana.server.get");
    co_await chargeCpu();
    GetResponse resp;

    // Lease discipline: serve a read at timestamp `at` only while
    // holding a lease covering it, so a future primary can bound our
    // ts_latestRead values.
    const Time deadline = sim_.now() + common::kSecond;
    while (recovering_ ||
           (mcfg_.enableLeases && !backups_.empty() &&
            request.at.timestamp > leaseUntil_)) {
        if (sim_.now() > deadline || sim_.stopRequested()) {
            resp.unavailable = true;
            stats_.counter("milana.get_unavailable").inc();
            span.setTag("unavailable");
            co_return resp;
        }
        if (!recovering_)
            (void)co_await renewLease();
        else
            co_await sim::sleepFor(sim_, kMillisecond);
    }

    co_await ensureKeyState(request.key);

    // Synchronous with the flag computation and the backend's chain
    // lookup: record the read and capture the prepared flag BEFORE the
    // storage access, so no prepare with stamp <= at can slip between
    // the snapshot and the flag (see section 4.3's argument).
    auto &ks = keys_.state(request.key);
    ks.latestRead = std::max(ks.latestRead, request.at);
    const bool prepared_leq =
        ks.prepared.has_value() && *ks.prepared <= request.at;

    const ftl::GetResult r =
        co_await backend_.get(request.key, request.at);
    resp.found = r.found;
    resp.version = r.version;
    resp.value = r.value;
    resp.preparedLeqAt = prepared_leq;
    co_return resp;
}

// -------------------------------------------------------- validation

semel::AbortReason
MilanaServer::validate(const PrepareRequest &request)
{
    using semel::AbortReason;
    // Algorithm 1, verbatim.
    for (const auto &read : request.readSet) {
        const auto &ks = keys_.state(read.key);
        if (ks.prepared.has_value()) {
            stats_.counter("milana.abort_read_prepared").inc();
            return AbortReason::ReadPrepared;
        }
        if (ks.latestCommitted != read.observed) {
            stats_.counter("milana.abort_read_stale").inc();
            return AbortReason::ReadStale;
        }
    }
    const Version new_version = request.commitVersion;
    for (const auto &write : request.writeSet) {
        const auto &ks = keys_.state(write.key);
        if (ks.prepared.has_value()) {
            stats_.counter("milana.abort_write_prepared").inc();
            return AbortReason::WritePrepared;
        }
        if (ks.latestRead >= new_version) {
            stats_.counter("milana.abort_write_read_conflict").inc();
            return AbortReason::WriteReadConflict;
        }
        if (ks.latestCommitted >= new_version) {
            stats_.counter("milana.abort_write_stale").inc();
            return AbortReason::WriteStale;
        }
    }
    return AbortReason::None;
}

semel::AbortReason
MilanaServer::classifyAbort(semel::AbortReason reason)
{
    // Only the checks that compare timestamps are re-labelled: a
    // prepared-key conflict is a real lock conflict whatever the
    // clocks are doing.
    if (chaos_ == nullptr || !chaos_->clockFaultActive())
        return reason;
    switch (reason) {
      case semel::AbortReason::ReadStale:
      case semel::AbortReason::WriteStale:
      case semel::AbortReason::WriteReadConflict:
        stats_.counter("milana.abort_clock_suspect").inc();
        return semel::AbortReason::ClockSuspect;
      default:
        return reason;
    }
}

sim::Task<PrepareResponse>
MilanaServer::handlePrepare(PrepareRequest request)
{
    stats_.counter("milana.prepares").inc();
    common::ScopedSpan span(trace_, "milana.server.prepare");
    span.setArg(static_cast<std::int64_t>(request.writeSet.size()));
    co_await chargeCpu();
    PrepareResponse resp;

    if (recovering_) {
        resp.vote = Vote::Abort;
        resp.reason = semel::AbortReason::PrepareFailed;
        span.setTag("recovering");
        co_return resp;
    }

    // Idempotent retransmissions.
    switch (txns_.statusOf(request.txn)) {
      case semel::TxnStatus::Prepared:
      case semel::TxnStatus::Committed:
        resp.vote = Vote::Commit;
        span.setTag("duplicate");
        co_return resp;
      case semel::TxnStatus::Aborted:
        resp.vote = Vote::Abort;
        span.setTag("duplicate");
        co_return resp;
      case semel::TxnStatus::Unknown:
        break;
    }

    for (const auto &read : request.readSet)
        co_await ensureKeyState(read.key);
    for (const auto &write : request.writeSet)
        co_await ensureKeyState(write.key);

    if (request.writeSet.empty()) {
        // Remote validation of a read-only transaction (used when
        // client-local validation is disabled, Figure 8's "w/o LV"):
        // the snapshot at ts_begin is consistent iff each observed
        // version is still the youngest <= ts_begin and no prepared
        // write <= ts_begin exists. Nothing prepares, nothing
        // replicates — validate and vote.
        resp.vote = Vote::Commit;
        for (const auto &read : request.readSet) {
            const auto &ks = keys_.state(read.key);
            if (ks.prepared.has_value() &&
                *ks.prepared <= request.beginVersion) {
                resp.vote = Vote::Abort;
                resp.reason = semel::AbortReason::ReadPrepared;
                break;
            }
            const auto snapshot =
                backend_.versionAt(read.key, request.beginVersion);
            const Version expect = snapshot.has_value()
                                       ? *snapshot
                                       : ks.latestCommitted;
            if (expect != read.observed) {
                resp.vote = Vote::Abort;
                resp.reason =
                    classifyAbort(semel::AbortReason::ReadStale);
                break;
            }
        }
        if (resp.vote == Vote::Commit) {
            // The paper's remote validation costs the full prepare
            // path: the primary syncs with f backups before voting
            // (section 4.3 counts this as the second round trip that
            // local validation eliminates).
            co_await barrierBackups();
        }
        stats_.counter(resp.vote == Vote::Commit
                           ? "milana.votes_commit"
                           : "milana.votes_abort")
            .inc();
        span.setTag(resp.vote == Vote::Commit
                        ? "commit"
                        : semel::abortReasonName(resp.reason));
        co_return resp;
    }

    const semel::AbortReason reason = classifyAbort(validate(request));
    if (reason != semel::AbortReason::None) {
        resp.vote = Vote::Abort;
        resp.reason = reason;
        stats_.counter("milana.votes_abort").inc();
        span.setTag(semel::abortReasonName(reason));
        co_return resp;
    }
    resp.vote = Vote::Commit;

    // Mark the write set prepared — synchronously with validation, so
    // no concurrent prepare can interleave.
    for (const auto &write : request.writeSet) {
        auto &ks = keys_.state(write.key);
        ks.prepared = request.commitVersion;
        ks.preparedBy = request.txn;
    }

    TxnEntry entry;
    entry.txn = request.txn;
    entry.commitVersion = request.commitVersion;
    entry.writeSet = request.writeSet;
    entry.participants = request.participants;
    entry.status = semel::TxnStatus::Prepared;
    entry.preparedAt = sim_.now();
    txns_.insert(std::move(entry));

    // Persist the prepare on a majority before voting: replicate the
    // record (with the write set and shard list) and wait for f acks.
    ReplicateTxnRecord record;
    record.kind = TxnRecordKind::Prepared;
    record.txn = request.txn;
    record.commitVersion = request.commitVersion;
    record.writeSet = request.writeSet;
    record.participants = request.participants;
    co_await replicateTxnRecord(std::move(record), true);

    stats_.counter("milana.votes_commit").inc();
    span.setTag("commit");
    co_return resp;
}

// ---------------------------------------------------------- decision

sim::Task<void>
MilanaServer::applyCommit(TxnEntry &entry, bool late)
{
    // Apply buffered writes in parallel; each key's prepared mark is
    // cleared only after its write is durable, so read-only snapshots
    // taken in the window still see the prepared flag (section 4.3).
    auto done = std::make_shared<sim::Quorum>(
        sim_, static_cast<std::uint32_t>(entry.writeSet.size()));
    for (const auto &write : entry.writeSet) {
        sim::spawn([](MilanaServer *self, Key key, Value value,
                      Version version, TxnId txn, bool late,
                      std::shared_ptr<sim::Quorum> q) -> sim::Task<void> {
            (void)co_await self->backend_.put(key, value, version);
            auto &ks = self->keys_.state(key);
            ks.latestCommitted = std::max(ks.latestCommitted, version);
            if (ks.prepared.has_value() && ks.preparedBy == txn)
                ks.prepared.reset();
            self->noteCommitted(key, version);
            // Per-key commit record: feeds the invariant monitor's
            // commit-timestamp monotonicity check. Tag "late" when the
            // decision was a CTP / recovery re-application, which can
            // legally land after newer versions committed elsewhere.
            self->trace_.instant("milana.key.commit",
                                 late ? "late" : std::string_view{},
                                 static_cast<std::int64_t>(key),
                                 version.timestamp);
            q->arrive();
        }(this, write.key, write.value, entry.commitVersion, entry.txn,
          late, done));
    }
    if (!entry.writeSet.empty())
        co_await done->wait();
    stats_.counter("milana.committed").inc();
}

void
MilanaServer::applyAbort(TxnEntry &entry)
{
    for (const auto &write : entry.writeSet) {
        auto &ks = keys_.state(write.key);
        if (ks.prepared.has_value() && ks.preparedBy == entry.txn)
            ks.prepared.reset();
    }
    stats_.counter("milana.aborted").inc();
}

sim::Task<DecisionResponse>
MilanaServer::handleDecision(DecisionRequest request)
{
    stats_.counter("milana.decisions").inc();
    common::ScopedSpan span(trace_, "milana.server.decision",
                            request.decision == TxnDecision::Commit
                                ? "commit"
                                : "abort");
    DecisionResponse resp;
    resp.ok = true;

    TxnEntry *entry = txns_.find(request.txn);
    if (entry == nullptr || entry->status != semel::TxnStatus::Prepared)
        co_return resp; // duplicate or already resolved: idempotent

    // Claim the entry synchronously BEFORE the apply suspends: the
    // client's decision and the CTP backup coordinator can race here,
    // and the loser must take the idempotent path above rather than
    // resolve (erase) the entry out from under the winner.
    entry->status = request.decision == TxnDecision::Commit
                        ? semel::TxnStatus::Committed
                        : semel::TxnStatus::Aborted;

    ReplicateTxnRecord record;
    record.txn = request.txn;
    record.commitVersion = entry->commitVersion;
    record.participants = entry->participants;

    if (request.decision == TxnDecision::Commit) {
        record.kind = TxnRecordKind::Committed;
        record.writeSet = entry->writeSet;
        co_await applyCommit(*entry, request.late);
        txns_.resolve(request.txn, semel::TxnStatus::Committed);
    } else {
        record.kind = TxnRecordKind::Aborted;
        applyAbort(*entry);
        txns_.resolve(request.txn, semel::TxnStatus::Aborted);
    }
    co_await replicateTxnRecord(std::move(record), true);
    co_return resp;
}

sim::Task<TxnStatusResponse>
MilanaServer::handleTxnStatus(TxnStatusRequest request)
{
    TxnStatusResponse resp;
    resp.status = txns_.statusOf(request.txn);
    co_return resp;
}

// --------------------------------------------------------- backups

sim::Task<void>
MilanaServer::replicateTxnRecord(ReplicateTxnRecord record,
                                 bool wait_quorum)
{
    // Our own durable log entry first (the primary is a replica too).
    txnLog_.push_back(record);
    if (backups_.empty())
        co_return;

    const char *kind = record.kind == TxnRecordKind::Prepared
                           ? "prepared"
                           : record.kind == TxnRecordKind::Committed
                                 ? "committed"
                                 : "aborted";
    common::ScopedSpan span(trace_, "milana.repl.txn_record", kind);
    const Time started = sim_.now();

    const auto needed = std::min<std::uint32_t>(
        config_.backupAcksNeeded,
        static_cast<std::uint32_t>(backups_.size()));
    auto quorum = std::make_shared<sim::Quorum>(sim_, needed);
    for (semel::Server *backup : backups_) {
        auto *mb = dynamic_cast<MilanaServer *>(backup);
        if (mb == nullptr)
            PANIC("milana primary wired to a non-milana backup");
        sim::spawn([](MilanaServer *self, MilanaServer *backup,
                      ReplicateTxnRecord rec,
                      std::shared_ptr<sim::Quorum> q) -> sim::Task<void> {
            auto ok = co_await self->net_.callTyped<bool>(
                self->id_, backup->nodeId(),
                backup->handleReplicateTxnRecord(rec));
            if (ok.has_value() && *ok)
                q->arrive();
        }(this, mb, record, quorum));
    }
    if (wait_quorum) {
        co_await quorum->wait();
        stats_.histogram("milana.repl_wait").record(sim_.now() - started);
    }
}

sim::Task<bool>
MilanaServer::handleBarrier()
{
    co_return true;
}

sim::Task<void>
MilanaServer::barrierBackups()
{
    if (backups_.empty())
        co_return;
    const auto needed = std::min<std::uint32_t>(
        config_.backupAcksNeeded,
        static_cast<std::uint32_t>(backups_.size()));
    auto quorum = std::make_shared<sim::Quorum>(sim_, needed);
    for (semel::Server *backup : backups_) {
        auto *mb = dynamic_cast<MilanaServer *>(backup);
        sim::spawn([](MilanaServer *self, MilanaServer *backup,
                      std::shared_ptr<sim::Quorum> q) -> sim::Task<void> {
            auto ok = co_await self->net_.callTyped<bool>(
                self->id_, backup->nodeId(), backup->handleBarrier());
            if (ok.has_value())
                q->arrive();
        }(this, mb, quorum));
    }
    co_await quorum->wait();
}

sim::Task<bool>
MilanaServer::handleReplicateTxnRecord(ReplicateTxnRecord record)
{
    stats_.counter("milana.replica_records").inc();
    // Log first (models the persistent-memory log write), then apply —
    // records may arrive in any order (Figure 5).
    txnLog_.push_back(record);

    switch (record.kind) {
      case TxnRecordKind::Prepared: {
        if (txns_.statusOf(record.txn) == semel::TxnStatus::Unknown) {
            TxnEntry entry;
            entry.txn = record.txn;
            entry.commitVersion = record.commitVersion;
            entry.writeSet = record.writeSet;
            entry.participants = record.participants;
            entry.status = semel::TxnStatus::Prepared;
            entry.preparedAt = sim_.now();
            txns_.insert(std::move(entry));
        }
        break;
      }
      case TxnRecordKind::Committed: {
        txns_.resolve(record.txn, semel::TxnStatus::Committed);
        // Apply the committed writes to local storage, asynchronously:
        // the ack only promises the log entry.
        for (const auto &write : record.writeSet) {
            sim::spawn([](MilanaServer *self, Key key, Value value,
                          Version version) -> sim::Task<void> {
                (void)co_await self->backend_.put(key, value, version);
                self->noteCommitted(key, version);
            }(this, write.key, write.value, record.commitVersion));
        }
        break;
      }
      case TxnRecordKind::Aborted:
        txns_.resolve(record.txn, semel::TxnStatus::Aborted);
        break;
    }
    co_return true;
}

// ------------------------------------------------------------ leases

sim::Task<Time>
MilanaServer::handleLeaseGrant(Time until)
{
    maxLeaseGranted_ = std::max(maxLeaseGranted_, until);
    co_return maxLeaseGranted_;
}

sim::Task<bool>
MilanaServer::renewLease()
{
    const Time until = clock_.localNow() + mcfg_.leaseDuration;
    const auto needed = std::min<std::uint32_t>(
        config_.backupAcksNeeded,
        static_cast<std::uint32_t>(backups_.size()));
    if (needed == 0) {
        leaseUntil_ = until;
        co_return true;
    }
    auto quorum = std::make_shared<sim::Quorum>(sim_, needed);
    for (semel::Server *backup : backups_) {
        auto *mb = dynamic_cast<MilanaServer *>(backup);
        sim::spawn([](MilanaServer *self, MilanaServer *backup,
                      Time until,
                      std::shared_ptr<sim::Quorum> q) -> sim::Task<void> {
            auto ok = co_await self->net_.callTyped<Time>(
                self->id_, backup->nodeId(),
                backup->handleLeaseGrant(until));
            if (ok.has_value())
                q->arrive();
        }(this, mb, until, quorum));
    }
    // Bounded wait: with a majority of backups down, renewal fails.
    sim::Promise<bool> done(sim_);
    auto fut = done.future();
    sim::spawn([](std::shared_ptr<sim::Quorum> q,
                  sim::Promise<bool> p) -> sim::Task<void> {
        co_await q->wait();
        p.set(true);
    }(quorum, done));
    auto granted = co_await fut.withTimeout(20 * kMillisecond);
    if (granted.has_value()) {
        leaseUntil_ = std::max(leaseUntil_, until);
        stats_.counter("milana.lease_renewals").inc();
        co_return true;
    }
    co_return false;
}

sim::Task<void>
MilanaServer::leaseLoop()
{
    while (!sim_.stopRequested()) {
        if (!recovering_)
            (void)co_await renewLease();
        co_await sim::sleepFor(sim_, mcfg_.leaseRenewPeriod);
    }
}

// --------------------------------------------------------------- CTP

sim::Task<void>
MilanaServer::resolveOrphan(TxnId txn)
{
    TxnEntry *entry = txns_.find(txn);
    if (entry == nullptr || entry->status != semel::TxnStatus::Prepared)
        co_return;
    stats_.counter("milana.ctp_invocations").inc();
    // Copy before deciding: handleDecision resolves (erases) the entry.
    const std::vector<common::ShardId> participants = entry->participants;

    bool saw_commit = false;
    bool saw_abort_or_unknown = false;
    bool undeterminable = false;

    for (const common::ShardId participant : participants) {
        if (participant == shard_)
            continue;
        auto *peer = dynamic_cast<MilanaServer *>(
            directory_.at(master_.primaryOf(participant)));
        if (peer == nullptr)
            PANIC("participant shard " << participant << " has no server");
        TxnStatusRequest req{txn};
        auto resp = co_await net_.callTyped<TxnStatusResponse>(
            id_, peer->nodeId(), peer->handleTxnStatus(req));
        if (!resp.has_value()) {
            undeterminable = true; // peer unreachable; stay blocked
            continue;
        }
        switch (resp->status) {
          case semel::TxnStatus::Committed:
            saw_commit = true;
            break;
          case semel::TxnStatus::Aborted:
          case semel::TxnStatus::Unknown:
            // Rule 2/3: a participant that never prepared (or already
            // aborted) means the coordinator cannot have committed.
            saw_abort_or_unknown = true;
            break;
          case semel::TxnStatus::Prepared:
            break;
        }
    }

    TxnDecision decision = TxnDecision::Unknown;
    if (saw_commit) {
        decision = TxnDecision::Commit; // rule 1
    } else if (saw_abort_or_unknown) {
        decision = TxnDecision::Abort; // rules 2 and 3
    } else if (!undeterminable) {
        decision = TxnDecision::Commit; // rule 4: all prepared
    } else {
        co_return; // cannot determine yet; retry at the next scan
    }

    stats_.counter(decision == TxnDecision::Commit
                       ? "milana.ctp_commits"
                       : "milana.ctp_aborts")
        .inc();
    DecisionRequest req;
    req.txn = txn;
    req.decision = decision;
    req.late = true;
    (void)co_await handleDecision(req);

    // As backup coordinator, propagate the outcome to the other
    // participants so their prepared marks clear too.
    for (const common::ShardId participant : participants) {
        if (participant == shard_)
            continue;
        auto *peer = dynamic_cast<MilanaServer *>(
            directory_.at(master_.primaryOf(participant)));
        if (peer == nullptr)
            continue;
        (void)co_await net_.callTyped<DecisionResponse>(
            id_, peer->nodeId(), peer->handleDecision(req));
    }
}

sim::Task<void>
MilanaServer::ctpScanLoop()
{
    while (!sim_.stopRequested()) {
        co_await sim::sleepFor(sim_, mcfg_.ctpScanPeriod);
        if (recovering_)
            continue;
        const Time deadline = sim_.now() - mcfg_.ctpTimeout;
        for (const TxnId &txn : txns_.preparedBefore(deadline))
            co_await resolveOrphan(txn);
    }
}

// ---------------------------------------------------------- recovery

sim::Task<MilanaServer::RecoveryPull>
MilanaServer::handleRecoveryPull()
{
    RecoveryPull pull;
    pull.txnLog = txnLog_;
    pull.maxLeaseGranted = maxLeaseGranted_;
    co_return pull;
}

sim::Task<void>
MilanaServer::recoverAsPrimary()
{
    recovering_ = true;
    stats_.counter("milana.recoveries").inc();

    // Collect logs from every reachable replica of the shard.
    std::vector<ReplicateTxnRecord> merged = txnLog_;
    Time max_lease = maxLeaseGranted_;
    for (const NodeId node : master_.replicasOf(shard_)) {
        if (node == id_)
            continue;
        auto *peer = dynamic_cast<MilanaServer *>(directory_.at(node));
        if (peer == nullptr)
            continue;
        auto pull = co_await net_.callTyped<RecoveryPull>(
            id_, node, peer->handleRecoveryPull());
        if (!pull.has_value())
            continue; // crashed replica
        merged.insert(merged.end(), pull->txnLog.begin(),
                      pull->txnLog.end());
        max_lease = std::max(max_lease, pull->maxLeaseGranted);
    }

    // Algorithm 2: fold the records into a fresh transaction table.
    // Outcomes dominate prepares; any single record of an outcome is
    // authoritative (it could only exist if the coordinator decided).
    std::map<TxnId, ReplicateTxnRecord> prepares;
    std::map<TxnId, ReplicateTxnRecord> outcomes;
    for (const auto &rec : merged) {
        if (rec.kind == TxnRecordKind::Prepared)
            prepares.emplace(rec.txn, rec);
        else
            outcomes.emplace(rec.txn, rec);
    }

    keys_.clear();
    keyStateReady_.clear();

    for (const auto &[txn, rec] : outcomes) {
        if (rec.kind == TxnRecordKind::Committed) {
            // Re-apply: backend puts are idempotent per version.
            for (const auto &write : rec.writeSet) {
                (void)co_await backend_.put(write.key, write.value,
                                            rec.commitVersion);
                noteCommitted(write.key, rec.commitVersion);
            }
            txns_.resolve(txn, semel::TxnStatus::Committed);
        } else {
            txns_.resolve(txn, semel::TxnStatus::Aborted);
        }
    }

    for (const auto &[txn, rec] : prepares) {
        if (outcomes.count(txn))
            continue; // already decided above
        if (txns_.statusOf(txn) != semel::TxnStatus::Unknown)
            continue;
        TxnEntry entry;
        entry.txn = txn;
        entry.commitVersion = rec.commitVersion;
        entry.writeSet = rec.writeSet;
        entry.participants = rec.participants;
        entry.status = semel::TxnStatus::Prepared;
        entry.preparedAt = sim_.now();
        txns_.insert(entry);

        if (rec.participants.size() <= 1) {
            // Single-shard prepared == committed (Algorithm 2).
            DecisionRequest req;
            req.txn = txn;
            req.decision = TxnDecision::Commit;
            req.late = true;
            (void)co_await handleDecision(req);
        } else {
            // Multi-shard: the CTP scanner will resolve it against the
            // other participants once service resumes. Re-instate the
            // prepared marks so conflicting transactions abort until
            // then.
            for (const auto &write : rec.writeSet) {
                auto &ks = keys_.state(write.key);
                ks.prepared = rec.commitVersion;
                ks.preparedBy = txn;
            }
        }
    }

    // Propagate the merged table to the backups (bring them level).
    for (const auto &rec : merged)
        co_await replicateTxnRecord(rec, false);

    // Wait out the old primary's lease so no read it served can be
    // contradicted (its ts_latestRead values are lost with it).
    if (mcfg_.enableLeases) {
        while (clock_.localNow() <=
               max_lease + 10 * kMillisecond) {
            co_await sim::sleepFor(sim_, kMillisecond);
        }
    }

    recovering_ = false;
    if (!started_)
        start();
}

} // namespace milana
