/**
 * @file
 * MILANA client library (paper sections 4.1-4.3): executes each
 * transaction entirely on one client, which assigns the begin and
 * commit timestamps from its PTP/NTP clock and acts as the 2PC
 * coordinator.
 *
 * Execution model (after Thor):
 *  - reads go to the shard primary at ts_begin and are cached; repeat
 *    reads and reads of buffered writes are served locally;
 *  - writes are buffered and pushed to the primaries only at commit;
 *  - read-only transactions validate *locally*: they commit iff every
 *    read came back from a consistent snapshot — version <= ts_begin
 *    and no prepared version <= ts_begin — eliminating both commit
 *    round trips (client->primary and primary->backups);
 *  - read-write transactions run two-phase commit across the
 *    participant primaries; the outcome is reported to the
 *    application immediately and the decision is propagated to the
 *    participants asynchronously.
 */

#ifndef MILANA_CLIENT_HH
#define MILANA_CLIENT_HH

#include <map>
#include <optional>

#include "milana/server.hh"
#include "semel/client.hh"

namespace milana {

using common::ClientId;
using semel::GetResponse;
using semel::ReadSetEntry;
using semel::TxnId;
using semel::Value;

/** Outcome of commitTransaction(). */
enum class CommitResult : std::uint8_t
{
    Committed,
    /** Validation conflict: retry with fresh timestamps. */
    Aborted,
    /** Infrastructure failure (unreachable primaries). */
    Failed,
};

/** Result of a transactional read. */
struct TxnRead
{
    /** False if the read could not be served (RPC failure). */
    bool ok = false;
    bool found = false;
    Value value;
};

/**
 * Execution hint given at begin (section 4.3): a transaction declared
 * read-write in advance may use relaxed read paths (nearest-replica
 * reads, section 4.6; aggressive client caching) because it will
 * validate remotely at commit regardless.
 */
enum class TxnHint : std::uint8_t
{
    Default,
    ReadWrite,
};

/** Client-side transaction context. */
class Transaction
{
  public:
    bool active() const { return active_; }
    bool readOnly() const
    {
        return writeSet_.empty() && hint_ == TxnHint::Default;
    }
    TxnHint hint() const { return hint_; }
    common::Version begin() const { return begin_; }
    const TxnId &id() const { return id_; }
    /** Trace id grouping every span of this transaction (0 when
     *  tracing is disabled); printed by trace-report --txn=<id>. */
    std::uint64_t traceId() const { return traceId_; }
    /** Why the last commit attempt aborted (None when committed). */
    semel::AbortReason abortReason() const { return abortReason_; }

  private:
    friend class MilanaClient;
    friend class CentimanClient;

    struct CachedRead
    {
        bool found = false;
        common::Version observed;
        Value value;
    };

    TxnId id_;
    common::Version begin_;
    std::uint64_t traceId_ = 0;
    std::map<common::Key, CachedRead> readSet_;
    std::map<common::Key, Value> writeSet_;
    /** A read returned a prepared-flag or a version newer than
     *  ts_begin: the snapshot is not consistent. */
    bool snapshotViolated_ = false;
    bool active_ = false;
    TxnHint hint_ = TxnHint::Default;
    semel::AbortReason abortReason_ = semel::AbortReason::None;
    /** Set by twoPhaseCommit; the stamp committed writes carry. */
    common::Version commitVersion_;
};

class MilanaClient : public semel::Client
{
  public:
    struct TxnConfig
    {
        /** Client-local validation of read-only transactions
         *  (section 4.3). Off = remote validation (Figure 8 w/o LV). */
        bool localValidation = true;
        std::uint32_t prepareRetries = 2;
        /** Section 4.6 relaxation: transactions hinted read-write may
         *  read from any replica (load balancing); their reads are
         *  re-validated at the primary during prepare. */
        bool readFromAnyReplica = false;
        /** Section 4.3 "aggressive caching": hinted transactions may
         *  serve reads from an inter-transaction client cache and
         *  must then validate remotely. 0 disables. */
        std::size_t interTxnCacheCapacity = 0;
    };

    MilanaClient(sim::Simulator &sim, net::Network &net, NodeId node,
                 ClientId client_id, clocksync::Clock &clock,
                 const semel::Master &master,
                 const semel::Directory &directory,
                 const semel::Client::Config &config,
                 const TxnConfig &txn_config);
    ~MilanaClient() override = default;

    /** Start a transaction: assigns ts_begin from the local clock. */
    Transaction beginTransaction(TxnHint hint = TxnHint::Default);

    /** Transactional read; adds the key to the read set. */
    sim::Task<TxnRead> get(Transaction &txn, Key key);

    /** Buffer a write; adds the key to the write set. */
    void put(Transaction &txn, Key key, Value value);

    /** Run the commit protocol; returns the outcome. */
    sim::Task<CommitResult> commitTransaction(Transaction &txn);

    /** Discard all transaction state. */
    void abortTransaction(Transaction &txn);

    /** Timestamp of the latest decided transaction (watermark input,
     *  section 4.4). */
    Time lastDecided() const { return lastAcked(); }

    /** Chaos awareness (may be null): prepare failures that happen
     *  while a fault window is active are reported as Timeout rather
     *  than PrepareFailed, and non-committed outcomes tag the txn
     *  trace with the active fault's name (trace-report --txn=). */
    void setChaos(const common::ChaosEngine *chaos) { chaos_ = chaos; }

  protected:
    /** The validation/commit strategy; overridden by the Centiman
     *  baseline (section 5.3). */
    virtual sim::Task<CommitResult> decideCommit(Transaction &txn);

    MilanaServer *milanaPrimaryFor(common::ShardId shard) const;
    /** Any replica of the key's shard (section 4.6 read relaxation). */
    MilanaServer *anyReplicaFor(Key key, common::Rng &rng) const;
    sim::Task<CommitResult> commitReadOnlyLocal(Transaction &txn);
    sim::Task<CommitResult> twoPhaseCommit(Transaction &txn,
                                           bool read_only);

    TxnConfig tcfg_;
    const common::ChaosEngine *chaos_ = nullptr;
    std::uint64_t nextSerial_ = 1;
    /** Inter-transaction read cache (insertion-order bounded). */
    std::map<Key, Transaction::CachedRead> interTxnCache_;
    common::Rng replicaRng_{0xC0FFEE};
};

} // namespace milana

#endif // MILANA_CLIENT_HH
