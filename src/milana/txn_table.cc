#include "milana/txn_table.hh"

#include "common/logging.hh"

namespace milana {

void
TxnTable::insert(TxnEntry entry)
{
    entries_[entry.txn] = std::move(entry);
}

TxnEntry *
TxnTable::find(const TxnId &txn)
{
    auto it = entries_.find(txn);
    return it == entries_.end() ? nullptr : &it->second;
}

const TxnEntry *
TxnTable::find(const TxnId &txn) const
{
    auto it = entries_.find(txn);
    return it == entries_.end() ? nullptr : &it->second;
}

void
TxnTable::resolve(const TxnId &txn, TxnStatus outcome)
{
    entries_.erase(txn);
    outcomes_[txn] = outcome;
}

TxnStatus
TxnTable::statusOf(const TxnId &txn) const
{
    if (const auto *entry = find(txn))
        return entry->status;
    auto it = outcomes_.find(txn);
    return it == outcomes_.end() ? TxnStatus::Unknown : it->second;
}

std::vector<TxnId>
TxnTable::preparedBefore(Time deadline) const
{
    std::vector<TxnId> stale;
    for (const auto &[id, entry] : entries_) {
        if (entry.status == TxnStatus::Prepared &&
            entry.preparedAt < deadline)
            stale.push_back(id);
    }
    return stale;
}

} // namespace milana
