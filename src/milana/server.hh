/**
 * @file
 * MILANA transaction server (paper section 4): a SEMEL primary
 * extended with the transaction API.
 *
 * Responsibilities at the primary:
 *  - serve snapshot gets at the transaction's begin timestamp,
 *    recording ts_latestRead and piggy-backing the prepared flag that
 *    enables client-local validation of read-only transactions
 *    (section 4.3);
 *  - validate prepares with Algorithm 1 (OCC), mark prepared keys,
 *    replicate the prepare record to f backups, and vote;
 *  - on the commit decision, apply the buffered writes, advance
 *    ts_latestCommitted, clear the prepared marks, and replicate the
 *    outcome — updates and prepare records may reach backups in any
 *    order (Figure 5);
 *  - act as backup coordinator for orphaned transactions via the
 *    cooperative termination protocol (section 4.5);
 *  - maintain read leases so ts_latestRead (which is never persisted)
 *    cannot be violated across a failover.
 *
 * At a backup the server logs replicated transaction records and
 * applies committed write sets; a promoted backup rebuilds the
 * transaction table by merging the logs of a majority of replicas
 * (Algorithm 2) and waits out the old primary's lease before serving.
 */

#ifndef MILANA_SERVER_HH
#define MILANA_SERVER_HH

#include <vector>

#include "clocksync/clock.hh"
#include "ftl/mapping_table.hh"
#include "milana/txn_table.hh"
#include "semel/client.hh"
#include "semel/server.hh"

namespace common {
class ChaosEngine;
}

namespace milana {

using common::NodeId;
using common::Value;
using semel::DecisionRequest;
using semel::DecisionResponse;
using semel::GetRequest;
using semel::GetResponse;
using semel::PrepareRequest;
using semel::PrepareResponse;
using semel::ReplicateTxnRecord;
using semel::TxnDecision;
using semel::TxnRecordKind;
using semel::TxnStatusRequest;
using semel::TxnStatusResponse;
using semel::Vote;

class MilanaServer : public semel::Server
{
  public:
    struct MilanaConfig
    {
        /** Read-lease duration granted by backups. */
        common::Duration leaseDuration = 2 * common::kSecond;
        /** How often the primary renews its lease. */
        common::Duration leaseRenewPeriod = 500 * common::kMillisecond;
        /** Orphaned-prepare age that triggers the CTP. */
        common::Duration ctpTimeout = 50 * common::kMillisecond;
        common::Duration ctpScanPeriod = 20 * common::kMillisecond;
        /** Disable leases for single-node configurations. */
        bool enableLeases = true;
    };

    MilanaServer(sim::Simulator &sim, net::Network &net, NodeId id,
                 common::ShardId shard, ftl::KvBackend &backend,
                 clocksync::Clock &clock, const semel::Server::Config &config,
                 const MilanaConfig &milana_config,
                 semel::Master &master, semel::Directory &directory);

    /** Start background processes (lease renewal, CTP scanner). */
    void start();

    void reserveKeys(std::uint64_t keys) override;

    // -------------------------------------------------- RPC handlers

    /**
     * Snapshot read at request.at (= the transaction's ts_begin).
     * Updates ts_latestRead and reports whether a prepared version
     * with stamp <= at exists (local-validation input).
     */
    sim::Task<GetResponse> handleGet(GetRequest request) override;

    /** Phase 1 of 2PC: validate (Algorithm 1), persist + replicate the
     *  prepare record, vote. */
    sim::Task<PrepareResponse> handlePrepare(PrepareRequest request);

    /** Phase 2: apply the coordinator's decision. Idempotent. */
    sim::Task<DecisionResponse> handleDecision(DecisionRequest request);

    /** CTP status query from a peer participant. */
    sim::Task<TxnStatusResponse> handleTxnStatus(TxnStatusRequest request);

    /** Backup side: log a replicated transaction record; apply
     *  committed write sets. Order-insensitive. */
    sim::Task<bool> handleReplicateTxnRecord(ReplicateTxnRecord record);

    /** Backup side: grant a read lease to the primary. */
    sim::Task<Time> handleLeaseGrant(Time until);

    /** Recovery pull: a promoted backup collects logs and the maximum
     *  granted lease from its peers. */
    struct RecoveryPull
    {
        std::vector<ReplicateTxnRecord> txnLog;
        Time maxLeaseGranted = 0;
    };
    sim::Task<RecoveryPull> handleRecoveryPull();

    // ------------------------------------------------------ failover

    /**
     * Promote this (backup) server to primary: merge transaction logs
     * from all reachable replicas (Algorithm 2), resolve in-doubt
     * transactions via the CTP, rebuild per-key state, wait out the
     * old primary's lease, then begin service. The master must already
     * have repointed the shard at this node.
     */
    sim::Task<void> recoverAsPrimary();

    // ---------------------------------------------------- population

    /** Bulk-load one key (initial population, no protocol overhead). */
    sim::Task<void> loadKey(Key key, Value value, Version version);

    // ---------------------------------------------------- inspection

    const TxnTable &txnTable() const { return txns_; }
    KeyStateTable &keyStates() { return keys_; }
    bool recovering() const { return recovering_; }
    Time leaseUntil() const { return leaseUntil_; }

    /** Chaos awareness (may be null): while a clock fault is active,
     *  timestamp-order aborts are reported as ClockSuspect so clients
     *  and traces can tell "time misbehaved" from a real conflict. */
    void setChaos(const common::ChaosEngine *chaos) { chaos_ = chaos; }

  private:
    /** Remap timestamp-order abort reasons to ClockSuspect while a
     *  clock fault is active (no-op without a chaos engine). */
    semel::AbortReason classifyAbort(semel::AbortReason reason);

    /** Algorithm 1. Assumes key states are initialized. Returns
     *  AbortReason::None on a commit vote, else the failed check. */
    semel::AbortReason validate(const PrepareRequest &request);

    /** Initialize a key's DRAM state from storage if unseen (needed
     *  after failover, when ts_latestCommitted must be rebuilt from
     *  the version stamps). */
    sim::Task<void> ensureKeyState(Key key);

    sim::Task<void> applyCommit(TxnEntry &entry, bool late);
    void applyAbort(TxnEntry &entry);

    sim::Task<void> replicateTxnRecord(ReplicateTxnRecord record,
                                       bool wait_quorum);

    /** Round-trip sync with f backups (remote read-only validation
     *  pays this; local validation is what removes it). */
    sim::Task<bool> handleBarrier();
    sim::Task<void> barrierBackups();

    sim::Task<bool> renewLease();
    sim::Task<void> leaseLoop();
    sim::Task<void> ctpScanLoop();

    /** Cooperative termination for an orphaned prepared transaction. */
    sim::Task<void> resolveOrphan(TxnId txn);

    MilanaConfig mcfg_;
    clocksync::Clock &clock_;
    const common::ChaosEngine *chaos_ = nullptr;
    semel::Master &master_;
    semel::Directory &directory_;

    TxnTable txns_;
    KeyStateTable keys_;
    /** Keys whose DRAM state is initialized. */
    ftl::KeySet keyStateReady_;

    /** Backup-side log of replicated transaction records. */
    std::vector<ReplicateTxnRecord> txnLog_;

    Time leaseUntil_ = 0;       ///< primary: lease expiry (local clock)
    Time maxLeaseGranted_ = 0;  ///< backup: newest lease it granted
    bool recovering_ = false;
    bool started_ = false;
};

} // namespace milana

#endif // MILANA_SERVER_HH
