/**
 * @file
 * Clock-synchronization protocol simulation (IEEE 1588 PTP and NTP).
 *
 * Both protocols estimate a slave's offset to a master with the same
 * four-timestamp exchange:
 *
 *   master --Sync-->   slave     t1 (master clock), t2 (slave clock)
 *   master <--DelayReq-- slave   t3 (slave clock),  t4 (master clock)
 *
 *   measured_offset = ((t2 - t1) - (t4 - t3)) / 2
 *
 * With symmetric path delays and perfect timestamps this recovers the
 * true offset exactly; the residual error comes from (a) timestamping
 * noise — nanoseconds with PTP hardware timestamping, tens of
 * microseconds with PTP software timestamping, hundreds of
 * microseconds to milliseconds with NTP's kernel timestamps — and (b)
 * asymmetry between the two path delays.
 *
 * Presets reproduce the skews the paper reports in section 5.2:
 * NTP ~1.51 ms average pairwise skew, PTP software ~53 us; plus
 * PTP hardware (<1 us, section 2.1) and DTP (~150 ns, [37]).
 */

#ifndef CLOCKSYNC_SYNC_HH
#define CLOCKSYNC_SYNC_HH

#include <memory>
#include <string>
#include <vector>

#include "clocksync/clock.hh"
#include "common/histogram.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "sim/task.hh"

namespace clocksync {

/** Parameters of a synchronization discipline. */
struct SyncConfig
{
    std::string name;
    /** Interval between sync exchanges. */
    Duration interval = 2 * common::kSecond;
    /** Std-dev of each of the four timestamps' noise. */
    Duration timestampNoiseSigma = 0;
    /** Mean one-way network delay of sync messages. */
    Duration pathDelayMean = 50 * common::kMicrosecond;
    /** Std-dev of each one-way delay (asymmetry source). */
    Duration pathDelaySigma = 5 * common::kMicrosecond;
    /** Fraction of the measured offset corrected per exchange. */
    double gain = 1.0;
    /**
     * Frequency-servo damping: fraction of the apparent frequency
     * error (measured offset / sync interval) trimmed per exchange.
     * 0 disables syntonization (NTP-like loose discipline).
     */
    double frequencyGain = 0.7;

    /** PTP with NIC hardware timestamping: sub-microsecond skew. */
    static SyncConfig ptpHardware();
    /** PTP with software timestamping: tens-of-microseconds skew
     *  (the paper's client configuration; measured 53.2 us). */
    static SyncConfig ptpSoftware();
    /** NTP: millisecond skew (the paper measured 1.51 ms). */
    static SyncConfig ntp();
    /** Datacenter Time Protocol [37]: ~150 ns across a data center. */
    static SyncConfig dtp();
    /** No synchronization error at all (single-machine experiments). */
    static SyncConfig perfect();
};

/**
 * Disciplines one DriftClock against true time with periodic simulated
 * exchanges. Spawn run() as a background process.
 */
class SyncAgent
{
  public:
    SyncAgent(sim::Simulator &sim, DriftClock &clock,
              const SyncConfig &cfg, common::Rng rng);

    /** Periodic sync process; winds down on Simulator::requestStop. */
    sim::Task<void> run();

    /** One exchange (also used directly by unit tests). */
    void performExchange();

    /** Record per-exchange metrics into @p stats (shared across an
     *  ensemble; the sim is single-threaded). */
    void setStats(common::StatSet *stats) { stats_ = stats; }

    /**
     * Holdover mode (PTP master outage, chaos hook): while set,
     * scheduled exchanges are skipped — no measurement, no correction
     * — so the clock free-runs on its oscillator. The first exchange
     * after holdover re-measures from scratch (the previous-offset
     * history is discarded so the frequency servo does not
     * mis-attribute the whole holdover error to frequency).
     */
    void setHoldover(bool holdover);
    bool holdover() const { return holdover_; }

    /** Trace emission handle; disabled until the cluster attaches it. */
    common::Tracer &tracer() { return trace_; }

  private:
    sim::Simulator &sim_;
    DriftClock &clock_;
    SyncConfig cfg_;
    common::Rng rng_;
    bool havePrevious_ = false;
    bool holdover_ = false;
    common::StatSet *stats_ = nullptr;
    common::Tracer trace_;
};

/**
 * A set of synchronized node clocks plus the machinery to measure the
 * realized pairwise skew — the quantity the paper reports (1.51 ms
 * NTP, 53.2 us PTP software).
 */
class ClockEnsemble
{
  public:
    /**
     * Build @p n disciplined clocks.
     *
     * Clocks start with an offset distribution matching the steady
     * state of their discipline so short simulations need no warm-up.
     */
    ClockEnsemble(sim::Simulator &sim, std::size_t n,
                  const SyncConfig &cfg, common::Rng &rng);

    /** Start all sync agents and the skew sampler. */
    void start();

    Clock &clock(std::size_t i) { return *clocks_[i]; }
    /** Mutable drift-clock access (chaos step/stuck/drift hooks). */
    DriftClock &driftClock(std::size_t i) { return *clocks_[i]; }
    SyncAgent &agent(std::size_t i) { return *agents_[i]; }
    std::size_t size() const { return clocks_.size(); }

    /**
     * PTP master outage (chaos hook): put every agent in holdover so
     * no exchange corrects any clock until the master recovers. Counts
     * transitions in the ensemble stats.
     */
    void setMasterDown(bool down);
    bool masterDown() const { return masterDown_; }

    /** Exchange counters/offset histograms of all member agents. */
    const common::StatSet &stats() const { return stats_; }

    /** Mean absolute pairwise skew observed so far. */
    double avgPairwiseSkew() const;

    /** Max absolute pairwise skew observed so far. */
    Duration maxPairwiseSkew() const { return maxSkew_; }

    /**
     * Max absolute pairwise skew right now (spread between the
     * fastest and slowest clock's current offset). Unlike the sampled
     * aggregates above this is an instantaneous gauge, suitable for
     * time-series sampling.
     */
    Duration instantaneousMaxPairwiseSkew() const;

    const common::Histogram &skewHistogram() const { return skewHist_; }

  private:
    sim::Task<void> skewSampler();

    sim::Simulator &sim_;
    SyncConfig cfg_;
    std::vector<std::unique_ptr<DriftClock>> clocks_;
    std::vector<std::unique_ptr<SyncAgent>> agents_;
    common::Histogram skewHist_;
    Duration maxSkew_ = 0;
    bool masterDown_ = false;
    common::StatSet stats_;
};

} // namespace clocksync

#endif // CLOCKSYNC_SYNC_HH
