/**
 * @file
 * Node-local clock models.
 *
 * Every client and server in the simulation owns a Clock that maps the
 * simulator's TrueTime to the node's LocalTime. SEMEL version stamps
 * and MILANA transaction timestamps are always LocalTime values, so
 * clock skew between nodes is what produces the spurious-abort effects
 * the paper studies (section 2.1, Figure 1).
 *
 * DriftClock models a quartz oscillator disciplined by a
 * synchronization protocol:
 *
 *   local(t) = t + offset0 + drift_ppm * 1e-6 * (t - t_sync)
 *
 * A sync exchange (see sync.hh) measures the offset with protocol-
 * dependent error and corrects it, leaving a residual equal to the
 * measurement error. Between syncs the offset grows linearly with the
 * node's drift rate.
 *
 * Clocks are monotone: real NTP/PTP daemons slew rather than step
 * backwards, and the paper's watermark GC relies on monotonicity, so
 * localNow() never returns a smaller value than a previous call.
 */

#ifndef CLOCKSYNC_CLOCK_HH
#define CLOCKSYNC_CLOCK_HH

#include "common/random.hh"
#include "common/types.hh"
#include "sim/simulator.hh"

namespace clocksync {

using common::Duration;
using common::Time;

/** Abstract node-local clock. */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** The node's current LocalTime. */
    virtual Time localNow() = 0;

    /** This clock's current true offset (LocalTime - TrueTime). */
    virtual Duration currentOffset() const = 0;
};

/** A clock with zero skew; used as grandmaster and in skew-free tests. */
class PerfectClock : public Clock
{
  public:
    explicit PerfectClock(sim::Simulator &sim) : sim_(sim) {}

    Time localNow() override { return sim_.now(); }
    Duration currentOffset() const override { return 0; }

  private:
    sim::Simulator &sim_;
};

/** An oscillator with constant drift, disciplined by applyCorrection. */
class DriftClock : public Clock
{
  public:
    struct Params
    {
        /** Std-dev of the per-node constant drift rate, in ppm. */
        double driftPpmSigma = 5.0;
        /** Std-dev of the offset at simulation start. */
        Duration initialOffsetSigma = 0;
    };

    /**
     * @param sim Owning simulator (source of TrueTime).
     * @param p   Oscillator parameters.
     * @param rng Used once at construction to draw drift and offset.
     */
    DriftClock(sim::Simulator &sim, const Params &p, common::Rng &rng);

    Time localNow() override;
    Duration currentOffset() const override;

    /**
     * Apply a correction from a sync exchange: the protocol measured
     * this clock to be @p measured_offset ahead of the reference, and
     * the clock slews by -gain * measured_offset.
     *
     * @param measured_offset The (noisy) measured offset.
     * @param gain            Fraction of the measurement corrected
     *                        (1.0 = step fully; NTP-style slewing uses
     *                        less).
     */
    void applyCorrection(Duration measured_offset, double gain = 1.0);

    /**
     * Frequency (syntonization) adjustment: add @p delta_ppm to the
     * servo's rate correction. A PTP servo estimates the oscillator's
     * frequency error from successive offset measurements and trims it
     * here; without this, drift between syncs dominates the residual
     * skew for precise disciplines.
     */
    void adjustRatePpm(double delta_ppm);

    double driftPpm() const { return driftPpm_; }

    /** Effective drift after servo correction, in ppm. */
    double effectiveDriftPpm() const { return driftPpm_ + servoPpm_; }

    // ------------------------------------------------------------------
    // Chaos mutation hooks (quiescent points only; see common/chaos.hh).
    // ------------------------------------------------------------------

    /**
     * Step (leap) the clock by @p delta ns. A negative step is
     * absorbed by the monotonicity clamp: localNow() holds its last
     * value until TrueTime catches up, exactly how a slewing daemon
     * hides a backwards step. The sync servo will observe the jump at
     * the next exchange and mis-attribute part of it to frequency
     * error, producing the decaying skew oscillation real PTP
     * deployments see after a step.
     */
    void step(Duration delta);

    /**
     * Freeze the clock's output (a stuck oscillator/counter): while
     * stuck, localNow() keeps returning the freeze value and sync
     * corrections are ignored. Unsticking re-anchors the drift model
     * at the frozen value, so the clock resumes from behind and the
     * protocol has to pull it back in.
     */
    void setStuck(bool stuck);
    bool stuck() const { return stuck_; }

    /** Runaway oscillator: add @p delta_ppm of *physical* drift (the
     *  servo does not know, and has to fight it via exchanges). */
    void injectDriftPpm(double delta_ppm);

  private:
    sim::Simulator &sim_;
    double driftPpm_;
    double servoPpm_ = 0.0;
    /** Offset at the time of the last correction. */
    double offsetAtSync_;
    Time lastSyncTrue_ = 0;
    Time lastReturned_ = 0;
    bool stuck_ = false;
};

} // namespace clocksync

#endif // CLOCKSYNC_CLOCK_HH
