#include "clocksync/clock.hh"

#include <algorithm>
#include <cmath>

namespace clocksync {

DriftClock::DriftClock(sim::Simulator &sim, const Params &p,
                       common::Rng &rng)
    : sim_(sim),
      driftPpm_(rng.nextGaussian(0.0, p.driftPpmSigma)),
      offsetAtSync_(rng.nextGaussian(
          0.0, static_cast<double>(p.initialOffsetSigma)))
{
}

Duration
DriftClock::currentOffset() const
{
    const Time t = sim_.now();
    if (stuck_) {
        // Output frozen at lastReturned_: the apparent offset shrinks
        // (goes negative) as TrueTime advances past the frozen value.
        return lastReturned_ - t;
    }
    const double elapsed = static_cast<double>(t - lastSyncTrue_);
    const double offset =
        offsetAtSync_ + (driftPpm_ + servoPpm_) * 1e-6 * elapsed;
    return static_cast<Duration>(std::llround(offset));
}

Time
DriftClock::localNow()
{
    if (stuck_)
        return lastReturned_;
    const Time local = sim_.now() + currentOffset();
    lastReturned_ = std::max(lastReturned_, local);
    return lastReturned_;
}

void
DriftClock::adjustRatePpm(double delta_ppm)
{
    if (stuck_)
        return; // unresponsive oscillator: corrections are lost
    // Re-anchor first so past time is not retroactively re-rated.
    const double now_offset = static_cast<double>(currentOffset());
    offsetAtSync_ = now_offset;
    lastSyncTrue_ = sim_.now();
    servoPpm_ += delta_ppm;
}

void
DriftClock::applyCorrection(Duration measured_offset, double gain)
{
    if (stuck_)
        return; // unresponsive oscillator: corrections are lost
    // Re-anchor the linear model at the present instant, then subtract
    // the corrected fraction of the measurement.
    const double now_offset = static_cast<double>(currentOffset());
    offsetAtSync_ = now_offset - gain * static_cast<double>(measured_offset);
    lastSyncTrue_ = sim_.now();
}

void
DriftClock::step(Duration delta)
{
    if (stuck_)
        return;
    const double now_offset = static_cast<double>(currentOffset());
    offsetAtSync_ = now_offset + static_cast<double>(delta);
    lastSyncTrue_ = sim_.now();
}

void
DriftClock::setStuck(bool stuck)
{
    if (stuck == stuck_)
        return;
    if (stuck) {
        // Pin the output at its current value.
        lastReturned_ = std::max(lastReturned_, sim_.now() + currentOffset());
        stuck_ = true;
        return;
    }
    // Resume ticking from the frozen value: re-anchor the drift model
    // there, so the clock is now behind TrueTime by the stuck period.
    stuck_ = false;
    offsetAtSync_ = static_cast<double>(lastReturned_ - sim_.now());
    lastSyncTrue_ = sim_.now();
}

void
DriftClock::injectDriftPpm(double delta_ppm)
{
    // Re-anchor so the new rate applies from now on only. Deliberately
    // no stuck_ guard: a frozen counter can still have its oscillator
    // detuned; the effect shows once unstuck.
    const double now_offset = stuck_
                                  ? static_cast<double>(lastReturned_ -
                                                        sim_.now())
                                  : static_cast<double>(currentOffset());
    offsetAtSync_ = now_offset;
    lastSyncTrue_ = sim_.now();
    driftPpm_ += delta_ppm;
}

} // namespace clocksync
