#include "clocksync/clock.hh"

#include <algorithm>
#include <cmath>

namespace clocksync {

DriftClock::DriftClock(sim::Simulator &sim, const Params &p,
                       common::Rng &rng)
    : sim_(sim),
      driftPpm_(rng.nextGaussian(0.0, p.driftPpmSigma)),
      offsetAtSync_(rng.nextGaussian(
          0.0, static_cast<double>(p.initialOffsetSigma)))
{
}

Duration
DriftClock::currentOffset() const
{
    const Time t = sim_.now();
    const double elapsed = static_cast<double>(t - lastSyncTrue_);
    const double offset =
        offsetAtSync_ + (driftPpm_ + servoPpm_) * 1e-6 * elapsed;
    return static_cast<Duration>(std::llround(offset));
}

Time
DriftClock::localNow()
{
    const Time local = sim_.now() + currentOffset();
    lastReturned_ = std::max(lastReturned_, local);
    return lastReturned_;
}

void
DriftClock::adjustRatePpm(double delta_ppm)
{
    // Re-anchor first so past time is not retroactively re-rated.
    const double now_offset = static_cast<double>(currentOffset());
    offsetAtSync_ = now_offset;
    lastSyncTrue_ = sim_.now();
    servoPpm_ += delta_ppm;
}

void
DriftClock::applyCorrection(Duration measured_offset, double gain)
{
    // Re-anchor the linear model at the present instant, then subtract
    // the corrected fraction of the measurement.
    const double now_offset = static_cast<double>(currentOffset());
    offsetAtSync_ = now_offset - gain * static_cast<double>(measured_offset);
    lastSyncTrue_ = sim_.now();
}

} // namespace clocksync
