#include "clocksync/sync.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "sim/future.hh"

namespace clocksync {

using common::kMicrosecond;
using common::kMillisecond;
using common::kNanosecond;
using common::kSecond;

SyncConfig
SyncConfig::ptpHardware()
{
    SyncConfig c;
    c.name = "ptp-hw";
    c.interval = 2 * kSecond;
    c.timestampNoiseSigma = 500 * kNanosecond;
    c.pathDelaySigma = 300 * kNanosecond;
    return c;
}

SyncConfig
SyncConfig::ptpSoftware()
{
    SyncConfig c;
    c.name = "ptp-sw";
    c.interval = 2 * kSecond;
    // Software timestamping: interrupt/softirq latency noise. Tuned so
    // the realized average pairwise skew matches the paper's measured
    // 53.2 us (section 5.2).
    c.timestampNoiseSigma = 45 * kMicrosecond;
    c.pathDelaySigma = 5 * kMicrosecond;
    return c;
}

SyncConfig
SyncConfig::ntp()
{
    SyncConfig c;
    c.name = "ntp";
    c.interval = 16 * kSecond;
    // Kernel timestamps plus scheduling jitter; tuned so the realized
    // average pairwise skew matches the paper's measured 1.51 ms.
    c.timestampNoiseSigma = 1300 * kMicrosecond;
    c.pathDelaySigma = 100 * kMicrosecond;
    return c;
}

SyncConfig
SyncConfig::dtp()
{
    SyncConfig c;
    c.name = "dtp";
    c.interval = kSecond / 2;
    c.timestampNoiseSigma = 120 * kNanosecond;
    c.pathDelaySigma = 50 * kNanosecond;
    return c;
}

SyncConfig
SyncConfig::perfect()
{
    SyncConfig c;
    c.name = "perfect";
    c.interval = 100 * kMillisecond;
    c.timestampNoiseSigma = 0;
    c.pathDelaySigma = 0;
    return c;
}

namespace {

/** Steady-state residual offset std-dev for a full-gain discipline. */
double
steadyStateSigma(const SyncConfig &cfg)
{
    const double ts = static_cast<double>(cfg.timestampNoiseSigma);
    const double path = static_cast<double>(cfg.pathDelaySigma);
    return std::sqrt(ts * ts + path * path / 2.0);
}

} // namespace

SyncAgent::SyncAgent(sim::Simulator &sim, DriftClock &clock,
                     const SyncConfig &cfg, common::Rng rng)
    : sim_(sim), clock_(clock), cfg_(cfg), rng_(rng)
{
}

void
SyncAgent::setHoldover(bool holdover)
{
    holdover_ = holdover;
    if (!holdover)
        havePrevious_ = false; // next measurement restarts the servo
}

void
SyncAgent::performExchange()
{
    if (holdover_) {
        // Master unreachable: the exchange never happens. Skipping
        // here (rather than pausing run()) keeps the exchange *phase*
        // unchanged across the outage, like a real slave's timer.
        if (stats_ != nullptr)
            stats_->counter("clocksync.holdover_skips").inc();
        trace_.instant("clocksync.sync.holdover", cfg_.name);
        return;
    }
    // The exchange spans a few hundred microseconds of real time over
    // which the offset moves by picoseconds; we therefore evaluate the
    // slave offset once, at the current instant.
    const double offset = static_cast<double>(clock_.currentOffset());
    const double mean_d = static_cast<double>(cfg_.pathDelayMean);
    const double sigma_d = static_cast<double>(cfg_.pathDelaySigma);
    const double sigma_ts = static_cast<double>(cfg_.timestampNoiseSigma);

    const double d_ms = std::max(0.0, rng_.nextGaussian(mean_d, sigma_d));
    const double d_sm = std::max(0.0, rng_.nextGaussian(mean_d, sigma_d));
    const double wait = 100.0 * kMicrosecond; // slave turn-around

    // Four timestamps of the IEEE-1588 exchange, each with
    // timestamping noise. The master is the reference (true time).
    const double t0 = static_cast<double>(sim_.now());
    const double t1 = t0 + rng_.nextGaussian(0.0, sigma_ts);
    const double t2 =
        (t0 + d_ms) + offset + rng_.nextGaussian(0.0, sigma_ts);
    const double t3 =
        (t0 + d_ms + wait) + offset + rng_.nextGaussian(0.0, sigma_ts);
    const double t4 =
        (t0 + d_ms + wait + d_sm) + rng_.nextGaussian(0.0, sigma_ts);

    const double measured = ((t2 - t1) - (t4 - t3)) / 2.0;

    // Frequency servo: after the previous exchange zeroed the offset,
    // whatever reappeared is (drift * interval + noise), so the
    // apparent frequency error is measured / interval. Skip the first
    // exchange — its measurement contains the arbitrary initial offset.
    if (havePrevious_ && cfg_.frequencyGain > 0.0) {
        const double ppm =
            measured / static_cast<double>(cfg_.interval) * 1e6;
        clock_.adjustRatePpm(-cfg_.frequencyGain * ppm);
    }
    havePrevious_ = true;

    clock_.applyCorrection(
        static_cast<Duration>(std::llround(measured)), cfg_.gain);

    const auto measured_ns =
        static_cast<std::int64_t>(std::llround(measured));
    if (stats_ != nullptr) {
        stats_->counter("clocksync.exchanges").inc();
        stats_->histogram("clocksync.offset_abs")
            .record(std::abs(measured_ns));
    }
    trace_.instant("clocksync.sync.exchange", cfg_.name, measured_ns);
}

sim::Task<void>
SyncAgent::run()
{
    // Randomize phase so all agents do not correct in lockstep.
    co_await sim::sleepFor(
        sim_, static_cast<Duration>(rng_.nextBounded(
                  static_cast<std::uint64_t>(cfg_.interval))));
    while (!sim_.stopRequested()) {
        performExchange();
        co_await sim::sleepFor(sim_, cfg_.interval);
    }
}

ClockEnsemble::ClockEnsemble(sim::Simulator &sim, std::size_t n,
                             const SyncConfig &cfg, common::Rng &rng)
    : sim_(sim), cfg_(cfg)
{
    DriftClock::Params params;
    params.driftPpmSigma = 5.0;
    // Start in steady state so short runs need no warm-up.
    params.initialOffsetSigma =
        static_cast<Duration>(std::llround(steadyStateSigma(cfg)));

    for (std::size_t i = 0; i < n; ++i) {
        auto clock = std::make_unique<DriftClock>(sim_, params, rng);
        agents_.push_back(std::make_unique<SyncAgent>(
            sim_, *clock, cfg_, rng.fork()));
        agents_.back()->setStats(&stats_);
        clocks_.push_back(std::move(clock));
    }
}

void
ClockEnsemble::setMasterDown(bool down)
{
    if (down == masterDown_)
        return;
    masterDown_ = down;
    for (auto &agent : agents_)
        agent->setHoldover(down);
    stats_.counter(down ? "clocksync.master_down"
                        : "clocksync.master_up")
        .inc();
}

void
ClockEnsemble::start()
{
    for (auto &agent : agents_)
        sim::spawn(agent->run());
    sim::spawn(skewSampler());
}

sim::Task<void>
ClockEnsemble::skewSampler()
{
    while (!sim_.stopRequested()) {
        for (std::size_t i = 0; i < clocks_.size(); ++i) {
            for (std::size_t j = i + 1; j < clocks_.size(); ++j) {
                const Duration skew = std::abs(
                    clocks_[i]->currentOffset() -
                    clocks_[j]->currentOffset());
                skewHist_.record(skew);
                maxSkew_ = std::max(maxSkew_, skew);
            }
        }
        co_await sim::sleepFor(sim_, 100 * kMillisecond);
    }
}

double
ClockEnsemble::avgPairwiseSkew() const
{
    return skewHist_.mean();
}

Duration
ClockEnsemble::instantaneousMaxPairwiseSkew() const
{
    if (clocks_.empty())
        return 0;
    Duration lo = clocks_[0]->currentOffset();
    Duration hi = lo;
    for (const auto &clock : clocks_) {
        const Duration off = clock->currentOffset();
        lo = std::min(lo, off);
        hi = std::max(hi, off);
    }
    return hi - lo;
}

} // namespace clocksync
