#include "workload/retwis.hh"

#include <string>

#include "common/logging.hh"
#include "sim/future.hh"

namespace workload {

RetwisInstance::RetwisInstance(milana::MilanaClient &client,
                               const RetwisConfig &config,
                               common::Rng rng)
    : client_(client),
      config_(config),
      rng_(rng),
      zipf_(config.numKeys, config.alpha, config.seed)
{
}

void
RetwisInstance::resetMeasurement()
{
    commits_ = 0;
    aborts_ = 0;
    failures_ = 0;
    latency_.reset();
}

RetwisInstance::TxnShape
RetwisInstance::nextShape()
{
    // Table 2 mix. The read-heavy variant (Figures 8/9) shifts Post
    // Tweet weight onto Get Timeline: 5/10/10/75.
    const double p = rng_.nextDouble();
    std::uint32_t gets = 0;
    std::uint32_t puts = 0;
    if (config_.readHeavy) {
        if (p < 0.05) {
            gets = 1; puts = 2; // Add User
        } else if (p < 0.15) {
            gets = 2; puts = 2; // Follow User
        } else if (p < 0.25) {
            gets = 3; puts = 5; // Post Tweet
        } else {
            gets = static_cast<std::uint32_t>(rng_.nextRange(1, 10));
            puts = 0; // Get Timeline
        }
    } else {
        if (p < 0.05) {
            gets = 1; puts = 2;
        } else if (p < 0.15) {
            gets = 2; puts = 2;
        } else if (p < 0.50) {
            gets = 3; puts = 5;
        } else {
            gets = static_cast<std::uint32_t>(rng_.nextRange(1, 10));
            puts = 0;
        }
    }

    TxnShape shape;
    // Writes overlap reads where the counts allow (a Post Tweet reads
    // the user record and timeline it updates), so write-write and
    // read-write conflicts both occur under contention.
    for (std::uint32_t i = 0; i < std::max(gets, puts); ++i) {
        const common::Key key = zipf_.sample(rng_);
        if (i < gets)
            shape.reads.push_back(key);
        if (i < puts)
            shape.writes.push_back(key);
    }
    return shape;
}

sim::Task<bool>
RetwisInstance::runOnce(const TxnShape &shape,
                        milana::CommitResult &result)
{
    auto txn = client_.beginTransaction();
    for (const common::Key key : shape.reads) {
        auto read = co_await client_.get(txn, key);
        if (!read.ok) {
            client_.abortTransaction(txn);
            result = milana::CommitResult::Failed;
            co_return false;
        }
    }
    for (const common::Key key : shape.writes) {
        client_.put(txn, key,
                    "w" + std::to_string(client_.clientId()) + ":" +
                        std::to_string(++serial_));
    }
    result = co_await client_.commitTransaction(txn);
    co_return true;
}

sim::Task<void>
RetwisInstance::run(sim::Simulator &sim)
{
    while (!sim.stopRequested()) {
        const TxnShape shape = nextShape();
        // Retry an aborted transaction with the same key set, without
        // any wait (section 5.2).
        for (std::uint32_t attempt = 0;
             attempt < config_.maxAttempts && !sim.stopRequested();
             ++attempt) {
            const common::Time start = sim.now();
            milana::CommitResult result;
            co_await runOnce(shape, result);
            if (result == milana::CommitResult::Committed) {
                ++commits_;
                latency_.record(sim.now() - start);
                break;
            }
            if (result == milana::CommitResult::Aborted) {
                ++aborts_;
                continue;
            }
            ++failures_;
            break; // infrastructure failure: drop this transaction
        }
    }
}

RetwisWorkload::RetwisWorkload(Cluster &cluster,
                               const RetwisConfig &config,
                               std::uint32_t instances_per_client)
    : cluster_(cluster)
{
    common::Rng rng(config.seed);
    for (std::uint32_t c = 0; c < cluster.numClients(); ++c) {
        for (std::uint32_t i = 0; i < instances_per_client; ++i) {
            instances_.push_back(std::make_unique<RetwisInstance>(
                cluster.client(c), config, rng.fork()));
            instanceClient_.push_back(c);
        }
    }
}

void
RetwisWorkload::start()
{
    for (std::size_t k = 0; k < instances_.size(); ++k)
        sim::spawn(
            instances_[k]->run(cluster_.clientSim(instanceClient_[k])));
}

void
RetwisWorkload::resetMeasurement()
{
    for (auto &instance : instances_)
        instance->resetMeasurement();
}

std::uint64_t
RetwisWorkload::totalCommits() const
{
    std::uint64_t total = 0;
    for (const auto &instance : instances_)
        total += instance->commits();
    return total;
}

std::uint64_t
RetwisWorkload::totalAborts() const
{
    std::uint64_t total = 0;
    for (const auto &instance : instances_)
        total += instance->aborts();
    return total;
}

double
RetwisWorkload::abortRate() const
{
    const double total =
        static_cast<double>(totalCommits() + totalAborts());
    return total == 0 ? 0.0
                      : static_cast<double>(totalAborts()) / total;
}

common::Histogram
RetwisWorkload::mergedLatency() const
{
    common::Histogram merged;
    for (const auto &instance : instances_)
        merged.merge(instance->latency());
    return merged;
}

} // namespace workload
