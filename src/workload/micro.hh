/**
 * @file
 * The single-SSD key-value micro-benchmark of Table 1: closed-loop
 * workers issue get/put requests directly against a storage backend
 * (no network, no transactions) for a configurable GET percentage,
 * measuring sustained throughput and per-op latency.
 */

#ifndef WORKLOAD_MICRO_HH
#define WORKLOAD_MICRO_HH

#include <memory>

#include "common/histogram.hh"
#include "common/random.hh"
#include "ftl/kv_backend.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

namespace workload {

struct MicroConfig
{
    /** Fraction of operations that are gets, in percent. */
    double getPercent = 100.0;
    std::uint64_t numKeys = 100'000;
    /** Closed-loop concurrency (outstanding requests). */
    std::uint32_t workers = 192;
    std::uint64_t seed = 3;
    /** Version-retention window: the watermark trails current time by
     *  this much (section 3.1's tunable window size). */
    common::Duration watermarkWindow = 50 * common::kMillisecond;
};

class MicroBench
{
  public:
    MicroBench(sim::Simulator &sim, ftl::KvBackend &backend,
               const MicroConfig &config);

    /** Pre-load every key (run the simulator to completion first). */
    void populate();

    /** Start the worker loops (then drive the simulator). */
    void start();

    void resetMeasurement();

    std::uint64_t gets() const { return gets_; }
    std::uint64_t puts() const { return puts_; }
    const common::Histogram &getLatency() const { return getLat_; }
    const common::Histogram &putLatency() const { return putLat_; }

    /** Requests completed per second of simulated time. */
    double
    throughput(common::Duration measured) const
    {
        return static_cast<double>(gets_ + puts_) /
               common::toSeconds(measured);
    }

  private:
    sim::Task<void> worker(common::Rng rng, common::ClientId id);
    sim::Task<void> watermarkLoop();

    sim::Simulator &sim_;
    ftl::KvBackend &backend_;
    MicroConfig config_;
    common::Rng rng_;
    std::uint64_t gets_ = 0;
    std::uint64_t puts_ = 0;
    common::Histogram getLat_;
    common::Histogram putLat_;
};

} // namespace workload

#endif // WORKLOAD_MICRO_HH
