/**
 * @file
 * The Retwis benchmark (paper Table 2): a Twitter-clone transaction
 * mix over a key-value store.
 *
 *   Transaction    gets        puts   default %   read-heavy %
 *   Add User       1           2      5           5
 *   Follow User    2           2      10          10
 *   Post Tweet     3           5      35          10
 *   Get Timeline   rand(1,10)  0      50          75
 *
 * Keys are drawn from a scrambled Zipf distribution; the paper's
 * "Retwis contention parameter (alpha)" is the Zipf exponent. Each
 * instance runs one transaction at a time and, as in the paper's
 * experiments, "retries an aborted transaction with the same set of
 * keys and without any wait".
 *
 * Abort rate = aborts / (aborts + commits), counting each retry.
 */

#ifndef WORKLOAD_RETWIS_HH
#define WORKLOAD_RETWIS_HH

#include <memory>
#include <vector>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "common/zipf.hh"
#include "milana/client.hh"
#include "workload/cluster.hh"

namespace workload {

struct RetwisConfig
{
    /** Zipf contention parameter. */
    double alpha = 0.6;
    std::uint64_t numKeys = 50'000;
    /** Use the 75%-read-only mix of Figures 8 and 9. */
    bool readHeavy = false;
    /** Give up on a transaction after this many aborted attempts. */
    std::uint32_t maxAttempts = 100;
    std::uint64_t seed = 7;
};

/** One sequential Retwis session bound to one MILANA client. */
class RetwisInstance
{
  public:
    RetwisInstance(milana::MilanaClient &client,
                   const RetwisConfig &config, common::Rng rng);

    /** Closed-loop driver; winds down on Simulator::requestStop. */
    sim::Task<void> run(sim::Simulator &sim);

    // Measurement (reset clears, e.g. after warm-up).
    std::uint64_t commits() const { return commits_; }
    std::uint64_t aborts() const { return aborts_; }
    const common::Histogram &latency() const { return latency_; }
    void resetMeasurement();

    double
    abortRate() const
    {
        const double total = static_cast<double>(commits_ + aborts_);
        return total == 0 ? 0.0 : static_cast<double>(aborts_) / total;
    }

  private:
    struct TxnShape
    {
        std::vector<common::Key> reads;
        std::vector<common::Key> writes;
    };

    TxnShape nextShape();
    sim::Task<bool> runOnce(const TxnShape &shape,
                            milana::CommitResult &result);

    milana::MilanaClient &client_;
    RetwisConfig config_;
    common::Rng rng_;
    common::ScrambledZipf zipf_;
    std::uint64_t serial_ = 0;

    std::uint64_t commits_ = 0;
    std::uint64_t aborts_ = 0;
    std::uint64_t failures_ = 0;
    common::Histogram latency_;
};

/** A fleet of Retwis instances over a cluster's clients. */
class RetwisWorkload
{
  public:
    /**
     * @param instances_per_client Independent sessions per MILANA
     *        client (the paper runs 4-6 instances per client VM; here
     *        each instance gets its own client/clock, so this is
     *        usually 1).
     */
    RetwisWorkload(Cluster &cluster, const RetwisConfig &config,
                   std::uint32_t instances_per_client = 1);

    void start();
    void resetMeasurement();

    std::uint64_t totalCommits() const;
    std::uint64_t totalAborts() const;
    double abortRate() const;
    common::Histogram mergedLatency() const;

  private:
    Cluster &cluster_;
    std::vector<std::unique_ptr<RetwisInstance>> instances_;
    /** Owning client index per instance — start() spawns each
     *  instance's driver on that client's simulator (its partition's,
     *  under Cluster simThreads > 0). */
    std::vector<std::uint32_t> instanceClient_;
};

} // namespace workload

#endif // WORKLOAD_RETWIS_HH
