#include "workload/micro.hh"

#include <string>

#include "common/logging.hh"
#include "sim/future.hh"

namespace workload {

MicroBench::MicroBench(sim::Simulator &sim, ftl::KvBackend &backend,
                       const MicroConfig &config)
    : sim_(sim), backend_(backend), config_(config), rng_(config.seed)
{
}

void
MicroBench::populate()
{
    // Pre-size the backend's mapping table: the load below inserts
    // every key exactly once, so this makes populate rehash-free.
    backend_.reserveKeys(config_.numKeys);
    const std::uint32_t loaders = 64;
    for (std::uint32_t w = 0; w < loaders; ++w) {
        sim::spawn([](MicroBench *self, std::uint64_t first,
                      std::uint64_t stride) -> sim::Task<void> {
            for (common::Key key = first; key < self->config_.numKeys;
                 key += stride) {
                (void)co_await self->backend_.put(
                    key, "init", common::Version{1, 0});
            }
        }(this, w, loaders));
    }
    sim_.run();
}

void
MicroBench::start()
{
    for (std::uint32_t w = 0; w < config_.workers; ++w)
        sim::spawn(worker(rng_.fork(), w + 1));
    sim::spawn(watermarkLoop());
}

sim::Task<void>
MicroBench::watermarkLoop()
{
    while (!sim_.stopRequested()) {
        co_await sim::sleepFor(sim_, config_.watermarkWindow / 4);
        const common::Time wm = sim_.now() - config_.watermarkWindow;
        if (wm > 0)
            backend_.setWatermark(wm);
    }
}

void
MicroBench::resetMeasurement()
{
    gets_ = 0;
    puts_ = 0;
    getLat_.reset();
    putLat_.reset();
}

sim::Task<void>
MicroBench::worker(common::Rng rng, common::ClientId id)
{
    std::uint64_t serial = 0;
    while (!sim_.stopRequested()) {
        const common::Key key = rng.nextBounded(config_.numKeys);
        const common::Time start = sim_.now();
        if (rng.nextDouble() * 100.0 < config_.getPercent) {
            auto r = co_await backend_.getLatest(key);
            (void)r;
            ++gets_;
            getLat_.record(sim_.now() - start);
        } else {
            // Timestamped with current simulated time; the worker id
            // breaks ties between simultaneous writers.
            const common::Version version{sim_.now(), id};
            auto st = co_await backend_.put(
                key, "u" + std::to_string(++serial), version);
            if (st == ftl::PutStatus::DeviceFull)
                PANIC("micro-bench filled the device");
            ++puts_;
            putLat_.record(sim_.now() - start);
        }
    }
}

} // namespace workload
