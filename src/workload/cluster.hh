/**
 * @file
 * Cluster builder: wires simulator, network, clocks, storage devices,
 * FTL backends, SEMEL/MILANA servers and clients into one runnable
 * topology — the simulated equivalent of the paper's ExoGENI testbed.
 *
 * Reproduces the paper's configurations:
 *  - section 5.2 first experiment: 1 node, zero skew, N clients,
 *    SFTL vs MFTL backends (Figure 6);
 *  - 3 storage + 5 client VMs, 20 Retwis instances, PTP vs NTP
 *    (Figure 7);
 *  - 3 shards x 3 replicas, 75% read-only Retwis, local validation
 *    on/off (Figure 8);
 *  - 3 shards unreplicated with Centiman validators (Figure 9).
 */

#ifndef WORKLOAD_CLUSTER_HH
#define WORKLOAD_CLUSTER_HH

#include <memory>
#include <string>
#include <vector>

#include "clocksync/sync.hh"
#include "common/chaos.hh"
#include "common/metrics.hh"
#include "common/trace.hh"
#include "flash/ssd.hh"
#include "ftl/dram.hh"
#include "ftl/mftl.hh"
#include "ftl/sftl.hh"
#include "ftl/vftl.hh"
#include "milana/centiman.hh"
#include "milana/client.hh"
#include "milana/server.hh"
#include "net/network.hh"
#include "semel/shard_map.hh"
#include "sim/partition.hh"
#include "sim/simulator.hh"

namespace workload {

/** Storage backend flavours the paper evaluates. */
enum class BackendKind
{
    Dram,
    Mftl,
    Vftl,
    /** SFTL used directly as a single-version KV store (Figure 6). */
    SingleVersion,
};

const char *backendName(BackendKind kind);

/** Clock disciplines selectable per experiment. */
enum class ClockKind
{
    Perfect, ///< zero skew (single-machine experiments)
    PtpHw,
    PtpSw, ///< the paper's PTP configuration
    Ntp,
    Dtp,
};

const char *clockName(ClockKind kind);

struct ClusterConfig
{
    std::uint32_t numShards = 3;
    std::uint32_t replicasPerShard = 3;
    std::uint32_t numClients = 20;
    BackendKind backend = BackendKind::Mftl;
    ClockKind clocks = ClockKind::PtpSw;
    std::uint64_t numKeys = 50'000;
    std::uint64_t seed = 1;
    bool localValidation = true;
    bool centiman = false;
    std::uint32_t centimanDisseminateEvery = 1000;
    /** Device sizing: live data / usable capacity. */
    double deviceUtilization = 0.35;
    net::NetConfig net;
    /** Tuple footprint on flash (paper: 512 B). */
    std::uint32_t recordSize = 512;
    /** Flash channels per storage-server SSD (the shared single-SSD
     *  experiments use the Geometry default of 32; cluster VMs get a
     *  smaller slice, as in the paper's per-VM emulated devices). */
    std::uint32_t deviceChannels = 8;
    /**
     * When non-null, every component (clients, servers, devices, sync
     * agents) emits trace events into this log, stamped with TrueTime
     * and the emitting node's LocalTime. Null = tracing off (no cost
     * beyond one branch per site).
     */
    common::TraceLog *trace = nullptr;
    /**
     * When non-null, the cluster samples every component StatSet plus
     * a set of instantaneous gauges (clock offsets, pairwise skew,
     * SSD queue occupancy) into this registry's TimeSeriesLog on the
     * registry's interval, aligned to interval boundaries of simulated
     * time. In partitioned mode each partition samples into a private
     * registry and Cluster::finishMetrics() merges them here
     * deterministically (plus the scheduler's self-profile). Null =
     * metrics off, zero cost.
     */
    common::MetricsRegistry *metrics = nullptr;
    /**
     * Worker threads for running this ONE scenario in parallel
     * (conservative time windows, see sim/partition.hh). 0 = classic
     * single-simulator mode, byte-for-byte the historical behavior.
     * Any value >= 1 partitions the nodes (storage stack on partition
     * 0, clients round-robin over up to 7 client partitions — a fixed,
     * topology-derived layout) and produces output byte-identical for
     * EVERY thread count; it differs from simThreads=0 only because
     * message delays come from per-partition RNG streams. Requires
     * Perfect clocks and no Centiman (those couple nodes through
     * shared state). Drive the run via Cluster::now()/runUntil()/
     * runFor(), not sim().
     */
    std::uint32_t simThreads = 0;
    /**
     * When non-null, the cluster acts as the engine's ChaosSink: the
     * run façade (runUntil/runFor) interleaves simulation with
     * ChaosEngine::applyUntil at quiescent points, so fault mutations
     * obey the same between-windows rule as net::Fabric and output
     * stays byte-identical for every simThreads value. The engine is
     * also handed to every server and client (abort-reason
     * classification, fault-name trace tags) and its forked RNG
     * streams to every SSD (construction order). Arm it with
     * ChaosEngine::arm(cluster.now()) when the measured phase begins.
     */
    common::ChaosEngine *chaos = nullptr;
};

class Cluster : private common::ChaosSink
{
  public:
    explicit Cluster(const ClusterConfig &config);
    ~Cluster();

    /** The scenario's single simulator. Classic mode only — in
     *  partitioned mode (simThreads > 0) there is no such thing; use
     *  the now()/runUntil()/runFor() façade below. */
    sim::Simulator &sim();
    const ClusterConfig &config() const { return config_; }

    bool partitioned() const { return sched_ != nullptr; }

    // Mode-independent run façade (dispatches to the single simulator
    // or the partitioned scheduler).
    common::Time now() const;
    std::uint64_t runUntil(common::Time t);
    std::uint64_t runFor(common::Duration d,
                         common::Duration grace = common::kSecond);
    void requestStop();

    /** The simulator that drives client @p i (its partition's, or the
     *  single simulator in classic mode). */
    sim::Simulator &clientSim(std::uint32_t i);

    /**
     * Partitioned mode with tracing: merge the per-partition trace
     * logs into config().trace in the deterministic
     * (trueTime, partition, seq) order. Call after the run, before
     * exporting the log; classic mode is a no-op (components write to
     * config().trace directly). An attached InvariantMonitor observes
     * the merged stream here.
     */
    void finishTrace();

    /**
     * Events evicted before an attached trace observer could see them:
     * per-partition ring drops counted at finishTrace() (those events
     * never reach the merged stream). Classic mode is always 0 — the
     * observer runs on every append, before eviction. A non-zero value
     * means an InvariantMonitor verdict may have missed events; size
     * the TraceLog capacity up until this is 0.
     */
    std::uint64_t traceEventsLost() const { return traceLost_; }

    /**
     * Finish the metrics plane: flush the final partial window, and —
     * in partitioned mode — merge the per-partition series into
     * config().metrics in deterministic (name, node, windowStart)
     * order and append the scheduler self-profile as sched.* series
     * (wall-clock stall goes into the non-deterministic section).
     * Call after the run, before exporting; idempotent. No-op when
     * config().metrics is null.
     */
    void finishMetrics();

    /**
     * Partitioned-scheduler self-counters (all zero in classic mode).
     * Deterministic — pure functions of the event schedule, identical
     * for every simThreads >= 1 — so benches may embed them in
     * byte-compared reports to make barrier-count wins machine-
     * readable.
     */
    struct SchedStats
    {
        std::uint64_t windows = 0;  ///< barrier windows executed
        std::uint64_t skipped = 0;  ///< reference windows elided
        std::uint64_t barriers = 0; ///< multi-partition windows (the
                                    ///< only ones that wake workers)
        std::uint64_t events = 0;   ///< events executed, all partitions
    };
    SchedStats schedStats() const;

    /** Bulk-load the key space into every replica. Run to completion
     *  before starting the workload. */
    void populate();

    /** Start servers (leases, CTP, GC) and client watermark loops. */
    void start();

    std::uint32_t numClients() const { return config_.numClients; }
    milana::MilanaClient &client(std::uint32_t i) { return *clients_[i]; }

    milana::MilanaServer &primary(common::ShardId shard);
    milana::MilanaServer &server(std::size_t index) { return *servers_[index]; }
    std::size_t numServers() const { return servers_.size(); }

    semel::Master &master() { return master_; }
    semel::Directory &directory() { return directory_; }
    /** The network (classic), or partition 0's slice of it
     *  (partitioned — fault injection delegates to the shared
     *  Fabric either way). */
    net::Network &network();

    /** Aggregate of all client stat sets. */
    common::StatSet clientStats() const;
    /** Aggregate of all server stat sets. */
    common::StatSet serverStats() const;
    /** Clock-sync exchange stats (empty without an ensemble). */
    common::StatSet clockStats() const;
    /** Reset all client/server counters (end of warm-up). */
    void resetStats();

    /** Average pairwise client clock skew observed (ns), if an
     *  ensemble is running. */
    double avgClientSkew() const;

    /** Crash a storage node (requests to it are dropped). */
    void crashServer(common::NodeId node);

    /**
     * Fail over a shard to the given replica: repoints the master and
     * runs the recovery protocol on the new primary.
     */
    sim::Task<void> failover(common::ShardId shard,
                             common::NodeId new_primary);

  private:
    /**
     * ChaosSink: perform one fault mutation (start or heal). Called by
     * the chaos engine from runUntil()'s quiescent points only.
     * Resolves symbolic node selectors against the *current* topology
     * (so `primary:0` tracks failovers).
     */
    void applyFault(const common::FaultSpec &fault, bool start) override;
    /** Expand a symbolic selector to concrete node ids. */
    std::vector<common::NodeId> resolveSel(const common::NodeSel &sel) const;
    /** Clock indices (ensemble slots) a selector names; empty without
     *  an ensemble (Perfect clocks — clock faults are no-ops). */
    std::vector<std::size_t> resolveClockSel(const common::NodeSel &sel) const;
    /** Run without chaos interleaving (the underlying simulator or
     *  scheduler). */
    std::uint64_t rawRunUntil(common::Time t);

    void buildStorageNode(common::ShardId shard, std::uint32_t replica);
    /** Arm every component's Tracer on config_.trace (classic) or on
     *  the per-partition logs (partitioned). */
    void attachTracers();

    /** Register every component's StatSet and gauges with the
     *  registry that samples on its partition. */
    void attachMetrics();
    /** Prime delta baselines and schedule the periodic samplers
     *  (start() time, so population is not in the first window). */
    void startMetricsSamplers();
    /** Registry sampling partition @p p (config_.metrics in classic
     *  mode). */
    common::MetricsRegistry &metricsFor(std::uint32_t p);

    /** Partition that runs the storage stack (and populate). */
    sim::Simulator &rootSim();
    /** Client @p i's partition index (0 in classic mode). */
    std::uint32_t clientPartition(std::uint32_t i) const;
    /** The Network instance of partition @p p (the single network in
     *  classic mode). */
    net::Network &netFor(std::uint32_t p);
    /** Trace log partition @p p's components append to. */
    common::TraceLog &traceFor(std::uint32_t p);

    ClusterConfig config_;
    sim::Simulator sim_;
    common::Rng rng_;
    /** Partitioned-mode machinery (null in classic mode). */
    std::unique_ptr<sim::PartitionedScheduler> sched_;
    std::unique_ptr<net::Fabric> fabric_;
    std::vector<std::unique_ptr<net::Network>> partNets_;
    std::vector<std::unique_ptr<common::TraceLog>> partLogs_;
    std::vector<std::unique_ptr<common::MetricsRegistry>> partMetrics_;
    bool metricsFinished_ = false;
    std::uint64_t traceLost_ = 0;
    std::uint32_t clientPartitions_ = 0;
    std::unique_ptr<net::Network> net_;
    semel::ShardMap shardMap_;
    semel::Master master_;
    semel::Directory directory_;

    // Storage stack, one entry per server node.
    std::vector<std::unique_ptr<flash::SsdDevice>> devices_;
    std::vector<std::unique_ptr<ftl::Sftl>> sftls_;
    std::vector<std::unique_ptr<ftl::KvBackend>> backends_;
    std::vector<std::unique_ptr<clocksync::PerfectClock>> serverClocks_;
    std::vector<std::unique_ptr<milana::MilanaServer>> servers_;

    // Client clocks: either an ensemble or perfect clocks.
    std::unique_ptr<clocksync::ClockEnsemble> ensemble_;
    std::vector<std::unique_ptr<clocksync::PerfectClock>> perfectClocks_;
    milana::CentimanSystem centimanSystem_;
    std::vector<std::unique_ptr<milana::MilanaClient>> clients_;
};

} // namespace workload

#endif // WORKLOAD_CLUSTER_HH
