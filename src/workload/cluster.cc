#include "workload/cluster.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/future.hh"

namespace workload {

using common::kMicrosecond;

const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::Dram: return "DRAM";
      case BackendKind::Mftl: return "MFTL";
      case BackendKind::Vftl: return "VFTL";
      case BackendKind::SingleVersion: return "SFTL";
    }
    return "?";
}

const char *
clockName(ClockKind kind)
{
    switch (kind) {
      case ClockKind::Perfect: return "perfect";
      case ClockKind::PtpHw: return "PTP-hw";
      case ClockKind::PtpSw: return "PTP";
      case ClockKind::Ntp: return "NTP";
      case ClockKind::Dtp: return "DTP";
    }
    return "?";
}

namespace {

clocksync::SyncConfig
syncConfigFor(ClockKind kind)
{
    switch (kind) {
      case ClockKind::PtpHw: return clocksync::SyncConfig::ptpHardware();
      case ClockKind::PtpSw: return clocksync::SyncConfig::ptpSoftware();
      case ClockKind::Ntp: return clocksync::SyncConfig::ntp();
      case ClockKind::Dtp: return clocksync::SyncConfig::dtp();
      case ClockKind::Perfect: return clocksync::SyncConfig::perfect();
    }
    return clocksync::SyncConfig::perfect();
}

/**
 * Self-rescheduling sampler event: fires at every interval boundary
 * of its partition's simulated time and samples the window that just
 * ended. 16 bytes — lives in the Callback's inline storage, so the
 * steady-state sampling path allocates nothing.
 */
struct MetricsTick
{
    sim::Simulator *sim;
    common::MetricsRegistry *reg;

    void
    operator()() const
    {
        const common::Duration interval = reg->interval();
        const common::Time t = sim->now();
        reg->sample(std::max<common::Time>(t - interval, 0), t);
        // Keep sampling through the run; wind down once stop is
        // requested (the end-of-run flush covers the tail).
        if (!sim->stopRequested())
            sim->schedule(interval, MetricsTick{*this});
    }
};

void
scheduleFirstMetricsTick(sim::Simulator &sim,
                         common::MetricsRegistry *reg)
{
    const common::Duration interval = reg->interval();
    // First fire at the next interval boundary (a full interval away
    // when already aligned), so every window start is a multiple of
    // the interval.
    const common::Duration delay = interval - sim.now() % interval;
    sim.schedule(delay, MetricsTick{&sim, reg});
}

/** Flush the final (possibly partial) window [last boundary, end). */
void
flushRegistry(common::MetricsRegistry &reg, common::Time end)
{
    const common::Duration interval = reg.interval();
    common::Time ws = end / interval * interval;
    if (ws == end)
        ws = end - interval; // exactly on a boundary: one full window
    reg.sample(std::max<common::Time>(ws, 0), end);
}

} // namespace

Cluster::Cluster(const ClusterConfig &config)
    : config_(config),
      rng_(config.seed),
      shardMap_(config.numShards),
      master_(shardMap_)
{
    if (config_.simThreads > 0) {
        // Partitioned mode. The partition COUNT is fixed by the
        // topology (storage stack on partition 0 — server-to-server
        // RPCs stay window-local — clients round-robin over up to 7
        // client partitions), never by the thread count: that is what
        // makes the output byte-identical for every simThreads >= 1.
        if (config_.clocks != ClockKind::Perfect)
            PANIC("simThreads requires ClockKind::Perfect (the clock "
                  "ensemble couples all clients through one simulator)");
        if (config_.centiman)
            PANIC("simThreads does not support Centiman validation "
                  "(shared validator state)");
        clientPartitions_ =
            std::min<std::uint32_t>(std::max(config_.numClients, 1u), 7);
        const std::uint32_t parts = 1 + clientPartitions_;
        sched_ = std::make_unique<sim::PartitionedScheduler>(
            parts, config_.simThreads, config_.net.minLatency);
        fabric_ = std::make_unique<net::Fabric>(*sched_, config_.net);
        for (std::uint32_t p = 0; p < parts; ++p) {
            partNets_.push_back(std::make_unique<net::Network>(
                sched_->partition(p), config_.net, rng_.fork(),
                *fabric_, p));
            fabric_->registerNetwork(p, partNets_.back().get());
        }
        fabric_->setPartition(net::kNetworkNode, 0);
    } else {
        net_ = std::make_unique<net::Network>(sim_, config_.net,
                                              rng_.fork());
    }

    // Storage nodes: node id = shard * replicas + replica.
    for (common::ShardId shard = 0; shard < config_.numShards; ++shard) {
        std::vector<common::NodeId> replicas;
        for (std::uint32_t r = 0; r < config_.replicasPerShard; ++r) {
            buildStorageNode(shard, r);
            replicas.push_back(servers_.back()->nodeId());
        }
        master_.setReplicas(shard, replicas);
    }
    // Wire primaries to their backups.
    for (common::ShardId shard = 0; shard < config_.numShards; ++shard) {
        auto &primary_server = primary(shard);
        std::vector<semel::Server *> backups;
        for (common::NodeId node : master_.backupsOf(shard))
            backups.push_back(directory_.at(node));
        primary_server.setBackups(std::move(backups));
    }

    // Storage nodes (and their RPC peers) all live on partition 0.
    if (fabric_ != nullptr) {
        for (const auto &server : servers_)
            fabric_->setPartition(server->nodeId(), 0);
    }

    // Client clocks.
    if (config_.clocks != ClockKind::Perfect) {
        ensemble_ = std::make_unique<clocksync::ClockEnsemble>(
            sim_, config_.numClients, syncConfigFor(config_.clocks),
            rng_);
    }

    centimanSystem_ =
        milana::CentimanSystem(config_.centimanDisseminateEvery);

    semel::Client::Config client_config;
    milana::MilanaClient::TxnConfig txn_config;
    txn_config.localValidation = config_.localValidation;
    for (std::uint32_t i = 0; i < config_.numClients; ++i) {
        const common::NodeId node = 1000 + i;
        const std::uint32_t part = clientPartition(i);
        sim::Simulator &client_sim =
            sched_ != nullptr ? sched_->partition(part) : sim_;
        if (fabric_ != nullptr)
            fabric_->setPartition(node, part);
        clocksync::Clock *clock = nullptr;
        if (ensemble_ != nullptr) {
            clock = &ensemble_->clock(i);
        } else {
            perfectClocks_.push_back(
                std::make_unique<clocksync::PerfectClock>(client_sim));
            clock = perfectClocks_.back().get();
        }
        if (config_.centiman) {
            clients_.push_back(std::make_unique<milana::CentimanClient>(
                client_sim, netFor(part), node, i + 1, *clock, master_,
                directory_, client_config, txn_config, centimanSystem_));
        } else {
            clients_.push_back(std::make_unique<milana::MilanaClient>(
                client_sim, netFor(part), node, i + 1, *clock, master_,
                directory_, client_config, txn_config));
        }
    }

    // Chaos wiring: servers classify clock-suspect aborts, clients
    // classify fault-window timeouts and tag txn traces, devices get
    // dedicated fault-randomness streams (forked in construction
    // order — part of the determinism contract).
    if (config_.chaos != nullptr) {
        for (auto &server : servers_)
            server->setChaos(config_.chaos);
        for (auto &client : clients_)
            client->setChaos(config_.chaos);
        for (auto &device : devices_)
            if (device != nullptr)
                device->setFaultRng(config_.chaos->forkRng());
    }

    // Declare the cross-partition communication topology for the
    // scheduler's per-edge lookahead matrix: clients talk only to
    // storage (hub), never to each other — so client partitions
    // constrain one another only through the two-hop path via
    // partition 0, and idle partitions stop constraining anyone.
    // Every node's partition is set by now; see the declareRoute
    // contract in net/network.hh.
    if (fabric_ != nullptr) {
        for (std::uint32_t i = 0; i < config_.numClients; ++i) {
            const common::NodeId c = 1000 + i;
            for (const auto &server : servers_) {
                fabric_->declareRoute(c, server->nodeId());
                fabric_->declareRoute(server->nodeId(), c);
            }
        }
        fabric_->applyLookahead();
    }

    if (config_.trace != nullptr)
        attachTracers();
    if (config_.metrics != nullptr)
        attachMetrics();
}

sim::Simulator &
Cluster::sim()
{
    if (sched_ != nullptr)
        PANIC("Cluster::sim() has no meaning with simThreads > 0; use "
              "the now()/runUntil()/runFor() facade");
    return sim_;
}

sim::Simulator &
Cluster::rootSim()
{
    return sched_ != nullptr ? sched_->partition(0) : sim_;
}

std::uint32_t
Cluster::clientPartition(std::uint32_t i) const
{
    return sched_ != nullptr ? 1 + i % clientPartitions_ : 0;
}

net::Network &
Cluster::netFor(std::uint32_t p)
{
    return sched_ != nullptr ? *partNets_[p] : *net_;
}

net::Network &
Cluster::network()
{
    return netFor(0);
}

common::TraceLog &
Cluster::traceFor(std::uint32_t p)
{
    return sched_ != nullptr ? *partLogs_[p] : *config_.trace;
}

common::Time
Cluster::now() const
{
    return sched_ != nullptr ? sched_->now() : sim_.now();
}

std::uint64_t
Cluster::rawRunUntil(common::Time t)
{
    return sched_ != nullptr ? sched_->runUntil(t) : sim_.runUntil(t);
}

std::uint64_t
Cluster::runUntil(common::Time t)
{
    common::ChaosEngine *chaos = config_.chaos;
    if (chaos == nullptr)
        return rawRunUntil(t);
    // Interleave simulation with the fault schedule: stop at each
    // pending action time, mutate while quiescent (the same
    // between-windows rule net::Fabric documents), resume. Identical
    // in classic and partitioned mode, so chaos runs stay
    // byte-identical for every simThreads value.
    std::uint64_t events = 0;
    for (common::Time next = chaos->nextActionAt();
         next >= 0 && next <= t; next = chaos->nextActionAt()) {
        if (next > now())
            events += rawRunUntil(next);
        chaos->applyUntil(now(), *this);
    }
    events += rawRunUntil(t);
    return events;
}

std::uint64_t
Cluster::runFor(common::Duration d, common::Duration grace)
{
    // Mirrors Simulator::runFor, with the chaos interleave in the
    // measured span; the wind-down grace runs fault-schedule-free.
    std::uint64_t n = runUntil(now() + d);
    requestStop();
    n += rawRunUntil(now() + grace);
    return n;
}

void
Cluster::requestStop()
{
    if (sched_ != nullptr)
        sched_->requestStop();
    else
        sim_.requestStop();
}

sim::Simulator &
Cluster::clientSim(std::uint32_t i)
{
    return sched_ != nullptr ? sched_->partition(clientPartition(i))
                             : sim_;
}

void
Cluster::finishTrace()
{
    if (sched_ == nullptr || config_.trace == nullptr)
        return;
    std::vector<const common::TraceLog *> parts;
    for (const auto &log : partLogs_)
        parts.push_back(log.get());
    common::mergeTraceLogs(parts, *config_.trace);
    for (auto &log : partLogs_) {
        traceLost_ += log->dropped();
        log->clear();
    }
}

void
Cluster::attachTracers()
{
    if (sched_ != nullptr) {
        // Each partition appends to its own log (appends happen on
        // worker threads); ids are strided so span/trace ids stay
        // globally unique and thread-count independent. finishTrace()
        // merges the logs deterministically after the run.
        const std::uint32_t parts = sched_->numPartitions();
        for (std::uint32_t p = 0; p < parts; ++p) {
            partLogs_.push_back(std::make_unique<common::TraceLog>(
                config_.trace->capacity()));
            partLogs_.back()->strideIds(p + 1, parts);
        }
        for (std::uint32_t p = 0; p < parts; ++p) {
            sim::Simulator *psim = &sched_->partition(p);
            const auto ptrue = [psim] { return psim->now(); };
            partNets_[p]->tracer().attach(*partLogs_[p],
                                          net::kNetworkNode, ptrue,
                                          ptrue);
        }
    }

    sim::Simulator *root = &rootSim();
    const auto true_now = [root] { return root->now(); };
    if (sched_ == nullptr) {
        // The network has no drifted clock of its own; its net.rpc
        // spans carry TrueTime in both stamps.
        net_->tracer().attach(*config_.trace, net::kNetworkNode,
                              true_now, true_now);
    }
    if (config_.chaos != nullptr) {
        // Inject/heal instants land on the storage partition's log;
        // they are appended only at quiescent points, from the driver.
        config_.chaos->tracer().attach(traceFor(0), net::kNetworkNode,
                                       true_now, true_now);
    }

    for (std::size_t i = 0; i < servers_.size(); ++i) {
        milana::MilanaServer *server = servers_[i].get();
        clocksync::Clock *clock = serverClocks_[i].get();
        const auto local_now = [clock] { return clock->localNow(); };
        common::TraceLog &log = traceFor(0);
        server->tracer().attach(log, server->nodeId(), true_now,
                                local_now);
        if (devices_[i] != nullptr)
            devices_[i]->tracer().attach(log, server->nodeId(), true_now,
                                         local_now);
    }
    for (std::uint32_t i = 0; i < config_.numClients; ++i) {
        milana::MilanaClient *client = clients_[i].get();
        clocksync::Clock *clock = &client->clock();
        const auto local_now = [clock] { return clock->localNow(); };
        const std::uint32_t part = clientPartition(i);
        sim::Simulator *psim = &clientSim(i);
        const auto ptrue = [psim] { return psim->now(); };
        client->tracer().attach(traceFor(part), client->nodeId(), ptrue,
                                local_now);
        if (ensemble_ != nullptr)
            ensemble_->agent(i).tracer().attach(*config_.trace,
                                                client->nodeId(),
                                                true_now, local_now);
    }
}

common::MetricsRegistry &
Cluster::metricsFor(std::uint32_t p)
{
    return sched_ != nullptr ? *partMetrics_[p] : *config_.metrics;
}

void
Cluster::attachMetrics()
{
    if (sched_ != nullptr) {
        // Mirror the per-partition trace logs: each partition samples
        // only its own components, from its own simulator thread, into
        // a private registry; finishMetrics() merges deterministically.
        const common::MetricsRegistry &root = *config_.metrics;
        const std::uint32_t parts = sched_->numPartitions();
        for (std::uint32_t p = 0; p < parts; ++p)
            partMetrics_.push_back(
                std::make_unique<common::MetricsRegistry>(
                    root.interval(), root.log().windowCapacity()));
    }

    // Storage stack: partition 0.
    common::MetricsRegistry &m0 = metricsFor(0);
    for (std::size_t i = 0; i < servers_.size(); ++i) {
        const common::NodeId node = servers_[i]->nodeId();
        m0.addStatSet("server.", node, servers_[i]->stats());
        if (devices_[i] != nullptr) {
            flash::SsdDevice *dev = devices_[i].get();
            m0.addStatSet("flash.", node, dev->stats());
            m0.addGauge("flash.ssd.inflight", node, [dev] {
                return static_cast<double>(dev->inflightOps());
            });
            m0.addGauge("flash.ssd.queued", node, [dev] {
                return static_cast<double>(dev->queuedOps());
            });
            m0.addGauge("flash.ssd.busy_channels", node, [dev] {
                return static_cast<double>(dev->busyChannels());
            });
        }
    }

    for (std::uint32_t i = 0; i < config_.numClients; ++i) {
        common::MetricsRegistry &m = metricsFor(clientPartition(i));
        milana::MilanaClient *client = clients_[i].get();
        m.addStatSet("client.", client->nodeId(), client->stats());
        clocksync::Clock *clock = &client->clock();
        m.addGauge("clocksync.offset_ns", client->nodeId(), [clock] {
            return static_cast<double>(clock->currentOffset());
        });
    }

    if (ensemble_ != nullptr) {
        // Classic mode only (partitioned mode requires Perfect
        // clocks). Attributed to the network pseudo-node: the skew is
        // a property of the whole ensemble, not of one client.
        clocksync::ClockEnsemble *ens = ensemble_.get();
        m0.addStatSet("clocksync.", net::kNetworkNode,
                      ensemble_->stats());
        m0.addGauge("clocksync.max_pairwise_skew_ns", net::kNetworkNode,
                    [ens] {
                        return static_cast<double>(
                            ens->instantaneousMaxPairwiseSkew());
                    });
    }

    if (config_.chaos != nullptr) {
        // Chaos bookkeeping rides the network pseudo-node: faults are
        // cluster-wide events, not any one node's. The gauge is a pure
        // read (the engine mutates only between windows).
        common::ChaosEngine *chaos = config_.chaos;
        m0.addStatSet("chaos.", net::kNetworkNode, chaos->stats());
        m0.addGauge("chaos.active_faults", net::kNetworkNode, [chaos] {
            return static_cast<double>(chaos->activeCount());
        });
    }
}

void
Cluster::startMetricsSamplers()
{
    if (sched_ != nullptr) {
        sched_->enableProfile(config_.metrics->interval());
        for (std::uint32_t p = 0; p < sched_->numPartitions(); ++p) {
            partMetrics_[p]->prime();
            scheduleFirstMetricsTick(sched_->partition(p),
                                     partMetrics_[p].get());
        }
    } else {
        config_.metrics->prime();
        scheduleFirstMetricsTick(sim_, config_.metrics);
    }
}

void
Cluster::finishMetrics()
{
    if (config_.metrics == nullptr || metricsFinished_)
        return;
    metricsFinished_ = true;
    const common::Time end = now();
    if (sched_ == nullptr) {
        flushRegistry(*config_.metrics, end);
        return;
    }
    sched_->flushProfile();
    std::vector<const common::TimeSeriesLog *> parts;
    for (auto &reg : partMetrics_) {
        flushRegistry(*reg, end);
        parts.push_back(&reg->log());
    }
    common::mergeTimeSeries(parts, config_.metrics->log());

    // Scheduler self-profile -> sched.* series. Events and mailbox
    // traffic are pure functions of the event schedule ("node" is the
    // partition index); the barrier wall-clock stall is real time and
    // goes into the non-deterministic section.
    common::TimeSeriesLog &log = config_.metrics->log();
    for (const auto &row : sched_->profile()) {
        common::MetricPoint p;
        p.windowStart = row.windowStart;
        p.windowEnd = row.windowEnd;
        for (std::size_t part = 0; part < row.events.size(); ++part) {
            const auto node = static_cast<common::NodeId>(part);
            p.value = static_cast<double>(row.events[part]);
            log.addPoint("sched.events", node,
                         common::SeriesKind::Counter, p);
            p.value = static_cast<double>(row.mailbox[part]);
            log.addPoint("sched.mailbox_in", node,
                         common::SeriesKind::Counter, p);
        }
        p.value = static_cast<double>(row.windows);
        log.addPoint("sched.windows", 0, common::SeriesKind::Counter,
                     p);
        p.value = static_cast<double>(row.skipped);
        log.addPoint("sched.windows_skipped", 0,
                     common::SeriesKind::Counter, p);
        p.value = static_cast<double>(row.barriers);
        log.addPoint("sched.barriers", 0,
                     common::SeriesKind::Counter, p);
        p.value = static_cast<double>(row.wallNs);
        log.addPoint("sched.window_wall_ns", 0,
                     common::SeriesKind::Counter, p,
                     /*deterministic=*/false);
    }
}

Cluster::SchedStats
Cluster::schedStats() const
{
    SchedStats s;
    if (sched_ == nullptr)
        return s;
    s.windows = sched_->windowsExecuted();
    s.skipped = sched_->windowsSkipped();
    s.barriers = sched_->barriersCrossed();
    s.events = sched_->eventsExecuted();
    return s;
}

Cluster::~Cluster() = default;

void
Cluster::buildStorageNode(common::ShardId shard, std::uint32_t replica)
{
    const common::NodeId node = shard * config_.replicasPerShard + replica;
    sim::Simulator &sim = rootSim();

    // Size the device for this shard's share of the key space (with
    // margin for hash imbalance), at the configured utilization.
    const std::uint64_t shard_keys =
        config_.numKeys / config_.numShards + config_.numKeys / 10 + 64;
    const std::uint64_t shard_bytes =
        shard_keys * config_.recordSize;

    ftl::KvBackend *backend = nullptr;
    switch (config_.backend) {
      case BackendKind::Dram: {
        devices_.push_back(nullptr);
        sftls_.push_back(nullptr);
        ftl::DramBackend::Config cfg;
        cfg.expectedKeys = shard_keys;
        auto dram = std::make_unique<ftl::DramBackend>(sim, cfg);
        backend = dram.get();
        backends_.push_back(std::move(dram));
        break;
      }
      case BackendKind::Mftl: {
        auto geo = flash::Geometry::scaledFor(shard_bytes,
                                              config_.deviceUtilization);
        geo.numChannels = config_.deviceChannels;
        devices_.push_back(
            std::make_unique<flash::SsdDevice>(sim, geo));
        sftls_.push_back(nullptr);
        ftl::Mftl::Config cfg;
        cfg.recordSize = config_.recordSize;
        cfg.expectedKeys = shard_keys;
        auto mftl = std::make_unique<ftl::Mftl>(sim, *devices_.back(),
                                                cfg);
        backend = mftl.get();
        backends_.push_back(std::move(mftl));
        break;
      }
      case BackendKind::Vftl: {
        auto geo = flash::Geometry::scaledFor(shard_bytes,
                                              config_.deviceUtilization);
        geo.numChannels = config_.deviceChannels;
        devices_.push_back(
            std::make_unique<flash::SsdDevice>(sim, geo));
        sftls_.push_back(std::make_unique<ftl::Sftl>(
            sim, *devices_.back(), ftl::Sftl::Config{}));
        ftl::Vftl::Config cfg;
        cfg.recordSize = config_.recordSize;
        cfg.expectedKeys = shard_keys;
        auto vftl = std::make_unique<ftl::Vftl>(sim, *sftls_.back(),
                                                cfg);
        backend = vftl.get();
        backends_.push_back(std::move(vftl));
        break;
      }
      case BackendKind::SingleVersion: {
        // Slot mapping covers the whole key range.
        auto geo = flash::Geometry::scaledFor(
            config_.numKeys * config_.recordSize, 0.5);
        geo.numChannels = config_.deviceChannels;
        devices_.push_back(
            std::make_unique<flash::SsdDevice>(sim, geo));
        sftls_.push_back(std::make_unique<ftl::Sftl>(
            sim, *devices_.back(), ftl::Sftl::Config{}));
        ftl::SingleVersionKv::Config cfg;
        cfg.recordSize = config_.recordSize;
        cfg.capacityKeys = config_.numKeys;
        auto kv = std::make_unique<ftl::SingleVersionKv>(
            sim, *sftls_.back(), cfg);
        backend = kv.get();
        backends_.push_back(std::move(kv));
        break;
      }
    }

    serverClocks_.push_back(
        std::make_unique<clocksync::PerfectClock>(sim));

    semel::Server::Config server_config;
    server_config.backupAcksNeeded =
        config_.replicasPerShard > 1
            ? (config_.replicasPerShard - 1) / 2
            : 0;
    if (config_.replicasPerShard > 1 &&
        server_config.backupAcksNeeded == 0)
        server_config.backupAcksNeeded = 1; // 2 replicas: wait the one
    server_config.expectedClients = config_.numClients;

    milana::MilanaServer::MilanaConfig milana_config;
    milana_config.enableLeases = config_.replicasPerShard > 1;

    servers_.push_back(std::make_unique<milana::MilanaServer>(
        sim, netFor(0), node, shard, *backend, *serverClocks_.back(),
        server_config, milana_config, master_, directory_));
    directory_.add(servers_.back().get());
}

milana::MilanaServer &
Cluster::primary(common::ShardId shard)
{
    auto *server = dynamic_cast<milana::MilanaServer *>(
        directory_.at(master_.primaryOf(shard)));
    if (server == nullptr)
        PANIC("shard " << shard << " has no primary");
    return *server;
}

void
Cluster::populate()
{
    // Pre-size every server's per-key DRAM state (and its backend's
    // mapping table) for this shard's share of the key space, so the
    // bulk load below performs zero rehashes.
    const std::uint64_t shard_keys =
        config_.numKeys / config_.numShards + config_.numKeys / 10 + 64;
    for (auto &server : servers_)
        server->reserveKeys(shard_keys);

    const std::uint32_t workers = 64;
    auto remaining = std::make_shared<std::uint32_t>(workers);
    for (std::uint32_t w = 0; w < workers; ++w) {
        sim::spawn([](Cluster *self, std::uint32_t worker,
                      std::uint32_t stride,
                      std::shared_ptr<std::uint32_t> remaining)
                       -> sim::Task<void> {
            const common::Version load_version{1, 0};
            for (common::Key key = worker; key < self->config_.numKeys;
                 key += stride) {
                const auto shard =
                    self->master_.shardMap().shardOf(key);
                for (common::NodeId node :
                     self->master_.replicasOf(shard)) {
                    auto *server = dynamic_cast<milana::MilanaServer *>(
                        self->directory_.at(node));
                    co_await server->loadKey(key, "init", load_version);
                }
            }
            --*remaining;
        }(this, w, workers, remaining));
    }
    // Populate runs entirely on the storage partition (the servers all
    // live there), single-threaded even in partitioned mode.
    rootSim().run();
    if (*remaining != 0)
        PANIC("population did not finish");
    // Partition 0 is now ahead of the (still-empty) client partitions;
    // fast-forward them so the first real window starts aligned.
    if (sched_ != nullptr)
        sched_->alignNow();
}

void
Cluster::start()
{
    for (auto &backend : backends_) {
        if (auto *mftl = dynamic_cast<ftl::Mftl *>(backend.get()))
            mftl->start();
        else if (auto *vftl = dynamic_cast<ftl::Vftl *>(backend.get()))
            vftl->start();
    }
    for (auto &server : servers_)
        server->start();
    if (ensemble_ != nullptr)
        ensemble_->start();
    for (auto &client : clients_)
        client->start();
    if (config_.metrics != nullptr)
        startMetricsSamplers();
}

common::StatSet
Cluster::clientStats() const
{
    common::StatSet merged;
    for (const auto &client : clients_)
        merged.merge(client->stats());
    return merged;
}

common::StatSet
Cluster::serverStats() const
{
    common::StatSet merged;
    for (const auto &server : servers_)
        merged.merge(server->stats());
    return merged;
}

common::StatSet
Cluster::clockStats() const
{
    common::StatSet merged;
    if (ensemble_ != nullptr)
        merged.merge(ensemble_->stats());
    return merged;
}

void
Cluster::resetStats()
{
    for (auto &client : clients_)
        client->stats().reset();
    for (auto &server : servers_)
        server->stats().reset();
}

double
Cluster::avgClientSkew() const
{
    return ensemble_ == nullptr ? 0.0 : ensemble_->avgPairwiseSkew();
}

void
Cluster::crashServer(common::NodeId node)
{
    network().setNodeDown(node, true);
}

std::vector<common::NodeId>
Cluster::resolveSel(const common::NodeSel &sel) const
{
    using Kind = common::NodeSel::Kind;
    std::vector<common::NodeId> nodes;
    switch (sel.kind) {
      case Kind::None:
        break;
      case Kind::Node:
        nodes.push_back(static_cast<common::NodeId>(sel.index));
        break;
      case Kind::Primary:
        nodes.push_back(master_.primaryOf(
            static_cast<common::ShardId>(sel.index)));
        break;
      case Kind::Backup: {
        const auto backups = master_.backupsOf(
            static_cast<common::ShardId>(sel.index));
        if (backups.empty())
            break;
        const auto r = std::min<std::size_t>(
            static_cast<std::size_t>(std::max<std::int64_t>(sel.sub, 0)),
            backups.size() - 1);
        nodes.push_back(backups[r]);
        break;
      }
      case Kind::Client:
        nodes.push_back(static_cast<common::NodeId>(1000 + sel.index));
        break;
      case Kind::AllClients:
        for (std::uint32_t i = 0; i < config_.numClients; ++i)
            nodes.push_back(1000 + i);
        break;
      case Kind::AllServers:
        for (const auto &server : servers_)
            nodes.push_back(server->nodeId());
        break;
      case Kind::All:
        for (const auto &server : servers_)
            nodes.push_back(server->nodeId());
        for (std::uint32_t i = 0; i < config_.numClients; ++i)
            nodes.push_back(1000 + i);
        break;
    }
    return nodes;
}

std::vector<std::size_t>
Cluster::resolveClockSel(const common::NodeSel &sel) const
{
    using Kind = common::NodeSel::Kind;
    std::vector<std::size_t> clocks;
    if (ensemble_ == nullptr)
        return clocks; // Perfect clocks: clock faults are no-ops
    switch (sel.kind) {
      case Kind::Node:   // `clock:N` parses as a raw index
      case Kind::Client: // `client:N` is the same slot
        if (sel.index >= 0 &&
            static_cast<std::uint64_t>(sel.index) < config_.numClients)
            clocks.push_back(static_cast<std::size_t>(sel.index));
        break;
      case Kind::AllClients:
      case Kind::All:
        for (std::uint32_t i = 0; i < config_.numClients; ++i)
            clocks.push_back(i);
        break;
      default:
        break;
    }
    return clocks;
}

void
Cluster::applyFault(const common::FaultSpec &fault, bool start)
{
    using common::FaultKind;
    const auto deviceFor =
        [this](common::NodeId node) -> flash::SsdDevice * {
        for (std::size_t i = 0; i < servers_.size(); ++i)
            if (servers_[i]->nodeId() == node)
                return devices_[i].get();
        return nullptr;
    };

    switch (fault.kind) {
      case FaultKind::NodeCrash:
        for (common::NodeId node : resolveSel(fault.selA)) {
            netFor(0).setNodeDown(node, start);
            if (start && fault.failover && node < 1000) {
                // Promote the first surviving backup of the crashed
                // node's shard, mirroring what an external failure
                // detector + master would do.
                const common::ShardId shard =
                    node / config_.replicasPerShard;
                if (master_.primaryOf(shard) == node) {
                    const auto backups = master_.backupsOf(shard);
                    if (!backups.empty())
                        sim::spawn(failover(shard, backups.front()));
                }
            }
        }
        break;
      case FaultKind::LinkPartition:
        for (common::NodeId from : resolveSel(fault.selA)) {
            for (common::NodeId to : resolveSel(fault.selB)) {
                if (from == to)
                    continue;
                if (fault.oneway)
                    netFor(0).setLinkBrokenOneWay(from, to, start);
                else
                    netFor(0).setLinkBroken(from, to, start);
            }
        }
        break;
      case FaultKind::LinkDelay: {
        const double factor = start ? fault.magnitude : 1.0;
        if (fault.selA.kind == common::NodeSel::Kind::All &&
            fault.selB.kind == common::NodeSel::Kind::None) {
            netFor(0).setDelayFactor(factor);
            break;
        }
        const auto a = resolveSel(fault.selA);
        const auto b = fault.selB.kind == common::NodeSel::Kind::None
                           ? resolveSel(common::NodeSel{
                                 common::NodeSel::Kind::All, 0, 0})
                           : resolveSel(fault.selB);
        for (common::NodeId from : a)
            for (common::NodeId to : b)
                if (from != to)
                    netFor(0).setLinkDelayFactor(from, to, factor);
        break;
      }
      case FaultKind::ClockStep:
        // Healing a step is meaningless (the leap happened); the
        // duration only bounds the "fault active" tagging window.
        if (start)
            for (std::size_t c : resolveClockSel(fault.selA))
                ensemble_->driftClock(c).step(
                    static_cast<common::Duration>(fault.magnitude));
        break;
      case FaultKind::ClockStuck:
        for (std::size_t c : resolveClockSel(fault.selA))
            ensemble_->driftClock(c).setStuck(start);
        break;
      case FaultKind::ClockDrift:
        // Heal removes the runaway component (oscillator repaired).
        for (std::size_t c : resolveClockSel(fault.selA))
            ensemble_->driftClock(c).injectDriftPpm(
                start ? fault.magnitude : -fault.magnitude);
        break;
      case FaultKind::ClockMasterDown:
        if (ensemble_ != nullptr)
            ensemble_->setMasterDown(start);
        break;
      case FaultKind::SsdSlowChannel:
        for (common::NodeId node : resolveSel(fault.selA))
            if (flash::SsdDevice *dev = deviceFor(node);
                dev != nullptr && fault.channel >= 0 &&
                static_cast<std::uint32_t>(fault.channel) <
                    dev->geometry().numChannels)
                dev->setChannelLatencyFactor(
                    static_cast<std::uint32_t>(fault.channel),
                    start ? fault.magnitude : 1.0);
        break;
      case FaultKind::SsdReadRetry:
        for (common::NodeId node : resolveSel(fault.selA))
            if (flash::SsdDevice *dev = deviceFor(node))
                dev->setReadRetryStorm(
                    start ? fault.magnitude : 0.0,
                    static_cast<std::uint32_t>(
                        std::max<std::int64_t>(fault.retries, 0)));
        break;
      case FaultKind::SsdGcStorm:
        for (common::NodeId node : resolveSel(fault.selA)) {
            flash::SsdDevice *dev = deviceFor(node);
            if (dev == nullptr)
                continue;
            if (start)
                dev->startGcStorm();
            else
                dev->stopGcStorm();
        }
        break;
    }
}

sim::Task<void>
Cluster::failover(common::ShardId shard, common::NodeId new_primary)
{
    master_.failover(shard, new_primary);
    auto &promoted = primary(shard);
    std::vector<semel::Server *> backups;
    for (common::NodeId node : master_.backupsOf(shard))
        backups.push_back(directory_.at(node));
    promoted.setBackups(std::move(backups));
    co_await promoted.recoverAsPrimary();
}

} // namespace workload
