/**
 * @file
 * Deterministic time-ordered event queue.
 *
 * Events scheduled for the same instant fire in the order they were
 * scheduled (FIFO tie-break via a monotone sequence number), so a run
 * is fully reproducible regardless of library heap implementation
 * details.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace sim {

using common::Duration;
using common::Time;

/** A scheduled callback. */
struct Event
{
    Time when = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
};

class EventQueue
{
  public:
    /** Schedule @p fn to run at absolute time @p when. */
    void schedule(Time when, std::function<void()> fn);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Time of the earliest pending event. Queue must be non-empty. */
    Time nextTime() const;

    /** Remove and return the earliest pending event. */
    Event pop();

  private:
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace sim

#endif // SIM_EVENT_QUEUE_HH
