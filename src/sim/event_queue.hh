/**
 * @file
 * Deterministic time-ordered event queue.
 *
 * Events scheduled for the same instant fire in the order they were
 * scheduled (FIFO tie-break via a monotone sequence number), so a run
 * is fully reproducible regardless of library heap implementation
 * details.
 *
 * Hot-path design (see PERFORMANCE.md):
 *
 *  - The heap is a hand-rolled 4-ary min-heap of 24-byte POD entries
 *    (when, seq, slot index) over a std::vector; the callback and its
 *    TraceContext live in a recycled slot slab that sift operations
 *    never touch. Four children per node halves the tree depth (fewer
 *    entry moves per pop) and keeps each child group within two cache
 *    lines. The old std::priority_queue sifted whole events
 *    (const_cast to move out of top(), std::function payload
 *    copied/moved on every compare-swap).
 *
 *  - Events scheduled for the instant currently being processed (the
 *    overwhelmingly common delay-0 case: future resolutions, semaphore
 *    pumps, mutex handoffs) bypass the heap entirely and go into a
 *    FIFO bucket drained before time advances. A burst of N
 *    same-instant events costs N appends instead of N sift-up/down
 *    pairs. Ordering stays exact: any heap event at the bucket's
 *    instant was scheduled before time reached that instant, so it has
 *    a smaller seq than every bucket entry and is drained first.
 *
 *  - Each event carries the TraceContext it was scheduled under — the
 *    run loop installs it directly instead of wrapping the callback in
 *    a capture closure (the old wrapContext double-closure).
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "common/trace.hh"
#include "common/types.hh"
#include "sim/callback.hh"

namespace sim {

using common::Duration;
using common::Time;

/** A scheduled callback plus the context it was scheduled under. */
struct Event
{
    Time when = 0;
    std::uint64_t seq = 0;
    common::TraceContext ctx;
    Callback fn;
};

class EventQueue
{
  public:
    /** Schedule @p fn at absolute time @p when, to run under @p ctx.
     *  Takes the callback by rvalue reference so the only relocation
     *  is the one into the slot slab (or bucket). */
    void schedule(Time when, const common::TraceContext &ctx,
                  Callback &&fn);

    bool
    empty() const
    {
        return heap_.empty() && bucketHead_ >= bucket_.size();
    }

    std::size_t
    size() const
    {
        return heap_.size() + (bucket_.size() - bucketHead_);
    }

    /** Time of the earliest pending event. Queue must be non-empty. */
    Time
    nextTime() const
    {
        if (bucketHead_ < bucket_.size())
            return curTime_;
        if (!heap_.empty())
            return heap_.front().when;
        return nextTimeEmpty(); // out-of-line PANIC
    }

    /** Remove and return the earliest pending event. */
    Event pop();

  private:
    /** Cold path of nextTime(): always PANICs (queue empty). */
    [[noreturn]] Time nextTimeEmpty() const;

    /** Children per heap node. */
    static constexpr std::size_t kArity = 4;

    /** What the heap actually sifts: trivially copyable, 24 bytes. */
    struct HeapEntry
    {
        Time when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Payload parked out of the heap's way until its entry pops. */
    struct Slot
    {
        common::TraceContext ctx;
        Callback fn;
    };

    /** Strict "fires before": min-order on (when, seq). Compared as one
     *  128-bit key — compiles to cmp/sbb with no data-dependent branch,
     *  which matters because real workloads fire bursts of equal-when
     *  events (a two-level compare mispredicts on the tie check). */
    static bool
    firesBefore(const HeapEntry &a, const HeapEntry &b)
    {
        const auto key = [](const HeapEntry &e) {
            return (static_cast<unsigned __int128>(
                        static_cast<std::uint64_t>(e.when))
                    << 64) |
                   e.seq;
        };
        return key(a) < key(b);
    }

    void siftUp(std::size_t i);
    /** Place @p e (the displaced tail entry) starting the hole at @p i. */
    void siftDown(std::size_t i, HeapEntry e);

    Event popHeap();

    std::vector<HeapEntry> heap_;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    /** FIFO of events at curTime_; head index instead of pop_front so
     *  the storage is reused burst after burst. */
    std::vector<Event> bucket_;
    std::size_t bucketHead_ = 0;
    /** Instant of the most recently popped event; schedule() routes
     *  same-instant events into the bucket. */
    Time curTime_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace sim

#endif // SIM_EVENT_QUEUE_HH
