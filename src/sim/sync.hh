/**
 * @file
 * Cooperative synchronization primitives for simulation coroutines.
 *
 * These are not thread-safe and need not be: the simulator is
 * single-threaded. They exist because coroutines interleave at await
 * points, which creates the same logical races as preemptive threads.
 *
 *  - Semaphore: bounded resource (e.g. an SSD's hardware queue depth).
 *  - Mutex:     exclusive section spanning awaits (e.g. GC vs. writes).
 *  - Quorum:    wait until k of n expected arrivals (replication ACKs).
 */

#ifndef SIM_SYNC_HH
#define SIM_SYNC_HH

#include <coroutine>
#include <cstdint>
#include <deque>
#include <utility>

#include "common/logging.hh"
#include "common/trace.hh"
#include "sim/simulator.hh"

namespace sim {

namespace detail {

/**
 * A suspended coroutine plus the TraceContext it was suspended under.
 * Wakeups are scheduled from the *releaser's* stack (release/unlock/
 * arrive), so the waiter's context must be pinned at suspension and
 * the wakeup event scheduled under it (scheduleWithContext) —
 * otherwise the waiter would be stamped with the releaser's
 * transaction.
 */
struct Waiter
{
    std::coroutine_handle<> handle;
    common::TraceContext ctx;

    static Waiter
    suspend(std::coroutine_handle<> h)
    {
        return Waiter{h, common::currentTraceContext()};
    }

    /** Schedule the resume as a zero-delay event under the waiter's
     *  own context; the event captures only the handle. */
    void
    wake(Simulator &sim) const
    {
        sim.scheduleWithContext(0, ctx, [h = handle] { h.resume(); });
    }
};

} // namespace detail

/** Counting semaphore with FIFO wakeup. */
class Semaphore
{
  public:
    Semaphore(Simulator &sim, std::int64_t initial)
        : sim_(sim), count_(initial)
    {
    }

    /** Awaitable acquire of one unit. */
    auto
    acquire()
    {
        struct Awaiter
        {
            Semaphore &sem;
            bool fast = false;

            bool
            await_ready() noexcept
            {
                if (sem.count_ > 0 && sem.waiters_.empty()) {
                    fast = true;
                    return true;
                }
                return false;
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                sem.waiters_.push_back(detail::Waiter::suspend(h));
            }

            // The slow path's unit was already reserved by pump().
            void
            await_resume()
            {
                if (fast)
                    --sem.count_;
            }
        };
        return Awaiter{*this};
    }

    /** Release one unit, waking the oldest waiter (as a new event). */
    void
    release()
    {
        ++count_;
        pump();
    }

    std::int64_t available() const { return count_; }
    std::size_t waiting() const { return waiters_.size(); }

  private:
    void
    pump()
    {
        while (count_ > 0 && !waiters_.empty()) {
            auto w = waiters_.front();
            waiters_.pop_front();
            // Reserve the unit here so an acquire() racing in before
            // the scheduled resume cannot steal it.
            --count_;
            w.wake(sim_);
        }
    }

    friend struct AcquireAwaiter;

    Simulator &sim_;
    std::int64_t count_;
    std::deque<detail::Waiter> waiters_;
};

/** Async mutex: exclusive ownership across awaits; FIFO handoff. */
class Mutex
{
  public:
    explicit Mutex(Simulator &sim) : sim_(sim) {}

    auto
    lock()
    {
        struct Awaiter
        {
            Mutex &mtx;

            bool
            await_ready() const noexcept
            {
                return !mtx.locked_ && mtx.waiters_.empty();
            }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                mtx.waiters_.push_back(detail::Waiter::suspend(h));
            }

            void await_resume() { mtx.locked_ = true; }
        };
        return Awaiter{*this};
    }

    void
    unlock()
    {
        if (!locked_)
            PANIC("unlock of unlocked mutex");
        locked_ = false;
        if (!waiters_.empty()) {
            auto w = waiters_.front();
            waiters_.pop_front();
            locked_ = true; // hand off directly; awaiter re-asserts
            w.wake(sim_);
        }
    }

    bool locked() const { return locked_; }

  private:
    Simulator &sim_;
    bool locked_ = false;
    std::deque<detail::Waiter> waiters_;
};

/** RAII guard for Mutex (use after co_await m.lock()). */
class LockGuard
{
  public:
    explicit LockGuard(Mutex &m) : mtx_(&m) {}
    ~LockGuard()
    {
        if (mtx_)
            mtx_->unlock();
    }
    LockGuard(const LockGuard &) = delete;
    LockGuard &operator=(const LockGuard &) = delete;
    LockGuard(LockGuard &&other) noexcept
        : mtx_(std::exchange(other.mtx_, nullptr))
    {
    }

  private:
    Mutex *mtx_;
};

/**
 * Quorum barrier: a coordinator awaits until at least @p needed of the
 * expected arrivals have happened. Extra (late) arrivals are accepted
 * and counted but wake nobody.
 */
class Quorum
{
  public:
    Quorum(Simulator &sim, std::uint32_t needed)
        : sim_(sim), needed_(needed)
    {
    }

    void
    arrive()
    {
        ++arrived_;
        if (arrived_ == needed_ && waiter_.handle) {
            auto w = waiter_;
            waiter_ = {};
            w.wake(sim_);
        }
    }

    std::uint32_t arrived() const { return arrived_; }
    bool satisfied() const { return arrived_ >= needed_; }

    /** Awaitable: resumes once satisfied. Single waiter only. */
    auto
    wait()
    {
        struct Awaiter
        {
            Quorum &q;

            bool await_ready() const noexcept { return q.satisfied(); }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                if (q.waiter_.handle)
                    PANIC("Quorum supports a single waiter");
                q.waiter_ = detail::Waiter::suspend(h);
            }

            void await_resume() const noexcept {}
        };
        return Awaiter{*this};
    }

  private:
    Simulator &sim_;
    std::uint32_t needed_;
    std::uint32_t arrived_ = 0;
    detail::Waiter waiter_{};
};

} // namespace sim

#endif // SIM_SYNC_HH
