/**
 * @file
 * Per-simulator free-list allocator for short-lived DES bookkeeping
 * objects (future states, RPC bookkeeping).
 *
 * The simulator allocates and frees the same handful of object sizes
 * millions of times per run (one FutureState per RPC, one per pack
 * ack, ...). Routing them through a size-classed free list turns the
 * steady state into pointer pops: a block is only ever malloc'd the
 * first time its size class grows, then recycled for the rest of the
 * run.
 *
 * Single-threaded by design, like the simulator that owns it: each
 * sweep cell gets a private Simulator and therefore a private pool, so
 * parallel sweeps share nothing. Blocks handed out must be returned
 * before the pool dies (futures must not outlive their Simulator —
 * already required, since resolving schedules onto it).
 */

#ifndef SIM_POOL_HH
#define SIM_POOL_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>

namespace sim::detail {

class BlockPool
{
  public:
    /** Free lists cover [1, kMaxBlock] bytes in kGranularity steps;
     *  larger requests pass through to the global heap. */
    static constexpr std::size_t kGranularity = 16;
    static constexpr std::size_t kMaxBlock = 256;

    BlockPool() = default;
    BlockPool(const BlockPool &) = delete;
    BlockPool &operator=(const BlockPool &) = delete;

    ~BlockPool()
    {
        for (void *head : free_) {
            while (head) {
                void *next = *static_cast<void **>(head);
                ::operator delete(head);
                head = next;
            }
        }
    }

    void *
    allocate(std::size_t size)
    {
        if (size > kMaxBlock)
            return ::operator new(size);
        const std::size_t cls = classIndex(size);
        if (void *p = free_[cls]) {
            free_[cls] = *static_cast<void **>(p);
            ++reused_;
            return p;
        }
        ++fresh_;
        return ::operator new((cls + 1) * kGranularity);
    }

    void
    deallocate(void *p, std::size_t size) noexcept
    {
        if (size > kMaxBlock) {
            ::operator delete(p);
            return;
        }
        const std::size_t cls = classIndex(size);
        *static_cast<void **>(p) = free_[cls];
        free_[cls] = p;
    }

    /** Blocks that had to come from the global heap (pool misses). */
    std::uint64_t freshAllocations() const { return fresh_; }
    /** Blocks served from a free list (steady-state hits). */
    std::uint64_t reusedAllocations() const { return reused_; }

  private:
    static std::size_t
    classIndex(std::size_t size)
    {
        return (size + kGranularity - 1) / kGranularity - 1;
    }

    std::array<void *, kMaxBlock / kGranularity> free_{};
    std::uint64_t fresh_ = 0;
    std::uint64_t reused_ = 0;
};

} // namespace sim::detail

#endif // SIM_POOL_HH
