#include "sim/partition.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace sim {

PartitionedScheduler::PartitionedScheduler(std::uint32_t partitions,
                                           std::uint32_t threads,
                                           Duration lookahead)
    : lookahead_(lookahead),
      threads_(std::clamp<std::uint32_t>(threads, 1,
                                         std::max(1u, partitions)))
{
    if (partitions == 0)
        PANIC("PartitionedScheduler needs at least one partition");
    if (lookahead <= 0)
        PANIC("PartitionedScheduler lookahead must be positive, got "
              << lookahead);
    sims_.reserve(partitions);
    mail_.reserve(partitions);
    postSeq_.assign(partitions, 0);
    eventsRun_.assign(partitions, 0);
    mailMerged_.assign(partitions, 0);
    prevEvents_.assign(partitions, 0);
    prevMail_.assign(partitions, 0);
    for (std::uint32_t p = 0; p < partitions; ++p) {
        sims_.push_back(std::make_unique<Simulator>());
        mail_.push_back(std::make_unique<Mailbox>());
    }
    if (threads_ > 1) {
        workers_.reserve(threads_);
        for (std::uint32_t i = 0; i < threads_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }
}

PartitionedScheduler::~PartitionedScheduler()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lk(mu_);
            shutdown_ = true;
        }
        cvStart_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }
}

void
PartitionedScheduler::post(std::uint32_t src, std::uint32_t dst,
                           Time when, const common::TraceContext &ctx,
                           Callback fn)
{
    if (dst >= sims_.size())
        PANIC("post to unknown partition " << dst);
    // The (src, srcSeq) pair makes the merge order total and thread-
    // timing independent; srcSeq is src-thread-confined (see header).
    const std::uint64_t seq = postSeq_[src]++;
    Mailbox &mb = *mail_[dst];
    std::lock_guard<std::mutex> lk(mb.mu);
    mb.incoming.push_back({when, src, seq, ctx, std::move(fn)});
}

void
PartitionedScheduler::mergeMailboxes()
{
    for (std::uint32_t dst = 0; dst < mail_.size(); ++dst) {
        Mailbox &mb = *mail_[dst];
        {
            std::lock_guard<std::mutex> lk(mb.mu);
            if (mb.incoming.empty())
                continue;
            mb.incoming.swap(mb.draining);
        }
        mailMerged_[dst] += mb.draining.size();
        // Canonical order: the interleaving concurrent posters produced
        // under the mutex is thread-timing dependent; this key is not.
        std::sort(mb.draining.begin(), mb.draining.end(),
                  [](const RemoteEvent &a, const RemoteEvent &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.srcSeq < b.srcSeq;
                  });
        Simulator &sim = *sims_[dst];
        for (RemoteEvent &ev : mb.draining)
            sim.scheduleAtWithContext(ev.when, ev.ctx, std::move(ev.fn));
        mb.draining.clear(); // keeps capacity for the next window
    }
}

std::uint64_t
PartitionedScheduler::runWindow(Time bound)
{
    if (workers_.empty()) {
        std::uint64_t n = 0;
        for (std::size_t p = 0; p < sims_.size(); ++p) {
            const std::uint64_t e = sims_[p]->runUntil(bound);
            eventsRun_[p] += e;
            n += e;
        }
        return n;
    }
    std::unique_lock<std::mutex> lk(mu_);
    windowBound_ = bound;
    cursor_.store(0, std::memory_order_relaxed);
    windowProcessed_.store(0, std::memory_order_relaxed);
    pendingWorkers_ = static_cast<std::uint32_t>(workers_.size());
    ++generation_;
    cvStart_.notify_all();
    cvDone_.wait(lk, [this] { return pendingWorkers_ == 0; });
    return windowProcessed_.load(std::memory_order_relaxed);
}

void
PartitionedScheduler::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        Time bound;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cvStart_.wait(lk, [this, seen] {
                return shutdown_ || generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = generation_;
            bound = windowBound_;
        }
        std::uint64_t n = 0;
        for (;;) {
            const std::uint32_t p =
                cursor_.fetch_add(1, std::memory_order_relaxed);
            if (p >= sims_.size())
                break;
            const std::uint64_t e = sims_[p]->runUntil(bound);
            // Safe: exactly one worker holds p this window, and the
            // barrier's mutex hand-off orders windows and the
            // driver's profile reads.
            eventsRun_[p] += e;
            n += e;
        }
        windowProcessed_.fetch_add(n, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lk(mu_);
            if (--pendingWorkers_ == 0)
                cvDone_.notify_one();
        }
    }
}

std::uint64_t
PartitionedScheduler::runUntil(Time t)
{
    if (t < now_)
        PANIC("PartitionedScheduler::runUntil into the past");
    std::uint64_t processed = 0;
    for (;;) {
        // Merge first: the last window's posts may hold the earliest
        // pending event.
        mergeMailboxes();
        bool any = false;
        Time lb = 0;
        for (auto &sim : sims_) {
            if (sim->pendingEvents() == 0)
                continue;
            // Safe single-threaded: no window is running here.
            const Time next = sim->nextEventTime();
            if (!any || next < lb)
                lb = next;
            any = true;
        }
        if (!any || lb > t)
            break;
        // Window [lb, lb + lookahead), capped at t (inclusive bound
        // for Simulator::runUntil, hence the -1).
        const Time bound = std::min(t, lb + lookahead_ - 1);
        if (profileInterval_ > 0) {
            const auto wall0 = std::chrono::steady_clock::now();
            processed += runWindow(bound);
            windowWallNs_ += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - wall0)
                    .count());
        } else {
            processed += runWindow(bound);
        }
        ++windowsRun_;
        now_ = bound;
        profileTick();
    }
    // Align every partition's clock with the requested horizon (no
    // events remain at or before t).
    for (std::size_t p = 0; p < sims_.size(); ++p) {
        const std::uint64_t e = sims_[p]->runUntil(t);
        eventsRun_[p] += e;
        processed += e;
    }
    now_ = t;
    profileTick();
    return processed;
}

std::uint64_t
PartitionedScheduler::runFor(Duration d, Duration grace)
{
    std::uint64_t n = runUntil(now_ + d);
    requestStop();
    n += runUntil(now_ + grace);
    return n;
}

void
PartitionedScheduler::requestStop()
{
    for (auto &sim : sims_)
        sim->requestStop();
}

std::size_t
PartitionedScheduler::pendingEvents() const
{
    std::size_t n = 0;
    for (const auto &sim : sims_)
        n += sim->pendingEvents();
    for (const auto &mb : mail_)
        n += mb->incoming.size();
    return n;
}

void
PartitionedScheduler::alignNow()
{
    Time t = now_;
    for (const auto &sim : sims_)
        t = std::max(t, sim->now());
    for (std::size_t p = 0; p < sims_.size(); ++p)
        eventsRun_[p] += sims_[p]->runUntil(t);
    now_ = t;
    profileTick();
}

void
PartitionedScheduler::enableProfile(Duration interval,
                                    std::size_t maxRows)
{
    if (interval <= 0)
        PANIC("profile interval must be positive, got " << interval);
    profileInterval_ = interval;
    profileMaxRows_ = maxRows;
    profileRows_.clear();
    profileRows_.reserve(maxRows);
    profileDropped_ = 0;
    // Rows start at the interval boundary at or before now(); the
    // cumulative counters are snapshotted so pre-enable work (e.g.
    // store population) is excluded from the first row.
    profileRowEnd_ = now_ / interval * interval;
    nextProfileTick_ = profileRowEnd_ + interval;
    prevEvents_ = eventsRun_;
    prevMail_ = mailMerged_;
    prevWindows_ = windowsRun_;
    prevWallNs_ = windowWallNs_;
}

void
PartitionedScheduler::profileTick()
{
    if (profileInterval_ <= 0)
        return;
    while (now_ >= nextProfileTick_) {
        emitProfileRow(nextProfileTick_);
        nextProfileTick_ += profileInterval_;
    }
}

void
PartitionedScheduler::emitProfileRow(Time end)
{
    if (profileRows_.size() >= profileMaxRows_) {
        ++profileDropped_;
    } else {
        ProfileRow row;
        row.windowStart = profileRowEnd_;
        row.windowEnd = end;
        row.windows = windowsRun_ - prevWindows_;
        row.wallNs = windowWallNs_ - prevWallNs_;
        row.events.resize(sims_.size());
        row.mailbox.resize(sims_.size());
        for (std::size_t p = 0; p < sims_.size(); ++p) {
            row.events[p] = eventsRun_[p] - prevEvents_[p];
            row.mailbox[p] = mailMerged_[p] - prevMail_[p];
        }
        profileRows_.push_back(std::move(row));
    }
    prevEvents_ = eventsRun_;
    prevMail_ = mailMerged_;
    prevWindows_ = windowsRun_;
    prevWallNs_ = windowWallNs_;
    profileRowEnd_ = end;
}

void
PartitionedScheduler::flushProfile()
{
    if (profileInterval_ <= 0)
        return;
    if (now_ > profileRowEnd_)
        emitProfileRow(now_);
}

} // namespace sim
