#include "sim/partition.hh"

#include <algorithm>
#include <chrono>

#include "common/logging.hh"

namespace sim {

namespace {

/** Spins before a worker (or the driver) falls back to a futex wait.
 *  Windows are microseconds of work apart on a loaded run, so a short
 *  spin usually catches the flag without a syscall; an idle run parks
 *  in the kernel instead of burning a core. */
constexpr int kSpinRounds = 4096;

/** Spinning only helps when the thread being waited for can make
 *  progress on another core; oversubscribed (workers + driver > CPUs)
 *  it just burns the quantum the peer needs, so park immediately. */
inline int
spinBudget(std::uint32_t threads)
{
    const unsigned cpus = std::thread::hardware_concurrency();
    return cpus > threads ? kSpinRounds : 0;
}

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#endif
}

/** Spin-then-futex wait until @p a != @p seen; returns the new value. */
inline std::uint64_t
spinWaitChange(const std::atomic<std::uint64_t> &a, std::uint64_t seen,
               int rounds)
{
    for (int i = 0; i < rounds; ++i) {
        const std::uint64_t v = a.load(std::memory_order_acquire);
        if (v != seen)
            return v;
        cpuRelax();
    }
    for (;;) {
        a.wait(seen, std::memory_order_acquire);
        const std::uint64_t v = a.load(std::memory_order_acquire);
        if (v != seen)
            return v;
    }
}

} // namespace

PartitionedScheduler::PartitionedScheduler(std::uint32_t partitions,
                                           std::uint32_t threads,
                                           Duration lookahead)
    : lookahead_(lookahead),
      threads_(std::clamp<std::uint32_t>(threads, 1,
                                         std::max(1u, partitions)))
{
    if (partitions == 0)
        PANIC("PartitionedScheduler needs at least one partition");
    if (lookahead <= 0)
        PANIC("PartitionedScheduler lookahead must be positive, got "
              << lookahead);
    sims_.reserve(partitions);
    mail_.resize(static_cast<std::size_t>(partitions) * partitions);
    postSeq_.assign(partitions, 0);
    // Default topology: every pair linked at the global lookahead —
    // the pre-matrix behaviour. setEdgeLookahead() tightens it.
    edgeLa_.assign(static_cast<std::size_t>(partitions) * partitions,
                   lookahead);
    partBound_.assign(partitions, -1);
    nextTime_.assign(partitions, 0);
    bounds_.assign(partitions, 0);
    active_.reserve(partitions);
    eventsRun_.assign(partitions, 0);
    mailMerged_.assign(partitions, 0);
    prevEvents_.assign(partitions, 0);
    prevMail_.assign(partitions, 0);
    for (std::uint32_t p = 0; p < partitions; ++p)
        sims_.push_back(std::make_unique<Simulator>());
    recomputeClosure();
    directPost_ = threads_ == 1;
    // Workers + the waiting driver all need cores at once at a
    // barrier; spin only when the machine actually has them.
    spinRounds_ = spinBudget(threads_);
    if (threads_ > 1) {
        workers_.reserve(threads_);
        for (std::uint32_t i = 0; i < threads_; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }
}

PartitionedScheduler::~PartitionedScheduler()
{
    if (!workers_.empty()) {
        shutdown_.store(true, std::memory_order_release);
        startGen_.fetch_add(1, std::memory_order_release);
        startGen_.notify_all();
        for (std::thread &w : workers_)
            w.join();
    }
}

void
PartitionedScheduler::setEdgeLookahead(
    std::vector<std::vector<Duration>> matrix)
{
    const std::size_t parts = sims_.size();
    if (matrix.size() != parts)
        PANIC("lookahead matrix must be " << parts << "x" << parts);
    for (std::size_t src = 0; src < parts; ++src) {
        if (matrix[src].size() != parts)
            PANIC("lookahead matrix row " << src << " has "
                  << matrix[src].size() << " entries, want " << parts);
        for (std::size_t dst = 0; dst < parts; ++dst) {
            const Duration la = matrix[src][dst];
            if (src == dst)
                continue; // local events never cross a mailbox
            if (la <= 0)
                PANIC("lookahead matrix [" << src << "][" << dst
                      << "] must be positive or kNoEdge, got " << la);
            edgeLa_[src * parts + dst] = std::min(la, kNoEdge);
        }
    }
    recomputeClosure();
}

void
PartitionedScheduler::recomputeClosure()
{
    const std::size_t parts = sims_.size();
    // Min-plus Floyd-Warshall over the cross-partition link graph.
    // The diagonal starts at infinity (an event does not need a
    // message to stay home), so closure_[p][p] relaxes to the
    // shortest cycle out of p and back — the earliest p's own future
    // events could echo back into it.
    closure_.assign(parts * parts, kNoEdge);
    for (std::size_t src = 0; src < parts; ++src)
        for (std::size_t dst = 0; dst < parts; ++dst)
            if (src != dst)
                closure_[src * parts + dst] =
                    edgeLa_[src * parts + dst];
    for (std::size_t k = 0; k < parts; ++k)
        for (std::size_t i = 0; i < parts; ++i) {
            const Duration ik = closure_[i * parts + k];
            if (ik >= kNoEdge)
                continue;
            for (std::size_t j = 0; j < parts; ++j) {
                const Duration kj = closure_[k * parts + j];
                if (kj >= kNoEdge)
                    continue;
                Duration &ij = closure_[i * parts + j];
                ij = std::min(ij, ik + kj);
            }
        }
    closureT_.assign(parts * parts, kNoEdge);
    for (std::size_t src = 0; src < parts; ++src)
        for (std::size_t dst = 0; dst < parts; ++dst)
            closureT_[dst * parts + src] = closure_[src * parts + dst];
}

void
PartitionedScheduler::post(std::uint32_t src, std::uint32_t dst,
                           Time when, const common::TraceContext &ctx,
                           Callback fn)
{
    if (dst >= sims_.size())
        PANIC("post to unknown partition " << dst);
    if (edgeLa_[src * sims_.size() + dst] >= kNoEdge)
        PANIC("post along undeclared edge " << src << " -> " << dst
              << " (fix the lookahead matrix / declared routes)");
    // The conservative schedule let dst run through partBound_[dst]
    // already; an event at or before it would land in dst's past.
    // partBound_ is published to workers by the window-start barrier
    // and stable while they run.
    if (when <= partBound_[dst])
        PANIC("post " << src << " -> " << dst << " at " << when
              << " is inside partition " << dst
              << "'s completed window (bound " << partBound_[dst]
              << "): delay below the edge lookahead");
    // Single-threaded: skip the mailbox round-trip and enqueue
    // directly. Execution order (ascending partition index, srcSeq
    // within a source) enqueues same-instant events in the merge
    // sort's (when, src, srcSeq) order, so the schedule is byte-
    // identical to the threaded path (see header).
    if (directPost_) {
        ++mailMerged_[dst];
        if (when < nextTime_[dst])
            nextTime_[dst] = when;
        sims_[dst]->scheduleAtWithContext(when, ctx, std::move(fn));
        return;
    }
    // The (src, srcSeq) pair makes the merge order total and thread-
    // timing independent; srcSeq and the buffer are src-thread-
    // confined (see header).
    const std::uint64_t seq = postSeq_[src]++;
    std::vector<RemoteEvent> &buf = mail_[src * sims_.size() + dst];
    if (buf.empty() && dst < 64)
        dirtyMask_.fetch_or(std::uint64_t{1} << dst,
                            std::memory_order_relaxed);
    buf.push_back({when, src, seq, ctx, std::move(fn)});
}

void
PartitionedScheduler::refreshNextTime(std::size_t p)
{
    Simulator &sim = *sims_[p];
    nextTime_[p] =
        sim.pendingEvents() != 0 ? sim.nextEventTime() : kNoEdge;
}

void
PartitionedScheduler::mergeMailboxes()
{
    const std::size_t parts = sims_.size();
    // The dirty mask narrows the scan to destinations that actually
    // received posts; partitions beyond bit 63 are always scanned.
    const std::uint64_t mask =
        dirtyMask_.exchange(0, std::memory_order_relaxed);
    if (mask == 0 && parts <= 64)
        return;
    for (std::size_t dst = 0; dst < parts; ++dst) {
        if (dst < 64 && (mask & (std::uint64_t{1} << dst)) == 0)
            continue;
        draining_.clear();
        for (std::size_t src = 0; src < parts; ++src) {
            std::vector<RemoteEvent> &buf = mail_[src * parts + dst];
            if (buf.empty())
                continue;
            for (RemoteEvent &ev : buf)
                draining_.push_back(std::move(ev));
            buf.clear(); // keeps capacity for the next window
        }
        if (draining_.empty())
            continue;
        mailMerged_[dst] += draining_.size();
        // Canonical order: the per-edge buffers arrive in post order
        // per source, but sources interleave arbitrarily; this key
        // does not depend on thread timing.
        std::sort(draining_.begin(), draining_.end(),
                  [](const RemoteEvent &a, const RemoteEvent &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.srcSeq < b.srcSeq;
                  });
        Simulator &sim = *sims_[dst];
        for (RemoteEvent &ev : draining_) {
            if (ev.when <= partBound_[dst])
                PANIC("merged event for partition " << dst << " at "
                      << ev.when << " is at or before its completed "
                      << "window bound " << partBound_[dst]
                      << " — lookahead matrix understates an edge");
            sim.scheduleAtWithContext(ev.when, ev.ctx, std::move(ev.fn));
        }
        draining_.clear();
        refreshNextTime(dst);
    }
}

std::uint64_t
PartitionedScheduler::runWindow()
{
    // A single-partition window has no parallelism to exploit, so
    // the driver runs it inline instead of paying a worker wake-up
    // (most windows on sparse schedules). Safe with a pool: workers
    // are parked between generations, the previous barrier ordered
    // their writes before these reads, and the next startGen_ bump
    // publishes ours. Which thread executes a window never affects
    // the schedule, so this costs nothing in determinism.
    if (active_.size() >= 2)
        ++barriers_; // counted even inline, so the stat is identical
                     // for every thread count
    if (workers_.empty() || active_.size() == 1) {
        std::uint64_t n = 0;
        for (const std::uint32_t p : active_) {
            const std::uint64_t e = sims_[p]->runUntil(bounds_[p]);
            eventsRun_[p] += e;
            n += e;
        }
        return n;
    }
    // Sense-reversing barrier: publish the window (bounds_, active_,
    // partBound_ are plain data made visible by the release bump of
    // startGen_), let workers claim partitions, then wait for the
    // last one to flip doneGen_.
    cursor_.store(0, std::memory_order_relaxed);
    windowProcessed_.store(0, std::memory_order_relaxed);
    remaining_.store(static_cast<std::uint32_t>(workers_.size()),
                     std::memory_order_relaxed);
    const std::uint64_t gen =
        startGen_.fetch_add(1, std::memory_order_release) + 1;
    startGen_.notify_all();
    if (doneGen_.load(std::memory_order_acquire) != gen)
        spinWaitChange(doneGen_, gen - 1, spinRounds_);
    return windowProcessed_.load(std::memory_order_relaxed);
}

void
PartitionedScheduler::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        seen = spinWaitChange(startGen_, seen, spinRounds_);
        if (shutdown_.load(std::memory_order_acquire))
            return;
        std::uint64_t n = 0;
        for (;;) {
            const std::uint32_t i =
                cursor_.fetch_add(1, std::memory_order_relaxed);
            if (i >= active_.size())
                break;
            const std::uint32_t p = active_[i];
            const std::uint64_t e = sims_[p]->runUntil(bounds_[p]);
            // Safe: exactly one worker holds p this window, and the
            // barrier hand-off orders windows and the driver's
            // profile reads.
            eventsRun_[p] += e;
            n += e;
        }
        windowProcessed_.fetch_add(n, std::memory_order_relaxed);
        if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            doneGen_.store(seen, std::memory_order_release);
            doneGen_.notify_all();
        }
    }
}

std::uint64_t
PartitionedScheduler::runUntil(Time t)
{
    if (t < now_)
        PANIC("PartitionedScheduler::runUntil into the past");
    const std::size_t parts = sims_.size();
    std::uint64_t processed = 0;
    // Merge first: the last run's leftover posts may hold the
    // earliest pending event (direct-post mode has no mailboxes to
    // merge). Then refresh the whole next-time cache once — harness
    // code may have scheduled into any partition since the last run;
    // inside the loop only partitions that ran or received posts are
    // re-queried.
    if (!directPost_)
        mergeMailboxes();
    for (std::size_t p = 0; p < parts; ++p)
        refreshNextTime(p);
    for (;;) {
        Time lb = nextTime_[0];
        for (std::size_t p = 1; p < parts; ++p)
            lb = std::min(lb, nextTime_[p]);
        if (lb > t) // kNoEdge everywhere == nothing pending
            break;
        // Per-partition window bounds: p may run through every
        // instant no chain of future cross-partition events can
        // reach. A chain starts at some partition q's next pending
        // event and needs at least SP(q -> p) to arrive, so
        //   bound(p) = min(t, min_q(next(q) + SP(q -> p)) - 1).
        // Empty partitions (next = infinity) constrain nobody — that
        // is the idle-gap skip. Inclusive Simulator::runUntil, hence
        // the -1. The inner scan is branchless on purpose: vacuous
        // terms saturate at >= kNoEdge (both operands are capped at
        // kNoEdge = Time max / 4, so the sum cannot overflow) and
        // lose every min against a real constraint.
        active_.clear();
        Time newNow = t;
        for (std::size_t p = 0; p < parts; ++p) {
            const Duration *row = closureT_.data() + p * parts;
            Time arrival = kNoEdge + kNoEdge;
            for (std::size_t q = 0; q < parts; ++q)
                arrival = std::min(arrival, nextTime_[q] + row[q]);
            const Time bound =
                arrival >= kNoEdge ? t : std::min(t, arrival - 1);
            bounds_[p] = bound;
            newNow = std::min(newNow, bound);
            // Skip partitions with nothing to run this window; their
            // clocks lag, which no code can observe (a simulator's
            // clock only advances while it executes, and posts are
            // stamped with the sender's clock). partBound_ stays
            // monotone for the post() causality check.
            if (nextTime_[p] <= bound) {
                active_.push_back(static_cast<std::uint32_t>(p));
                partBound_[p] = bound;
            } else if (bound > partBound_[p]) {
                partBound_[p] = bound;
            }
        }
        const bool prof = profileInterval_ > 0;
        std::chrono::steady_clock::time_point wall0;
        if (prof)
            wall0 = std::chrono::steady_clock::now();
        processed += runWindow();
        // Partitions that ran have new queue heads; destinations of
        // in-window posts were min-updated by post() (threads == 1)
        // or are refreshed by the merge below.
        for (const std::uint32_t p : active_)
            refreshNextTime(p);
        if (!directPost_)
            mergeMailboxes();
        // Sole-active extension: while one partition holds the only
        // runnable events, re-deriving just ITS bound from the live
        // next-times (its posts min-update them, so every fresh
        // constraint is visible) and running it further is observably
        // identical to granting it a run of consecutive windows —
        // within a window partitions' event sets are disjoint and
        // non-interacting, so deferring the others costs nothing and
        // the whole run commits as one window. This is what makes
        // ping-pong phases (populate, a lone hot partition) cheap:
        // the O(P^2) pass, the accounting and the profile tick all
        // amortize over the batch.
        if (active_.size() == 1) {
            const std::uint32_t q = active_[0];
            const Duration *row = closureT_.data() + q * parts;
            for (;;) {
                Time arrival = kNoEdge + kNoEdge;
                for (std::size_t r = 0; r < parts; ++r)
                    arrival =
                        std::min(arrival, nextTime_[r] + row[r]);
                const Time bq =
                    arrival >= kNoEdge ? t : std::min(t, arrival - 1);
                if (nextTime_[q] > bq)
                    break;
                if (bq > partBound_[q])
                    partBound_[q] = bq;
                const std::uint64_t e = sims_[q]->runUntil(bq);
                eventsRun_[q] += e;
                processed += e;
                refreshNextTime(q);
                if (!directPost_)
                    mergeMailboxes();
            }
        }
        if (prof)
            windowWallNs_ += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - wall0)
                    .count());
        ++windowsRun_;
        // Reference-window accounting: the fixed-width scheduler
        // would have crossed one barrier per lookahead_ between the
        // old and new global bound; we crossed one.
        const Time advance = newNow - now_;
        if (advance > lookahead_)
            windowsSkipped_ +=
                static_cast<std::uint64_t>((advance - 1) / lookahead_);
        now_ = newNow;
        profileTick();
    }
    // Align every partition's clock with the requested horizon (no
    // events remain at or before t).
    for (std::size_t p = 0; p < parts; ++p) {
        const std::uint64_t e = sims_[p]->runUntil(t);
        eventsRun_[p] += e;
        processed += e;
        partBound_[p] = std::max(partBound_[p], t);
    }
    now_ = t;
    profileTick();
    return processed;
}

std::uint64_t
PartitionedScheduler::runFor(Duration d, Duration grace)
{
    std::uint64_t n = runUntil(now_ + d);
    requestStop();
    n += runUntil(now_ + grace);
    return n;
}

void
PartitionedScheduler::requestStop()
{
    for (auto &sim : sims_)
        sim->requestStop();
}

std::size_t
PartitionedScheduler::pendingEvents() const
{
    std::size_t n = 0;
    for (const auto &sim : sims_)
        n += sim->pendingEvents();
    for (const auto &buf : mail_)
        n += buf.size();
    return n;
}

void
PartitionedScheduler::alignNow()
{
    Time t = now_;
    for (const auto &sim : sims_)
        t = std::max(t, sim->now());
    for (std::size_t p = 0; p < sims_.size(); ++p) {
        eventsRun_[p] += sims_[p]->runUntil(t);
        partBound_[p] = std::max(partBound_[p], t);
    }
    now_ = t;
    profileTick();
}

std::uint64_t
PartitionedScheduler::eventsExecuted() const
{
    std::uint64_t n = 0;
    for (const std::uint64_t e : eventsRun_)
        n += e;
    return n;
}

void
PartitionedScheduler::enableProfile(Duration interval,
                                    std::size_t maxRows)
{
    if (interval <= 0)
        PANIC("profile interval must be positive, got " << interval);
    profileInterval_ = interval;
    profileMaxRows_ = maxRows;
    profileRows_.clear();
    profileRows_.reserve(maxRows);
    profileDropped_ = 0;
    // Rows start at the interval boundary at or before now(); the
    // cumulative counters are snapshotted so pre-enable work (e.g.
    // store population) is excluded from the first row.
    profileRowEnd_ = now_ / interval * interval;
    nextProfileTick_ = profileRowEnd_ + interval;
    prevEvents_ = eventsRun_;
    prevMail_ = mailMerged_;
    prevWindows_ = windowsRun_;
    prevSkipped_ = windowsSkipped_;
    prevBarriers_ = barriers_;
    prevWallNs_ = windowWallNs_;
}

void
PartitionedScheduler::profileTick()
{
    if (profileInterval_ <= 0)
        return;
    while (now_ >= nextProfileTick_) {
        emitProfileRow(nextProfileTick_);
        nextProfileTick_ += profileInterval_;
    }
}

void
PartitionedScheduler::emitProfileRow(Time end)
{
    if (profileRows_.size() >= profileMaxRows_) {
        ++profileDropped_;
    } else {
        ProfileRow row;
        row.windowStart = profileRowEnd_;
        row.windowEnd = end;
        row.windows = windowsRun_ - prevWindows_;
        row.skipped = windowsSkipped_ - prevSkipped_;
        row.barriers = barriers_ - prevBarriers_;
        row.wallNs = windowWallNs_ - prevWallNs_;
        row.events.resize(sims_.size());
        row.mailbox.resize(sims_.size());
        for (std::size_t p = 0; p < sims_.size(); ++p) {
            row.events[p] = eventsRun_[p] - prevEvents_[p];
            row.mailbox[p] = mailMerged_[p] - prevMail_[p];
        }
        profileRows_.push_back(std::move(row));
    }
    prevEvents_ = eventsRun_;
    prevMail_ = mailMerged_;
    prevWindows_ = windowsRun_;
    prevSkipped_ = windowsSkipped_;
    prevBarriers_ = barriers_;
    prevWallNs_ = windowWallNs_;
    profileRowEnd_ = end;
}

void
PartitionedScheduler::flushProfile()
{
    if (profileInterval_ <= 0)
        return;
    if (now_ > profileRowEnd_)
        emitProfileRow(now_);
}

} // namespace sim
