#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace sim {

void
EventQueue::siftUp(std::size_t i)
{
    const HeapEntry e = heap_[i];
    while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (!firesBefore(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

void
EventQueue::siftDown(std::size_t i, HeapEntry e)
{
    const std::size_t n = heap_.size();
    // "Bounce" strategy: sift the hole to a leaf choosing the min child
    // at each level without comparing against e — e is the displaced
    // tail and nearly always belongs near the bottom — then bubble it
    // up (usually zero moves). Saves one compare per level versus the
    // textbook early-exit sift.
    std::size_t hole = i;
    for (;;) {
        const std::size_t first = kArity * hole + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t end =
            first + kArity < n ? first + kArity : n;
        for (std::size_t c = first + 1; c < end; ++c) {
            if (firesBefore(heap_[c], heap_[best]))
                best = c;
        }
        heap_[hole] = heap_[best];
        hole = best;
    }
    heap_[hole] = e;
    siftUp(hole);
}

void
EventQueue::schedule(Time when, const common::TraceContext &ctx,
                     Callback &&fn)
{
    if (when == curTime_) {
        // Same-instant fast path: FIFO order *is* seq order, because
        // appends happen in schedule order.
        bucket_.push_back(Event{when, nextSeq_++, ctx, std::move(fn)});
        return;
    }
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
        slots_[slot].ctx = ctx;
        slots_[slot].fn = std::move(fn);
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(Slot{ctx, std::move(fn)});
    }
    heap_.push_back(HeapEntry{when, nextSeq_++, slot});
    siftUp(heap_.size() - 1);
}

Time
EventQueue::nextTimeEmpty() const
{
    PANIC("nextTime() on empty event queue");
}

Event
EventQueue::popHeap()
{
    const HeapEntry entry = heap_.front();
    const HeapEntry tail = heap_.back();
    heap_.pop_back();
    if (!heap_.empty())
        siftDown(0, tail);
    Slot &slot = slots_[entry.slot];
    Event ev{entry.when, entry.seq, slot.ctx, std::move(slot.fn)};
    freeSlots_.push_back(entry.slot);
    return ev;
}

Event
EventQueue::pop()
{
    if (bucketHead_ < bucket_.size()) {
        // Heap events at the bucket instant were scheduled before time
        // reached it (schedule() would have bucketed them otherwise),
        // so their seqs precede every bucket entry's: drain them first.
        if (!heap_.empty() && heap_.front().when == curTime_)
            return popHeap();
        Event ev = std::move(bucket_[bucketHead_++]);
        if (bucketHead_ == bucket_.size()) {
            bucket_.clear(); // keeps capacity for the next burst
            bucketHead_ = 0;
        }
        return ev;
    }
    if (heap_.empty())
        PANIC("pop() on empty event queue");
    Event ev = popHeap();
    curTime_ = ev.when;
    return ev;
}

} // namespace sim
