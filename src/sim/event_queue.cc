#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace sim {

void
EventQueue::schedule(Time when, std::function<void()> fn)
{
    heap_.push(Event{when, nextSeq_++, std::move(fn)});
}

Time
EventQueue::nextTime() const
{
    if (heap_.empty())
        PANIC("nextTime() on empty event queue");
    return heap_.top().when;
}

Event
EventQueue::pop()
{
    if (heap_.empty())
        PANIC("pop() on empty event queue");
    // priority_queue::top() returns const&; move via const_cast is the
    // standard idiom to avoid copying the std::function.
    Event ev = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    return ev;
}

} // namespace sim
