/**
 * @file
 * Conservative parallel DES: several Simulators (partitions) advancing
 * one scenario together, synchronized with barrier time windows.
 *
 * The classic null-message/barrier-window scheme specialized to this
 * codebase's network model:
 *
 *  - Every simulated node is assigned to exactly one partition; each
 *    partition is a private, ordinary sim::Simulator (its own event
 *    queue, BlockPool, clock). Code running inside a partition never
 *    touches another partition's simulator directly.
 *
 *  - Cross-partition interaction goes through single-writer mailbox
 *    buffers (post()). A posted event must fire after the receiving
 *    partition's current window — in practice every post's delay is at
 *    least the minimum latency of the (src, dst) link it models, which
 *    is exactly what the lookahead matrix below encodes.
 *
 *  - The window loop (adaptive bounds): merge mailboxes, then give
 *    every partition p its own window bound
 *
 *        bound(p) = min over partitions q of
 *                     nextEventTime(q) + SP(q -> p)  - 1
 *
 *    where SP is the min-plus shortest-path closure of the per-edge
 *    lookahead matrix (including cycles back into p itself). bound(p)
 *    is the last instant provably unreachable by any future
 *    cross-partition message into p, so p may run that far without
 *    hearing from anyone. Partitions with no runnable events skip the
 *    window entirely; empty partitions (no pending events) constrain
 *    nobody, which is what collapses idle gaps — the scheduler jumps
 *    straight to the next populated instant instead of crossing one
 *    barrier per lookahead of simulated time.
 *
 * Determinism (see CONCURRENCY.md): results are byte-identical for
 * every worker-thread count, because (a) partition assignment, the
 * lookahead matrix and the window schedule depend only on topology and
 * event timestamps, never on thread timing; (b) mailbox items are
 * merged in the total order (when, source partition, per-source
 * sequence), erasing the arrival interleaving of concurrent posters;
 * (c) each partition's queue then breaks same-instant ties with its
 * own (when, seq) order as usual.
 *
 * threads == 1 runs the window loop inline on the calling thread with
 * no pool, no atomics and no barrier; post() then schedules straight
 * into the destination queue (same canonical order — see post()), so
 * the mailbox machinery costs nothing in the mode CTest uses as the
 * determinism reference. threads >= 2 dispatches windows through a
 * sense-reversing atomic barrier (bounded spin, then futex via
 * std::atomic::wait) instead of a mutex/condvar round-trip — and only
 * when a window has two or more runnable partitions: single-partition
 * windows cannot parallelize, so the driver runs them inline and the
 * workers never wake. barriersCrossed() counts the windows that
 * actually paid for a wake-up.
 */

#ifndef SIM_PARTITION_HH
#define SIM_PARTITION_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "common/trace.hh"
#include "common/types.hh"
#include "sim/simulator.hh"

namespace sim {

class PartitionedScheduler
{
  public:
    /** Matrix entry for "no link ever crosses src -> dst". Kept far
     *  from the Time ceiling so closure sums cannot overflow. */
    static constexpr Duration kNoEdge =
        std::numeric_limits<Duration>::max() / 4;

    /**
     * @param partitions Number of partitions (>= 1). Fixed by the
     *        scenario topology — NOT by the thread count — so results
     *        do not depend on how many workers execute the windows.
     * @param threads    Worker threads (clamped to [1, partitions]).
     *        1 = run windows inline, no pool.
     * @param lookahead  Minimum cross-partition event delay (> 0).
     *        Every (src, dst) pair starts at this value; topologies
     *        with fewer links tighten it via setEdgeLookahead(). Also
     *        the reference window width the windows-skipped counter is
     *        denominated in.
     */
    PartitionedScheduler(std::uint32_t partitions, std::uint32_t threads,
                         Duration lookahead);
    ~PartitionedScheduler();

    PartitionedScheduler(const PartitionedScheduler &) = delete;
    PartitionedScheduler &operator=(const PartitionedScheduler &) = delete;

    std::uint32_t numPartitions() const
    {
        return static_cast<std::uint32_t>(sims_.size());
    }
    std::uint32_t threads() const { return threads_; }
    Duration lookahead() const { return lookahead_; }

    /**
     * Install the per-edge lookahead matrix: @p matrix[src][dst] is
     * the minimum delay of any event ever posted src -> dst (kNoEdge
     * when no link crosses that pair; the diagonal is ignored — local
     * events do not go through mailboxes). Consistency with the
     * constructor lookahead is NOT required — any positive value
     * works — but every post() must respect its edge's entry.
     * Driver thread, windows quiescent. Recomputes the min-plus
     * closure used for window bounds.
     */
    void setEdgeLookahead(std::vector<std::vector<Duration>> matrix);

    /** Direct (src, dst) matrix entry — the tightest delay a post
     *  along that edge may use. kNoEdge when the pair has no link. */
    Duration edgeLookahead(std::uint32_t src, std::uint32_t dst) const
    {
        return edgeLa_[src * sims_.size() + dst];
    }

    /**
     * Min-plus closure SP(src -> dst): the earliest a chain of events
     * starting in @p src can reach @p dst through any sequence of
     * links, including src == dst (shortest cycle out and back). This
     * is what window bounds are computed from.
     */
    Duration effectiveLookahead(std::uint32_t src,
                                std::uint32_t dst) const
    {
        return closure_[src * sims_.size() + dst];
    }

    Simulator &partition(std::uint32_t p) { return *sims_[p]; }

    /** Scenario time: every partition is provably past this instant. */
    Time now() const { return now_; }

    /**
     * Thread-safe cross-partition event: run @p fn on partition @p dst
     * at absolute time @p when, under TraceContext @p ctx. Must be
     * called from the thread currently executing partition @p src (or
     * from the driver thread while no window is running). @p when must
     * be after the end of @p dst's current window — guaranteed when
     * the delay is >= edgeLookahead(src, dst), which the network's
     * per-link minimum latency enforces for every message. Violations
     * PANIC (they would corrupt the conservative schedule).
     *
     * With threads == 1 the event goes straight into dst's queue —
     * same observable order as the mailbox path: within a window,
     * partitions execute in ascending index and each source posts in
     * srcSeq order, so same-instant events are enqueued in exactly
     * the (when, src, srcSeq) order the merge sort would have
     * produced, and the queue's FIFO tie-break preserves it.
     */
    void post(std::uint32_t src, std::uint32_t dst, Time when,
              const common::TraceContext &ctx, Callback fn);

    /**
     * Advance the whole scenario to time @p t via parallel windows,
     * then set every partition's clock to @p t. Mirrors
     * Simulator::runUntil. @return events processed (all partitions).
     */
    std::uint64_t runUntil(Time t);

    /** Mirrors Simulator::runFor: run @p d, raise stop-requested on
     *  every partition, drain @p grace more. */
    std::uint64_t runFor(Duration d, Duration grace = common::kSecond);

    /** Raise the stop-requested flag on every partition. */
    void requestStop();
    bool stopRequested() const { return sims_[0]->stopRequested(); }

    std::size_t pendingEvents() const;

    /**
     * Fast-forward lagging partitions to the time of the furthest one
     * (single-threaded, driver thread only). Used after one partition
     * was run directly — e.g. Cluster::populate runs the storage
     * partition to completion before the others have any events.
     */
    void alignNow();

    /** Barrier windows executed since construction (deterministic). */
    std::uint64_t windowsExecuted() const { return windowsRun_; }
    /**
     * Reference windows elided since construction (deterministic):
     * for every barrier, the number of whole constructor-lookahead
     * widths the global bound advanced beyond the first one. This is
     * exactly how many extra barriers the fixed-width scheduler of
     * old would have crossed for the same schedule.
     */
    std::uint64_t windowsSkipped() const { return windowsSkipped_; }
    /**
     * Multi-partition windows since construction — exactly the ones a
     * worker pool pays a barrier wake-up for (single-partition
     * windows always run inline on the driver). Counted identically
     * with threads == 1, so the stat is deterministic across every
     * thread count and safe to embed in byte-compared reports.
     */
    std::uint64_t barriersCrossed() const { return barriers_; }
    /** Events executed since construction, all partitions. */
    std::uint64_t eventsExecuted() const;

    /**
     * Self-profiler: one row per @p interval of simulated time, with
     * per-partition events executed and mailbox cross-traffic, the
     * number of barrier windows run (and reference windows skipped),
     * and the wall-clock time spent inside them. Everything except
     * wallNs is deterministic (a pure function of the event schedule);
     * wallNs measures real barrier cost and MUST be kept out of
     * deterministic compares. Rows are contiguous: each covers
     * [windowStart, windowEnd) exactly, so deltas sum to the run
     * totals. Driver thread only.
     */
    struct ProfileRow
    {
        Time windowStart = 0;
        Time windowEnd = 0;
        std::uint64_t windows = 0; ///< barrier windows completed
        std::uint64_t skipped = 0; ///< reference windows elided
        std::uint64_t barriers = 0; ///< worker wake-ups among them
        std::uint64_t wallNs = 0;  ///< wall clock in them (NON-DET)
        std::vector<std::uint64_t> events;  ///< per partition
        std::vector<std::uint64_t> mailbox; ///< merged-in, per dst
    };

    /** Enable profiling (interval > 0); at most @p maxRows rows are
     *  kept, later ones are counted in profileDropped(). */
    void enableProfile(Duration interval, std::size_t maxRows = 4096);
    const std::vector<ProfileRow> &profile() const
    {
        return profileRows_;
    }
    std::uint64_t profileDropped() const { return profileDropped_; }
    /** Emit the final partial row up to now(). Driver thread only. */
    void flushProfile();

  private:
    struct RemoteEvent
    {
        Time when = 0;
        std::uint32_t src = 0;
        std::uint64_t srcSeq = 0;
        common::TraceContext ctx;
        Callback fn;
    };

    /** Drain every per-edge buffer into its destination queue in
     *  (when, src, srcSeq) order. Driver thread, windows quiescent. */
    void mergeMailboxes();

    /** Re-query partition @p p's earliest pending event into
     *  nextTime_ (kNoEdge when empty). Driver thread. */
    void refreshNextTime(std::size_t p);

    /** Recompute closure_ from edgeLa_ (min-plus Floyd-Warshall with
     *  an infinite diagonal, so SP(p, p) is the shortest cycle). */
    void recomputeClosure();

    /** Run the partitions listed in active_, each to its bounds_
     *  entry. Returns events processed. */
    std::uint64_t runWindow();

    void workerLoop();

    /** Emit profile rows for every interval boundary now() crossed. */
    void profileTick();
    void emitProfileRow(Time end);

    std::vector<std::unique_ptr<Simulator>> sims_;

    /**
     * Per-(src, dst) mailbox buffers, indexed src * P + dst. Each is
     * single-writer: only the thread currently running partition src
     * appends (exactly one worker holds a partition per window, and
     * the window barrier's acquire/release orders the handoff), and
     * only the driver drains — while no window is running. No mutex,
     * no atomics per post.
     */
    std::vector<std::vector<RemoteEvent>> mail_;
    /** Driver-thread merge scratch; recycles capacity. */
    std::vector<RemoteEvent> draining_;

    /** Per-source post counter; only the thread running that source
     *  partition touches it (windows hand partitions to exactly one
     *  worker, and window boundaries synchronize). */
    std::vector<std::uint64_t> postSeq_;

    Duration lookahead_;
    /** Direct per-edge minimum delays, src * P + dst. */
    std::vector<Duration> edgeLa_;
    /** Min-plus closure of edgeLa_ (infinite diagonal -> cycles). */
    std::vector<Duration> closure_;
    /** closure_ transposed (dst * P + src): the bound loop walks all
     *  sources of one destination, so this layout makes the inner
     *  loop a sequential, branchless min-scan. */
    std::vector<Duration> closureT_;

    Time now_ = 0;
    /**
     * Per-partition high-water bound: the furthest instant partition p
     * has been entitled to run to (monotone). Written by the driver
     * between windows, read by post() for the causality check — the
     * barrier publishes it to workers.
     */
    std::vector<Time> partBound_;

    /**
     * Cached next-event time per partition (kNoEdge when empty),
     * driver thread. Fully refreshed at every runUntil/alignNow entry
     * (setup code may schedule into partitions directly between
     * runs), then maintained incrementally: partitions that ran are
     * re-queried after the window, and posts/merges min-update their
     * destination — so the window loop never polls idle partitions.
     */
    std::vector<Time> nextTime_;
    std::vector<Time> bounds_;
    std::vector<std::uint32_t> active_;

    // Worker pool (empty when threads_ == 1: windows run inline, and
    // none of the atomics below are touched).
    std::uint32_t threads_;
    /** threads_ == 1: post() bypasses the mailboxes entirely. */
    bool directPost_ = false;
    /** Barrier spin budget before the futex; 0 when the machine has
     *  no spare cores for the peer to run on (see spinBudget). */
    int spinRounds_ = 0;
    std::vector<std::thread> workers_;
    /**
     * Bit dst set while some mail_[src * P + dst] is non-empty
     * (partitions <= 64; larger topologies fall back to a full
     * scan). First post to an empty buffer sets the bit (relaxed —
     * the window barrier orders it); the driver clears it in
     * mergeMailboxes, so the merge touches only dirty destinations.
     */
    std::atomic<std::uint64_t> dirtyMask_{0};
    /** Window dispatch: bumped (release) to start a window; workers
     *  spin briefly, then futex-wait for the change. */
    std::atomic<std::uint64_t> startGen_{0};
    /** Set to the generation (release) by the last worker to finish;
     *  the driver spins briefly, then futex-waits on it. */
    std::atomic<std::uint64_t> doneGen_{0};
    std::atomic<std::uint32_t> remaining_{0};
    std::atomic<bool> shutdown_{false};
    /** Work-claiming cursor: workers claim indices into active_. */
    std::atomic<std::uint32_t> cursor_{0};
    std::atomic<std::uint64_t> windowProcessed_{0};

    // Self-profiler state. Cumulative counters: eventsRun_[p] is
    // written only by the thread running partition p inside a window
    // (the barrier hand-off orders it with the driver's reads);
    // everything else is driver-thread-only.
    Duration profileInterval_ = 0; ///< 0 = profiling off
    std::size_t profileMaxRows_ = 0;
    Time nextProfileTick_ = 0;
    Time profileRowEnd_ = 0;
    std::uint64_t profileDropped_ = 0;
    std::vector<std::uint64_t> eventsRun_;
    std::vector<std::uint64_t> mailMerged_;
    std::uint64_t windowsRun_ = 0;
    std::uint64_t windowsSkipped_ = 0;
    std::uint64_t barriers_ = 0;
    std::uint64_t windowWallNs_ = 0;
    std::vector<std::uint64_t> prevEvents_;
    std::vector<std::uint64_t> prevMail_;
    std::uint64_t prevWindows_ = 0;
    std::uint64_t prevSkipped_ = 0;
    std::uint64_t prevBarriers_ = 0;
    std::uint64_t prevWallNs_ = 0;
    std::vector<ProfileRow> profileRows_;
};

} // namespace sim

#endif // SIM_PARTITION_HH
