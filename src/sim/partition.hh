/**
 * @file
 * Conservative parallel DES: several Simulators (partitions) advancing
 * one scenario together, synchronized with barrier time windows.
 *
 * The classic null-message/barrier-window scheme specialized to this
 * codebase's network model:
 *
 *  - Every simulated node is assigned to exactly one partition; each
 *    partition is a private, ordinary sim::Simulator (its own event
 *    queue, BlockPool, clock). Code running inside a partition never
 *    touches another partition's simulator directly.
 *
 *  - Cross-partition interaction goes through thread-safe mailboxes
 *    (post()). A posted event must fire at least `lookahead` after the
 *    sender's current window — in practice lookahead is the network's
 *    minimum link latency (net::NetConfig::minLatency), which every
 *    cross-partition message delay respects by construction.
 *
 *  - The window loop: merge mailboxes, compute the global lower bound
 *    LB = min over partitions of the next event time, then let every
 *    partition advance independently through [LB, LB + lookahead).
 *    Any message generated inside the window is stamped at or after
 *    its sender's current time plus lookahead, i.e. at or after the
 *    window end — so no partition can receive an event in its past,
 *    and each window is embarrassingly parallel.
 *
 * Determinism (see CONCURRENCY.md): results are byte-identical for
 * every worker-thread count, because (a) partition assignment and the
 * window schedule depend only on event timestamps, never on thread
 * timing; (b) mailbox items are merged in the total order
 * (when, source partition, per-source sequence), erasing the arrival
 * interleaving of concurrent posters; (c) each partition's queue then
 * breaks same-instant ties with its own (when, seq) order as usual.
 *
 * threads == 1 runs the window loop inline on the calling thread with
 * no pool at all — the mode CTest uses as the determinism reference.
 */

#ifndef SIM_PARTITION_HH
#define SIM_PARTITION_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/trace.hh"
#include "common/types.hh"
#include "sim/simulator.hh"

namespace sim {

class PartitionedScheduler
{
  public:
    /**
     * @param partitions Number of partitions (>= 1). Fixed by the
     *        scenario topology — NOT by the thread count — so results
     *        do not depend on how many workers execute the windows.
     * @param threads    Worker threads (clamped to [1, partitions]).
     *        1 = run windows inline, no pool.
     * @param lookahead  Minimum cross-partition event delay (> 0); the
     *        window width. post() targets below it are a bug.
     */
    PartitionedScheduler(std::uint32_t partitions, std::uint32_t threads,
                         Duration lookahead);
    ~PartitionedScheduler();

    PartitionedScheduler(const PartitionedScheduler &) = delete;
    PartitionedScheduler &operator=(const PartitionedScheduler &) = delete;

    std::uint32_t numPartitions() const
    {
        return static_cast<std::uint32_t>(sims_.size());
    }
    std::uint32_t threads() const { return threads_; }
    Duration lookahead() const { return lookahead_; }

    Simulator &partition(std::uint32_t p) { return *sims_[p]; }

    /** Scenario time: the bound every partition has been run to. */
    Time now() const { return now_; }

    /**
     * Thread-safe cross-partition event: run @p fn on partition @p dst
     * at absolute time @p when, under TraceContext @p ctx. Must be
     * called from the thread currently executing partition @p src (or
     * from the driver thread while no window is running). @p when must
     * be at or after the end of the current window — guaranteed when
     * the delay is >= lookahead(), which the network's minimum link
     * latency enforces for every message.
     */
    void post(std::uint32_t src, std::uint32_t dst, Time when,
              const common::TraceContext &ctx, Callback fn);

    /**
     * Advance the whole scenario to time @p t via parallel windows,
     * then set every partition's clock to @p t. Mirrors
     * Simulator::runUntil. @return events processed (all partitions).
     */
    std::uint64_t runUntil(Time t);

    /** Mirrors Simulator::runFor: run @p d, raise stop-requested on
     *  every partition, drain @p grace more. */
    std::uint64_t runFor(Duration d, Duration grace = common::kSecond);

    /** Raise the stop-requested flag on every partition. */
    void requestStop();
    bool stopRequested() const { return sims_[0]->stopRequested(); }

    std::size_t pendingEvents() const;

    /**
     * Fast-forward lagging partitions to the time of the furthest one
     * (single-threaded, driver thread only). Used after one partition
     * was run directly — e.g. Cluster::populate runs the storage
     * partition to completion before the others have any events.
     */
    void alignNow();

    /**
     * Self-profiler: one row per @p interval of simulated time, with
     * per-partition events executed and mailbox cross-traffic, the
     * number of barrier windows run, and the wall-clock time spent
     * inside them. Everything except wallNs is deterministic (a pure
     * function of the event schedule); wallNs measures real barrier
     * cost and MUST be kept out of deterministic compares. Rows are
     * contiguous: each covers [windowStart, windowEnd) exactly, so
     * deltas sum to the run totals. Driver thread only.
     */
    struct ProfileRow
    {
        Time windowStart = 0;
        Time windowEnd = 0;
        std::uint64_t windows = 0; ///< barrier windows completed
        std::uint64_t wallNs = 0;  ///< wall clock in them (NON-DET)
        std::vector<std::uint64_t> events;  ///< per partition
        std::vector<std::uint64_t> mailbox; ///< merged-in, per dst
    };

    /** Enable profiling (interval > 0); at most @p maxRows rows are
     *  kept, later ones are counted in profileDropped(). */
    void enableProfile(Duration interval, std::size_t maxRows = 4096);
    const std::vector<ProfileRow> &profile() const
    {
        return profileRows_;
    }
    std::uint64_t profileDropped() const { return profileDropped_; }
    /** Emit the final partial row up to now(). Driver thread only. */
    void flushProfile();

  private:
    struct RemoteEvent
    {
        Time when = 0;
        std::uint32_t src = 0;
        std::uint64_t srcSeq = 0;
        common::TraceContext ctx;
        Callback fn;
    };

    /** One per destination partition. `incoming` is guarded by `mu`;
     *  `draining` is driver-thread scratch that recycles capacity. */
    struct Mailbox
    {
        std::mutex mu;
        std::vector<RemoteEvent> incoming;
        std::vector<RemoteEvent> draining;
    };

    /** Drain every mailbox into its destination queue in
     *  (when, src, srcSeq) order. Driver thread, windows quiescent. */
    void mergeMailboxes();

    /** Run every partition up to and including @p bound. */
    std::uint64_t runWindow(Time bound);

    void workerLoop();

    /** Emit profile rows for every interval boundary now() crossed. */
    void profileTick();
    void emitProfileRow(Time end);

    std::vector<std::unique_ptr<Simulator>> sims_;
    std::vector<std::unique_ptr<Mailbox>> mail_;
    /** Per-source post counter; only the thread running that source
     *  partition touches it (windows hand partitions to exactly one
     *  worker, and window boundaries synchronize). */
    std::vector<std::uint64_t> postSeq_;
    Duration lookahead_;
    Time now_ = 0;

    // Worker pool (empty when threads_ == 1: windows run inline).
    std::uint32_t threads_;
    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable cvStart_;
    std::condition_variable cvDone_;
    std::uint64_t generation_ = 0;
    std::uint32_t pendingWorkers_ = 0;
    Time windowBound_ = 0;
    bool shutdown_ = false;
    /** Work-stealing cursor: workers claim partition indices. */
    std::atomic<std::uint32_t> cursor_{0};
    std::atomic<std::uint64_t> windowProcessed_{0};

    // Self-profiler state. Cumulative counters: eventsRun_[p] is
    // written only by the thread running partition p inside a window
    // (the barrier's mutex hand-off orders it with the driver's
    // reads); everything else is driver-thread-only.
    Duration profileInterval_ = 0; ///< 0 = profiling off
    std::size_t profileMaxRows_ = 0;
    Time nextProfileTick_ = 0;
    Time profileRowEnd_ = 0;
    std::uint64_t profileDropped_ = 0;
    std::vector<std::uint64_t> eventsRun_;
    std::vector<std::uint64_t> mailMerged_;
    std::uint64_t windowsRun_ = 0;
    std::uint64_t windowWallNs_ = 0;
    std::vector<std::uint64_t> prevEvents_;
    std::vector<std::uint64_t> prevMail_;
    std::uint64_t prevWindows_ = 0;
    std::uint64_t prevWallNs_ = 0;
    std::vector<ProfileRow> profileRows_;
};

} // namespace sim

#endif // SIM_PARTITION_HH
