/**
 * @file
 * The discrete-event simulator: owns virtual time and the event queue.
 *
 * All protocol code in this repository runs as coroutines driven by a
 * Simulator. Each simulator is single-threaded and deterministic: with
 * the same seed and configuration, every run produces identical
 * results. Parallel sweeps (bench::SweepRunner) run one private
 * Simulator per cell on its own thread; simulators share no state.
 *
 * Typical harness structure:
 * @code
 *   sim::Simulator s;
 *   sim::spawn(clientLoop(s, ...));     // start background coroutines
 *   s.runFor(15 * common::kSecond);     // simulate 15 seconds
 * @endcode
 *
 * Hot-path notes (see PERFORMANCE.md): schedule() snapshots the
 * caller's TraceContext into the Event itself — the run loop installs
 * it before the callback runs, so no capture wrapper is allocated.
 * Callbacks are sim::Callback (48-byte inline storage, no heap for
 * typical captures). The simulator also owns a BlockPool that recycles
 * future-state objects for the run's lifetime.
 */

#ifndef SIM_SIMULATOR_HH
#define SIM_SIMULATOR_HH

#include <cstdint>

#include "common/trace.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"

namespace sim {

class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current virtual time ("TrueTime" — perfectly accurate). */
    Time now() const { return now_; }

    /** Schedule @p fn after @p delay (>= 0) from now. The event runs
     *  under the caller's current TraceContext. */
    void schedule(Duration delay, Callback fn);

    /** Schedule @p fn at absolute time @p when (>= now). */
    void scheduleAt(Time when, Callback fn);

    /**
     * Schedule @p fn after @p delay, to run under @p ctx instead of
     * the caller's context. This is how a releaser (promise resolve,
     * semaphore release, mutex unlock) wakes a waiter inside the
     * *waiter's* transaction without a context-restoring wrapper
     * closure.
     */
    void scheduleWithContext(Duration delay,
                             const common::TraceContext &ctx,
                             Callback fn);

    /**
     * Schedule @p fn at absolute time @p when (>= now) under @p ctx.
     * Used by the partitioned scheduler's mailbox merge, which replays
     * cross-partition events with the context captured on the sending
     * partition (see sim/partition.hh).
     */
    void scheduleAtWithContext(Time when, const common::TraceContext &ctx,
                               Callback fn);

    /** Time of the earliest pending event; queue must be non-empty.
     *  (The partitioned scheduler's window lower bound.) */
    Time nextEventTime() const { return queue_.nextTime(); }

    /**
     * Run until the event queue is empty or stop() is called.
     * @return the number of events processed.
     */
    std::uint64_t run();

    /**
     * Process all events up to and including time @p t, then set the
     * clock to @p t. Later events stay queued.
     */
    std::uint64_t runUntil(Time t);

    /**
     * Simulate for @p d: process events in [now, now + d], raising the
     * stop-requested flag at the deadline so periodic background
     * processes (GC, clock sync, workload loops) wind down, then drain
     * whatever completes within @p grace additional virtual time.
     */
    std::uint64_t runFor(Duration d, Duration grace = common::kSecond);

    /** Ask cooperative background loops to wind down. */
    void requestStop() { stopRequested_ = true; }
    bool stopRequested() const { return stopRequested_; }

    /** Abort run() from inside an event (used by a few tests). */
    void stop() { stopped_ = true; }

    std::size_t pendingEvents() const { return queue_.size(); }

    /** Free-list allocator for per-simulator bookkeeping (future
     *  states). Objects allocated here must not outlive the
     *  simulator. */
    detail::BlockPool &pool() { return pool_; }

  private:
    std::uint64_t runLoop(Time limit, bool bounded);

    EventQueue queue_;
    detail::BlockPool pool_;
    Time now_ = 0;
    bool stopped_ = false;
    bool stopRequested_ = false;
};

} // namespace sim

#endif // SIM_SIMULATOR_HH
