/**
 * @file
 * Coroutine task type for simulation processes.
 *
 * Task<T> is a lazily-started coroutine. It is consumed in one of two
 * ways:
 *
 *  - `T x = co_await someTask();` — structured: the child runs, and the
 *    awaiting coroutine resumes with its result. The temporary Task
 *    owns the frame and destroys it after resumption.
 *
 *  - `sim::spawn(someTask());` — detached: the task starts immediately
 *    and owns itself; its frame is destroyed when it completes. Used
 *    for top-level processes (client loops, server timers).
 *
 * Exceptions: this codebase reports failures through return values
 * (status enums), not exceptions. An exception escaping a coroutine is
 * a bug and panics.
 */

#ifndef SIM_TASK_HH
#define SIM_TASK_HH

#include <coroutine>
#include <utility>

#include "common/logging.hh"
#include "common/trace.hh"

namespace sim {

template <typename T>
class Task;

namespace detail {

/** State shared by value and void promise types. */
template <typename Promise>
struct PromiseBase
{
    std::coroutine_handle<> continuation;
    bool detached = false;

    std::suspend_always
    initial_suspend() noexcept
    {
        return {};
    }

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            auto &p = h.promise();
            if (p.continuation)
                return p.continuation;
            if (p.detached)
                h.destroy();
            return std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        PANIC("unhandled exception escaped a sim::Task coroutine");
    }
};

} // namespace detail

/**
 * A lazily-started coroutine returning T (or void).
 */
template <typename T>
class [[nodiscard]] Task
{
  public:
    struct promise_type : detail::PromiseBase<promise_type>
    {
        T value;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        template <typename U>
        void
        return_value(U &&v)
        {
            value = std::forward<U>(v);
        }
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }

    /** Awaiting a task starts it and resumes the awaiter on completion. */
    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> child;

            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent) noexcept
            {
                child.promise().continuation = parent;
                return child;
            }

            T
            await_resume()
            {
                return std::move(child.promise().value);
            }
        };
        return Awaiter{handle_};
    }

  private:
    template <typename U>
    friend void spawn(Task<U> task);

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    /** Release ownership of the frame (for spawn). */
    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(handle_, nullptr);
    }

    std::coroutine_handle<promise_type> handle_;
};

/** Task<void> specialization. */
template <>
class [[nodiscard]] Task<void>
{
  public:
    struct promise_type : detail::PromiseBase<promise_type>
    {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        void return_void() {}
    };

    Task() = default;

    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const { return handle_ != nullptr; }

    auto
    operator co_await() &&
    {
        struct Awaiter
        {
            std::coroutine_handle<promise_type> child;

            bool await_ready() const noexcept { return false; }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> parent) noexcept
            {
                child.promise().continuation = parent;
                return child;
            }

            void await_resume() {}
        };
        return Awaiter{handle_};
    }

  private:
    template <typename U>
    friend void spawn(Task<U> task);

    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(handle_, nullptr);
    }

    std::coroutine_handle<promise_type> handle_;
};

/**
 * Start a task as a detached top-level process. The coroutine frame
 * frees itself on completion. If the task never completes (e.g. it is
 * still waiting on a future when the simulation is abandoned), its
 * frame is leaked — harness code should let processes wind down via
 * Simulator::runFor.
 */
template <typename T>
void
spawn(Task<T> task)
{
    auto h = task.release();
    if (!h)
        PANIC("spawn() of an empty task");
    h.promise().detached = true;
    // The child runs inline up to its first suspension and inherits
    // the spawner's TraceContext; the scope puts the spawner's context
    // back afterwards, so a span the child opened (and left open
    // across its suspension) cannot leak into the spawner's siblings.
    common::TraceContextScope scope(common::currentTraceContext());
    h.resume();
}

} // namespace sim

#endif // SIM_TASK_HH
