/**
 * @file
 * One-shot futures and promises for cross-coroutine completion.
 *
 * A Promise<T> is held by the producer (e.g. an RPC transport); any
 * number of consumers may co_await the matching Future<T>. Waiters are
 * resumed as zero-delay events on the simulator, never inline, so a
 * producer's stack cannot re-enter consumer code.
 *
 * Future<T>::withTimeout(d) races the value against a timer and yields
 * std::optional<T> — the building block for RPC timeouts, 2PC decision
 * timeouts, and the cooperative termination protocol.
 *
 * Hot-path design (see PERFORMANCE.md):
 *
 *  - FutureState is pool-allocated from the owning simulator's
 *    free-list (sim/pool.hh) and intrusively refcounted by StateRef —
 *    no std::make_shared control block, no atomic refcounts (each
 *    simulator is single-threaded). A consequence: futures must not
 *    outlive their Simulator (already implied — resolving schedules
 *    onto it).
 *
 *  - Waiters are stored as plain records (handle + TraceContext), one
 *    inline + overflow vector, instead of per-waiter std::function
 *    closures. Resolution schedules each waiter via
 *    scheduleWithContext, so the waiter resumes inside its own
 *    transaction without a context-capturing wrapper.
 *
 *  - withTimeout's double-resume guard is a monotone ticket in the
 *    pooled state instead of a heap std::shared_ptr<bool> per
 *    combinator: each timed wait claims a ticket, and whichever side
 *    (value or timer) removes it from the outstanding set first wins.
 *    Tickets are never reused, so a stale loser event can never
 *    confuse a later waiter. Up to four concurrent timed waiters are
 *    tracked inline; more spill into a vector.
 */

#ifndef SIM_FUTURE_HH
#define SIM_FUTURE_HH

#include <array>
#include <coroutine>
#include <cstdint>
#include <new>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/trace.hh"
#include "sim/simulator.hh"

namespace sim {

namespace detail {

template <typename T>
class StateRef;

template <typename T>
struct FutureState
{
    explicit FutureState(Simulator &s) : sim(&s) {}

    /** A suspended consumer: where to resume, under which context,
     *  and (for timed waiters) which pending ticket guards it. */
    struct Waiter
    {
        std::coroutine_handle<> handle;
        common::TraceContext ctx;
        std::uint64_t ticket = 0; ///< 0 = plain (untimed) waiter
    };

    Simulator *sim;
    std::uint32_t refs = 1;
    /** Next timed-wait ticket (monotone, never reused; 0 reserved). */
    std::uint64_t nextTicket = 1;
    /** Outstanding timed waits: inline slots (0 = free) + spillover.
     *  A ticket present = its waiter has not been resumed yet. */
    std::array<std::uint64_t, 4> timedInline{};
    std::vector<std::uint64_t> timedSpill;
    std::optional<T> value;
    /** First waiter inline — the overwhelmingly common case is exactly
     *  one consumer — spillover in a vector. */
    Waiter first;
    std::vector<Waiter> rest;

    bool resolved() const { return value.has_value(); }

    void
    addWaiter(Waiter w)
    {
        if (!first.handle)
            first = w;
        else
            rest.push_back(w);
    }

    /** Register a new timed wait; returns its (never reused) ticket. */
    std::uint64_t
    claimTicket()
    {
        const std::uint64_t ticket = nextTicket++;
        for (std::uint64_t &slot : timedInline) {
            if (slot == 0) {
                slot = ticket;
                return ticket;
            }
        }
        timedSpill.push_back(ticket);
        return ticket;
    }

    /** Remove @p ticket from the outstanding set. Returns true if it
     *  was present — i.e. the caller won the value-vs-timer race and
     *  should resume the waiter. */
    bool
    settleTicket(std::uint64_t ticket)
    {
        for (std::uint64_t &slot : timedInline) {
            if (slot == ticket) {
                slot = 0;
                return true;
            }
        }
        for (std::uint64_t &t : timedSpill) {
            if (t == ticket) {
                t = timedSpill.back();
                timedSpill.pop_back();
                return true;
            }
        }
        return false;
    }

    void
    resolve(T v)
    {
        if (resolved())
            PANIC("promise resolved twice");
        value = std::move(v);
        if (first.handle) {
            fire(first);
            first = {};
        }
        if (!rest.empty()) {
            std::vector<Waiter> waiters = std::move(rest);
            rest.clear();
            for (const Waiter &w : waiters)
                fire(w);
        }
    }

  private:
    void
    fire(const Waiter &w)
    {
        if (w.ticket == 0) {
            // Plain waiter: the awaiter object in the suspended frame
            // keeps this state alive until resumption, so the event
            // only needs the handle.
            sim->scheduleWithContext(0, w.ctx,
                                     [h = w.handle] { h.resume(); });
            return;
        }
        // Timed waiter: race against its timer via the pending set.
        StateRef<T> self(this);
        sim->scheduleWithContext(
            0, w.ctx,
            [self = std::move(self), h = w.handle, ticket = w.ticket] {
                if (self.get()->settleTicket(ticket))
                    h.resume();
                // else its timer already resumed it
            });
    }
};

/**
 * Intrusive refcounted handle to a pool-allocated FutureState. The
 * non-atomic refcount is correct because a simulator (and everything
 * scheduled on it) is confined to one thread.
 */
template <typename T>
class StateRef
{
  public:
    StateRef() = default;

    /** Adopt an additional reference to @p s (increments). */
    explicit StateRef(FutureState<T> *s) : p_(s)
    {
        if (p_)
            ++p_->refs;
    }

    /** Allocate a fresh state (refcount 1) from @p sim's pool. */
    static StateRef
    make(Simulator &sim)
    {
        void *mem = sim.pool().allocate(sizeof(FutureState<T>));
        StateRef r;
        r.p_ = ::new (mem) FutureState<T>(sim);
        return r;
    }

    StateRef(const StateRef &other) : p_(other.p_)
    {
        if (p_)
            ++p_->refs;
    }

    StateRef(StateRef &&other) noexcept
        : p_(std::exchange(other.p_, nullptr))
    {
    }

    StateRef &
    operator=(const StateRef &other)
    {
        StateRef copy(other);
        std::swap(p_, copy.p_);
        return *this;
    }

    StateRef &
    operator=(StateRef &&other) noexcept
    {
        if (this != &other) {
            release();
            p_ = std::exchange(other.p_, nullptr);
        }
        return *this;
    }

    ~StateRef() { release(); }

    FutureState<T> *get() const { return p_; }
    FutureState<T> *operator->() const { return p_; }
    explicit operator bool() const { return p_ != nullptr; }

  private:
    void
    release() noexcept
    {
        if (!p_)
            return;
        if (--p_->refs == 0) {
            Simulator *sim = p_->sim;
            p_->~FutureState<T>();
            sim->pool().deallocate(p_, sizeof(FutureState<T>));
        }
        p_ = nullptr;
    }

    FutureState<T> *p_ = nullptr;
};

} // namespace detail

template <typename T>
class Future;

/** Producer side of a one-shot future. Copyable (shared state). */
template <typename T>
class Promise
{
  public:
    explicit Promise(Simulator &sim)
        : state_(detail::StateRef<T>::make(sim))
    {
    }

    /** Fulfil the promise; resumes all waiters as new events. */
    void set(T value) { state_->resolve(std::move(value)); }

    bool resolved() const { return state_->resolved(); }

    Future<T> future() const;

  private:
    detail::StateRef<T> state_;
};

/** Consumer side. Copyable; all copies see the same completion. */
template <typename T>
class Future
{
  public:
    Future() = default;

    explicit Future(detail::StateRef<T> state) : state_(std::move(state))
    {
    }

    bool valid() const { return static_cast<bool>(state_); }
    bool ready() const { return state_ && state_->resolved(); }

    /** The resolved value; only valid when ready(). */
    const T &
    peek() const
    {
        if (!ready())
            PANIC("peek() on unresolved future");
        return *state_->value;
    }

    /** co_await yields a copy of the value once resolved. */
    auto
    operator co_await() const
    {
        struct Awaiter
        {
            detail::StateRef<T> state;

            bool await_ready() const noexcept { return state->resolved(); }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                // Record the *waiter's* context: resolution happens on
                // the resolver's stack, and the waiter must resume
                // inside its own transaction, not the resolver's.
                state->addWaiter(
                    {h, common::currentTraceContext(), 0});
            }

            T await_resume() { return *state->value; }
        };
        if (!state_)
            PANIC("co_await on invalid future");
        return Awaiter{state_};
    }

    /**
     * Awaitable that yields std::optional<T>: the value if it arrives
     * within @p timeout, std::nullopt otherwise.
     */
    auto
    withTimeout(Duration timeout) const
    {
        struct Awaiter
        {
            detail::StateRef<T> state;
            Duration timeout;

            bool await_ready() const noexcept { return state->resolved(); }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                detail::FutureState<T> *s = state.get();
                // A ticket in the pooled state guards against double
                // resume when both the value and the timer fire (the
                // old code heap-allocated a shared_ptr<bool> per
                // combinator for this).
                const std::uint64_t ticket = s->claimTicket();
                s->addWaiter({h, common::currentTraceContext(), ticket});
                // The timer event inherits the caller's (waiter's)
                // context via schedule()'s snapshot.
                s->sim->schedule(
                    timeout, [state = this->state, h, ticket] {
                        if (state.get()->settleTicket(ticket))
                            h.resume();
                        // else the value won the race
                    });
            }

            std::optional<T>
            await_resume()
            {
                if (state->resolved())
                    return *state->value;
                return std::nullopt;
            }
        };
        if (!state_)
            PANIC("withTimeout() on invalid future");
        return Awaiter{state_, timeout};
    }

  private:
    detail::StateRef<T> state_;
};

template <typename T>
Future<T>
Promise<T>::future() const
{
    return Future<T>(state_);
}

/** Awaitable that suspends for @p d of virtual time. */
inline auto
sleepFor(Simulator &sim, Duration d)
{
    struct Awaiter
    {
        Simulator &sim;
        Duration d;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sim.schedule(d, [h] { h.resume(); });
        }

        void await_resume() const noexcept {}
    };
    if (d < 0)
        PANIC("sleepFor negative duration");
    return Awaiter{sim, d};
}

/** Awaitable that reschedules the coroutine as a fresh event "now". */
inline auto
yieldNow(Simulator &sim)
{
    return sleepFor(sim, 0);
}

} // namespace sim

#endif // SIM_FUTURE_HH
