/**
 * @file
 * One-shot futures and promises for cross-coroutine completion.
 *
 * A Promise<T> is held by the producer (e.g. an RPC transport); any
 * number of consumers may co_await the matching Future<T>. Waiters are
 * resumed as zero-delay events on the simulator, never inline, so a
 * producer's stack cannot re-enter consumer code.
 *
 * Future<T>::withTimeout(d) races the value against a timer and yields
 * std::optional<T> — the building block for RPC timeouts, 2PC decision
 * timeouts, and the cooperative termination protocol.
 */

#ifndef SIM_FUTURE_HH
#define SIM_FUTURE_HH

#include <coroutine>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/trace.hh"
#include "sim/simulator.hh"

namespace sim {

namespace detail {

template <typename T>
struct FutureState
{
    explicit FutureState(Simulator &s) : sim(&s) {}

    Simulator *sim;
    std::optional<T> value;
    std::vector<std::function<void()>> callbacks;

    bool resolved() const { return value.has_value(); }

    void
    resolve(T v)
    {
        if (resolved())
            PANIC("promise resolved twice");
        value = std::move(v);
        auto cbs = std::move(callbacks);
        callbacks.clear();
        for (auto &cb : cbs)
            sim->schedule(0, std::move(cb));
    }
};

} // namespace detail

template <typename T>
class Future;

/** Producer side of a one-shot future. Copyable (shared state). */
template <typename T>
class Promise
{
  public:
    explicit Promise(Simulator &sim)
        : state_(std::make_shared<detail::FutureState<T>>(sim))
    {
    }

    /** Fulfil the promise; resumes all waiters as new events. */
    void set(T value) { state_->resolve(std::move(value)); }

    bool resolved() const { return state_->resolved(); }

    Future<T> future() const;

  private:
    std::shared_ptr<detail::FutureState<T>> state_;
};

/** Consumer side. Copyable; all copies see the same completion. */
template <typename T>
class Future
{
  public:
    Future() = default;

    explicit Future(std::shared_ptr<detail::FutureState<T>> state)
        : state_(std::move(state))
    {
    }

    bool valid() const { return state_ != nullptr; }
    bool ready() const { return state_ && state_->resolved(); }

    /** The resolved value; only valid when ready(). */
    const T &
    peek() const
    {
        if (!ready())
            PANIC("peek() on unresolved future");
        return *state_->value;
    }

    /** co_await yields a copy of the value once resolved. */
    auto
    operator co_await() const
    {
        struct Awaiter
        {
            std::shared_ptr<detail::FutureState<T>> state;

            bool await_ready() const noexcept { return state->resolved(); }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                // Capture the *waiter's* context: the callback is
                // scheduled from the resolver's stack, and the waiter
                // must resume inside its own transaction, not the
                // resolver's.
                const common::TraceContext ctx =
                    common::currentTraceContext();
                state->callbacks.push_back([h, ctx] {
                    common::TraceContextScope scope(ctx);
                    h.resume();
                });
            }

            T await_resume() { return *state->value; }
        };
        if (!state_)
            PANIC("co_await on invalid future");
        return Awaiter{state_};
    }

    /**
     * Awaitable that yields std::optional<T>: the value if it arrives
     * within @p timeout, std::nullopt otherwise.
     */
    auto
    withTimeout(Duration timeout) const
    {
        struct Awaiter
        {
            std::shared_ptr<detail::FutureState<T>> state;
            Duration timeout;
            // Guards against double resume when both the value and the
            // timer fire; shared with the two callbacks.
            std::shared_ptr<bool> settled = std::make_shared<bool>(false);

            bool await_ready() const noexcept { return state->resolved(); }

            void
            await_suspend(std::coroutine_handle<> h)
            {
                auto flag = settled;
                // As in the plain awaiter: the value callback runs on
                // the resolver's stack, so pin the waiter's context.
                // The timer path needs no capture — schedule() snapshots
                // the current (waiter's) context itself.
                const common::TraceContext ctx =
                    common::currentTraceContext();
                state->callbacks.push_back([h, flag, ctx] {
                    if (*flag)
                        return;
                    *flag = true;
                    common::TraceContextScope scope(ctx);
                    h.resume();
                });
                state->sim->schedule(timeout, [h, flag] {
                    if (*flag)
                        return;
                    *flag = true;
                    h.resume();
                });
            }

            std::optional<T>
            await_resume()
            {
                if (state->resolved())
                    return *state->value;
                return std::nullopt;
            }
        };
        if (!state_)
            PANIC("withTimeout() on invalid future");
        return Awaiter{state_, timeout};
    }

  private:
    std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
Future<T>
Promise<T>::future() const
{
    return Future<T>(state_);
}

/** Awaitable that suspends for @p d of virtual time. */
inline auto
sleepFor(Simulator &sim, Duration d)
{
    struct Awaiter
    {
        Simulator &sim;
        Duration d;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sim.schedule(d, [h] { h.resume(); });
        }

        void await_resume() const noexcept {}
    };
    if (d < 0)
        PANIC("sleepFor negative duration");
    return Awaiter{sim, d};
}

/** Awaitable that reschedules the coroutine as a fresh event "now". */
inline auto
yieldNow(Simulator &sim)
{
    return sleepFor(sim, 0);
}

} // namespace sim

#endif // SIM_FUTURE_HH
