/**
 * @file
 * Small-buffer-optimized callback for the DES hot path.
 *
 * sim::Callback replaces std::function<void()> on the event path. The
 * difference that matters: captures up to kInlineSize bytes (48) live
 * inside the Callback itself — no heap allocation per scheduled event.
 * std::function's SBO on common ABIs tops out at 16 bytes, which this
 * codebase's real timers (GC sweeps capture `this` + epoch + stats,
 * sync waiters carry a handle + TraceContext) routinely exceed, so the
 * old path paid one allocation per schedule().
 *
 * Move-only by design: an event fires exactly once, so there is
 * nothing to share, and copyability is what forces std::function to
 * heap-allocate copyable wrappers. Larger captures still work — they
 * fall back to a single heap block and the Callback just carries the
 * pointer.
 */

#ifndef SIM_CALLBACK_HH
#define SIM_CALLBACK_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/logging.hh"

namespace sim {

class Callback
{
  public:
    /** Sized to hold a coroutine handle + TraceContext + two pointers
     *  (the largest capture on the sim/net hot paths) inline. */
    static constexpr std::size_t kInlineSize = 48;

    Callback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, Callback> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    Callback(F &&fn) // NOLINT: implicit by design (drop-in for lambdas)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(fn));
            ops_ = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage_) =
                new Fn(std::forward<F>(fn));
            ops_ = &heapOps<Fn>;
        }
    }

    Callback(Callback &&other) noexcept { moveFrom(other); }

    Callback &
    operator=(Callback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    Callback(const Callback &) = delete;
    Callback &operator=(const Callback &) = delete;

    ~Callback() { reset(); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    void
    operator()()
    {
        if (!ops_)
            PANIC("invoking an empty sim::Callback");
        ops_->invoke(storage_);
    }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into @p dst from @p src, destroying @p src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *dst, void *src) {
            Fn *s = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*s));
            s->~Fn();
        },
        [](void *p) { static_cast<Fn *>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) { (**static_cast<Fn **>(p))(); },
        [](void *dst, void *src) {
            *static_cast<Fn **>(dst) = *static_cast<Fn **>(src);
        },
        [](void *p) { delete *static_cast<Fn **>(p); },
    };

    void
    moveFrom(Callback &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineSize];
    const Ops *ops_ = nullptr;
};

} // namespace sim

#endif // SIM_CALLBACK_HH
