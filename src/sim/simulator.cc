#include "sim/simulator.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace sim {

void
Simulator::schedule(Duration delay, Callback fn)
{
    if (delay < 0)
        PANIC("negative event delay " << delay);
    // Snapshot the caller's context into the event — the causal link
    // between "X scheduled Y" and "Y's spans belong to X's
    // transaction". The run loop installs it before fn runs.
    queue_.schedule(now_ + delay, common::currentTraceContext(),
                    std::move(fn));
}

void
Simulator::scheduleAt(Time when, Callback fn)
{
    if (when < now_)
        PANIC("event scheduled in the past: " << when << " < " << now_);
    queue_.schedule(when, common::currentTraceContext(), std::move(fn));
}

void
Simulator::scheduleWithContext(Duration delay,
                               const common::TraceContext &ctx,
                               Callback fn)
{
    if (delay < 0)
        PANIC("negative event delay " << delay);
    queue_.schedule(now_ + delay, ctx, std::move(fn));
}

void
Simulator::scheduleAtWithContext(Time when,
                                 const common::TraceContext &ctx,
                                 Callback fn)
{
    if (when < now_)
        PANIC("event scheduled in the past: " << when << " < " << now_);
    queue_.schedule(when, ctx, std::move(fn));
}

std::uint64_t
Simulator::runLoop(Time limit, bool bounded)
{
    std::uint64_t processed = 0;
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
        if (bounded && queue_.nextTime() > limit)
            break;
        Event ev = queue_.pop();
        now_ = ev.when;
        // Each event runs under exactly the context it was scheduled
        // with; a span left open across a suspension cannot leak into
        // unrelated events.
        common::setCurrentTraceContext(ev.ctx);
        ev.fn();
        ++processed;
    }
    // Leave no event's context dangling for harness code that runs
    // between run calls.
    common::setCurrentTraceContext({});
    if (bounded && now_ < limit)
        now_ = limit;
    return processed;
}

std::uint64_t
Simulator::run()
{
    return runLoop(0, false);
}

std::uint64_t
Simulator::runUntil(Time t)
{
    if (t < now_)
        PANIC("runUntil into the past");
    return runLoop(t, true);
}

std::uint64_t
Simulator::runFor(Duration d, Duration grace)
{
    std::uint64_t n = runUntil(now_ + d);
    requestStop();
    n += runUntil(now_ + grace);
    return n;
}

} // namespace sim
