#include "sim/simulator.hh"

#include "common/logging.hh"
#include "common/trace.hh"

namespace sim {

namespace {

/**
 * Capture the caller's TraceContext so the scheduled event runs under
 * it — the causal link between "X scheduled Y" and "Y's spans belong
 * to X's transaction". No-op (no wrapper allocation) when the caller
 * has no active context.
 */
std::function<void()>
wrapContext(std::function<void()> fn)
{
    const common::TraceContext ctx = common::currentTraceContext();
    if (!ctx.active())
        return fn;
    return [ctx, fn = std::move(fn)] {
        common::TraceContextScope scope(ctx);
        fn();
    };
}

} // namespace

void
Simulator::schedule(Duration delay, std::function<void()> fn)
{
    if (delay < 0)
        PANIC("negative event delay " << delay);
    queue_.schedule(now_ + delay, wrapContext(std::move(fn)));
}

void
Simulator::scheduleAt(Time when, std::function<void()> fn)
{
    if (when < now_)
        PANIC("event scheduled in the past: " << when << " < " << now_);
    queue_.schedule(when, wrapContext(std::move(fn)));
}

std::uint64_t
Simulator::runLoop(Time limit, bool bounded)
{
    std::uint64_t processed = 0;
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
        if (bounded && queue_.nextTime() > limit)
            break;
        Event ev = queue_.pop();
        now_ = ev.when;
        // Each event starts context-free; wrapContext restores a
        // captured context, and a span left open across a suspension
        // must not leak into unrelated events.
        common::setCurrentTraceContext({});
        ev.fn();
        ++processed;
    }
    if (bounded && now_ < limit)
        now_ = limit;
    return processed;
}

std::uint64_t
Simulator::run()
{
    return runLoop(0, false);
}

std::uint64_t
Simulator::runUntil(Time t)
{
    if (t < now_)
        PANIC("runUntil into the past");
    return runLoop(t, true);
}

std::uint64_t
Simulator::runFor(Duration d, Duration grace)
{
    std::uint64_t n = runUntil(now_ + d);
    requestStop();
    n += runUntil(now_ + grace);
    return n;
}

} // namespace sim
