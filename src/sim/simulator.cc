#include "sim/simulator.hh"

#include "common/logging.hh"

namespace sim {

void
Simulator::schedule(Duration delay, std::function<void()> fn)
{
    if (delay < 0)
        PANIC("negative event delay " << delay);
    queue_.schedule(now_ + delay, std::move(fn));
}

void
Simulator::scheduleAt(Time when, std::function<void()> fn)
{
    if (when < now_)
        PANIC("event scheduled in the past: " << when << " < " << now_);
    queue_.schedule(when, std::move(fn));
}

std::uint64_t
Simulator::runLoop(Time limit, bool bounded)
{
    std::uint64_t processed = 0;
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
        if (bounded && queue_.nextTime() > limit)
            break;
        Event ev = queue_.pop();
        now_ = ev.when;
        ev.fn();
        ++processed;
    }
    if (bounded && now_ < limit)
        now_ = limit;
    return processed;
}

std::uint64_t
Simulator::run()
{
    return runLoop(0, false);
}

std::uint64_t
Simulator::runUntil(Time t)
{
    if (t < now_)
        PANIC("runUntil into the past");
    return runLoop(t, true);
}

std::uint64_t
Simulator::runFor(Duration d, Duration grace)
{
    std::uint64_t n = runUntil(now_ + d);
    requestStop();
    n += runUntil(now_ + grace);
    return n;
}

} // namespace sim
