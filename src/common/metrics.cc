#include "common/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/json.hh"

namespace common {

const char *
seriesKindName(SeriesKind kind)
{
    switch (kind) {
    case SeriesKind::Counter:
        return "counter";
    case SeriesKind::Gauge:
        return "gauge";
    case SeriesKind::Hist:
        return "hist";
    }
    return "?";
}

void
TimeSeriesLog::Series::push(const MetricPoint &point)
{
    if (ring_.size() < capacity_)
        ring_.push_back(point); // reserved at creation: no realloc
    else
        ring_[appended_ % capacity_] = point;
    ++appended_;
}

std::vector<MetricPoint>
TimeSeriesLog::Series::points() const
{
    std::vector<MetricPoint> out;
    out.reserve(ring_.size());
    if (appended_ <= ring_.size()) {
        out = ring_;
    } else {
        const std::size_t head = appended_ % capacity_;
        out.insert(out.end(), ring_.begin() + head, ring_.end());
        out.insert(out.end(), ring_.begin(), ring_.begin() + head);
    }
    return out;
}

TimeSeriesLog::TimeSeriesLog(Duration interval,
                             std::size_t windowCapacity)
    : interval_(interval), windowCapacity_(windowCapacity)
{
}

void
TimeSeriesLog::noteWindowEnd(Time end)
{
    lastWindowEnd_ = std::max(lastWindowEnd_, end);
}

TimeSeriesLog::Series &
TimeSeriesLog::series(std::string_view name, NodeId node,
                      SeriesKind kind, bool deterministic)
{
    const auto it = index_.find({std::string(name), node});
    if (it != index_.end())
        return *it->second;
    auto s = std::make_unique<Series>();
    s->name = name;
    s->node = node;
    s->kind = kind;
    s->deterministic = deterministic;
    s->capacity_ = windowCapacity_;
    s->ring_.reserve(windowCapacity_);
    Series *raw = s.get();
    series_.push_back(std::move(s));
    index_.emplace(std::make_pair(raw->name, node), raw);
    return *raw;
}

const TimeSeriesLog::Series *
TimeSeriesLog::find(std::string_view name, NodeId node) const
{
    const auto it = index_.find({std::string(name), node});
    return it == index_.end() ? nullptr : it->second;
}

void
TimeSeriesLog::addPoint(std::string_view name, NodeId node,
                        SeriesKind kind, const MetricPoint &point,
                        bool deterministic)
{
    series(name, node, kind, deterministic).push(point);
    noteWindowEnd(point.windowEnd);
}

std::vector<const TimeSeriesLog::Series *>
TimeSeriesLog::sorted() const
{
    std::vector<const Series *> out;
    out.reserve(series_.size());
    for (const auto &s : series_)
        out.push_back(s.get());
    std::sort(out.begin(), out.end(),
              [](const Series *a, const Series *b) {
                  if (a->name != b->name)
                      return a->name < b->name;
                  return a->node < b->node;
              });
    return out;
}

void
TimeSeriesLog::mergeFrom(const TimeSeriesLog &other)
{
    for (const Series *s : other.sorted()) {
        Series &dst = series(s->name, s->node, s->kind,
                             s->deterministic);
        for (const MetricPoint &p : s->points())
            dst.push(p);
    }
    noteWindowEnd(other.lastWindowEnd());
}

void
mergeTimeSeries(const std::vector<const TimeSeriesLog *> &parts,
                TimeSeriesLog &out)
{
    // Gather every (name, node) across partitions, sorted. A series
    // normally lives on exactly one partition; when two partitions
    // emit the same key, points interleave by windowStart with ties
    // broken by partition index — both are thread-count independent.
    struct Key
    {
        std::string name;
        NodeId node;
        SeriesKind kind;
        bool deterministic;
        bool operator<(const Key &o) const
        {
            if (name != o.name)
                return name < o.name;
            return node < o.node;
        }
    };
    std::map<Key, std::vector<MetricPoint>> merged;
    for (const TimeSeriesLog *part : parts) {
        for (const TimeSeriesLog::Series *s : part->sorted()) {
            auto &points = merged[{s->name, s->node, s->kind,
                                   s->deterministic}];
            const auto mine = s->points();
            points.insert(points.end(), mine.begin(), mine.end());
        }
        out.noteWindowEnd(part->lastWindowEnd());
    }
    for (auto &[key, points] : merged) {
        std::stable_sort(points.begin(), points.end(),
                         [](const MetricPoint &a,
                            const MetricPoint &b) {
                             return a.windowStart < b.windowStart;
                         });
        TimeSeriesLog::Series &dst =
            out.series(key.name, key.node, key.kind,
                       key.deterministic);
        for (const MetricPoint &p : points)
            dst.push(p);
    }
}

void
TimeSeriesLog::writeSeriesJson(JsonWriter &w, const Series &s) const
{
    w.beginObject();
    w.key("name").value(s.name);
    w.key("node").value(static_cast<std::uint64_t>(s.node));
    w.key("kind").value(seriesKindName(s.kind));
    w.key("dropped").value(s.dropped());
    w.key("points").beginArray();
    for (const MetricPoint &p : s.points()) {
        w.beginObject();
        w.key("w").value(p.windowStart);
        w.key("we").value(p.windowEnd);
        switch (s.kind) {
        case SeriesKind::Counter:
            // Counter deltas are integral; emit them exactly.
            w.key("d").value(static_cast<std::int64_t>(p.value));
            break;
        case SeriesKind::Gauge:
            w.key("v").value(p.value);
            break;
        case SeriesKind::Hist:
            w.key("n").value(p.count);
            w.key("p50").value(p.p50);
            w.key("p99").value(p.p99);
            w.key("p999").value(p.p999);
            break;
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

void
TimeSeriesLog::writeJson(std::ostream &os,
                         bool includeNonDeterministic) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("milana-metrics-v1");
    w.key("interval_ns").value(interval_);
    w.key("window_capacity")
        .value(static_cast<std::uint64_t>(windowCapacity_));
    w.key("last_window_end_ns").value(lastWindowEnd_);
    const auto all = sorted();
    w.key("series").beginArray();
    for (const Series *s : all)
        if (s->deterministic)
            writeSeriesJson(w, *s);
    w.endArray();
    if (includeNonDeterministic) {
        w.key("nondeterministic").beginObject();
        w.key("series").beginArray();
        for (const Series *s : all)
            if (!s->deterministic)
                writeSeriesJson(w, *s);
        w.endArray();
        w.endObject();
    }
    w.endObject();
    os << "\n";
}

void
TimeSeriesLog::writeCsv(std::ostream &os) const
{
    os << "series,node,kind,window_start_ns,window_end_ns,value,"
          "count,p50,p99,p999\n";
    char buf[32];
    for (const Series *s : sorted()) {
        if (!s->deterministic)
            continue;
        for (const MetricPoint &p : s->points()) {
            os << s->name << ',' << s->node << ','
               << seriesKindName(s->kind) << ',' << p.windowStart
               << ',' << p.windowEnd << ',';
            switch (s->kind) {
            case SeriesKind::Counter:
                os << static_cast<std::int64_t>(p.value) << ",,,,";
                break;
            case SeriesKind::Gauge:
                std::snprintf(buf, sizeof buf, "%.17g", p.value);
                os << buf << ",,,,";
                break;
            case SeriesKind::Hist:
                os << ',' << p.count << ',' << p.p50 << ',' << p.p99
                   << ',' << p.p999;
                break;
            }
            os << '\n';
        }
    }
}

MetricsRegistry::MetricsRegistry(Duration interval,
                                 std::size_t windowCapacity)
    : log_(interval, windowCapacity)
{
}

void
MetricsRegistry::addStatSet(std::string prefix, NodeId node,
                            const StatSet &set)
{
    auto src = std::make_unique<StatSource>();
    src->prefix = std::move(prefix);
    src->node = node;
    src->set = &set;
    sources_.push_back(std::move(src));
}

void
MetricsRegistry::addGauge(std::string name, NodeId node,
                          std::function<double()> fn)
{
    GaugeSource g;
    g.series = &log_.series(name, node, SeriesKind::Gauge);
    g.fn = std::move(fn);
    gauges_.push_back(std::move(g));
}

void
MetricsRegistry::prime()
{
    for (auto &src : sources_) {
        for (const auto &[name, c] : src->set->counters()) {
            auto &state = src->counters[&c];
            if (state.series == nullptr) {
                scratchName_ = src->prefix;
                scratchName_ += name;
                state.series = &log_.series(scratchName_, src->node,
                                            SeriesKind::Counter);
            }
            state.prev = c.value();
        }
        for (const auto &[name, h] : src->set->histograms()) {
            auto &state = src->hists[&h];
            if (state.series == nullptr) {
                scratchName_ = src->prefix;
                scratchName_ += name;
                state.series = &log_.series(scratchName_, src->node,
                                            SeriesKind::Hist);
            }
            state.prev = h;
        }
    }
}

void
MetricsRegistry::sampleStatSource(StatSource &src,
                                  const MetricPoint &base)
{
    for (const auto &[name, c] : src.set->counters()) {
        auto &state = src.counters[&c]; // pointer-keyed: no alloc
        if (state.series == nullptr) {
            // First sighting (counter appeared mid-run): one-time
            // name build + series creation.
            scratchName_ = src.prefix;
            scratchName_ += name;
            state.series = &log_.series(scratchName_, src.node,
                                        SeriesKind::Counter);
        }
        const std::uint64_t cur = c.value();
        // A StatSet::reset() between samples (measurement-window
        // alignment) makes cur < prev; the delta is then cur itself.
        const std::uint64_t delta =
            cur >= state.prev ? cur - state.prev : cur;
        state.prev = cur;
        MetricPoint p = base;
        p.value = static_cast<double>(delta);
        state.series->push(p);
    }
    for (const auto &[name, h] : src.set->histograms()) {
        auto &state = src.hists[&h];
        if (state.series == nullptr) {
            scratchName_ = src.prefix;
            scratchName_ += name;
            state.series = &log_.series(scratchName_, src.node,
                                        SeriesKind::Hist);
        }
        state.delta.assignDelta(h, state.prev);
        state.prev = h; // same bucket count: no realloc
        MetricPoint p = base;
        p.count = state.delta.count();
        p.p50 = state.delta.p50();
        p.p99 = state.delta.p99();
        p.p999 = state.delta.p999();
        state.series->push(p);
    }
}

void
MetricsRegistry::sample(Time windowStart, Time windowEnd)
{
    if (windowEnd <= log_.lastWindowEnd())
        return;
    MetricPoint base;
    base.windowStart = windowStart;
    base.windowEnd = windowEnd;
    for (auto &src : sources_)
        sampleStatSource(*src, base);
    for (auto &g : gauges_) {
        MetricPoint p = base;
        p.value = g.fn();
        g.series->push(p);
    }
    ++samples_;
    log_.noteWindowEnd(windowEnd);
}

} // namespace common
