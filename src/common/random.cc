#include "common/random.hh"

#include <cassert>
#include <cmath>

namespace common {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection-free multiply-shift (Lemire); bias is negligible for
    // simulation bounds (< 2^32).
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

double
Rng::nextGaussian()
{
    // Box-Muller transform; draw until u1 is nonzero to avoid log(0).
    double u1 = 0.0;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    const double u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * M_PI * u2);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

double
Rng::nextExponential(double mean)
{
    double u = 0.0;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace common
