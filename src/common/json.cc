#include "common/json.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace common {

// ------------------------------------------------------------ writing

void
jsonEscape(std::ostream &os, std::string_view s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
JsonWriter::separate()
{
    if (afterKey_) {
        afterKey_ = false;
        return;
    }
    if (stack_.empty())
        return;
    if (!stack_.back().first)
        os_ << (stack_.back().array ? ", " : ",\n");
    stack_.back().first = false;
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    os_ << "{";
    stack_.push_back(Level{false, true});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    stack_.pop_back();
    os_ << "}";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    os_ << "[";
    stack_.push_back(Level{true, true});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    stack_.pop_back();
    os_ << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view name)
{
    separate();
    if (!stack_.empty() && !stack_.back().array)
        os_ << "\n";
    jsonEscape(os_, name);
    os_ << ": ";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    separate();
    jsonEscape(os_, v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        os_ << "null"; // JSON has no NaN/Inf
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    os_ << "null";
    return *this;
}

// ------------------------------------------------------------ parsing

std::int64_t
JsonValue::asInt() const
{
    if (kind_ == Kind::Int)
        return int_;
    if (kind_ == Kind::Double)
        return static_cast<std::int64_t>(double_);
    return 0;
}

double
JsonValue::asDouble() const
{
    if (kind_ == Kind::Double)
        return double_;
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    return 0.0;
}

const JsonValue &
JsonValue::at(const std::string &name) const
{
    static const JsonValue null_value;
    auto it = object_.find(name);
    return it == object_.end() ? null_value : it->second;
}

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    parse(std::string *error)
    {
        JsonValue v;
        if (!parseValue(v) || (skipSpace(), pos_ != text_.size())) {
            if (error) {
                std::ostringstream os;
                os << "JSON parse error at offset " << pos_ << ": "
                   << (message_.empty() ? "trailing data" : message_);
                *error = os.str();
            }
            return JsonValue();
        }
        return v;
    }

  private:
    bool
    fail(const char *msg)
    {
        if (message_.empty())
            message_ = msg;
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind_ = JsonValue::Kind::String;
            return parseString(out.string_);
        }
        if (literal("true")) {
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return true;
        }
        if (literal("false")) {
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return true;
        }
        if (literal("null")) {
            out.kind_ = JsonValue::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseObject(JsonValue &out)
    {
        ++pos_; // '{'
        out.kind_ = JsonValue::Kind::Object;
        skipSpace();
        if (consume('}'))
            return true;
        while (true) {
            skipSpace();
            std::string name;
            if (pos_ >= text_.size() || text_[pos_] != '"' ||
                !parseString(name))
                return fail("expected member name");
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue member;
            if (!parseValue(member))
                return false;
            out.object_.emplace(std::move(name), std::move(member));
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        ++pos_; // '['
        out.kind_ = JsonValue::Kind::Array;
        skipSpace();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue item;
            if (!parseValue(item))
                return false;
            out.array_.push_back(std::move(item));
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string &out)
    {
        ++pos_; // opening quote
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("unterminated escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    auto res = std::from_chars(
                        text_.data() + pos_, text_.data() + pos_ + 4,
                        code, 16);
                    if (res.ec != std::errc() ||
                        res.ptr != text_.data() + pos_ + 4)
                        return fail("bad \\u escape");
                    pos_ += 4;
                    // Exporters only escape control characters, so a
                    // Latin-1 reconstruction suffices here.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return fail("expected a value");
        const std::string_view token = text_.substr(start, pos_ - start);
        if (integral) {
            std::int64_t v = 0;
            auto res = std::from_chars(token.data(),
                                       token.data() + token.size(), v);
            if (res.ec == std::errc() &&
                res.ptr == token.data() + token.size()) {
                out.kind_ = JsonValue::Kind::Int;
                out.int_ = v;
                out.double_ = static_cast<double>(v);
                return true;
            }
        }
        out.kind_ = JsonValue::Kind::Double;
        out.double_ = std::strtod(std::string(token).c_str(), nullptr);
        out.int_ = static_cast<std::int64_t>(out.double_);
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string message_;
};

JsonValue
JsonValue::parse(std::string_view text, std::string *error)
{
    return JsonParser(text).parse(error);
}

} // namespace common
