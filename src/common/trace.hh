/**
 * @file
 * Simulated-time tracing: typed span/event records stamped with BOTH
 * the simulator's TrueTime and the emitting node's (possibly skewed)
 * LocalTime, so a report can attribute latency and aborts to clock
 * skew vs. device queueing vs. validation after the fact.
 *
 * Three pieces:
 *
 *  - TraceLog: a bounded ring buffer of TraceEvent records owned by
 *    the harness. When full, the oldest events are overwritten and
 *    counted in dropped(); a trace is a *recent window*, never an
 *    unbounded allocation.
 *  - Tracer: a cheap per-component handle (node id + clock accessors
 *    + TraceLog pointer). A default-constructed Tracer is disabled and
 *    every emit is a no-op, so instrumentation costs one branch when
 *    tracing is off.
 *  - ScopedSpan: RAII begin/end pair; the tag set before destruction
 *    rides on the end event (e.g. an abort reason discovered mid-span).
 *
 * Event names follow the metric naming convention documented in
 * OBSERVABILITY.md: `layer.component.event`, e.g.
 * `milana.txn.commit`, `flash.ssd.op`, `clocksync.sync.exchange`.
 */

#ifndef COMMON_TRACE_HH
#define COMMON_TRACE_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace common {

enum class TraceKind : std::uint8_t
{
    Instant,
    SpanBegin,
    SpanEnd,
};

/** One-letter code used by the JSON/CSV exports ("I", "B", "E"). */
const char *traceKindCode(TraceKind kind);

struct TraceEvent
{
    /** Global append order; breaks ties between identical timestamps
     *  (the simulator processes many events at the same instant). */
    std::uint64_t seq = 0;
    /** Simulator TrueTime at emission (ns). */
    Time trueTime = 0;
    /** The emitting node's LocalTime (ns) — differs from trueTime by
     *  the node's current clock error. */
    Time localTime = 0;
    NodeId node = 0;
    TraceKind kind = TraceKind::Instant;
    /** Pairs SpanBegin/SpanEnd records; 0 for instants. */
    std::uint64_t span = 0;
    /** `layer.component.event` (see OBSERVABILITY.md). */
    std::string name;
    /** Free-form qualifier: abort reason, op kind, vote... */
    std::string tag;
    /** Free numeric payload: channel index, offset (ns), count... */
    std::int64_t arg = 0;
};

class TraceLog
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    explicit TraceLog(std::size_t capacity = kDefaultCapacity);

    /** Allocate a fresh span id (never 0). */
    std::uint64_t nextSpanId() { return nextSpan_++; }

    /** Record an event; stamps seq, evicts the oldest when full. */
    void append(TraceEvent event);

    std::size_t capacity() const { return capacity_; }
    /** Events currently held (<= capacity). */
    std::size_t size() const;
    /** Total events ever appended, including evicted ones. */
    std::uint64_t recorded() const { return appended_; }
    /** Events lost to ring-buffer eviction. */
    std::uint64_t dropped() const;

    void clear();

    /** Surviving events, oldest first (ascending seq). */
    std::vector<TraceEvent> snapshot() const;

    /** Full trace document: schema header + events array. */
    void writeJson(std::ostream &os) const;
    /** One header line + one line per event. */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<TraceEvent> ring_;
    std::size_t capacity_;
    std::uint64_t appended_ = 0;
    std::uint64_t nextSpan_ = 1;
};

/**
 * Per-component emission handle. Components own one by value; the
 * cluster builder (or a test) arms it with attach(). Clock accessors
 * are std::function so common/ need not depend on sim/ or clocksync/.
 */
class Tracer
{
  public:
    using TimeFn = std::function<Time()>;

    Tracer() = default; ///< disabled: all emits are no-ops

    void attach(TraceLog &log, NodeId node, TimeFn true_now,
                TimeFn local_now);

    bool enabled() const { return log_ != nullptr; }

    void instant(std::string_view name, std::string_view tag = {},
                 std::int64_t arg = 0);

    /** Emit SpanBegin; returns the span id (0 when disabled). */
    std::uint64_t begin(std::string_view name, std::string_view tag = {},
                        std::int64_t arg = 0);
    void end(std::uint64_t span, std::string_view name,
             std::string_view tag = {}, std::int64_t arg = 0);

  private:
    void emit(TraceKind kind, std::uint64_t span, std::string_view name,
              std::string_view tag, std::int64_t arg);

    TraceLog *log_ = nullptr;
    NodeId node_ = 0;
    TimeFn trueNow_;
    TimeFn localNow_;
};

/**
 * RAII span: begin at construction, end at destruction (or finish()).
 * The tag/arg set before the end ride on the SpanEnd event, so a
 * result discovered mid-span (abort reason, vote) labels the span.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer &tracer, std::string_view name,
               std::string_view tag = {});
    ~ScopedSpan() { finish(); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    void setTag(std::string_view tag) { tag_ = tag; }
    void setArg(std::int64_t arg) { arg_ = arg; }

    /** Emit the SpanEnd now; later calls (and destruction) no-op. */
    void finish();

  private:
    Tracer &tracer_;
    std::string name_;
    std::string tag_;
    std::int64_t arg_ = 0;
    std::uint64_t span_ = 0;
    bool done_ = false;
};

} // namespace common

#endif // COMMON_TRACE_HH
