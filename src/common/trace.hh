/**
 * @file
 * Simulated-time tracing: typed span/event records stamped with BOTH
 * the simulator's TrueTime and the emitting node's (possibly skewed)
 * LocalTime, so a report can attribute latency and aborts to clock
 * skew vs. device queueing vs. validation after the fact.
 *
 * Four pieces:
 *
 *  - TraceContext: the ambient causal context — which transaction
 *    (trace id) the current execution path belongs to and the
 *    innermost open span. The simulator is single-threaded, so the
 *    context is a plain global saved/restored around events, coroutine
 *    resumptions, and network deliveries (see sim/simulator.cc,
 *    sim/task.hh, sim/future.hh, sim/sync.hh, net/network.hh).
 *  - TraceLog: a bounded ring buffer of TraceEvent records owned by
 *    the harness. When full, the oldest events are overwritten and
 *    counted in dropped(); a trace is a *recent window*, never an
 *    unbounded allocation. An optional observer sees every append
 *    (before any eviction) — the hook the InvariantMonitor uses.
 *  - Tracer: a cheap per-component handle (node id + clock accessors
 *    + TraceLog pointer). A default-constructed Tracer is disabled and
 *    every emit is a no-op, so instrumentation costs one branch when
 *    tracing is off. Every emitted event is stamped with the current
 *    TraceContext (traceId + parent span).
 *  - ScopedSpan: RAII begin/end pair; the tag set before destruction
 *    rides on the end event (e.g. an abort reason discovered
 *    mid-span). Construction pushes the span onto the current context
 *    (children parent under it); finish() pops it.
 *
 * Event names follow the metric naming convention documented in
 * OBSERVABILITY.md: `layer.component.event`, e.g.
 * `milana.txn.commit`, `flash.ssd.op`, `clocksync.sync.exchange`.
 */

#ifndef COMMON_TRACE_HH
#define COMMON_TRACE_HH

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace common {

class TimeSeriesLog;

enum class TraceKind : std::uint8_t
{
    Instant,
    SpanBegin,
    SpanEnd,
};

/** One-letter code used by the JSON/CSV exports ("I", "B", "E"). */
const char *traceKindCode(TraceKind kind);

/**
 * Causal context carried across coroutine continuations and network
 * messages: the transaction/trace the current execution path serves,
 * and the innermost open span (the parent of anything emitted next).
 * A zero context means "not inside any traced operation".
 */
struct TraceContext
{
    /** Groups every span/instant of one logical operation (one MILANA
     *  transaction). 0 = no trace. */
    std::uint64_t traceId = 0;
    /** The innermost open span; new spans/instants parent under it. */
    std::uint64_t spanId = 0;

    bool active() const { return (traceId | spanId) != 0; }
};

namespace detail {
/** The ambient context. Each simulator is single-threaded (see
 *  sim/simulator.hh), but parallel sweeps (bench::SweepRunner) run one
 *  simulator per worker thread — thread_local keeps every cell's
 *  ambient context private. The run loop installs each event's
 *  captured context before it fires. */
inline thread_local TraceContext g_traceContext;
} // namespace detail

inline const TraceContext &
currentTraceContext()
{
    return detail::g_traceContext;
}

inline void
setCurrentTraceContext(const TraceContext &ctx)
{
    detail::g_traceContext = ctx;
}

/** RAII: install @p ctx for a scope, restore the previous on exit. */
class TraceContextScope
{
  public:
    explicit TraceContextScope(const TraceContext &ctx)
        : prev_(detail::g_traceContext)
    {
        detail::g_traceContext = ctx;
    }
    ~TraceContextScope() { detail::g_traceContext = prev_; }

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    TraceContext prev_;
};

struct TraceEvent
{
    /** Global append order; breaks ties between identical timestamps
     *  (the simulator processes many events at the same instant). */
    std::uint64_t seq = 0;
    /** Simulator TrueTime at emission (ns). */
    Time trueTime = 0;
    /** The emitting node's LocalTime (ns) — differs from trueTime by
     *  the node's current clock error. */
    Time localTime = 0;
    NodeId node = 0;
    TraceKind kind = TraceKind::Instant;
    /** Pairs SpanBegin/SpanEnd records; 0 for instants. */
    std::uint64_t span = 0;
    /** The trace (transaction) this event belongs to; 0 = untraced. */
    std::uint64_t traceId = 0;
    /** The enclosing span at emission; for a SpanBegin/SpanEnd pair
     *  this is the span's parent. 0 = top-level. */
    std::uint64_t parentSpan = 0;
    /** `layer.component.event` (see OBSERVABILITY.md). */
    std::string name;
    /** Free-form qualifier: abort reason, op kind, vote... */
    std::string tag;
    /** Free numeric payload: channel index, offset (ns), count... */
    std::int64_t arg = 0;
    /** Second numeric payload: version timestamp, queue wait (ns)... */
    std::int64_t arg2 = 0;
};

class TraceLog
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    /** Sees every append (including events later evicted), after the
     *  seq stamp. Used by online checkers (InvariantMonitor). */
    using Observer = std::function<void(const TraceEvent &)>;

    explicit TraceLog(std::size_t capacity = kDefaultCapacity);

    /** Allocate a fresh span id (never 0). */
    std::uint64_t
    nextSpanId()
    {
        const std::uint64_t id = nextSpan_;
        nextSpan_ += idStride_;
        return id;
    }

    /** Allocate a fresh trace (transaction) id (never 0). */
    std::uint64_t
    nextTraceId()
    {
        const std::uint64_t id = nextTrace_;
        nextTrace_ += idStride_;
        return id;
    }

    /**
     * Interleave this log's span/trace id sequences with other logs':
     * ids become start, start + stride, start + 2*stride, ... A
     * partitioned scenario gives partition p's log (p + 1, P) so ids
     * stay globally unique AND deterministic without any cross-thread
     * coordination (see sim/partition.hh). Call before any allocation;
     * @p start must be >= 1 (0 means "no trace/span").
     */
    void
    strideIds(std::uint64_t start, std::uint64_t stride)
    {
        nextSpan_ = start;
        nextTrace_ = start;
        idStride_ = stride;
    }

    /** Record an event; stamps seq, evicts the oldest when full. */
    void append(TraceEvent event);

    /** Install (or clear, with nullptr) the append observer. */
    void setObserver(Observer observer) { observer_ = std::move(observer); }

    std::size_t capacity() const { return capacity_; }
    /** Events currently held (<= capacity). */
    std::size_t size() const;
    /** Total events ever appended, including evicted ones. */
    std::uint64_t recorded() const { return appended_; }
    /** Events lost to ring-buffer eviction. */
    std::uint64_t dropped() const;

    void clear();

    /** Surviving events ordered by (trueTime, seq). Within one log the
     *  two orders agree (time is monotonic), but the tie-break is
     *  explicit so merged/exported traces are byte-stable per seed. */
    std::vector<TraceEvent> snapshot() const;

    /** Full trace document (schema milana-trace-v2): header + events. */
    void writeJson(std::ostream &os) const;
    /** One header line + one line per event. */
    void writeCsv(std::ostream &os) const;
    /** Chrome/Perfetto trace-event JSON (load at ui.perfetto.dev).
     *  One process ("track group") per node; spans are async events
     *  keyed by span id, so interleaved coroutines render correctly.
     *  When @p metrics is non-null, its deterministic series are
     *  emitted as counter ("C") tracks alongside the spans — counter
     *  series as per-second rates, gauges raw, histogram series as
     *  their per-window p99. */
    void writePerfetto(std::ostream &os,
                       const TimeSeriesLog *metrics = nullptr) const;

  private:
    std::vector<TraceEvent> ring_;
    std::size_t capacity_;
    std::uint64_t appended_ = 0;
    std::uint64_t nextSpan_ = 1;
    std::uint64_t nextTrace_ = 1;
    std::uint64_t idStride_ = 1;
    Observer observer_;
};

/**
 * Merge per-partition trace logs into @p out in the deterministic
 * total order (trueTime, partition index, per-partition seq) — the
 * same discipline the partitioned scheduler uses for mailboxes, so
 * a merged export is byte-identical for any worker-thread count.
 * Cross-partition causality is safe: causally related events on
 * different partitions are separated by at least the network's
 * minimum link latency, so they never tie on trueTime. @p out's
 * observer (e.g. an InvariantMonitor) sees every merged event; events
 * evicted from a partition's ring are simply absent. Call only while
 * no window is executing.
 */
void mergeTraceLogs(const std::vector<const TraceLog *> &parts,
                    TraceLog &out);

/** A parsed milana-trace-v1/v2 document (tools, tests). */
struct ParsedTrace
{
    /** 1 or 2, from the schema string. */
    int schemaVersion = 0;
    std::uint64_t capacity = 0;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::vector<TraceEvent> events;
};

/**
 * Parse a trace JSON document. Accepts both milana-trace-v1 (no
 * trace/parent/arg2 fields — they default to 0) and milana-trace-v2.
 * Returns false with a one-line @p error on malformed input.
 */
bool parseTraceJson(std::string_view text, ParsedTrace &out,
                    std::string &error);

/**
 * Per-component emission handle. Components own one by value; the
 * cluster builder (or a test) arms it with attach(). Clock accessors
 * are std::function so common/ need not depend on sim/ or clocksync/.
 */
class Tracer
{
  public:
    using TimeFn = std::function<Time()>;

    Tracer() = default; ///< disabled: all emits are no-ops

    void attach(TraceLog &log, NodeId node, TimeFn true_now,
                TimeFn local_now);

    bool enabled() const { return log_ != nullptr; }

    /** Fresh trace id for a new top-level operation (0 if disabled). */
    std::uint64_t newTraceId()
    {
        return enabled() ? log_->nextTraceId() : 0;
    }

    void instant(std::string_view name, std::string_view tag = {},
                 std::int64_t arg = 0, std::int64_t arg2 = 0);

    /** Emit SpanBegin; returns the span id (0 when disabled). */
    std::uint64_t begin(std::string_view name, std::string_view tag = {},
                        std::int64_t arg = 0);
    void end(std::uint64_t span, std::string_view name,
             std::string_view tag = {}, std::int64_t arg = 0,
             std::int64_t arg2 = 0);

  private:
    void emit(TraceKind kind, std::uint64_t span, std::string_view name,
              std::string_view tag, std::int64_t arg, std::int64_t arg2);

    TraceLog *log_ = nullptr;
    NodeId node_ = 0;
    TimeFn trueNow_;
    TimeFn localNow_;
};

/**
 * RAII span: begin at construction, end at destruction (or finish()).
 * The tag/arg set before the end ride on the SpanEnd event, so a
 * result discovered mid-span (abort reason, vote) labels the span.
 *
 * Construction makes this span the current TraceContext (inheriting
 * the ambient trace id), so nested spans and instants parent under
 * it — including across co_awaits, because the sim layer saves and
 * restores the context around every suspension. finish() restores the
 * surrounding context.
 */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer &tracer, std::string_view name,
               std::string_view tag = {});
    ~ScopedSpan() { finish(); }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    void setTag(std::string_view tag) { tag_ = tag; }
    void setArg(std::int64_t arg) { arg_ = arg; }
    void setArg2(std::int64_t arg2) { arg2_ = arg2; }

    std::uint64_t id() const { return span_; }

    /** Emit the SpanEnd now; later calls (and destruction) no-op. */
    void finish();

  private:
    Tracer &tracer_;
    std::string name_;
    std::string tag_;
    std::int64_t arg_ = 0;
    std::int64_t arg2_ = 0;
    std::uint64_t span_ = 0;
    /** Context to restore on finish; also stamps the SpanEnd (the end
     *  record carries the same trace/parent as the begin). */
    TraceContext prev_;
    bool done_ = false;
};

} // namespace common

#endif // COMMON_TRACE_HH
