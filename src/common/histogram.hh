/**
 * @file
 * Latency histogram with approximate quantiles.
 *
 * Uses log-spaced buckets (HdrHistogram-style: linear sub-buckets
 * within power-of-two ranges) so that recording is O(1), memory is
 * bounded, and relative error of reported quantiles is < 2 / 64.
 */

#ifndef COMMON_HISTOGRAM_HH
#define COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace common {

class Histogram
{
  public:
    Histogram();

    /** Record one sample (negative samples clamp to zero). */
    void record(std::int64_t value);

    /** Merge another histogram into this one. */
    void merge(const Histogram &other);

    void reset();

    /**
     * Replace this histogram's contents with the difference
     * `cur - prev`, where @p prev is an earlier snapshot of @p cur
     * (bucket counts monotonically non-decreasing between the two).
     * If @p cur has fewer samples than @p prev (it was reset in
     * between), the delta is @p cur itself. Reuses this histogram's
     * pre-allocated bucket storage: no allocation. min/max of the
     * delta are approximated from the populated bucket bounds.
     */
    void assignDelta(const Histogram &cur, const Histogram &prev);

    std::uint64_t count() const { return count_; }
    std::int64_t min() const;
    std::int64_t max() const { return max_; }
    double mean() const;

    /**
     * Approximate quantile, q in [0, 1]. Returns 0 when empty.
     * Linearly interpolates within the containing bucket, clamped to
     * the observed [min, max] range.
     */
    std::int64_t quantile(double q) const;

    std::int64_t p50() const { return quantile(0.50); }
    std::int64_t p95() const { return quantile(0.95); }
    std::int64_t p99() const { return quantile(0.99); }
    std::int64_t p999() const { return quantile(0.999); }

    /** One-line summary (interpreting samples as nanoseconds). */
    std::string summary() const;

  private:
    static constexpr int kSubBucketBits = 6; // 64 sub-buckets per octave
    static constexpr int kSubBuckets = 1 << kSubBucketBits;
    static constexpr int kOctaves = 50;

    static int bucketIndex(std::int64_t value);
    static std::int64_t bucketMidpoint(int index);
    static std::int64_t bucketLower(int index);
    static std::int64_t bucketWidth(int index);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::int64_t min_ = 0;
    std::int64_t max_ = 0;
    double sum_ = 0.0;
};

} // namespace common

#endif // COMMON_HISTOGRAM_HH
