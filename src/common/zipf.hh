/**
 * @file
 * Zipfian key-popularity sampler.
 *
 * The Retwis "contention parameter" alpha in the paper's Figures 6, 7
 * and 9 is modelled as the exponent of a Zipf distribution over the key
 * space: higher alpha concentrates accesses on fewer keys, increasing
 * the probability that concurrent transactions share keys.
 */

#ifndef COMMON_ZIPF_HH
#define COMMON_ZIPF_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"

namespace common {

/**
 * Samples ranks in [0, n) with probability proportional to
 * 1 / (rank+1)^alpha.
 *
 * Uses the Gray et al. analytic approximation (as popularized by YCSB)
 * so construction is O(1) in n apart from the zeta sums, which are
 * computed incrementally and memoized.
 */
class ZipfSampler
{
  public:
    /**
     * @param n     Size of the key space (must be >= 1).
     * @param alpha Skew exponent; 0 gives a uniform distribution.
     */
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw a rank in [0, n); rank 0 is the most popular. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t size() const { return n_; }
    double alpha() const { return alpha_; }

    /** Probability mass of the given rank (for tests). */
    double pmf(std::uint64_t rank) const;

  private:
    static double zeta(std::uint64_t n, double alpha);

    std::uint64_t n_;
    double alpha_;
    double zetaN_;
    double zeta2_;
    double eta_;
};

/**
 * Maps sampled ranks onto the key space with a fixed pseudo-random
 * permutation so that "hot" keys are scattered instead of clustered at
 * the low end (which would otherwise land them all in one shard).
 */
class ScrambledZipf
{
  public:
    ScrambledZipf(std::uint64_t n, double alpha, std::uint64_t seed);

    /** Draw a key in [0, n). */
    std::uint64_t sample(Rng &rng) const;

  private:
    ZipfSampler zipf_;
    std::uint64_t n_;
    std::uint64_t seed_;
};

} // namespace common

#endif // COMMON_ZIPF_HH
