/**
 * @file
 * Minimal logging and error handling, modelled on gem5's
 * panic()/fatal()/warn() conventions:
 *
 *  - panic():  an internal invariant was violated — a bug in this
 *              library. Aborts (so tests and debuggers catch it).
 *  - fatal():  the user asked for something impossible (bad config).
 *              Exits with status 1.
 *  - warn()/inform(): advisory messages on stderr.
 *
 * Debug tracing is compiled in but off by default; enable per-run with
 * Logger::setLevel.
 */

#ifndef COMMON_LOGGING_HH
#define COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace common {

enum class LogLevel
{
    Trace,
    Debug,
    Info,
    Warn,
    Error,
    Off,
};

class Logger
{
  public:
    static void setLevel(LogLevel level);
    static LogLevel level();

    static void log(LogLevel level, const std::string &msg);

    [[noreturn]] static void panic(const std::string &msg);
    [[noreturn]] static void fatal(const std::string &msg);
};

/** Convenience stream-style helpers. */
#define MILANA_LOG(level, expr)                                          \
    do {                                                                 \
        if (static_cast<int>(level) >=                                   \
            static_cast<int>(::common::Logger::level())) {               \
            std::ostringstream os_;                                      \
            os_ << expr;                                                 \
            ::common::Logger::log(level, os_.str());                     \
        }                                                                \
    } while (0)

#define LOG_TRACE(expr) MILANA_LOG(::common::LogLevel::Trace, expr)
#define LOG_DEBUG(expr) MILANA_LOG(::common::LogLevel::Debug, expr)
#define LOG_INFO(expr) MILANA_LOG(::common::LogLevel::Info, expr)
#define LOG_WARN(expr) MILANA_LOG(::common::LogLevel::Warn, expr)

#define PANIC(expr)                                                      \
    do {                                                                 \
        std::ostringstream os_;                                          \
        os_ << expr;                                                     \
        ::common::Logger::panic(os_.str());                              \
    } while (0)

#define FATAL(expr)                                                      \
    do {                                                                 \
        std::ostringstream os_;                                          \
        os_ << expr;                                                     \
        ::common::Logger::fatal(os_.str());                              \
    } while (0)

} // namespace common

#endif // COMMON_LOGGING_HH
