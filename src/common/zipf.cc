#include "common/zipf.hh"

#include <cassert>
#include <cmath>

namespace common {

double
ZipfSampler::zeta(std::uint64_t n, double alpha)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), alpha);
    return sum;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha)
{
    assert(n >= 1);
    assert(alpha >= 0.0);
    zetaN_ = zeta(n_, alpha_);
    zeta2_ = zeta(2, alpha_);
    if (alpha_ == 1.0) {
        eta_ = 0.0; // unused in this branch of sample()
    } else {
        eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                               1.0 - alpha_)) /
               (1.0 - zeta2_ / zetaN_);
    }
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    if (alpha_ == 0.0 || n_ == 1)
        return rng.nextBounded(n_);

    const double u = rng.nextDouble();
    const double uz = u * zetaN_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, alpha_))
        return 1;

    if (alpha_ == 1.0) {
        // Harmonic case: invert the CDF numerically via the log
        // approximation H_k ~ ln(k) + gamma.
        const double target = uz;
        double acc = 0.0;
        // Fall back to a coarse scan in log-spaced strides; exact
        // enough for tests, rarely taken for benchmark alphas.
        for (std::uint64_t k = 1; k <= n_; ++k) {
            acc += 1.0 / static_cast<double>(k);
            if (acc >= target)
                return k - 1;
        }
        return n_ - 1;
    }

    const double rank =
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, 1.0 / (1.0 - alpha_));
    std::uint64_t r = static_cast<std::uint64_t>(rank);
    return r >= n_ ? n_ - 1 : r;
}

double
ZipfSampler::pmf(std::uint64_t rank) const
{
    assert(rank < n_);
    if (alpha_ == 0.0)
        return 1.0 / static_cast<double>(n_);
    return (1.0 / std::pow(static_cast<double>(rank + 1), alpha_)) /
           zetaN_;
}

namespace {

/** Cheap invertible-ish hash used only to scatter ranks over keys. */
std::uint64_t
mixHash(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace

ScrambledZipf::ScrambledZipf(std::uint64_t n, double alpha,
                             std::uint64_t seed)
    : zipf_(n, alpha), n_(n), seed_(seed)
{
}

std::uint64_t
ScrambledZipf::sample(Rng &rng) const
{
    const std::uint64_t rank = zipf_.sample(rng);
    return mixHash(rank ^ seed_) % n_;
}

} // namespace common
