/**
 * @file
 * Fundamental scalar types shared by every module: simulated time,
 * identifiers, and the SEMEL version stamp.
 *
 * All simulated time in this codebase is expressed in integer
 * nanoseconds since simulation start. Two distinct notions exist:
 *
 *  - TrueTime:  the simulator's global, perfectly accurate clock
 *               (the event-queue's notion of "now").
 *  - LocalTime: a node's possibly-skewed view of time produced by a
 *               clocksync::Clock. SEMEL/MILANA timestamps are always
 *               LocalTime values of the issuing client.
 *
 * Both are represented by the same integer type; the distinction is
 * by convention and by variable naming (true_now vs. local_now).
 */

#ifndef COMMON_TYPES_HH
#define COMMON_TYPES_HH

#include <compare>
#include <cstdint>
#include <string>

namespace common {

/** Simulated time in nanoseconds. Signed so skewed clocks can lag. */
using Time = std::int64_t;

/** A span of simulated time in nanoseconds. */
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;

/** Convert nanoseconds to floating-point microseconds (for reports). */
constexpr double
toMicros(Duration d)
{
    return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

/** Convert nanoseconds to floating-point milliseconds (for reports). */
constexpr double
toMillis(Duration d)
{
    return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/** Convert nanoseconds to floating-point seconds (for reports). */
constexpr double
toSeconds(Duration d)
{
    return static_cast<double>(d) / static_cast<double>(kSecond);
}

/** Unique identifier of a SEMEL/MILANA client (application server). */
using ClientId = std::uint32_t;

/** Unique identifier of a node in the simulated cluster. */
using NodeId = std::uint32_t;

/** Identifier of a data shard. */
using ShardId = std::uint32_t;

/** Application-level key. Fixed-width for cheap copying and hashing. */
using Key = std::uint64_t;

/** Application-level value. */
using Value = std::string;

/**
 * A SEMEL version stamp: V = <timestamp, clientId> (paper section 3).
 *
 * The timestamp is the issuing client's LocalTime; the clientId breaks
 * ties between simultaneous writes from different clients, inducing a
 * total order over all versions of a key.
 */
struct Version
{
    Time timestamp = 0;
    ClientId clientId = 0;

    auto operator<=>(const Version &) const = default;

    /** The zero version, older than any real write. */
    static constexpr Version
    zero()
    {
        return Version{0, 0};
    }

    bool isZero() const { return timestamp == 0 && clientId == 0; }

    std::string toString() const;
};

/** A sentinel used where "no version" must be distinguishable. */
constexpr Version kNoVersion = Version{-1, 0};

} // namespace common

#endif // COMMON_TYPES_HH
