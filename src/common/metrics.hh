/**
 * @file
 * Time-resolved metrics plane: sampled time-series over StatSets.
 *
 * End-of-run StatSet totals collapse a whole run into one number per
 * metric; the relationships this simulator exists to study (abort
 * rate vs. instantaneous clock skew, queue depth vs. latency) are
 * functions of simulated time. This module snapshots every registered
 * StatSet on a fixed simulated-time interval and keeps, per window:
 *
 *  - counter deltas (divide by the window width for rates),
 *  - histogram quantiles (p50/p99/p999) of only the samples recorded
 *    in that window (bucket-wise snapshot subtraction),
 *  - gauge values sampled at the window boundary.
 *
 * Storage is pre-sized ring buffers: once every series name has been
 * seen, sampling allocates nothing. Each partition of a partitioned
 * run owns its own MetricsRegistry (sampled only from its own
 * simulator thread); a deterministic post-run merge keyed by
 * (series name, node, windowStart) makes the exported document
 * byte-identical for any --sim-threads/--jobs value. Wall-clock
 * measurements (the scheduler self-profiler's barrier stalls) are
 * flagged non-deterministic and exported in a separate JSON section
 * so deterministic byte-compares still pass.
 *
 * Export schema: `milana-metrics-v1` (see OBSERVABILITY.md).
 */

#ifndef COMMON_METRICS_HH
#define COMMON_METRICS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace common {

class JsonWriter;

enum class SeriesKind : std::uint8_t
{
    Counter, ///< per-window delta of a monotonic counter
    Gauge,   ///< instantaneous value at the window boundary
    Hist,    ///< per-window histogram quantiles
};

const char *seriesKindName(SeriesKind kind);

/** One fixed-size sample of one series over one window. */
struct MetricPoint
{
    Time windowStart = 0;
    Time windowEnd = 0;
    /** Counter: delta over the window. Gauge: sampled value. */
    double value = 0.0;
    /** Histogram windows only: samples recorded in the window. */
    std::uint64_t count = 0;
    std::int64_t p50 = 0;
    std::int64_t p99 = 0;
    std::int64_t p999 = 0;
};

/**
 * Named per-node series of windowed samples, each a pre-sized ring
 * buffer (the most recent @c windowCapacity windows are kept; older
 * points are counted as dropped).
 */
class TimeSeriesLog
{
  public:
    static constexpr std::size_t kDefaultWindowCapacity = 4096;

    struct Series
    {
        std::string name;
        NodeId node = 0;
        SeriesKind kind = SeriesKind::Counter;
        /** False for wall-clock-derived values (profiler stalls). */
        bool deterministic = true;

        void push(const MetricPoint &point);
        std::uint64_t dropped() const
        {
            return appended_ > ring_.size() ? appended_ - ring_.size()
                                            : 0;
        }
        std::uint64_t appended() const { return appended_; }
        /** Points in windowStart order (oldest first). */
        std::vector<MetricPoint> points() const;

      private:
        friend class TimeSeriesLog;
        std::vector<MetricPoint> ring_;
        std::size_t capacity_ = 0;
        std::uint64_t appended_ = 0;
    };

    explicit TimeSeriesLog(
        Duration interval,
        std::size_t windowCapacity = kDefaultWindowCapacity);

    Duration interval() const { return interval_; }
    std::size_t windowCapacity() const { return windowCapacity_; }

    /** End of the last sampled window (0 until the first sample). */
    Time lastWindowEnd() const { return lastWindowEnd_; }
    void noteWindowEnd(Time end);

    /**
     * Find-or-create a series. Creation reserves the full ring
     * capacity up front, so subsequent push() calls never allocate.
     */
    Series &series(std::string_view name, NodeId node, SeriesKind kind,
                   bool deterministic = true);
    const Series *find(std::string_view name, NodeId node) const;

    /** Convenience: find-or-create, then append one point. */
    void addPoint(std::string_view name, NodeId node, SeriesKind kind,
                  const MetricPoint &point, bool deterministic = true);

    /** All series sorted by (name, node). */
    std::vector<const Series *> sorted() const;

    std::size_t seriesCount() const { return series_.size(); }

    /**
     * Append every series of @p other into this log (find-or-create
     * by (name, node); points of series present in both are merged in
     * windowStart order). Input order independence makes the
     * post-partition merge deterministic.
     */
    void mergeFrom(const TimeSeriesLog &other);

    /**
     * Write the `milana-metrics-v1` JSON document. Non-deterministic
     * series go into a separate "nondeterministic" section (omitted
     * entirely when @p includeNonDeterministic is false, which is the
     * byte-comparable form).
     */
    void writeJson(std::ostream &os,
                   bool includeNonDeterministic = true) const;

    /**
     * CSV export of the deterministic series only:
     * `series,node,kind,window_start_ns,window_end_ns,value,count,
     * p50,p99,p999` (value empty for hist rows, quantiles empty for
     * counter/gauge rows). Byte-identical across thread counts.
     */
    void writeCsv(std::ostream &os) const;

  private:
    void writeSeriesJson(JsonWriter &w, const Series &s) const;

    Duration interval_;
    std::size_t windowCapacity_;
    Time lastWindowEnd_ = 0;
    std::vector<std::unique_ptr<Series>> series_;
    std::map<std::pair<std::string, NodeId>, Series *> index_;
};

/**
 * Samples registered StatSets and gauge callbacks into a
 * TimeSeriesLog. Not thread-safe: in partitioned runs each partition
 * owns one registry and samples it from its own simulator only.
 */
class MetricsRegistry
{
  public:
    explicit MetricsRegistry(
        Duration interval,
        std::size_t windowCapacity = TimeSeriesLog::kDefaultWindowCapacity);

    TimeSeriesLog &log() { return log_; }
    const TimeSeriesLog &log() const { return log_; }
    Duration interval() const { return log_.interval(); }

    /**
     * Register a StatSet: every counter `n` in it becomes a Counter
     * series `<prefix><n>` and every histogram a Hist series, all
     * attributed to @p node. Counters that first appear mid-run are
     * picked up at the next sample. The set must outlive the
     * registry's last sample() call.
     */
    void addStatSet(std::string prefix, NodeId node,
                    const StatSet &set);

    /** Register an instantaneous gauge callback. */
    void addGauge(std::string name, NodeId node,
                  std::function<double()> fn);

    /**
     * Snapshot current values as the delta baseline WITHOUT emitting
     * points. Call at measurement start so the first window does not
     * absorb setup work (e.g. store population).
     */
    void prime();

    /**
     * Sample every source for the window [windowStart, windowEnd).
     * No-op if windowEnd is not past the last sampled window's end
     * (making an end-of-run partial flush idempotent).
     */
    void sample(Time windowStart, Time windowEnd);

    std::uint64_t samples() const { return samples_; }

  private:
    struct CounterState
    {
        TimeSeriesLog::Series *series = nullptr;
        std::uint64_t prev = 0;
    };
    struct HistState
    {
        TimeSeriesLog::Series *series = nullptr;
        Histogram prev;
        Histogram delta; ///< scratch, reused every window
    };
    struct StatSource
    {
        std::string prefix;
        NodeId node = 0;
        const StatSet *set = nullptr;
        // Keyed by the stable addresses of the StatSet's map values:
        // steady-state lookups are pointer-keyed, no string building.
        std::map<const Counter *, CounterState> counters;
        std::map<const Histogram *, HistState> hists;
    };
    struct GaugeSource
    {
        TimeSeriesLog::Series *series = nullptr;
        std::function<double()> fn;
    };

    void sampleStatSource(StatSource &src, const MetricPoint &base);

    TimeSeriesLog log_;
    std::vector<std::unique_ptr<StatSource>> sources_;
    std::vector<GaugeSource> gauges_;
    std::uint64_t samples_ = 0;
    std::string scratchName_; ///< reused for series-name building
};

/**
 * Merge per-partition logs into @p out in deterministic order
 * (series by (name, node), points by windowStart, ties by partition
 * index — partition assignment is topology-fixed, so the result is
 * independent of thread count).
 */
void mergeTimeSeries(const std::vector<const TimeSeriesLog *> &parts,
                     TimeSeriesLog &out);

} // namespace common

#endif // COMMON_METRICS_HH
