/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulation draws from an Rng that
 * is seeded from a single root seed, so a run is exactly reproducible.
 * Components should own a private Rng forked from their parent's
 * (Rng::fork) rather than sharing one stream; this keeps results stable
 * when one component changes how many numbers it consumes.
 */

#ifndef COMMON_RANDOM_HH
#define COMMON_RANDOM_HH

#include <cstdint>

namespace common {

/**
 * A small, fast, deterministic PRNG (xoshiro256** with a splitmix64
 * seeding routine). Not cryptographic; plenty for simulation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. The same seed yields the same stream. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller, no caching). */
    double nextGaussian();

    /** Normal deviate with the given mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

    /** Exponential deviate with the given mean. */
    double nextExponential(double mean);

    /** Bernoulli trial: true with probability p. */
    bool nextBool(double p);

    /**
     * Derive an independent child stream. Forking consumes one value
     * from this stream; children forked in the same order are stable.
     */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace common

#endif // COMMON_RANDOM_HH
