/**
 * @file
 * Deterministic chaos engine: a seedable fault-schedule interpreter.
 *
 * A ChaosEngine holds a list of FaultSpecs — faults parsed from a
 * small line-oriented DSL (see docs/CHAOS.md) or added
 * programmatically — and replays them at exact simulated times
 * against a ChaosSink. The engine itself knows nothing about the
 * network, clocks, or flash layers: it owns the *schedule* (parsing,
 * ordering, activation windows, trace/metrics recording, dedicated
 * RNG streams) while the sink — implemented by workload::Cluster —
 * performs the layer-specific mutations.
 *
 * Determinism contract (CONCURRENCY.md):
 *
 *  - applyUntil() is only called from the driver thread while the
 *    simulation is quiescent (between Simulator/PartitionedScheduler
 *    run calls), so fault state obeys the same quiescent-mutation
 *    rule as net::Fabric. During windows every engine access is a
 *    read (anyActive(), activeFaultName(), ...).
 *  - All fault randomness comes from Rng streams forked off the
 *    engine's seed in construction order, never from the simulators'
 *    streams, so a run is replayable from (schedule, seed) and
 *    injections do not perturb unrelated random sequences.
 *  - Schedule times are relative to an origin set by arm(); until the
 *    engine is armed no action fires, which keeps populate/warmup
 *    phases fault-free and lets harnesses schedule in "time since
 *    measurement start".
 *  - nextActionAt() is the clamp the partitioned scheduler's adaptive
 *    windows honor: Cluster's run façade splits every runUntil() at
 *    the next pending action time, so an idle-gap skip can never jump
 *    over a scheduled fault — mutations land at the same simulated
 *    instants for every --sim-threads value.
 */

#ifndef COMMON_CHAOS_HH
#define COMMON_CHAOS_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"

namespace common {

/** Everything the engine can inject, across the three fault layers. */
enum class FaultKind : std::uint8_t {
    // net
    NodeCrash,      ///< node down (+ optional failover), restart on heal
    LinkPartition,  ///< drop messages on selected links (oneway = asym)
    LinkDelay,      ///< delay-spike: multiply link latency by magnitude
    // clocksync
    ClockStep,      ///< step a clock by `magnitude` ns (leap)
    ClockStuck,     ///< freeze a clock's output until healed
    ClockDrift,     ///< runaway oscillator: add `magnitude` ppm drift
    ClockMasterDown,///< PTP master outage: agents hold over, no syncs
    // flash
    SsdSlowChannel, ///< one gray channel: latency x magnitude
    SsdReadRetry,   ///< read-retry storm: P(retry)=magnitude, <=retries
    SsdGcStorm,     ///< background GC ops hog every channel
};

const char *faultKindName(FaultKind kind);

enum class FaultLayer : std::uint8_t { Net, Clock, Flash };
FaultLayer faultLayer(FaultKind kind);

/**
 * A node (or node set) named symbolically, resolved by the sink at
 * apply time — so one schedule works for any topology and survives
 * failovers ("primary:0" is whoever the master map says it is *now*).
 */
struct NodeSel
{
    enum class Kind : std::uint8_t {
        None,       ///< absent
        Node,       ///< raw node id / raw index (`node:7`, `clock:2`)
        Primary,    ///< `primary:S` — current primary of shard `index`
        Backup,     ///< `backup:S:R` — replica `sub` of shard `index`
        Client,     ///< `client:C` — client number `index`
        AllClients, ///< `client:*` / `clients`
        AllServers, ///< `node:*` / `servers`
        All,        ///< `all` — every server and client
    };
    Kind kind = Kind::None;
    std::int64_t index = 0;
    std::int64_t sub = 0;
};

/** One scheduled fault. Times are relative to the engine's origin. */
struct FaultSpec
{
    FaultKind kind = FaultKind::NodeCrash;
    Time at = 0;             ///< injection time (since origin)
    Duration duration = 0;   ///< 0 = never healed (active to run end)
    NodeSel selA;            ///< subject (node/clock/device)
    NodeSel selB;            ///< second endpoint (partitions, delay)
    std::int64_t channel = -1; ///< SsdSlowChannel: which channel
    std::int64_t retries = 0;  ///< SsdReadRetry: max extra retries/op
    double magnitude = 0.0;  ///< factor / ppm / step ns / probability
    bool oneway = false;     ///< LinkPartition: drop selA->selB only
    bool failover = false;   ///< NodeCrash: promote a backup too
    std::string name;        ///< label for traces/tags (default: verb)
};

/**
 * The mutation callback. Implementations (workload::Cluster) apply
 * `start == true` when a fault begins and `start == false` when it
 * heals; both calls happen only at quiescent points. A sink that has
 * no matching component (e.g. a clock fault on a Perfect-clock
 * cluster) should treat the call as a no-op rather than fail.
 */
class ChaosSink
{
  public:
    virtual ~ChaosSink() = default;
    virtual void applyFault(const FaultSpec &fault, bool start) = 0;
};

class ChaosEngine
{
  public:
    explicit ChaosEngine(std::uint64_t seed = 1) : rng_(seed) {}

    /**
     * Parse a schedule (one fault per line, `#` comments); appends to
     * any faults already added. On a syntax error returns false and,
     * when @p error is non-null, stores "line N: why".
     */
    bool parse(std::string_view text, std::string *error = nullptr);
    bool parseFile(const std::string &path, std::string *error = nullptr);

    /** Append one fault programmatically. */
    void add(FaultSpec spec);

    std::size_t faultCount() const { return faults_.size(); }
    const std::vector<FaultSpec> &faults() const { return faults_; }

    // ------------------------------------------------------------------
    // Driver API — quiescent points only (between run calls).
    // ------------------------------------------------------------------

    /**
     * Set the schedule origin: fault times are `origin + spec.at`.
     * Until armed, nextActionAt() reports no pending work, so warmup
     * and populate run fault-free.
     */
    void arm(Time origin);
    bool armed() const { return origin_ >= 0; }

    /** Absolute TrueTime of the next pending action; -1 when none. */
    Time nextActionAt() const;
    bool done() const;

    /** Apply (via @p sink) every action due at or before @p now, in
     *  schedule order; records a trace instant and counters each. */
    void applyUntil(Time now, ChaosSink &sink);

    /** Forget all applied state so the same schedule can run again. */
    void rewind();

    // ------------------------------------------------------------------
    // Read-only queries — safe from inside windows (workers read,
    // driver writes only while quiescent, like net::Fabric).
    // ------------------------------------------------------------------

    std::uint32_t activeCount() const
    {
        return static_cast<std::uint32_t>(activeStack_.size());
    }
    bool anyActive() const { return !activeStack_.empty(); }
    bool netFaultActive() const { return activeNet_ > 0; }
    bool clockFaultActive() const { return activeClock_ > 0; }
    bool flashFaultActive() const { return activeFlash_ > 0; }
    /** Name of the most recently injected still-active fault ("" when
     *  none) — used to tag aborted-transaction traces. */
    std::string_view activeFaultName() const;

    std::uint64_t injections() const { return injections_; }
    std::uint64_t heals() const { return heals_; }

    /** Dedicated child stream for one component's fault randomness
     *  (e.g. an SSD's read-retry coin flips). Fork order is part of
     *  the determinism contract: callers fork in construction order. */
    Rng forkRng() { return rng_.fork(); }

    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }
    Tracer &tracer() { return trace_; }

  private:
    struct Action
    {
        Time at = 0;            ///< relative to origin
        std::uint32_t fault = 0;
        bool start = true;
    };

    /** Build + stable-sort the action list (idempotent). */
    void finalize();

    Rng rng_;
    std::vector<FaultSpec> faults_;
    std::vector<Action> actions_;
    bool finalized_ = false;

    Time origin_ = -1; ///< < 0 = not armed
    std::size_t cursor_ = 0;

    /** Indices of active faults, injection order (LIFO for naming). */
    std::vector<std::uint32_t> activeStack_;
    std::uint32_t activeNet_ = 0;
    std::uint32_t activeClock_ = 0;
    std::uint32_t activeFlash_ = 0;
    std::uint64_t injections_ = 0;
    std::uint64_t heals_ = 0;

    StatSet stats_;
    Tracer trace_;
};

} // namespace common

#endif // COMMON_CHAOS_HH
