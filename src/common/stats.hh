/**
 * @file
 * Lightweight named statistics, in the spirit of gem5's stats package.
 *
 * Components register counters and histograms with a StatSet; harnesses
 * dump the set after a run. Everything is plain value types — no global
 * registry — so two simulations in one process never interfere.
 */

#ifndef COMMON_STATS_HH
#define COMMON_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "common/histogram.hh"

namespace common {

class JsonWriter;

/** A monotonically increasing named counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A named collection of counters and histograms.
 *
 * Lookup creates on first use, so call sites read naturally:
 * @code
 *   stats.counter("txn.committed").inc();
 *   stats.histogram("txn.latency").record(latency);
 * @endcode
 */
class StatSet
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Histogram &histogram(const std::string &name) { return histograms_[name]; }

    /**
     * Read-only lookup that never creates: exporters and report code
     * must use these (or the const maps) so serializing a set cannot
     * grow it — counter()/histogram() are create-on-read by design.
     * @return nullptr when the name was never recorded.
     */
    const Counter *findCounter(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

    /** Value of a counter, or 0 when absent (read-only convenience). */
    std::uint64_t counterValue(const std::string &name) const;

    /** Merge all stats from another set into this one. */
    void merge(const StatSet &other);

    void reset();

    /** Multi-line human-readable dump. */
    std::string dump(const std::string &prefix = "") const;

    /**
     * Emit this set as one JSON object value on an open writer:
     * `{"counters": {...}, "histograms": {name: {count,min,max,mean,
     * p50,p90,p95,p99,p999}, ...}}`. @p prefix (e.g. "client.") is
     * prepended to every metric name, producing the fully-qualified
     * `layer.component.metric` names of OBSERVABILITY.md.
     */
    void toJson(JsonWriter &w, const std::string &prefix = "") const;

    /** Standalone JSON document (wraps toJson). */
    void writeJson(std::ostream &os, const std::string &prefix = "") const;

    /**
     * CSV export: `metric,value` per counter and
     * `metric.{count,min,max,mean,p50,p90,p95,p99,p999},value` per
     * histogram field.
     */
    void writeCsv(std::ostream &os, const std::string &prefix = "") const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace common

#endif // COMMON_STATS_HH
