#include "common/trace.hh"

#include <algorithm>

#include "common/json.hh"

namespace common {

const char *
traceKindCode(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Instant: return "I";
      case TraceKind::SpanBegin: return "B";
      case TraceKind::SpanEnd: return "E";
    }
    return "?";
}

TraceLog::TraceLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1))
{
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
TraceLog::append(TraceEvent event)
{
    event.seq = appended_++;
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
        return;
    }
    // Ring: slot index is seq modulo capacity, so the oldest surviving
    // event is always the one this append evicts.
    ring_[static_cast<std::size_t>(event.seq % capacity_)] =
        std::move(event);
}

std::size_t
TraceLog::size() const
{
    return ring_.size();
}

std::uint64_t
TraceLog::dropped() const
{
    return appended_ - ring_.size();
}

void
TraceLog::clear()
{
    ring_.clear();
    appended_ = 0; // seq restarts; span ids stay unique across clears
}

std::vector<TraceEvent>
TraceLog::snapshot() const
{
    std::vector<TraceEvent> events = ring_;
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  return a.seq < b.seq;
              });
    return events;
}

void
TraceLog::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("milana-trace-v1");
    w.key("capacity").value(static_cast<std::uint64_t>(capacity_));
    w.key("recorded").value(recorded());
    w.key("dropped").value(dropped());
    w.key("events").beginArray();
    for (const TraceEvent &e : snapshot()) {
        os << "\n";
        w.beginObject();
        w.key("seq").value(e.seq);
        w.key("t").value(e.trueTime);
        w.key("lt").value(e.localTime);
        w.key("node").value(e.node);
        w.key("kind").value(traceKindCode(e.kind));
        w.key("span").value(e.span);
        w.key("name").value(e.name);
        if (!e.tag.empty())
            w.key("tag").value(e.tag);
        if (e.arg != 0)
            w.key("arg").value(e.arg);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
TraceLog::writeCsv(std::ostream &os) const
{
    os << "seq,true_ns,local_ns,node,kind,span,name,tag,arg\n";
    for (const TraceEvent &e : snapshot()) {
        // Names and tags are identifier-like by convention; commas in
        // them would corrupt the CSV, so map them to ';'.
        std::string name = e.name;
        std::string tag = e.tag;
        std::replace(name.begin(), name.end(), ',', ';');
        std::replace(tag.begin(), tag.end(), ',', ';');
        os << e.seq << ',' << e.trueTime << ',' << e.localTime << ','
           << e.node << ',' << traceKindCode(e.kind) << ',' << e.span
           << ',' << name << ',' << tag << ',' << e.arg << "\n";
    }
}

void
Tracer::attach(TraceLog &log, NodeId node, TimeFn true_now,
               TimeFn local_now)
{
    log_ = &log;
    node_ = node;
    trueNow_ = std::move(true_now);
    localNow_ = std::move(local_now);
}

void
Tracer::emit(TraceKind kind, std::uint64_t span, std::string_view name,
             std::string_view tag, std::int64_t arg)
{
    TraceEvent e;
    e.trueTime = trueNow_ ? trueNow_() : 0;
    e.localTime = localNow_ ? localNow_() : e.trueTime;
    e.node = node_;
    e.kind = kind;
    e.span = span;
    e.name.assign(name);
    e.tag.assign(tag);
    e.arg = arg;
    log_->append(std::move(e));
}

void
Tracer::instant(std::string_view name, std::string_view tag,
                std::int64_t arg)
{
    if (!enabled())
        return;
    emit(TraceKind::Instant, 0, name, tag, arg);
}

std::uint64_t
Tracer::begin(std::string_view name, std::string_view tag,
              std::int64_t arg)
{
    if (!enabled())
        return 0;
    const std::uint64_t span = log_->nextSpanId();
    emit(TraceKind::SpanBegin, span, name, tag, arg);
    return span;
}

void
Tracer::end(std::uint64_t span, std::string_view name,
            std::string_view tag, std::int64_t arg)
{
    if (!enabled() || span == 0)
        return;
    emit(TraceKind::SpanEnd, span, name, tag, arg);
}

ScopedSpan::ScopedSpan(Tracer &tracer, std::string_view name,
                       std::string_view tag)
    : tracer_(tracer), name_(name), tag_(tag)
{
    if (!tracer_.enabled()) {
        done_ = true;
        return;
    }
    span_ = tracer_.begin(name_, tag_);
}

void
ScopedSpan::finish()
{
    if (done_)
        return;
    done_ = true;
    tracer_.end(span_, name_, tag_, arg_);
}

} // namespace common
