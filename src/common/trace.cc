#include "common/trace.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

#include "common/json.hh"
#include "common/metrics.hh"

namespace common {

const char *
traceKindCode(TraceKind kind)
{
    switch (kind) {
      case TraceKind::Instant: return "I";
      case TraceKind::SpanBegin: return "B";
      case TraceKind::SpanEnd: return "E";
    }
    return "?";
}

TraceLog::TraceLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1))
{
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
TraceLog::append(TraceEvent event)
{
    event.seq = appended_++;
    if (observer_)
        observer_(event);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(event));
        return;
    }
    // Ring: slot index is seq modulo capacity, so the oldest surviving
    // event is always the one this append evicts.
    ring_[static_cast<std::size_t>(event.seq % capacity_)] =
        std::move(event);
}

std::size_t
TraceLog::size() const
{
    return ring_.size();
}

std::uint64_t
TraceLog::dropped() const
{
    return appended_ - ring_.size();
}

void
TraceLog::clear()
{
    ring_.clear();
    appended_ = 0; // seq restarts; span/trace ids stay unique across clears
}

void
mergeTraceLogs(const std::vector<const TraceLog *> &parts, TraceLog &out)
{
    struct Tagged
    {
        std::size_t part;
        TraceEvent event;
    };
    std::vector<Tagged> all;
    for (std::size_t p = 0; p < parts.size(); ++p) {
        for (TraceEvent &e : parts[p]->snapshot())
            all.push_back({p, std::move(e)});
    }
    std::sort(all.begin(), all.end(),
              [](const Tagged &a, const Tagged &b) {
                  if (a.event.trueTime != b.event.trueTime)
                      return a.event.trueTime < b.event.trueTime;
                  if (a.part != b.part)
                      return a.part < b.part;
                  return a.event.seq < b.event.seq;
              });
    for (Tagged &t : all)
        out.append(std::move(t.event)); // re-stamps seq in merge order
}

std::vector<TraceEvent>
TraceLog::snapshot() const
{
    std::vector<TraceEvent> events = ring_;
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.trueTime != b.trueTime)
                      return a.trueTime < b.trueTime;
                  return a.seq < b.seq;
              });
    return events;
}

void
TraceLog::writeJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("milana-trace-v2");
    w.key("capacity").value(static_cast<std::uint64_t>(capacity_));
    w.key("recorded").value(recorded());
    w.key("dropped").value(dropped());
    w.key("events").beginArray();
    for (const TraceEvent &e : snapshot()) {
        os << "\n";
        w.beginObject();
        w.key("seq").value(e.seq);
        w.key("t").value(e.trueTime);
        w.key("lt").value(e.localTime);
        w.key("node").value(e.node);
        w.key("kind").value(traceKindCode(e.kind));
        w.key("span").value(e.span);
        if (e.traceId != 0)
            w.key("trace").value(e.traceId);
        if (e.parentSpan != 0)
            w.key("parent").value(e.parentSpan);
        w.key("name").value(e.name);
        if (!e.tag.empty())
            w.key("tag").value(e.tag);
        if (e.arg != 0)
            w.key("arg").value(e.arg);
        if (e.arg2 != 0)
            w.key("arg2").value(e.arg2);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

void
TraceLog::writeCsv(std::ostream &os) const
{
    os << "seq,true_ns,local_ns,node,kind,span,trace,parent,name,tag,"
          "arg,arg2\n";
    for (const TraceEvent &e : snapshot()) {
        // Names and tags are identifier-like by convention; commas in
        // them would corrupt the CSV, so map them to ';'.
        std::string name = e.name;
        std::string tag = e.tag;
        std::replace(name.begin(), name.end(), ',', ';');
        std::replace(tag.begin(), tag.end(), ',', ';');
        os << e.seq << ',' << e.trueTime << ',' << e.localTime << ','
           << e.node << ',' << traceKindCode(e.kind) << ',' << e.span
           << ',' << e.traceId << ',' << e.parentSpan << ',' << name
           << ',' << tag << ',' << e.arg << ',' << e.arg2 << "\n";
    }
}

namespace {

/** Category shown in Perfetto's track/legend: the name's first dot
 *  component ("milana", "net", "flash", ...). */
std::string
perfettoCategory(const std::string &name)
{
    const std::size_t dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

/** Simulated ns -> trace-event µs with the fraction preserved. */
double
perfettoTs(Time ns)
{
    return static_cast<double>(ns) / 1000.0;
}

} // namespace

void
TraceLog::writePerfetto(std::ostream &os,
                        const TimeSeriesLog *metrics) const
{
    // Chrome trace-event "JSON object format". Spans are emitted as
    // *async* events ("b"/"e" keyed by pid+cat+id) rather than
    // duration events ("B"/"E"): duration events pair on a per-thread
    // stack, and interleaved coroutine spans on one simulated node
    // would mis-nest. One process per node, all on tid 1; Perfetto
    // groups async tracks by name under the node's process.
    const std::vector<TraceEvent> events = snapshot();
    JsonWriter w(os);
    w.beginObject();
    w.key("displayTimeUnit").value("ns");
    w.key("traceEvents").beginArray();

    std::map<NodeId, bool> seenNode;
    for (const TraceEvent &e : events)
        seenNode.emplace(e.node, true);
    if (metrics != nullptr)
        for (const TimeSeriesLog::Series *s : metrics->sorted())
            if (s->deterministic)
                seenNode.emplace(s->node, true);
    for (const auto &[node, unused] : seenNode) {
        os << "\n";
        char label[64];
        std::snprintf(label, sizeof label, "node %u", node);
        w.beginObject();
        w.key("ph").value("M");
        w.key("name").value("process_name");
        w.key("pid").value(node);
        w.key("tid").value(std::uint64_t{1});
        w.key("args").beginObject();
        w.key("name").value(label);
        w.endObject();
        w.endObject();
    }

    for (const TraceEvent &e : events) {
        os << "\n";
        char id[32];
        std::snprintf(id, sizeof id, "0x%" PRIx64, e.span);
        w.beginObject();
        switch (e.kind) {
          case TraceKind::Instant:
            w.key("ph").value("i");
            w.key("s").value("t");
            break;
          case TraceKind::SpanBegin:
            w.key("ph").value("b");
            w.key("id").value(id);
            break;
          case TraceKind::SpanEnd:
            w.key("ph").value("e");
            w.key("id").value(id);
            break;
        }
        w.key("ts").value(perfettoTs(e.trueTime));
        w.key("pid").value(e.node);
        w.key("tid").value(std::uint64_t{1});
        w.key("cat").value(perfettoCategory(e.name));
        w.key("name").value(e.name);
        w.key("args").beginObject();
        if (e.traceId != 0)
            w.key("trace").value(e.traceId);
        if (e.parentSpan != 0)
            w.key("parent").value(e.parentSpan);
        if (!e.tag.empty())
            w.key("tag").value(e.tag);
        if (e.arg != 0)
            w.key("arg").value(e.arg);
        if (e.arg2 != 0)
            w.key("arg2").value(e.arg2);
        w.key("lt").value(e.localTime);
        w.endObject();
        w.endObject();
    }

    // Metric series as counter tracks, one per (node, series name):
    // counters as per-second rates, gauges raw, histograms as the
    // window's p99 — timelines render alongside the span tracks.
    if (metrics != nullptr) {
        for (const TimeSeriesLog::Series *s : metrics->sorted()) {
            if (!s->deterministic)
                continue;
            for (const MetricPoint &p : s->points()) {
                double value = 0.0;
                std::string name = s->name;
                switch (s->kind) {
                case SeriesKind::Counter: {
                    const double secs =
                        toSeconds(p.windowEnd - p.windowStart);
                    value = secs > 0 ? p.value / secs : 0.0;
                    break;
                }
                case SeriesKind::Gauge:
                    value = p.value;
                    break;
                case SeriesKind::Hist:
                    name += ".p99";
                    value = static_cast<double>(p.p99);
                    break;
                }
                os << "\n";
                w.beginObject();
                w.key("ph").value("C");
                w.key("ts").value(perfettoTs(p.windowStart));
                w.key("pid").value(s->node);
                w.key("tid").value(std::uint64_t{1});
                w.key("cat").value(perfettoCategory(name));
                w.key("name").value(name);
                w.key("args").beginObject();
                w.key("value").value(value);
                w.endObject();
                w.endObject();
            }
        }
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

bool
parseTraceJson(std::string_view text, ParsedTrace &out, std::string &error)
{
    const JsonValue doc = JsonValue::parse(text, &error);
    if (!doc.isObject()) {
        if (error.empty())
            error = "trace document is not a JSON object";
        return false;
    }
    const std::string &schema = doc.at("schema").asString();
    if (schema == "milana-trace-v1") {
        out.schemaVersion = 1;
    } else if (schema == "milana-trace-v2") {
        out.schemaVersion = 2;
    } else {
        error = "unsupported trace schema \"" + schema +
                "\" (expected milana-trace-v1 or -v2)";
        return false;
    }
    out.capacity = static_cast<std::uint64_t>(doc.at("capacity").asInt());
    out.recorded = static_cast<std::uint64_t>(doc.at("recorded").asInt());
    out.dropped = static_cast<std::uint64_t>(doc.at("dropped").asInt());
    out.events.clear();

    const JsonValue &events = doc.at("events");
    if (!events.isArray()) {
        error = "trace document has no \"events\" array";
        return false;
    }
    out.events.reserve(events.size());
    for (const JsonValue &j : events.items()) {
        TraceEvent e;
        e.seq = static_cast<std::uint64_t>(j.at("seq").asInt());
        e.trueTime = j.at("t").asInt();
        e.localTime = j.at("lt").asInt();
        e.node = static_cast<NodeId>(j.at("node").asInt());
        const std::string &kind = j.at("kind").asString();
        if (kind == "I") {
            e.kind = TraceKind::Instant;
        } else if (kind == "B") {
            e.kind = TraceKind::SpanBegin;
        } else if (kind == "E") {
            e.kind = TraceKind::SpanEnd;
        } else {
            error = "event seq " + std::to_string(e.seq) +
                    " has unknown kind \"" + kind + "\"";
            return false;
        }
        e.span = static_cast<std::uint64_t>(j.at("span").asInt());
        // v2 additions; JsonValue::at returns Null (asInt == 0) for
        // absent members, which is exactly the v1 default.
        e.traceId = static_cast<std::uint64_t>(j.at("trace").asInt());
        e.parentSpan = static_cast<std::uint64_t>(j.at("parent").asInt());
        e.name = j.at("name").asString();
        e.tag = j.at("tag").asString();
        e.arg = j.at("arg").asInt();
        e.arg2 = j.at("arg2").asInt();
        out.events.push_back(std::move(e));
    }
    return true;
}

void
Tracer::attach(TraceLog &log, NodeId node, TimeFn true_now,
               TimeFn local_now)
{
    log_ = &log;
    node_ = node;
    trueNow_ = std::move(true_now);
    localNow_ = std::move(local_now);
}

void
Tracer::emit(TraceKind kind, std::uint64_t span, std::string_view name,
             std::string_view tag, std::int64_t arg, std::int64_t arg2)
{
    const TraceContext &ctx = currentTraceContext();
    TraceEvent e;
    e.trueTime = trueNow_ ? trueNow_() : 0;
    e.localTime = localNow_ ? localNow_() : e.trueTime;
    e.node = node_;
    e.kind = kind;
    e.span = span;
    e.traceId = ctx.traceId;
    e.parentSpan = ctx.spanId;
    e.name.assign(name);
    e.tag.assign(tag);
    e.arg = arg;
    e.arg2 = arg2;
    log_->append(std::move(e));
}

void
Tracer::instant(std::string_view name, std::string_view tag,
                std::int64_t arg, std::int64_t arg2)
{
    if (!enabled())
        return;
    emit(TraceKind::Instant, 0, name, tag, arg, arg2);
}

std::uint64_t
Tracer::begin(std::string_view name, std::string_view tag,
              std::int64_t arg)
{
    if (!enabled())
        return 0;
    const std::uint64_t span = log_->nextSpanId();
    emit(TraceKind::SpanBegin, span, name, tag, arg, 0);
    return span;
}

void
Tracer::end(std::uint64_t span, std::string_view name,
            std::string_view tag, std::int64_t arg, std::int64_t arg2)
{
    if (!enabled() || span == 0)
        return;
    emit(TraceKind::SpanEnd, span, name, tag, arg, arg2);
}

ScopedSpan::ScopedSpan(Tracer &tracer, std::string_view name,
                       std::string_view tag)
    : tracer_(tracer), name_(name), tag_(tag)
{
    if (!tracer_.enabled()) {
        done_ = true;
        return;
    }
    prev_ = currentTraceContext();
    span_ = tracer_.begin(name_, tag_);
    // Children (spans, instants, RPC handlers resumed later) parent
    // under this span and inherit the ambient trace id.
    setCurrentTraceContext(TraceContext{prev_.traceId, span_});
}

void
ScopedSpan::finish()
{
    if (done_)
        return;
    done_ = true;
    // Restore the surrounding context *before* emitting the end, so
    // the SpanEnd record carries the same trace/parent as the begin.
    setCurrentTraceContext(prev_);
    tracer_.end(span_, name_, tag_, arg_, arg2_);
}

} // namespace common
