/**
 * @file
 * Minimal JSON support: a streaming writer for exporters and a small
 * recursive-descent parser for tools that read exported files back
 * (tools/trace_report, the schema checks in CI, unit tests).
 *
 * Deliberately tiny — no external dependency, no incremental parsing,
 * numbers limited to what the exporters emit (64-bit integers and
 * finite doubles). All simulated times fit in a double's 53-bit
 * mantissa (< 2^53 ns ≈ 104 days), but integers are preserved exactly
 * anyway when they round-trip.
 */

#ifndef COMMON_JSON_HH
#define COMMON_JSON_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace common {

/** Write @p s to @p os as a JSON string literal (quotes included). */
void jsonEscape(std::ostream &os, std::string_view s);

/**
 * Streaming JSON writer with automatic comma/nesting management.
 *
 * @code
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("schema").value("milana-bench-v1");
 *   w.key("rows").beginArray();
 *   w.beginObject(); w.key("x").value(1); w.endObject();
 *   w.endArray();
 *   w.endObject();
 * @endcode
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Object member name; must be followed by exactly one value. */
    JsonWriter &key(std::string_view name);

    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int32_t v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter &value(std::uint32_t v) { return value(static_cast<std::uint64_t>(v)); }
    JsonWriter &value(double v);
    JsonWriter &value(bool v);
    JsonWriter &null();

  private:
    /** Emit a comma/newline separator if this position needs one. */
    void separate();

    struct Level
    {
        bool array = false;
        bool first = true;
    };

    std::ostream &os_;
    std::vector<Level> stack_;
    bool afterKey_ = false;
};

/**
 * A parsed JSON document node. Numbers keep both an integer and a
 * double view so exact 64-bit counters survive a round trip.
 */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    /**
     * Parse a complete document. On failure returns a Null value and,
     * when @p error is non-null, a one-line description with offset.
     */
    static JsonValue parse(std::string_view text,
                           std::string *error = nullptr);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool asBool() const { return bool_; }
    std::int64_t asInt() const;
    double asDouble() const;
    const std::string &asString() const { return string_; }

    const std::vector<JsonValue> &items() const { return array_; }
    std::size_t size() const { return array_.size(); }
    const JsonValue &operator[](std::size_t i) const { return array_[i]; }

    const std::map<std::string, JsonValue> &members() const
    {
        return object_;
    }
    bool has(const std::string &name) const
    {
        return object_.count(name) != 0;
    }
    /** Member lookup; returns a shared Null value when absent. */
    const JsonValue &at(const std::string &name) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;

    friend class JsonParser;
};

} // namespace common

#endif // COMMON_JSON_HH
