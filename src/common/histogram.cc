#include "common/histogram.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <sstream>

#include "common/types.hh"

namespace common {

Histogram::Histogram()
    : buckets_(static_cast<std::size_t>(kOctaves) * kSubBuckets, 0),
      min_(std::numeric_limits<std::int64_t>::max())
{
}

int
Histogram::bucketIndex(std::int64_t value)
{
    const std::uint64_t v = value <= 0 ? 0 : static_cast<std::uint64_t>(value);
    if (v < kSubBuckets)
        return static_cast<int>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBucketBits;
    const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
    int idx = kSubBuckets + shift * kSubBuckets + sub;
    const int last = kOctaves * kSubBuckets - 1;
    return std::min(idx, last);
}

std::int64_t
Histogram::bucketMidpoint(int index)
{
    if (index < kSubBuckets)
        return index;
    const int adjusted = index - kSubBuckets;
    const int shift = adjusted / kSubBuckets;
    const int sub = adjusted % kSubBuckets;
    const std::uint64_t base =
        (static_cast<std::uint64_t>(kSubBuckets + sub)) << shift;
    const std::uint64_t width = 1ULL << shift;
    return static_cast<std::int64_t>(base + width / 2);
}

void
Histogram::record(std::int64_t value)
{
    if (value < 0)
        value = 0;
    ++buckets_[static_cast<std::size_t>(bucketIndex(value))];
    ++count_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += static_cast<double>(value);
}

void
Histogram::merge(const Histogram &other)
{
    assert(buckets_.size() == other.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    min_ = std::numeric_limits<std::int64_t>::max();
    max_ = 0;
    sum_ = 0.0;
}

std::int64_t
Histogram::min() const
{
    return count_ == 0 ? 0 : min_;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::int64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t target = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return std::clamp(bucketMidpoint(static_cast<int>(i)),
                              min(), max_);
    }
    return max_;
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << "n=" << count_ << " mean=" << toMicros(
              static_cast<Duration>(mean()))
       << "us p50=" << toMicros(p50()) << "us p95=" << toMicros(p95())
       << "us p99=" << toMicros(p99()) << "us max=" << toMicros(max_)
       << "us";
    return os.str();
}

} // namespace common
