#include "common/histogram.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>
#include <sstream>

#include "common/types.hh"

namespace common {

Histogram::Histogram()
    : buckets_(static_cast<std::size_t>(kOctaves) * kSubBuckets, 0),
      min_(std::numeric_limits<std::int64_t>::max())
{
}

int
Histogram::bucketIndex(std::int64_t value)
{
    const std::uint64_t v = value <= 0 ? 0 : static_cast<std::uint64_t>(value);
    if (v < kSubBuckets)
        return static_cast<int>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBucketBits;
    const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
    int idx = kSubBuckets + shift * kSubBuckets + sub;
    const int last = kOctaves * kSubBuckets - 1;
    return std::min(idx, last);
}

std::int64_t
Histogram::bucketMidpoint(int index)
{
    return bucketLower(index) + bucketWidth(index) / 2;
}

std::int64_t
Histogram::bucketLower(int index)
{
    if (index < kSubBuckets)
        return index;
    const int adjusted = index - kSubBuckets;
    const int shift = adjusted / kSubBuckets;
    const int sub = adjusted % kSubBuckets;
    return static_cast<std::int64_t>(
        (static_cast<std::uint64_t>(kSubBuckets + sub)) << shift);
}

std::int64_t
Histogram::bucketWidth(int index)
{
    if (index < kSubBuckets)
        return 1;
    const int shift = (index - kSubBuckets) / kSubBuckets;
    return static_cast<std::int64_t>(1ULL << shift);
}

void
Histogram::record(std::int64_t value)
{
    if (value < 0)
        value = 0;
    ++buckets_[static_cast<std::size_t>(bucketIndex(value))];
    ++count_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
    sum_ += static_cast<double>(value);
}

void
Histogram::merge(const Histogram &other)
{
    assert(buckets_.size() == other.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    min_ = std::numeric_limits<std::int64_t>::max();
    max_ = 0;
    sum_ = 0.0;
}

std::int64_t
Histogram::min() const
{
    return count_ == 0 ? 0 : min_;
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::int64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_ - 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t c = buckets_[i];
        if (c == 0)
            continue;
        if (static_cast<double>(seen + c) > target) {
            // Interpolate linearly within the bucket: rank `target`
            // falls among this bucket's `c` samples, assumed evenly
            // spread across the bucket's value range.
            const double within = target - static_cast<double>(seen);
            const double frac = (within + 0.5) / static_cast<double>(c);
            const int idx = static_cast<int>(i);
            const double value =
                static_cast<double>(bucketLower(idx)) +
                frac * static_cast<double>(bucketWidth(idx));
            return std::clamp(static_cast<std::int64_t>(value), min(),
                              max_);
        }
        seen += c;
    }
    return max_;
}

void
Histogram::assignDelta(const Histogram &cur, const Histogram &prev)
{
    assert(buckets_.size() == cur.buckets_.size());
    if (cur.count_ < prev.count_) {
        // cur was reset since the prev snapshot: delta is cur itself.
        *this = cur;
        return;
    }
    count_ = cur.count_ - prev.count_;
    sum_ = cur.sum_ - prev.sum_;
    min_ = std::numeric_limits<std::int64_t>::max();
    max_ = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const std::uint64_t c = cur.buckets_[i];
        const std::uint64_t p = prev.buckets_[i];
        const std::uint64_t d = c >= p ? c - p : 0;
        buckets_[i] = d;
        if (d != 0) {
            const int idx = static_cast<int>(i);
            min_ = std::min(min_, bucketLower(idx));
            max_ = std::max(max_,
                            bucketLower(idx) + bucketWidth(idx) - 1);
        }
    }
    if (count_ == 0) {
        max_ = 0;
        sum_ = 0.0;
    }
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os.precision(1);
    os << std::fixed << "n=" << count_ << " mean=" << toMicros(
              static_cast<Duration>(mean()))
       << "us p50=" << toMicros(p50()) << "us p95=" << toMicros(p95())
       << "us p99=" << toMicros(p99()) << "us max=" << toMicros(max_)
       << "us";
    return os.str();
}

} // namespace common
