/**
 * @file
 * ChaosEngine implementation: schedule DSL parser + action replay.
 */

#include "common/chaos.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace common {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::NodeCrash:      return "crash";
    case FaultKind::LinkPartition:  return "partition";
    case FaultKind::LinkDelay:      return "delay";
    case FaultKind::ClockStep:      return "clock-step";
    case FaultKind::ClockStuck:     return "clock-stuck";
    case FaultKind::ClockDrift:     return "clock-drift";
    case FaultKind::ClockMasterDown:return "master-down";
    case FaultKind::SsdSlowChannel: return "ssd-slow";
    case FaultKind::SsdReadRetry:   return "ssd-retry";
    case FaultKind::SsdGcStorm:     return "ssd-gc";
    }
    return "?";
}

FaultLayer
faultLayer(FaultKind kind)
{
    switch (kind) {
    case FaultKind::NodeCrash:
    case FaultKind::LinkPartition:
    case FaultKind::LinkDelay:
        return FaultLayer::Net;
    case FaultKind::ClockStep:
    case FaultKind::ClockStuck:
    case FaultKind::ClockDrift:
    case FaultKind::ClockMasterDown:
        return FaultLayer::Clock;
    case FaultKind::SsdSlowChannel:
    case FaultKind::SsdReadRetry:
    case FaultKind::SsdGcStorm:
        return FaultLayer::Flash;
    }
    return FaultLayer::Net;
}

namespace {

/** "250ms", "1.5s", "800us", "90ns"; a bare number means ms (the
 *  bench::Args convention). Returns false on garbage. */
bool
parseDuration(std::string_view tok, Duration *out)
{
    if (tok.empty())
        return false;
    std::size_t suffix = tok.size();
    while (suffix > 0 && std::isalpha(static_cast<unsigned char>(
                             tok[suffix - 1])))
        --suffix;
    const std::string_view unit = tok.substr(suffix);
    const std::string num(tok.substr(0, suffix));
    if (num.empty())
        return false;
    char *end = nullptr;
    const double value = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0')
        return false;
    double scale = 0;
    if (unit.empty() || unit == "ms")
        scale = 1e6;
    else if (unit == "ns")
        scale = 1;
    else if (unit == "us")
        scale = 1e3;
    else if (unit == "s")
        scale = 1e9;
    else
        return false;
    *out = static_cast<Duration>(value * scale);
    return true;
}

bool
parseInt(std::string_view tok, std::int64_t *out)
{
    const std::string s(tok);
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || s.empty())
        return false;
    *out = v;
    return true;
}

bool
parseDouble(std::string_view tok, double *out)
{
    const std::string s(tok);
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == nullptr || *end != '\0' || s.empty())
        return false;
    *out = v;
    return true;
}

/** `node:3`, `node:*`, `primary:0`, `backup:0:1`, `client:2`,
 *  `client:*`, `clock:1`, `clients`, `servers`, `all`. */
bool
parseNodeSel(std::string_view tok, NodeSel *out)
{
    if (tok == "all") {
        out->kind = NodeSel::Kind::All;
        return true;
    }
    if (tok == "clients") {
        out->kind = NodeSel::Kind::AllClients;
        return true;
    }
    if (tok == "servers") {
        out->kind = NodeSel::Kind::AllServers;
        return true;
    }
    const std::size_t colon = tok.find(':');
    if (colon == std::string_view::npos)
        return false;
    const std::string_view head = tok.substr(0, colon);
    std::string_view rest = tok.substr(colon + 1);
    if (head == "node" || head == "clock") {
        if (rest == "*") {
            if (head == "clock")
                return false;
            out->kind = NodeSel::Kind::AllServers;
            return true;
        }
        out->kind = NodeSel::Kind::Node;
        return parseInt(rest, &out->index);
    }
    if (head == "client") {
        if (rest == "*") {
            out->kind = NodeSel::Kind::AllClients;
            return true;
        }
        out->kind = NodeSel::Kind::Client;
        return parseInt(rest, &out->index);
    }
    if (head == "primary") {
        out->kind = NodeSel::Kind::Primary;
        return parseInt(rest, &out->index);
    }
    if (head == "backup") {
        const std::size_t colon2 = rest.find(':');
        out->kind = NodeSel::Kind::Backup;
        if (colon2 == std::string_view::npos)
            return parseInt(rest, &out->index);
        return parseInt(rest.substr(0, colon2), &out->index) &&
               parseInt(rest.substr(colon2 + 1), &out->sub);
    }
    return false;
}

bool
lookupVerb(std::string_view verb, FaultKind *out)
{
    static constexpr FaultKind kAll[] = {
        FaultKind::NodeCrash,      FaultKind::LinkPartition,
        FaultKind::LinkDelay,      FaultKind::ClockStep,
        FaultKind::ClockStuck,     FaultKind::ClockDrift,
        FaultKind::ClockMasterDown,FaultKind::SsdSlowChannel,
        FaultKind::SsdReadRetry,   FaultKind::SsdGcStorm,
    };
    for (FaultKind k : kAll) {
        if (verb == faultKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

std::vector<std::string_view>
tokenize(std::string_view line)
{
    std::vector<std::string_view> toks;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && std::isspace(static_cast<unsigned char>(
                                      line[i])))
            ++i;
        std::size_t start = i;
        while (i < line.size() && !std::isspace(static_cast<unsigned char>(
                                       line[i])))
            ++i;
        if (i > start)
            toks.push_back(line.substr(start, i - start));
    }
    return toks;
}

bool
parseLine(std::string_view line, FaultSpec *spec, std::string *why)
{
    const std::vector<std::string_view> toks = tokenize(line);
    if (toks.size() < 3 || toks[0] != "at") {
        *why = "expected `at <time> <fault> ...`";
        return false;
    }
    if (!parseDuration(toks[1], &spec->at)) {
        *why = "bad time `" + std::string(toks[1]) + "`";
        return false;
    }
    if (!lookupVerb(toks[2], &spec->kind)) {
        *why = "unknown fault `" + std::string(toks[2]) + "`";
        return false;
    }
    spec->name = std::string(toks[2]);

    int sels = 0;
    for (std::size_t i = 3; i < toks.size(); ++i) {
        const std::string_view tok = toks[i];
        if (tok == "for") {
            if (i + 1 >= toks.size() ||
                !parseDuration(toks[++i], &spec->duration)) {
                *why = "bad `for <duration>`";
                return false;
            }
            continue;
        }
        if (tok == "oneway") {
            spec->oneway = true;
            continue;
        }
        if (tok == "failover") {
            spec->failover = true;
            continue;
        }
        const std::size_t eq = tok.find('=');
        if (eq != std::string_view::npos) {
            const std::string_view key = tok.substr(0, eq);
            const std::string_view val = tok.substr(eq + 1);
            bool ok = true;
            if (key == "factor" || key == "ppm" || key == "prob")
                ok = parseDouble(val, &spec->magnitude);
            else if (key == "by") {
                Duration d = 0;
                ok = parseDuration(val, &d);
                spec->magnitude = static_cast<double>(d);
            } else if (key == "channel")
                ok = parseInt(val, &spec->channel);
            else if (key == "retries")
                ok = parseInt(val, &spec->retries);
            else if (key == "name")
                spec->name = std::string(val);
            else {
                *why = "unknown key `" + std::string(key) + "`";
                return false;
            }
            if (!ok) {
                *why = "bad value for `" + std::string(key) + "`";
                return false;
            }
            continue;
        }
        NodeSel sel;
        if (!parseNodeSel(tok, &sel)) {
            *why = "unrecognized token `" + std::string(tok) + "`";
            return false;
        }
        if (sels == 0)
            spec->selA = sel;
        else if (sels == 1)
            spec->selB = sel;
        else {
            *why = "more than two node selectors";
            return false;
        }
        ++sels;
    }

    // Per-kind sanity so schedule mistakes fail at parse, not mid-run.
    switch (spec->kind) {
    case FaultKind::NodeCrash:
    case FaultKind::ClockStep:
    case FaultKind::ClockStuck:
    case FaultKind::ClockDrift:
    case FaultKind::SsdSlowChannel:
    case FaultKind::SsdReadRetry:
    case FaultKind::SsdGcStorm:
        if (spec->selA.kind == NodeSel::Kind::None) {
            *why = "fault needs a target selector";
            return false;
        }
        break;
    case FaultKind::LinkPartition:
        if (spec->selA.kind == NodeSel::Kind::None ||
            spec->selB.kind == NodeSel::Kind::None) {
            *why = "partition needs two endpoint selectors";
            return false;
        }
        break;
    case FaultKind::LinkDelay:
        if (spec->magnitude <= 0.0) {
            *why = "delay needs factor=F > 0";
            return false;
        }
        break;
    case FaultKind::ClockMasterDown:
        break;
    }
    if (spec->kind == FaultKind::LinkDelay && spec->selA.kind ==
            NodeSel::Kind::None)
        spec->selA.kind = NodeSel::Kind::All;
    if (spec->kind == FaultKind::SsdSlowChannel &&
        (spec->magnitude <= 0.0 || spec->channel < 0)) {
        *why = "ssd-slow needs channel=N and factor=F > 0";
        return false;
    }
    if (spec->kind == FaultKind::SsdReadRetry &&
        (spec->magnitude <= 0.0 || spec->magnitude > 1.0)) {
        *why = "ssd-retry needs prob=P in (0,1]";
        return false;
    }
    return true;
}

} // namespace

bool
ChaosEngine::parse(std::string_view text, std::string *error)
{
    std::size_t lineNo = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t nl = text.find('\n', pos);
        const std::string_view line =
            text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                          : nl - pos);
        ++lineNo;
        pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;

        // Strip comments and blank lines.
        const std::size_t hash = line.find('#');
        const std::string_view body =
            hash == std::string_view::npos ? line : line.substr(0, hash);
        if (tokenize(body).empty())
            continue;

        FaultSpec spec;
        std::string why;
        if (!parseLine(body, &spec, &why)) {
            if (error != nullptr) {
                std::ostringstream os;
                os << "line " << lineNo << ": " << why;
                *error = os.str();
            }
            return false;
        }
        add(std::move(spec));
    }
    return true;
}

bool
ChaosEngine::parseFile(const std::string &path, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error != nullptr)
            *error = "cannot open " + path;
        return false;
    }
    std::ostringstream os;
    os << is.rdbuf();
    return parse(os.str(), error);
}

void
ChaosEngine::add(FaultSpec spec)
{
    if (spec.name.empty())
        spec.name = faultKindName(spec.kind);
    faults_.push_back(std::move(spec));
    finalized_ = false;
}

void
ChaosEngine::finalize()
{
    if (finalized_)
        return;
    actions_.clear();
    for (std::uint32_t i = 0; i < faults_.size(); ++i) {
        const FaultSpec &f = faults_[i];
        actions_.push_back({f.at, i, true});
        if (f.duration > 0)
            actions_.push_back({f.at + f.duration, i, false});
    }
    // Stable: same-instant actions fire in schedule (emission) order,
    // which is itself deterministic — part of the replay contract.
    std::stable_sort(actions_.begin(), actions_.end(),
                     [](const Action &a, const Action &b) {
                         return a.at < b.at;
                     });
    finalized_ = true;
}

void
ChaosEngine::arm(Time origin)
{
    finalize();
    origin_ = origin;
}

Time
ChaosEngine::nextActionAt() const
{
    if (origin_ < 0 || !finalized_ || cursor_ >= actions_.size())
        return -1;
    return origin_ + actions_[cursor_].at;
}

bool
ChaosEngine::done() const
{
    return !finalized_ || cursor_ >= actions_.size();
}

void
ChaosEngine::applyUntil(Time now, ChaosSink &sink)
{
    if (origin_ < 0)
        return;
    finalize();
    while (cursor_ < actions_.size() &&
           origin_ + actions_[cursor_].at <= now) {
        const Action action = actions_[cursor_++];
        const FaultSpec &fault = faults_[action.fault];
        sink.applyFault(fault, action.start);
        const FaultLayer layer = faultLayer(fault.kind);
        if (action.start) {
            activeStack_.push_back(action.fault);
            ++injections_;
            stats_.counter("injected").inc();
            stats_.counter(std::string("injected.") +
                           faultKindName(fault.kind))
                .inc();
            trace_.instant("chaos.inject", fault.name,
                           static_cast<std::int64_t>(action.fault),
                           static_cast<std::int64_t>(fault.kind));
        } else {
            activeStack_.erase(std::remove(activeStack_.begin(),
                                           activeStack_.end(),
                                           action.fault),
                               activeStack_.end());
            ++heals_;
            stats_.counter("healed").inc();
            trace_.instant("chaos.heal", fault.name,
                           static_cast<std::int64_t>(action.fault),
                           static_cast<std::int64_t>(fault.kind));
        }
        std::uint32_t &layerCount =
            layer == FaultLayer::Net
                ? activeNet_
                : (layer == FaultLayer::Clock ? activeClock_
                                              : activeFlash_);
        if (action.start)
            ++layerCount;
        else if (layerCount > 0)
            --layerCount;
    }
}

void
ChaosEngine::rewind()
{
    cursor_ = 0;
    origin_ = -1;
    activeStack_.clear();
    activeNet_ = activeClock_ = activeFlash_ = 0;
    injections_ = 0;
    heals_ = 0;
}

std::string_view
ChaosEngine::activeFaultName() const
{
    if (activeStack_.empty())
        return {};
    return faults_[activeStack_.back()].name;
}

} // namespace common
