/**
 * @file
 * Online invariant monitoring over the trace stream.
 *
 * An InvariantMonitor attaches to a TraceLog as its append observer
 * and checks, while the simulation runs, the correctness properties
 * the MILANA design argues for (paper §3):
 *
 *  1. commit-monotonic — per-key commit timestamps never decrease
 *     (`milana.key.commit` instants; equal stamps are legal: recovery
 *     may re-apply a commit, and distinct clients may share a stamp).
 *     Instants tagged "late" — CTP orphan resolution or recovery
 *     replay catching a replica up on an outcome it missed — are
 *     exempt: they may land after newer versions committed elsewhere
 *     and are safe on the multi-version backend.
 *  2. snapshot-read — a *committed* transaction never observed a
 *     version stamped after its begin timestamp (§3.2). Only valid on
 *     multi-version backends; single-version FTLs legitimately return
 *     newer data and rely on validation to abort, so this check is
 *     gated by Config::checkSnapshotReads.
 *  3. replication-before-ack — a server never acks a prepare/put as
 *     durable before its replication span finished (SEMEL's write
 *     path, §4). Gated by Config::checkReplicationBeforeAck (only
 *     meaningful with > 1 replica).
 *  4. queue-depth — per-SSD admitted op concurrency never exceeds
 *     Config::maxQueueDepth (`flash.ssd.admit`/`release` instants).
 *
 * Violations are collected (and optionally printed immediately) with
 * the offending transaction's assembled timeline, so a failed run
 * points at a concrete causal history instead of a counter.
 *
 * The monitor sees *every* append, before ring eviction, so its
 * verdict is independent of the trace window size.
 */

#ifndef COMMON_INVARIANT_MONITOR_HH
#define COMMON_INVARIANT_MONITOR_HH

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/trace.hh"
#include "common/types.hh"

namespace common {

class InvariantMonitor
{
  public:
    struct Config
    {
        bool checkCommitMonotonic = true;
        /** Only sound on multi-version backends (see file comment). */
        bool checkSnapshotReads = false;
        /** Only meaningful when replication is configured (> 1
         *  replica / SEMEL backups present). */
        bool checkReplicationBeforeAck = false;
        /** 0 disables the queue-depth check. */
        std::int64_t maxQueueDepth = 128;
        /** Print each violation to @p err as soon as it is detected. */
        bool failFast = true;
        /** Timeline events retained per in-flight transaction. */
        std::size_t maxTimelineEvents = 64;
        /** In-flight transactions tracked before the oldest is
         *  forgotten (bounds memory on runs that never finish txns). */
        std::size_t maxTrackedTraces = 4096;
    };

    struct Violation
    {
        std::string invariant; ///< "commit-monotonic", ...
        std::string message;
        std::uint64_t traceId = 0; ///< 0 when not txn-scoped
        Time trueTime = 0;
        /** The offending transaction's buffered events (may be
         *  truncated to Config::maxTimelineEvents). */
        std::vector<TraceEvent> timeline;
    };

    /** Default config, no violation printing. */
    InvariantMonitor();
    explicit InvariantMonitor(Config config, std::ostream *err = nullptr);

    /** Install this monitor as @p log's append observer. */
    void attach(TraceLog &log);

    /** Feed one event (called by the TraceLog observer hook). */
    void onEvent(const TraceEvent &event);

    bool ok() const { return violations_.empty(); }
    std::uint64_t violationCount() const { return violationCount_; }
    /** Retained violation records (capped at kMaxRetained). */
    const std::vector<Violation> &violations() const { return violations_; }

    /** Human-readable summary (all retained violations + timelines). */
    void report(std::ostream &os) const;

  private:
    static constexpr std::size_t kMaxRetained = 16;

    struct TxnState
    {
        /** Recent events of this trace, capped (display only). */
        std::deque<TraceEvent> timeline;
        bool timelineTruncated = false;
        /** Largest version timestamp this txn observed on a read. */
        std::int64_t maxReadTs = 0;
    };

    TxnState &track(std::uint64_t traceId);
    void addViolation(std::string invariant, std::string message,
                      std::uint64_t traceId, const TraceEvent &event);
    static void printViolation(std::ostream &os, const Violation &v);

    Config config_;
    std::ostream *err_;

    /** In-flight transactions, insertion-ordered for pruning. */
    std::unordered_map<std::uint64_t, TxnState> txns_;
    std::deque<std::uint64_t> txnOrder_;

    /** invariant 1: per-key latest committed version timestamp. */
    std::unordered_map<Key, std::int64_t> lastCommitTs_;
    /** invariant 3: span ids whose replication child has finished. */
    std::unordered_set<std::uint64_t> replDoneParents_;
    /** invariant 4: per-node admitted-op concurrency. */
    std::unordered_map<NodeId, std::int64_t> queueDepth_;

    std::vector<Violation> violations_;
    std::uint64_t violationCount_ = 0;
};

} // namespace common

#endif // COMMON_INVARIANT_MONITOR_HH
