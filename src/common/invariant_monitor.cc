#include "common/invariant_monitor.hh"

#include <utility>

namespace common {

InvariantMonitor::InvariantMonitor() : InvariantMonitor(Config{}) {}

InvariantMonitor::InvariantMonitor(Config config, std::ostream *err)
    : config_(config), err_(err)
{
}

void
InvariantMonitor::attach(TraceLog &log)
{
    log.setObserver([this](const TraceEvent &e) { onEvent(e); });
}

InvariantMonitor::TxnState &
InvariantMonitor::track(std::uint64_t traceId)
{
    auto it = txns_.find(traceId);
    if (it != txns_.end())
        return it->second;
    if (txns_.size() >= config_.maxTrackedTraces && !txnOrder_.empty()) {
        txns_.erase(txnOrder_.front());
        txnOrder_.pop_front();
    }
    txnOrder_.push_back(traceId);
    return txns_[traceId];
}

void
InvariantMonitor::addViolation(std::string invariant, std::string message,
                               std::uint64_t traceId,
                               const TraceEvent &event)
{
    ++violationCount_;
    Violation v;
    v.invariant = std::move(invariant);
    v.message = std::move(message);
    v.traceId = traceId;
    v.trueTime = event.trueTime;
    if (traceId != 0) {
        auto it = txns_.find(traceId);
        if (it != txns_.end())
            v.timeline.assign(it->second.timeline.begin(),
                              it->second.timeline.end());
    }
    if (v.timeline.empty() || v.timeline.back().seq != event.seq)
        v.timeline.push_back(event);
    if (config_.failFast && err_ != nullptr)
        printViolation(*err_, v);
    if (violations_.size() < kMaxRetained)
        violations_.push_back(std::move(v));
}

void
InvariantMonitor::onEvent(const TraceEvent &e)
{
    // Buffer the event on its transaction's timeline first, so a
    // violation detected below reports a history that includes it.
    if (e.traceId != 0) {
        TxnState &txn = track(e.traceId);
        if (txn.timeline.size() >= config_.maxTimelineEvents) {
            txn.timeline.pop_front();
            txn.timelineTruncated = true;
        }
        txn.timeline.push_back(e);
    }

    // --- invariant 1: per-key commit-timestamp monotonicity ---------
    if (config_.checkCommitMonotonic && e.kind == TraceKind::Instant &&
        e.name == "milana.key.commit") {
        const Key key = static_cast<Key>(e.arg);
        const std::int64_t ts = e.arg2;
        auto [it, inserted] = lastCommitTs_.emplace(key, ts);
        if (!inserted) {
            // Tag "late" marks a CTP / recovery re-application: a
            // replica catching up on an outcome it missed. Those can
            // land after newer versions committed elsewhere and are
            // safe on the multi-version backend, so they fold into the
            // max without being allowed to regress it — and without
            // being flagged.
            if (ts < it->second) {
                if (e.tag != "late")
                    addViolation(
                        "commit-monotonic",
                        "key " + std::to_string(key) + " committed at ts " +
                            std::to_string(ts) + " after ts " +
                            std::to_string(it->second),
                        e.traceId, e);
            } else {
                it->second = ts;
            }
        }
    }

    // --- invariant 2: committed reads respect the snapshot ----------
    if (e.kind == TraceKind::Instant && e.name == "milana.txn.read" &&
        e.traceId != 0) {
        TxnState &txn = track(e.traceId);
        if (e.arg2 > txn.maxReadTs)
            txn.maxReadTs = e.arg2;
    }
    if (e.kind == TraceKind::SpanEnd && e.name == "milana.txn.commit") {
        if (config_.checkSnapshotReads && e.tag == "committed" &&
            e.traceId != 0) {
            auto it = txns_.find(e.traceId);
            // The commit end's arg carries the txn's begin timestamp.
            if (it != txns_.end() && e.arg != 0 &&
                it->second.maxReadTs > e.arg)
                addViolation(
                    "snapshot-read",
                    "txn committed but observed a version stamped " +
                        std::to_string(it->second.maxReadTs) +
                        " > its begin ts " + std::to_string(e.arg),
                    e.traceId, e);
        }
        // The transaction is over either way; stop tracking it.
        if (e.traceId != 0 && txns_.erase(e.traceId) != 0) {
            for (auto it = txnOrder_.begin(); it != txnOrder_.end(); ++it) {
                if (*it == e.traceId) {
                    txnOrder_.erase(it);
                    break;
                }
            }
        }
    }

    // --- invariant 3: replication finished before the durable ack ---
    if (config_.checkReplicationBeforeAck) {
        if (e.kind == TraceKind::SpanEnd &&
            (e.name == "milana.repl.txn_record" ||
             e.name == "semel.repl.write"))
            replDoneParents_.insert(e.parentSpan);
        const bool prepareAck = e.kind == TraceKind::SpanEnd &&
                                e.name == "milana.server.prepare" &&
                                e.tag == "commit" && e.arg > 0;
        const bool putAck = e.kind == TraceKind::SpanEnd &&
                            e.name == "semel.server.put" &&
                            e.tag == "ok" && e.arg > 0;
        if (prepareAck || putAck) {
            if (replDoneParents_.erase(e.span) == 0)
                addViolation("replication-before-ack",
                             e.name + " span " + std::to_string(e.span) +
                                 " acked before its replication span "
                                 "finished",
                             e.traceId, e);
        }
    }

    // --- invariant 4: SSD admitted-op concurrency bound -------------
    if (config_.maxQueueDepth > 0 && e.kind == TraceKind::Instant) {
        if (e.name == "flash.ssd.admit") {
            std::int64_t &depth = queueDepth_[e.node];
            if (++depth > config_.maxQueueDepth)
                addViolation("queue-depth",
                             "node " + std::to_string(e.node) +
                                 " admitted op #" + std::to_string(depth) +
                                 " (limit " +
                                 std::to_string(config_.maxQueueDepth) +
                                 ")",
                             e.traceId, e);
        } else if (e.name == "flash.ssd.release") {
            std::int64_t &depth = queueDepth_[e.node];
            if (depth > 0)
                --depth;
        }
    }

    // A client-side abort before the commit span also ends the txn.
    if (e.kind == TraceKind::Instant &&
        e.name == "milana.txn.client_abort" && e.traceId != 0 &&
        txns_.erase(e.traceId) != 0) {
        for (auto it = txnOrder_.begin(); it != txnOrder_.end(); ++it) {
            if (*it == e.traceId) {
                txnOrder_.erase(it);
                break;
            }
        }
    }
}

void
InvariantMonitor::printViolation(std::ostream &os, const Violation &v)
{
    os << "INVARIANT VIOLATION [" << v.invariant << "] at t="
       << v.trueTime << " ns";
    if (v.traceId != 0)
        os << " (txn trace " << v.traceId << ")";
    os << ": " << v.message << "\n";
    if (!v.timeline.empty()) {
        os << "  transaction timeline:\n";
        for (const TraceEvent &e : v.timeline) {
            os << "    t=" << e.trueTime << " node=" << e.node << " "
               << traceKindCode(e.kind) << " " << e.name;
            if (e.span != 0)
                os << " span=" << e.span;
            if (e.parentSpan != 0)
                os << " parent=" << e.parentSpan;
            if (!e.tag.empty())
                os << " tag=" << e.tag;
            if (e.arg != 0)
                os << " arg=" << e.arg;
            if (e.arg2 != 0)
                os << " arg2=" << e.arg2;
            os << "\n";
        }
    }
}

void
InvariantMonitor::report(std::ostream &os) const
{
    if (ok()) {
        os << "invariant monitor: OK (0 violations)\n";
        return;
    }
    os << "invariant monitor: " << violationCount_ << " violation(s)";
    if (violationCount_ > violations_.size())
        os << " (first " << violations_.size() << " retained)";
    os << "\n";
    for (const Violation &v : violations_)
        printViolation(os, v);
}

} // namespace common
