#include "common/types.hh"

#include <sstream>

namespace common {

std::string
Version::toString() const
{
    std::ostringstream os;
    os << "<" << timestamp << "," << clientId << ">";
    return os.str();
}

} // namespace common
