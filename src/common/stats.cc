#include "common/stats.hh"

#include <ostream>
#include <sstream>

#include "common/json.hh"

namespace common {

const Counter *
StatSet::findCounter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Histogram *
StatSet::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

std::uint64_t
StatSet::counterValue(const std::string &name) const
{
    const Counter *ctr = findCounter(name);
    return ctr == nullptr ? 0 : ctr->value();
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, ctr] : other.counters_)
        counters_[name].inc(ctr.value());
    for (const auto &[name, hist] : other.histograms_)
        histograms_[name].merge(hist);
}

void
StatSet::reset()
{
    for (auto &[name, ctr] : counters_)
        ctr.reset();
    for (auto &[name, hist] : histograms_)
        hist.reset();
}

std::string
StatSet::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, ctr] : counters_)
        os << prefix << name << " = " << ctr.value() << "\n";
    for (const auto &[name, hist] : histograms_)
        os << prefix << name << ": " << hist.summary() << "\n";
    return os.str();
}

namespace {

void
histogramToJson(JsonWriter &w, const Histogram &hist)
{
    w.beginObject();
    w.key("count").value(hist.count());
    w.key("min").value(hist.min());
    w.key("max").value(hist.max());
    w.key("mean").value(hist.mean());
    w.key("p50").value(hist.p50());
    w.key("p90").value(hist.quantile(0.90));
    w.key("p95").value(hist.p95());
    w.key("p99").value(hist.p99());
    w.key("p999").value(hist.p999());
    w.endObject();
}

} // namespace

void
StatSet::toJson(JsonWriter &w, const std::string &prefix) const
{
    w.beginObject();
    w.key("counters").beginObject();
    for (const auto &[name, ctr] : counters_)
        w.key(prefix + name).value(ctr.value());
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[name, hist] : histograms_) {
        w.key(prefix + name);
        histogramToJson(w, hist);
    }
    w.endObject();
    w.endObject();
}

void
StatSet::writeJson(std::ostream &os, const std::string &prefix) const
{
    JsonWriter w(os);
    toJson(w, prefix);
    os << "\n";
}

void
StatSet::writeCsv(std::ostream &os, const std::string &prefix) const
{
    os << "metric,value\n";
    for (const auto &[name, ctr] : counters_)
        os << prefix << name << ',' << ctr.value() << "\n";
    for (const auto &[name, hist] : histograms_) {
        const std::string base = prefix + name;
        os << base << ".count," << hist.count() << "\n";
        os << base << ".min," << hist.min() << "\n";
        os << base << ".max," << hist.max() << "\n";
        os << base << ".mean," << hist.mean() << "\n";
        os << base << ".p50," << hist.p50() << "\n";
        os << base << ".p90," << hist.quantile(0.90) << "\n";
        os << base << ".p95," << hist.p95() << "\n";
        os << base << ".p99," << hist.p99() << "\n";
        os << base << ".p999," << hist.p999() << "\n";
    }
}

} // namespace common
