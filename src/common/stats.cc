#include "common/stats.hh"

#include <sstream>

namespace common {

std::uint64_t
StatSet::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, ctr] : other.counters_)
        counters_[name].inc(ctr.value());
    for (const auto &[name, hist] : other.histograms_)
        histograms_[name].merge(hist);
}

void
StatSet::reset()
{
    for (auto &[name, ctr] : counters_)
        ctr.reset();
    for (auto &[name, hist] : histograms_)
        hist.reset();
}

std::string
StatSet::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &[name, ctr] : counters_)
        os << prefix << name << " = " << ctr.value() << "\n";
    for (const auto &[name, hist] : histograms_)
        os << prefix << name << ": " << hist.summary() << "\n";
    return os.str();
}

} // namespace common
