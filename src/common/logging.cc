#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace common {

namespace {

LogLevel g_level = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Trace: return "TRACE";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void
Logger::setLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
Logger::level()
{
    return g_level;
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(g_level))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

void
Logger::panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
Logger::fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

} // namespace common
