/**
 * @file
 * Simulated intra-data-center network.
 *
 * The experiments run on a single simulated process, so "RPC" is a
 * direct coroutine call wrapped in sampled message delays plus fault
 * checks. The model captures what the paper's results depend on:
 *
 *  - one-way latency magnitude (tens of microseconds VM-to-VM, i.e.
 *    commensurate with flash access times — the regime the paper
 *    targets);
 *  - round-trip counting: MILANA's local validation wins exactly two
 *    round trips (client->primary and primary->backups), so the
 *    latency model must charge each leg;
 *  - fault injection: nodes can crash (no reply, requests dropped) and
 *    links can be partitioned, which drives the recovery tests.
 *
 * Crash semantics: a request to a crashed node is never executed; if a
 * node crashes mid-handler the handler's local effects persist (its
 * storage survives) but the response is dropped — the classic
 * ambiguity distributed commit protocols must tolerate.
 *
 * Partitioned (multi-threaded) scenarios: when nodes are spread over a
 * sim::PartitionedScheduler, each partition owns its own Network
 * instance (private RNG stream, stats, tracer) and a shared Fabric
 * carries the node->partition map plus the cluster-wide fault state.
 * A message whose destination lives on another partition is posted to
 * that partition's mailbox instead of being scheduled locally; the
 * minimum link latency (NetConfig::minLatency) is exactly the
 * scheduler's conservative lookahead, which is what makes the window
 * synchronization correct. See sim/partition.hh and CONCURRENCY.md.
 */

#ifndef NET_NETWORK_HH
#define NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "sim/future.hh"
#include "sim/partition.hh"
#include "sim/task.hh"

namespace net {

using common::Duration;
using common::NodeId;

class Network;

/**
 * Pseudo node id for the network's own trace spans (`net.rpc`).
 * Real storage nodes are < 100 and clients are >= 1000, so 999 cannot
 * collide with either.
 */
inline constexpr NodeId kNetworkNode = 999;

/**
 * Metadata every simulated message carries, mirroring what a real
 * transport would put on the wire. The TraceContext is captured on the
 * sending node and restored on the receiving node, which is what links
 * a server-side handler's spans to the client transaction that issued
 * the RPC.
 */
struct MessageHeader
{
    common::TraceContext trace;
};

struct NetConfig
{
    /** Mean one-way message latency. */
    Duration oneWayMean = 50 * common::kMicrosecond;
    /** Std-dev of the one-way latency. */
    Duration oneWaySigma = 10 * common::kMicrosecond;
    /** Hard lower bound on any message delay. Doubles as the
     *  conservative lookahead in partitioned scenarios. */
    Duration minLatency = 5 * common::kMicrosecond;
    /** Caller-side RPC timeout. */
    Duration rpcTimeout = 25 * common::kMillisecond;
};

/**
 * State shared by the per-partition Network instances of one
 * partitioned scenario: the node->partition map and the cluster-wide
 * fault state. Fault state is written only while no window is running
 * (tests mutate between run calls); during windows every access is a
 * read, so no lock is needed.
 */
class Fabric
{
  public:
    Fabric(sim::PartitionedScheduler &sched, const NetConfig &config);

    sim::PartitionedScheduler &scheduler() { return sched_; }
    const NetConfig &config() const { return config_; }
    Duration lookahead() const { return config_.minLatency; }

    /** Register partition @p p's Network (cluster wiring). */
    void registerNetwork(std::uint32_t p, Network *net);
    Network &network(std::uint32_t p) const { return *nets_[p]; }

    void setPartition(NodeId node, std::uint32_t partition);
    std::uint32_t
    partitionOf(NodeId node) const
    {
        return node < partitionOf_.size() ? partitionOf_[node] : 0;
    }

    /**
     * Declare that messages flow @p from -> @p to with minimum
     * one-way latency @p minLatency (default: the config floor every
     * sampled delay respects). Call after both nodes' setPartition.
     *
     * Declarations feed the scheduler's per-edge lookahead matrix:
     * each partition's conservative window bound is derived from the
     * links that actually cross into it, so partition pairs with no
     * declared route stop constraining each other (their effective
     * lookahead becomes the shortest multi-hop path — e.g. in fig6's
     * hub topology two client partitions only reach each other
     * through storage, doubling their mutual lookahead). Wiring code
     * MUST declare every cross-partition route it will use: the
     * scheduler PANICs on a post along an undeclared edge.
     */
    void declareRoute(NodeId from, NodeId to, Duration minLatency = 0);

    /**
     * Install the lookahead matrix built from declareRoute() calls
     * into the scheduler. No-op when nothing was declared (the
     * scheduler keeps its all-pairs default). Driver thread, before
     * the first run.
     */
    void applyLookahead();

    // Cluster-wide fault state (quiescent mutation only; see above).
    void setNodeDown(NodeId node, bool down);
    bool
    nodeDown(NodeId node) const
    {
        return node < down_.size() && down_[node];
    }
    void setLinkBroken(NodeId a, NodeId b, bool broken);
    /** Asymmetric partition: drop only the @p from -> @p to leg. */
    void setLinkBrokenOneWay(NodeId from, NodeId to, bool broken);
    bool deliverable(NodeId from, NodeId to) const;

    /** Delay spike: multiply every sampled delay by @p factor (>= 1;
     *  the minLatency floor keeps the lookahead contract either way). */
    void setDelayFactor(double factor);
    /** Per-link delay factor, both directions (1.0 = clear). */
    void setLinkDelayFactor(NodeId a, NodeId b, double factor);
    double delayFactor(NodeId from, NodeId to) const;

  private:
    sim::PartitionedScheduler &sched_;
    NetConfig config_;
    std::vector<Network *> nets_;
    std::vector<std::uint32_t> partitionOf_;
    /** Per-partition-pair link minimum from declareRoute(), indexed
     *  src * P + dst; kNoEdge where nothing was declared. */
    std::vector<Duration> edgeMin_;
    bool anyRoute_ = false;
    std::vector<bool> down_;
    /** Directed: (from, to) present = that leg drops messages. */
    std::set<std::pair<NodeId, NodeId>> brokenLinks_;
    double delayFactorAll_ = 1.0;
    std::map<std::pair<NodeId, NodeId>, double> linkDelayFactor_;
};

class Network
{
  public:
    /** Classic single-simulator network (owns its fault state). */
    Network(sim::Simulator &sim, const NetConfig &config, common::Rng rng);

    /** Partition @p partition's slice of a partitioned scenario: delay
     *  sampling, stats and tracing stay partition-private (their own
     *  deterministic streams); fault state and routing live in the
     *  shared @p fabric. */
    Network(sim::Simulator &sim, const NetConfig &config, common::Rng rng,
            Fabric &fabric, std::uint32_t partition);

    const NetConfig &config() const { return config_; }
    sim::Simulator &simulator() { return sim_; }

    /** Sample one message delay. */
    Duration sampleDelay();

    /** Sample a delay for the @p from -> @p to leg and record it in
     *  the per-link histogram `net.link.<from>-<to>.delay`. */
    Duration sampleDelay(NodeId from, NodeId to);

    /** Crash / restart a node. */
    void setNodeDown(NodeId node, bool down);
    bool nodeDown(NodeId node) const;

    /** Cut / heal the (bidirectional) link between two nodes. */
    void setLinkBroken(NodeId a, NodeId b, bool broken);

    /** Cut / heal one direction only (asymmetric partition). */
    void setLinkBrokenOneWay(NodeId from, NodeId to, bool broken);

    /** True if a message from @p from can currently reach @p to. */
    bool deliverable(NodeId from, NodeId to) const;

    /** Delay spike on every link (>= 0; sampled delays are multiplied
     *  and re-floored at minLatency, so the partitioned scheduler's
     *  lookahead bound still holds and no extra RNG draw happens). */
    void setDelayFactor(double factor);
    /** Per-link delay factor, both directions (1.0 = clear). */
    void setLinkDelayFactor(NodeId a, NodeId b, double factor);
    double delayFactor(NodeId from, NodeId to) const;

    common::StatSet &stats() { return stats_; }

    /** The network's own Tracer (spans emitted as node kNetworkNode). */
    common::Tracer &tracer() { return tracer_; }

    /**
     * Invoke a handler coroutine on node @p to on behalf of node
     * @p from, modelling request delay, execution, and response delay.
     *
     * The handler is passed as an *unstarted* sim::Task (tasks are
     * lazy): build it at the call site — e.g.
     * `net.callTyped<GetResponse>(me, srv, server->handleGet(req))` —
     * and its body only runs if/when the request arrives. Request
     * arguments are copied into the handler's own frame at creation,
     * so nothing dangles across the delays.
     *
     * Returns nullopt if the request or response is lost (crash or
     * partition) — after the configured RPC timeout, as a real caller
     * would observe.
     *
     * Cross-partition calls ship the unstarted handler to the
     * destination partition's mailbox, run it there, and post the
     * response (or a timed-out nullopt) back — the caller's coroutine,
     * promise and trace span never leave the caller's partition.
     */
    template <typename Resp>
    sim::Task<std::optional<Resp>>
    callTyped(NodeId from, NodeId to, sim::Task<Resp> handler)
    {
        if (fabric_ != nullptr &&
            fabric_->partitionOf(to) != partition_)
            return callRemote<Resp>(from, to, std::move(handler));
        return callLocal<Resp>(from, to, std::move(handler));
    }

    /** One-way message: runs @p deliver on arrival unless lost. */
    template <typename Deliver>
    void
    send(NodeId from, NodeId to, Deliver deliver)
    {
        stats_.counter("net.sends").inc();
        if (!deliverable(from, to))
            return;
        const MessageHeader header{common::currentTraceContext()};
        const Duration delay = sampleDelay(from, to);
        if (fabric_ != nullptr) {
            const std::uint32_t dst = fabric_->partitionOf(to);
            if (dst != partition_) {
                // The mailbox event runs on the destination partition
                // under the header's context (the run loop installs
                // it), same as the TraceContextScope below.
                Network *dst_net = &fabric_->network(dst);
                fabric_->scheduler().post(
                    partition_, dst, sim_.now() + delay, header.trace,
                    [dst_net, to, deliver = std::move(deliver)]() mutable {
                        if (dst_net->nodeDown(to))
                            return;
                        deliver();
                    });
                return;
            }
        }
        sim_.schedule(delay,
                      [this, to, header, deliver = std::move(deliver)] {
                          if (nodeDown(to))
                              return;
                          common::TraceContextScope scope(header.trace);
                          deliver();
                      });
    }

  private:
    /** Same-partition (or classic single-simulator) RPC. */
    template <typename Resp>
    sim::Task<std::optional<Resp>>
    callLocal(NodeId from, NodeId to, sim::Task<Resp> handler)
    {
        stats_.counter("net.calls").inc();
        // The RPC span inherits the caller's ambient context (the task
        // starts inline in the caller); the message header then
        // carries the context *including this span*, so handler-side
        // spans chain caller -> net.rpc -> handler.
        common::ScopedSpan rpc(tracer_, "net.rpc");
        rpc.setArg(from);
        rpc.setArg2(to);
        const MessageHeader header{common::currentTraceContext()};
        if (!deliverable(from, to)) {
            co_await sim::sleepFor(sim_, config_.rpcTimeout);
            stats_.counter("net.request_lost").inc();
            rpc.setTag("request_lost");
            co_return std::nullopt;
        }
        co_await sim::sleepFor(sim_, sampleDelay(from, to));
        // Re-check on arrival: the destination may have crashed while
        // the request was in flight (the unexecuted handler is
        // discarded, as a dropped packet would be).
        if (nodeDown(to)) {
            co_await sim::sleepFor(sim_, config_.rpcTimeout);
            stats_.counter("net.request_lost").inc();
            rpc.setTag("request_lost");
            co_return std::nullopt;
        }
        // "Receiving node": restore the header's context around the
        // handler, as a real server's RPC layer would.
        common::TraceContextScope deliverScope(header.trace);
        Resp resp = co_await std::move(handler);
        if (!deliverable(to, from)) {
            co_await sim::sleepFor(sim_, config_.rpcTimeout);
            stats_.counter("net.response_lost").inc();
            rpc.setTag("response_lost");
            co_return std::nullopt;
        }
        co_await sim::sleepFor(sim_, sampleDelay(to, from));
        co_return resp;
    }

    /**
     * Cross-partition RPC, caller side. The Promise is created on the
     * caller's simulator and travels by move through the request and
     * response closures — it is only ever *dereferenced* (resolved,
     * copied, destroyed) on the caller's partition, so the pooled
     * FutureState's non-atomic refcount never races. Loss cases are
     * detected on the destination and come back as a nullopt response
     * one rpcTimeout later, matching the local path's timing.
     */
    template <typename Resp>
    sim::Task<std::optional<Resp>>
    callRemote(NodeId from, NodeId to, sim::Task<Resp> handler)
    {
        stats_.counter("net.calls").inc();
        common::ScopedSpan rpc(tracer_, "net.rpc");
        rpc.setArg(from);
        rpc.setArg2(to);
        const MessageHeader header{common::currentTraceContext()};
        if (!deliverable(from, to)) {
            co_await sim::sleepFor(sim_, config_.rpcTimeout);
            stats_.counter("net.request_lost").inc();
            rpc.setTag("request_lost");
            co_return std::nullopt;
        }
        sim::Promise<std::optional<Resp>> promise(sim_);
        sim::Future<std::optional<Resp>> future = promise.future();
        const std::uint32_t dst = fabric_->partitionOf(to);
        Network *dst_net = &fabric_->network(dst);
        // Request leg: sampled on the caller's partition (its own
        // deterministic RNG stream); >= minLatency = lookahead, which
        // is what entitles us to post into the next window.
        fabric_->scheduler().post(
            partition_, dst, sim_.now() + sampleDelay(from, to),
            header.trace,
            [dst_net, from, to, header, src = partition_,
             handler = std::move(handler),
             promise = std::move(promise)]() mutable {
                sim::spawn(dst_net->serveRemote<Resp>(
                    from, to, header, src, std::move(handler),
                    std::move(promise)));
            });
        co_return co_await future;
    }

    /**
     * Cross-partition RPC, destination side: runs the handler on the
     * destination's simulator (under the wire context, installed by
     * the run loop) and posts the response back to the caller's
     * partition, where the posted event resolves the promise.
     */
    template <typename Resp>
    sim::Task<void>
    serveRemote(NodeId from, NodeId to, MessageHeader header,
                std::uint32_t src_partition, sim::Task<Resp> handler,
                sim::Promise<std::optional<Resp>> promise)
    {
        std::optional<Resp> resp;
        Duration back;
        if (nodeDown(to)) {
            stats_.counter("net.request_lost").inc();
            back = config_.rpcTimeout;
        } else {
            resp = co_await std::move(handler);
            if (!deliverable(to, from)) {
                stats_.counter("net.response_lost").inc();
                resp.reset();
                back = config_.rpcTimeout;
            } else {
                back = sampleDelay(to, from);
            }
        }
        fabric_->scheduler().post(
            partition_, src_partition, sim_.now() + back, header.trace,
            [promise = std::move(promise),
             resp = std::move(resp)]() mutable {
                promise.set(std::move(resp));
            });
    }

    sim::Simulator &sim_;
    NetConfig config_;
    common::Rng rng_;
    /** Shared routing/fault state of a partitioned scenario; null in
     *  classic mode (down_/brokenLinks_ below are used instead). */
    Fabric *fabric_ = nullptr;
    std::uint32_t partition_ = 0;
    std::vector<bool> down_;
    /** Directed: (from, to) present = that leg drops messages. */
    std::set<std::pair<NodeId, NodeId>> brokenLinks_;
    double delayFactorAll_ = 1.0;
    std::map<std::pair<NodeId, NodeId>, double> linkDelayFactor_;
    common::StatSet stats_;
    common::Tracer tracer_;
    /** Cached per-link histograms; StatSet map nodes are stable. */
    std::map<std::pair<NodeId, NodeId>, common::Histogram *> linkDelay_;
};

} // namespace net

#endif // NET_NETWORK_HH
