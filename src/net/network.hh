/**
 * @file
 * Simulated intra-data-center network.
 *
 * The experiments run on a single simulated process, so "RPC" is a
 * direct coroutine call wrapped in sampled message delays plus fault
 * checks. The model captures what the paper's results depend on:
 *
 *  - one-way latency magnitude (tens of microseconds VM-to-VM, i.e.
 *    commensurate with flash access times — the regime the paper
 *    targets);
 *  - round-trip counting: MILANA's local validation wins exactly two
 *    round trips (client->primary and primary->backups), so the
 *    latency model must charge each leg;
 *  - fault injection: nodes can crash (no reply, requests dropped) and
 *    links can be partitioned, which drives the recovery tests.
 *
 * Crash semantics: a request to a crashed node is never executed; if a
 * node crashes mid-handler the handler's local effects persist (its
 * storage survives) but the response is dropped — the classic
 * ambiguity distributed commit protocols must tolerate.
 */

#ifndef NET_NETWORK_HH
#define NET_NETWORK_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "sim/future.hh"
#include "sim/task.hh"

namespace net {

using common::Duration;
using common::NodeId;

/**
 * Pseudo node id for the network's own trace spans (`net.rpc`).
 * Real storage nodes are < 100 and clients are >= 1000, so 999 cannot
 * collide with either.
 */
inline constexpr NodeId kNetworkNode = 999;

/**
 * Metadata every simulated message carries, mirroring what a real
 * transport would put on the wire. The TraceContext is captured on the
 * sending node and restored on the receiving node, which is what links
 * a server-side handler's spans to the client transaction that issued
 * the RPC.
 */
struct MessageHeader
{
    common::TraceContext trace;
};

struct NetConfig
{
    /** Mean one-way message latency. */
    Duration oneWayMean = 50 * common::kMicrosecond;
    /** Std-dev of the one-way latency. */
    Duration oneWaySigma = 10 * common::kMicrosecond;
    /** Hard lower bound on any message delay. */
    Duration minLatency = 5 * common::kMicrosecond;
    /** Caller-side RPC timeout. */
    Duration rpcTimeout = 25 * common::kMillisecond;
};

class Network
{
  public:
    Network(sim::Simulator &sim, const NetConfig &config, common::Rng rng);

    const NetConfig &config() const { return config_; }
    sim::Simulator &simulator() { return sim_; }

    /** Sample one message delay. */
    Duration sampleDelay();

    /** Sample a delay for the @p from -> @p to leg and record it in
     *  the per-link histogram `net.link.<from>-<to>.delay`. */
    Duration sampleDelay(NodeId from, NodeId to);

    /** Crash / restart a node. */
    void setNodeDown(NodeId node, bool down);
    bool nodeDown(NodeId node) const;

    /** Cut / heal the (bidirectional) link between two nodes. */
    void setLinkBroken(NodeId a, NodeId b, bool broken);

    /** True if a message from @p from can currently reach @p to. */
    bool deliverable(NodeId from, NodeId to) const;

    common::StatSet &stats() { return stats_; }

    /** The network's own Tracer (spans emitted as node kNetworkNode). */
    common::Tracer &tracer() { return tracer_; }

    /**
     * Invoke a handler coroutine on node @p to on behalf of node
     * @p from, modelling request delay, execution, and response delay.
     *
     * The handler is passed as an *unstarted* sim::Task (tasks are
     * lazy): build it at the call site — e.g.
     * `net.callTyped<GetResponse>(me, srv, server->handleGet(req))` —
     * and its body only runs if/when the request arrives. Request
     * arguments are copied into the handler's own frame at creation,
     * so nothing dangles across the delays.
     *
     * Returns nullopt if the request or response is lost (crash or
     * partition) — after the configured RPC timeout, as a real caller
     * would observe.
     */
    template <typename Resp>
    sim::Task<std::optional<Resp>>
    callTyped(NodeId from, NodeId to, sim::Task<Resp> handler)
    {
        stats_.counter("net.calls").inc();
        // The RPC span inherits the caller's ambient context (the task
        // starts inline in the caller); the message header then
        // carries the context *including this span*, so handler-side
        // spans chain caller -> net.rpc -> handler.
        common::ScopedSpan rpc(tracer_, "net.rpc");
        rpc.setArg(from);
        rpc.setArg2(to);
        const MessageHeader header{common::currentTraceContext()};
        if (!deliverable(from, to)) {
            co_await sim::sleepFor(sim_, config_.rpcTimeout);
            stats_.counter("net.request_lost").inc();
            rpc.setTag("request_lost");
            co_return std::nullopt;
        }
        co_await sim::sleepFor(sim_, sampleDelay(from, to));
        // Re-check on arrival: the destination may have crashed while
        // the request was in flight (the unexecuted handler is
        // discarded, as a dropped packet would be).
        if (nodeDown(to)) {
            co_await sim::sleepFor(sim_, config_.rpcTimeout);
            stats_.counter("net.request_lost").inc();
            rpc.setTag("request_lost");
            co_return std::nullopt;
        }
        // "Receiving node": restore the header's context around the
        // handler, as a real server's RPC layer would.
        common::TraceContextScope deliverScope(header.trace);
        Resp resp = co_await std::move(handler);
        if (!deliverable(to, from)) {
            co_await sim::sleepFor(sim_, config_.rpcTimeout);
            stats_.counter("net.response_lost").inc();
            rpc.setTag("response_lost");
            co_return std::nullopt;
        }
        co_await sim::sleepFor(sim_, sampleDelay(to, from));
        co_return resp;
    }

    /** One-way message: runs @p deliver on arrival unless lost. */
    template <typename Deliver>
    void
    send(NodeId from, NodeId to, Deliver deliver)
    {
        stats_.counter("net.sends").inc();
        if (!deliverable(from, to))
            return;
        const MessageHeader header{common::currentTraceContext()};
        sim_.schedule(sampleDelay(from, to),
                      [this, to, header, deliver = std::move(deliver)] {
                          if (nodeDown(to))
                              return;
                          common::TraceContextScope scope(header.trace);
                          deliver();
                      });
    }

  private:
    sim::Simulator &sim_;
    NetConfig config_;
    common::Rng rng_;
    std::vector<bool> down_;
    std::set<std::pair<NodeId, NodeId>> brokenLinks_;
    common::StatSet stats_;
    common::Tracer tracer_;
    /** Cached per-link histograms; StatSet map nodes are stable. */
    std::map<std::pair<NodeId, NodeId>, common::Histogram *> linkDelay_;
};

} // namespace net

#endif // NET_NETWORK_HH
