#include "net/network.hh"

#include <algorithm>
#include <cmath>

namespace net {

Fabric::Fabric(sim::PartitionedScheduler &sched, const NetConfig &config)
    : sched_(sched), config_(config),
      nets_(sched.numPartitions(), nullptr)
{
}

void
Fabric::registerNetwork(std::uint32_t p, Network *net)
{
    nets_[p] = net;
}

void
Fabric::setPartition(NodeId node, std::uint32_t partition)
{
    if (partitionOf_.size() <= node)
        partitionOf_.resize(node + 1, 0);
    partitionOf_[node] = partition;
}

void
Fabric::declareRoute(NodeId from, NodeId to, Duration minLatency)
{
    if (minLatency <= 0)
        minLatency = config_.minLatency;
    // Every sampled delay is floored at config_.minLatency (delay
    // factors are >= 1 and re-floored), so no route may promise a
    // larger minimum than the sampler actually guarantees.
    if (minLatency > config_.minLatency)
        PANIC("declareRoute(" << from << ", " << to << ") minimum "
              << minLatency << " exceeds the sampling floor "
              << config_.minLatency);
    const std::uint32_t parts = sched_.numPartitions();
    if (edgeMin_.empty())
        edgeMin_.assign(static_cast<std::size_t>(parts) * parts,
                        sim::PartitionedScheduler::kNoEdge);
    const std::uint32_t src = partitionOf(from);
    const std::uint32_t dst = partitionOf(to);
    if (src == dst)
        return; // partition-local traffic never crosses a mailbox
    Duration &slot = edgeMin_[static_cast<std::size_t>(src) * parts +
                             dst];
    slot = std::min(slot, minLatency);
    anyRoute_ = true;
}

void
Fabric::applyLookahead()
{
    if (!anyRoute_)
        return;
    const std::uint32_t parts = sched_.numPartitions();
    std::vector<std::vector<Duration>> matrix(
        parts, std::vector<Duration>(
                   parts, sim::PartitionedScheduler::kNoEdge));
    for (std::uint32_t src = 0; src < parts; ++src)
        for (std::uint32_t dst = 0; dst < parts; ++dst)
            matrix[src][dst] =
                edgeMin_[static_cast<std::size_t>(src) * parts + dst];
    sched_.setEdgeLookahead(std::move(matrix));
}

void
Fabric::setNodeDown(NodeId node, bool down)
{
    if (down_.size() <= node)
        down_.resize(node + 1, false);
    down_[node] = down;
}

void
Fabric::setLinkBroken(NodeId a, NodeId b, bool broken)
{
    setLinkBrokenOneWay(a, b, broken);
    setLinkBrokenOneWay(b, a, broken);
}

void
Fabric::setLinkBrokenOneWay(NodeId from, NodeId to, bool broken)
{
    if (broken)
        brokenLinks_.insert({from, to});
    else
        brokenLinks_.erase({from, to});
}

bool
Fabric::deliverable(NodeId from, NodeId to) const
{
    if (nodeDown(from) || nodeDown(to))
        return false;
    return !brokenLinks_.count({from, to});
}

void
Fabric::setDelayFactor(double factor)
{
    delayFactorAll_ = factor;
}

void
Fabric::setLinkDelayFactor(NodeId a, NodeId b, double factor)
{
    if (factor == 1.0) {
        linkDelayFactor_.erase({a, b});
        linkDelayFactor_.erase({b, a});
        return;
    }
    linkDelayFactor_[{a, b}] = factor;
    linkDelayFactor_[{b, a}] = factor;
}

double
Fabric::delayFactor(NodeId from, NodeId to) const
{
    const auto it = linkDelayFactor_.find({from, to});
    return it != linkDelayFactor_.end() ? it->second : delayFactorAll_;
}

Network::Network(sim::Simulator &sim, const NetConfig &config,
                 common::Rng rng)
    : sim_(sim), config_(config), rng_(rng)
{
}

Network::Network(sim::Simulator &sim, const NetConfig &config,
                 common::Rng rng, Fabric &fabric, std::uint32_t partition)
    : sim_(sim), config_(config), rng_(rng), fabric_(&fabric),
      partition_(partition)
{
}

Duration
Network::sampleDelay()
{
    const double d = rng_.nextGaussian(
        static_cast<double>(config_.oneWayMean),
        static_cast<double>(config_.oneWaySigma));
    return std::max(config_.minLatency,
                    static_cast<Duration>(std::llround(d)));
}

Duration
Network::sampleDelay(NodeId from, NodeId to)
{
    Duration delay = sampleDelay();
    const double factor = delayFactor(from, to);
    if (factor != 1.0)
        delay = std::max(config_.minLatency,
                         static_cast<Duration>(std::llround(
                             static_cast<double>(delay) * factor)));
    auto it = linkDelay_.find({from, to});
    if (it == linkDelay_.end()) {
        const std::string name = "net.link." + std::to_string(from) +
                                 "-" + std::to_string(to) + ".delay";
        it = linkDelay_.emplace(std::make_pair(from, to),
                                &stats_.histogram(name))
                 .first;
    }
    it->second->record(delay);
    return delay;
}

void
Network::setNodeDown(NodeId node, bool down)
{
    if (fabric_ != nullptr) {
        fabric_->setNodeDown(node, down);
        return;
    }
    if (down_.size() <= node)
        down_.resize(node + 1, false);
    down_[node] = down;
}

bool
Network::nodeDown(NodeId node) const
{
    if (fabric_ != nullptr)
        return fabric_->nodeDown(node);
    return node < down_.size() && down_[node];
}

void
Network::setLinkBroken(NodeId a, NodeId b, bool broken)
{
    setLinkBrokenOneWay(a, b, broken);
    setLinkBrokenOneWay(b, a, broken);
}

void
Network::setLinkBrokenOneWay(NodeId from, NodeId to, bool broken)
{
    if (fabric_ != nullptr) {
        fabric_->setLinkBrokenOneWay(from, to, broken);
        return;
    }
    if (broken)
        brokenLinks_.insert({from, to});
    else
        brokenLinks_.erase({from, to});
}

bool
Network::deliverable(NodeId from, NodeId to) const
{
    if (fabric_ != nullptr)
        return fabric_->deliverable(from, to);
    if (nodeDown(from) || nodeDown(to))
        return false;
    return !brokenLinks_.count({from, to});
}

void
Network::setDelayFactor(double factor)
{
    if (fabric_ != nullptr) {
        fabric_->setDelayFactor(factor);
        return;
    }
    delayFactorAll_ = factor;
}

void
Network::setLinkDelayFactor(NodeId a, NodeId b, double factor)
{
    if (fabric_ != nullptr) {
        fabric_->setLinkDelayFactor(a, b, factor);
        return;
    }
    if (factor == 1.0) {
        linkDelayFactor_.erase({a, b});
        linkDelayFactor_.erase({b, a});
        return;
    }
    linkDelayFactor_[{a, b}] = factor;
    linkDelayFactor_[{b, a}] = factor;
}

double
Network::delayFactor(NodeId from, NodeId to) const
{
    if (fabric_ != nullptr)
        return fabric_->delayFactor(from, to);
    const auto it = linkDelayFactor_.find({from, to});
    return it != linkDelayFactor_.end() ? it->second : delayFactorAll_;
}

} // namespace net
