#include "net/network.hh"

#include <algorithm>
#include <cmath>

namespace net {

Network::Network(sim::Simulator &sim, const NetConfig &config,
                 common::Rng rng)
    : sim_(sim), config_(config), rng_(rng)
{
}

Duration
Network::sampleDelay()
{
    const double d = rng_.nextGaussian(
        static_cast<double>(config_.oneWayMean),
        static_cast<double>(config_.oneWaySigma));
    return std::max(config_.minLatency,
                    static_cast<Duration>(std::llround(d)));
}

Duration
Network::sampleDelay(NodeId from, NodeId to)
{
    const Duration delay = sampleDelay();
    auto it = linkDelay_.find({from, to});
    if (it == linkDelay_.end()) {
        const std::string name = "net.link." + std::to_string(from) +
                                 "-" + std::to_string(to) + ".delay";
        it = linkDelay_.emplace(std::make_pair(from, to),
                                &stats_.histogram(name))
                 .first;
    }
    it->second->record(delay);
    return delay;
}

void
Network::setNodeDown(NodeId node, bool down)
{
    if (down_.size() <= node)
        down_.resize(node + 1, false);
    down_[node] = down;
}

bool
Network::nodeDown(NodeId node) const
{
    return node < down_.size() && down_[node];
}

void
Network::setLinkBroken(NodeId a, NodeId b, bool broken)
{
    const auto link = std::minmax(a, b);
    if (broken)
        brokenLinks_.insert({link.first, link.second});
    else
        brokenLinks_.erase({link.first, link.second});
}

bool
Network::deliverable(NodeId from, NodeId to) const
{
    if (nodeDown(from) || nodeDown(to))
        return false;
    const auto link = std::minmax(from, to);
    return !brokenLinks_.count({link.first, link.second});
}

} // namespace net
