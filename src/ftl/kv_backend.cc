#include "ftl/kv_backend.hh"

#include <limits>

namespace ftl {

sim::Task<GetResult>
KvBackend::getLatest(Key key)
{
    const Version latest{std::numeric_limits<common::Time>::max(),
                         std::numeric_limits<common::ClientId>::max()};
    co_return co_await get(key, latest);
}

} // namespace ftl
