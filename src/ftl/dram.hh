/**
 * @file
 * DRAM storage backend: a multi-version in-memory store with
 * persistent-memory-like access latencies (battery-backed DRAM or a
 * byte-addressable NVM, section 2.2: <= 100 ns - 1 us).
 *
 * Used by the paper's Figures 7 and 8 as the fastest backend; its fast
 * writes are precisely what makes it the most sensitive to clock skew
 * (Figure 1: spurious aborts appear when skew >> write latency).
 */

#ifndef FTL_DRAM_HH
#define FTL_DRAM_HH

#include "ftl/kv_backend.hh"
#include "ftl/mapping_table.hh"
#include "sim/future.hh"

namespace ftl {

class DramBackend : public KvBackend
{
  public:
    struct Config
    {
        common::Duration readLatency = 200 * common::kNanosecond;
        common::Duration writeLatency = 500 * common::kNanosecond;
        /** Pre-size the mapping table for this many keys (0 = grow). */
        std::uint64_t expectedKeys = 0;
    };

    explicit DramBackend(sim::Simulator &sim);
    DramBackend(sim::Simulator &sim, const Config &config);

    sim::Task<GetResult> get(Key key, Version at) override;
    sim::Task<PutStatus> put(Key key, Value value, Version version) override;
    sim::Task<void> erase(Key key) override;
    void setWatermark(Time watermark) override;
    std::optional<Version> versionAt(Key key, Version at) override;
    bool multiVersion() const override { return true; }
    common::StatSet &stats() override { return stats_; }
    void reserveKeys(std::uint64_t keys) override { map_.reserveKeys(keys); }
    std::uint64_t dataPlaneBytes() const override
    {
        return map_.memoryBytes();
    }

    std::size_t versionCount(Key key) const;

  private:
    struct Stored
    {
        Value value;
    };

    using Store = VersionStore<Stored>;

    sim::Simulator &sim_;
    Config config_;
    Store map_;
    Time watermark_ = 0;
    common::StatSet stats_;
};

} // namespace ftl

#endif // FTL_DRAM_HH
