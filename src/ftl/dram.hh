/**
 * @file
 * DRAM storage backend: a multi-version in-memory store with
 * persistent-memory-like access latencies (battery-backed DRAM or a
 * byte-addressable NVM, section 2.2: <= 100 ns - 1 us).
 *
 * Used by the paper's Figures 7 and 8 as the fastest backend; its fast
 * writes are precisely what makes it the most sensitive to clock skew
 * (Figure 1: spurious aborts appear when skew >> write latency).
 */

#ifndef FTL_DRAM_HH
#define FTL_DRAM_HH

#include <unordered_map>

#include "ftl/kv_backend.hh"
#include "ftl/version_chain.hh"
#include "sim/future.hh"

namespace ftl {

class DramBackend : public KvBackend
{
  public:
    struct Config
    {
        common::Duration readLatency = 200 * common::kNanosecond;
        common::Duration writeLatency = 500 * common::kNanosecond;
    };

    explicit DramBackend(sim::Simulator &sim);
    DramBackend(sim::Simulator &sim, const Config &config);

    sim::Task<GetResult> get(Key key, Version at) override;
    sim::Task<PutStatus> put(Key key, Value value, Version version) override;
    sim::Task<void> erase(Key key) override;
    void setWatermark(Time watermark) override;
    std::optional<Version> versionAt(Key key, Version at) override;
    bool multiVersion() const override { return true; }
    common::StatSet &stats() override { return stats_; }

    std::size_t versionCount(Key key) const;

  private:
    struct Stored
    {
        Value value;
    };

    using Chain = VersionChain<Stored>;

    sim::Simulator &sim_;
    Config config_;
    std::unordered_map<Key, Chain> map_;
    Time watermark_ = 0;
    common::StatSet stats_;
};

} // namespace ftl

#endif // FTL_DRAM_HH
