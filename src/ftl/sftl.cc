#include "ftl/sftl.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace ftl {

using common::kSecond;

namespace {

constexpr common::Duration kAllocTimeout = 30 * kSecond;
constexpr std::size_t kStripes = 64;

} // namespace

Sftl::Sftl(sim::Simulator &sim, flash::SsdDevice &device,
           const Config &config)
    : sim_(sim),
      device_(device),
      config_(config),
      spaceFreed_(sim)
{
    const auto &geo = device.geometry();
    logicalBlocks_ = static_cast<std::uint64_t>(
        static_cast<double>(geo.totalPages()) *
        (1.0 - config.reserveFraction));
    lbaMap_.assign(logicalBlocks_, flash::kNoPage);
    owners_.assign(geo.totalPages(), -1);
    validPages_.assign(geo.numBlocks, 0);
    pendingPrograms_.assign(geo.numBlocks, 0);
    victimized_.assign(geo.numBlocks, false);
    for (std::uint32_t b = 0; b < geo.numBlocks; ++b)
        freeBlocks_.push_back(b);
    gcLowWater_ = std::max<std::uint32_t>(
        3, static_cast<std::uint32_t>(0.05 *
                                      static_cast<double>(geo.numBlocks)));
    // Hysteresis: collect past the trigger so physical occupancy does
    // not sit permanently at the cliff edge.
    gcHighWater_ = std::max<std::uint32_t>(
        gcLowWater_ + 2,
        static_cast<std::uint32_t>(config.gcTargetFraction *
                                   static_cast<double>(geo.numBlocks)));
}

std::int64_t &
Sftl::owner(flash::PageAddr addr)
{
    return owners_[static_cast<std::size_t>(addr.block) *
                       device_.geometry().pagesPerBlock +
                   addr.page];
}

bool
Sftl::mapped(Lba lba) const
{
    return lbaMap_[static_cast<std::size_t>(lba)] != flash::kNoPage;
}

const flash::PageData *
Sftl::peek(Lba lba) const
{
    const flash::PageAddr addr = lbaMap_[static_cast<std::size_t>(lba)];
    if (addr == flash::kNoPage)
        return nullptr;
    return &device_.peekPage(addr);
}

bool
Sftl::needGc() const
{
    // Proactive collection: pursue the high-water mark whenever
    // reclaimable space exists, instead of waiting for the cliff.
    return freeBlocks_.size() < gcHighWater_;
}

void
Sftl::kickGc()
{
    if (!gcRunning_ && needGc()) {
        gcRunning_ = true;
        sim::spawn(gcOnce());
    }
}

sim::Task<flash::PageAddr>
Sftl::allocatePage(bool for_gc)
{
    const Time start = sim_.now();
    for (;;) {
        std::int64_t &open = for_gc ? gcOpenBlock_ : openBlock_;
        std::uint32_t &next = for_gc ? gcNextPage_ : nextPage_;
        if (open >= 0 && next < device_.geometry().pagesPerBlock) {
            flash::PageAddr addr{static_cast<std::uint32_t>(open),
                                 next++};
            ++pendingPrograms_[addr.block];
            kickGc();
            co_return addr;
        }
        const std::size_t min_free = for_gc ? 1 : 2;
        if (freeBlocks_.size() >= min_free) {
            auto best = freeBlocks_.begin();
            for (auto it = freeBlocks_.begin(); it != freeBlocks_.end();
                 ++it) {
                if (device_.eraseCount(*it) < device_.eraseCount(*best))
                    best = it;
            }
            open = *best;
            freeBlocks_.erase(best);
            next = 0;
            continue;
        }
        kickGc();
        if (sim_.now() - start > kAllocTimeout)
            PANIC("sftl: device full — GC cannot free space");
        co_await spaceFreed_.future().withTimeout(kSecond);
    }
}

sim::Task<std::optional<flash::PageData>>
Sftl::read(Lba lba)
{
    stats_.counter("sftl.reads").inc();
    const flash::PageAddr addr = lbaMap_[static_cast<std::size_t>(lba)];
    if (addr == flash::kNoPage)
        co_return std::nullopt;
    device_.pinBlock(addr.block);
    const flash::PageData *page = co_await device_.readPage(addr);
    flash::PageData copy = *page;
    device_.unpinBlock(addr.block);
    co_return copy;
}

sim::Task<PutStatus>
Sftl::write(Lba lba, flash::PageData data)
{
    stats_.counter("sftl.writes").inc();
    const flash::PageAddr addr = co_await allocatePage(false);
    co_await device_.programPage(addr, std::move(data));
    --pendingPrograms_[addr.block];

    const flash::PageAddr old = lbaMap_[static_cast<std::size_t>(lba)];
    if (old != flash::kNoPage) {
        owner(old) = -1;
        --validPages_[old.block];
    }
    lbaMap_[static_cast<std::size_t>(lba)] = addr;
    owner(addr) = lba;
    ++validPages_[addr.block];
    kickGc();
    co_return PutStatus::Ok;
}

sim::Task<void>
Sftl::trim(Lba lba)
{
    stats_.counter("sftl.trims").inc();
    const flash::PageAddr old = lbaMap_[static_cast<std::size_t>(lba)];
    if (old != flash::kNoPage) {
        owner(old) = -1;
        --validPages_[old.block];
        lbaMap_[static_cast<std::size_t>(lba)] = flash::kNoPage;
    }
    co_return;
}

std::int32_t
Sftl::pickVictim() const
{
    std::vector<bool> is_free(validPages_.size(), false);
    for (auto b : freeBlocks_)
        is_free[b] = true;
    std::int32_t victim = -1;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    for (std::uint32_t b = 0; b < validPages_.size(); ++b) {
        if (is_free[b] || victimized_[b] ||
            static_cast<std::int64_t>(b) == openBlock_ ||
            static_cast<std::int64_t>(b) == gcOpenBlock_ ||
            pendingPrograms_[b] != 0)
            continue;
        if (validPages_[b] >= device_.geometry().pagesPerBlock)
            continue; // nothing to reclaim
        const std::uint64_t cost =
            (static_cast<std::uint64_t>(validPages_[b]) << 20) +
            device_.eraseCount(b);
        if (cost < best_cost) {
            best_cost = cost;
            victim = static_cast<std::int32_t>(b);
        }
    }
    return victim;
}

sim::Task<void>
Sftl::moveValidPage(std::uint32_t vb, std::uint32_t pg,
                    std::shared_ptr<sim::Quorum> done)
{
    const auto pages = device_.geometry().pagesPerBlock;
    const flash::PageAddr addr{vb, pg};
    const Lba lba = owners_[static_cast<std::size_t>(vb) * pages + pg];
    if (lba >= 0 &&
        device_.pageState(addr) == flash::PageState::Programmed) {
        const flash::PageData *page = co_await device_.readPage(addr);
        flash::PageData copy = *page;
        stats_.counter("sftl.gc_page_reads").inc();

        const flash::PageAddr dst = co_await allocatePage(true);
        co_await device_.programPage(dst, std::move(copy));
        --pendingPrograms_[dst.block];
        stats_.counter("sftl.gc_page_writes").inc();

        // The LBA may have been overwritten or trimmed while the copy
        // was in flight; only remap if we still own it.
        if (lbaMap_[static_cast<std::size_t>(lba)] == addr) {
            owner(addr) = -1;
            --validPages_[vb];
            lbaMap_[static_cast<std::size_t>(lba)] = dst;
            owner(dst) = lba;
            ++validPages_[dst.block];
        }
    }
    done->arrive();
}

sim::Task<void>
Sftl::gcOnce()
{
    const auto pages = device_.geometry().pagesPerBlock;
    while (freeBlocks_.size() < gcHighWater_) {
        // Select a batch of victims whose valid pages fit in the free
        // pool (keeping one block spare), then move all their valid
        // pages in parallel: a serial collector cannot outpace the
        // write stream through a saturated device.
        std::vector<std::uint32_t> victims;
        std::uint64_t valid_total = 0;
        while (victims.size() < 32) {
            const std::int32_t v = pickVictim();
            if (v < 0)
                break;
            const auto vb = static_cast<std::uint32_t>(v);
            const std::uint64_t projected =
                (valid_total + validPages_[vb] + pages) / pages + 1;
            if (projected + 1 > freeBlocks_.size() && !victims.empty())
                break;
            victimized_[vb] = true;
            victims.push_back(vb);
            valid_total += validPages_[vb];
            const std::uint64_t consumed =
                (valid_total + pages - 1) / pages;
            if (victims.size() >= consumed + 12)
                break;
        }
        if (victims.empty())
            break;

        std::uint32_t move_count = 0;
        for (const std::uint32_t vb : victims) {
            stats_.counter("sftl.gc_victims").inc();
            device_.pinBlock(vb);
            move_count += pages;
        }
        auto done = std::make_shared<sim::Quorum>(sim_, move_count);
        for (const std::uint32_t vb : victims) {
            for (std::uint32_t pg = 0; pg < pages; ++pg)
                sim::spawn(moveValidPage(vb, pg, done));
        }
        co_await done->wait();

        for (const std::uint32_t vb : victims) {
            device_.unpinBlock(vb);
            if (validPages_[vb] != 0)
                PANIC("sftl: victim still has " << validPages_[vb]
                                                << " valid pages");
            co_await device_.eraseBlock(vb);
            victimized_[vb] = false;
            freeBlocks_.push_back(vb);
            stats_.counter("sftl.gc_erases").inc();

            auto freed = spaceFreed_;
            spaceFreed_ = sim::Promise<bool>(sim_);
            freed.set(true);
        }
    }
    gcRunning_ = false;
}

SingleVersionKv::SingleVersionKv(sim::Simulator &sim, Sftl &sftl,
                                 const Config &config)
    : sim_(sim), sftl_(sftl), config_(config)
{
    recordsPerPage_ = sftl.pageSize() / config.recordSize;
    const std::uint64_t lbas_needed =
        (config.capacityKeys + recordsPerPage_ - 1) / recordsPerPage_;
    if (lbas_needed > sftl.logicalBlocks())
        FATAL("SingleVersionKv: " << config.capacityKeys
                                  << " keys exceed device capacity");
    for (std::size_t i = 0; i < kStripes; ++i)
        stripes_.push_back(std::make_unique<sim::Mutex>(sim));
}

Lba
SingleVersionKv::lbaOf(Key key) const
{
    return static_cast<Lba>(key / recordsPerPage_);
}

std::uint32_t
SingleVersionKv::slotOf(Key key) const
{
    return static_cast<std::uint32_t>(key % recordsPerPage_);
}

sim::Mutex &
SingleVersionKv::stripe(Lba lba)
{
    return *stripes_[static_cast<std::size_t>(lba) % kStripes];
}

sim::Task<GetResult>
SingleVersionKv::get(Key key, Version /* at: single version only */)
{
    const Time start = sim_.now();
    stats_.counter("svkv.gets").inc();
    if (key >= config_.capacityKeys)
        co_return GetResult::miss();
    auto page = co_await sftl_.read(lbaOf(key));
    if (!page.has_value())
        co_return GetResult::miss();
    const auto slot = slotOf(key);
    if (slot >= page->records.size() || page->records[slot].tombstone)
        co_return GetResult::miss();
    const auto &rec = page->records[slot];
    GetResult result;
    result.found = true;
    result.version = rec.version;
    result.value = rec.value;
    stats_.histogram("svkv.get_latency").record(sim_.now() - start);
    co_return result;
}

sim::Task<PutStatus>
SingleVersionKv::put(Key key, Value value, Version version)
{
    const Time start = sim_.now();
    stats_.counter("svkv.puts").inc();
    if (key >= config_.capacityKeys)
        co_return PutStatus::DeviceFull;
    const Lba lba = lbaOf(key);

    co_await stripe(lba).lock();
    sim::LockGuard guard(stripe(lba));

    auto page = co_await sftl_.read(lba);
    flash::PageData data;
    if (page.has_value()) {
        data = std::move(*page);
    } else {
        data.records.assign(recordsPerPage_, flash::Record{});
        for (auto &r : data.records) {
            r.tombstone = true;
            r.sizeBytes = config_.recordSize;
        }
    }
    auto &rec = data.records[slotOf(key)];
    if (!rec.tombstone && rec.version >= version) {
        // At-most-once / stale rejection (section 3.3): a
        // single-version store must not overwrite newer data.
        stats_.counter("svkv.stale_rejects").inc();
        co_return PutStatus::StaleVersion;
    }
    rec.key = key;
    rec.version = version;
    rec.value = std::move(value);
    rec.tombstone = false;
    rec.sizeBytes = config_.recordSize;
    co_await sftl_.write(lba, std::move(data));
    stats_.histogram("svkv.put_latency").record(sim_.now() - start);
    co_return PutStatus::Ok;
}

sim::Task<void>
SingleVersionKv::erase(Key key)
{
    if (key >= config_.capacityKeys)
        co_return;
    const Lba lba = lbaOf(key);
    co_await stripe(lba).lock();
    sim::LockGuard guard(stripe(lba));
    auto page = co_await sftl_.read(lba);
    if (!page.has_value())
        co_return;
    auto &rec = page->records[slotOf(key)];
    rec.tombstone = true;
    rec.value.clear();
    co_await sftl_.write(lba, std::move(*page));
}

void
SingleVersionKv::setWatermark(Time)
{
    // Single-version: nothing to prune.
}

} // namespace ftl
