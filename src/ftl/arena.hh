/**
 * @file
 * Size-class arena for version-chain overflow blocks.
 *
 * The mapping table (mapping_table.hh) keeps a key's single newest
 * version inline in its slot; keys with two or more live versions
 * spill into a block carved from this arena. Blocks come in
 * power-of-two entry capacities (2, 4, 8, ...); freed blocks go onto
 * a per-class freelist threaded through the blocks themselves, so in
 * steady state (put/prune churn at a stable version-count profile)
 * chain growth performs zero heap allocations — the same discipline
 * as sim::BlockPool (sim/pool.hh) applies to the data plane.
 *
 * Fresh blocks are carved from ~64 KiB slabs obtained with a single
 * ::operator new each; slabs are retained until the arena is
 * destroyed. Single-threaded by design, like everything inside one
 * simulator instance.
 */

#ifndef FTL_ARENA_HH
#define FTL_ARENA_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace ftl {

/**
 * Arena handing out arrays of T with power-of-two capacities.
 * T's storage is treated as raw memory while a block sits on a
 * freelist (the first pointer-width bytes hold the freelist link),
 * so callers must destroy elements before deallocate() and
 * placement-new them after allocate().
 */
template <typename T>
class ChainArena
{
  public:
    /** Smallest block capacity (class 0). */
    static constexpr std::uint32_t kMinCapacity = 2;
    /** Number of size classes; class c holds kMinCapacity << c. */
    static constexpr std::uint32_t kNumClasses = 24;

    static_assert(sizeof(T) * kMinCapacity >= sizeof(void *),
                  "freelist link must fit in the smallest block");

    ChainArena() = default;
    ChainArena(const ChainArena &) = delete;
    ChainArena &operator=(const ChainArena &) = delete;

    ~ChainArena()
    {
        for (void *slab : slabs_)
            ::operator delete(slab);
    }

    /** Entry capacity of a size class. */
    static constexpr std::uint32_t
    capacityOf(std::uint32_t cls)
    {
        return kMinCapacity << cls;
    }

    /** Smallest class whose capacity is >= @p capacity. */
    static std::uint32_t
    classFor(std::uint32_t capacity)
    {
        std::uint32_t cls = 0;
        while (capacityOf(cls) < capacity)
            ++cls;
        return cls;
    }

    /**
     * Hand out a block of capacityOf(cls) uninitialized T's.
     * Recycles a freed block when one is available; otherwise carves
     * from a fresh slab.
     */
    T *
    allocate(std::uint32_t cls)
    {
        if (void *p = free_[cls]) {
            free_[cls] = *static_cast<void **>(p);
            return static_cast<T *>(p);
        }
        return carve(cls);
    }

    /** Return a block (elements already destroyed) to its class. */
    void
    deallocate(T *block, std::uint32_t cls)
    {
        void *p = block;
        *static_cast<void **>(p) = free_[cls];
        free_[cls] = p;
    }

    /** Total bytes held in slabs (live + freelisted blocks). */
    std::uint64_t
    slabBytes() const
    {
        return slab_bytes_;
    }

  private:
    static constexpr std::size_t kSlabTarget = 64 * 1024;

    static constexpr std::size_t
    blockBytes(std::uint32_t cls)
    {
        return static_cast<std::size_t>(capacityOf(cls)) * sizeof(T);
    }

    T *
    carve(std::uint32_t cls)
    {
        const std::size_t block = blockBytes(cls);
        const std::size_t count =
            block >= kSlabTarget ? 1 : kSlabTarget / block;
        auto *base =
            static_cast<unsigned char *>(::operator new(count * block));
        slabs_.push_back(base);
        slab_bytes_ += count * block;
        // Block 0 is the caller's; the rest join the freelist.
        for (std::size_t i = 1; i < count; ++i) {
            void *p = base + i * block;
            *static_cast<void **>(p) = free_[cls];
            free_[cls] = p;
        }
        return reinterpret_cast<T *>(base);
    }

    std::array<void *, kNumClasses> free_{};
    std::vector<void *> slabs_;
    std::uint64_t slab_bytes_ = 0;
};

} // namespace ftl

#endif // FTL_ARENA_HH
