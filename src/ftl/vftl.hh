/**
 * @file
 * VFTL: the paper's baseline — a multi-version key-value layer built
 * *on top of* a generic single-version FTL (section 5.1), with its own
 * lookup, request handling and garbage collection, separate from the
 * FTL's.
 *
 * The duplication costs are exactly the ones Table 1 measures:
 *
 *  - two mapping steps (key -> LBA -> physical page) instead of one;
 *  - 10% capacity reserved at *two* levels (the KV layer holds back
 *    LBAs for its GC, and SFTL holds back physical pages for its GC),
 *    so less usable space and hotter garbage collection;
 *  - two garbage collectors generating device traffic: the KV layer
 *    rewrites logical blocks to compact dead versions, and SFTL then
 *    remaps physical pages underneath — the write amplification that
 *    depresses VFTL's GET latency and throughput under mixed
 *    workloads;
 *  - remapped tuples share the pack buffer with user puts, so heavier
 *    GC *shortens* the packing delay, which is why VFTL's PUT latency
 *    in Table 1 is lower than MFTL's.
 */

#ifndef FTL_VFTL_HH
#define FTL_VFTL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "ftl/kv_backend.hh"
#include "ftl/mapping_table.hh"
#include "ftl/pack_log.hh"
#include "ftl/sftl.hh"
#include "sim/future.hh"
#include "sim/task.hh"

namespace ftl {

class Vftl : public KvBackend
{
  public:
    struct Config
    {
        common::Duration packTimeout = common::kMillisecond;
        /** Fraction of LBAs the KV layer reserves for its own GC. */
        double reserveFraction = 0.10;
        /** Free-LBA fraction the collector restores per pass. The
         *  split stack keeps only its 10% reserve working room (the
         *  paper's configuration); compare MFTL's integrated
         *  watermark-driven target. */
        double gcTargetFraction = 0.15;
        std::uint32_t recordSize = 512;
        common::Duration watermarkSweepInterval =
            50 * common::kMillisecond;
        /** Pre-size the mapping table for this many keys (0 = grow). */
        std::uint64_t expectedKeys = 0;
    };

    Vftl(sim::Simulator &sim, Sftl &sftl, const Config &config);

    sim::Task<GetResult> get(Key key, Version at) override;
    sim::Task<PutStatus> put(Key key, Value value, Version version) override;
    sim::Task<void> erase(Key key) override;
    void setWatermark(Time watermark) override;
    std::optional<Version> versionAt(Key key, Version at) override;
    bool multiVersion() const override { return true; }
    common::StatSet &stats() override { return stats_; }
    void reserveKeys(std::uint64_t keys) override { map_.reserveKeys(keys); }
    std::uint64_t dataPlaneBytes() const override
    {
        return map_.memoryBytes();
    }

    void start();

    std::size_t versionCount(Key key) const;
    std::size_t freeLbas() const { return freeLbas_.size(); }

    /**
     * Rebuild the KV layer's mapping by scanning every mapped logical
     * block in the FTL below, as a restarted storage server would.
     * Returns the number of tuples recovered. (Timing-free: models an
     * offline scan.)
     */
    std::size_t rebuildFromStore();

  private:
    struct Loc
    {
        Lba lba;
        std::uint16_t slot;
    };

    using Store = VersionStore<Loc>;
    using ChainRef = Store::ChainRef;

    void flushBatch(std::vector<Pending> batch);
    sim::Task<void> flushTask(std::vector<Pending> batch);
    sim::Task<void> admitUserWrite();
    sim::Task<Lba> allocateLba(bool has_relocation);

    bool needGc() const;
    void kickGc();
    sim::Task<void> gcOnce();
    sim::Task<void> watermarkSweep();
    std::int64_t pickVictim() const;

    void pruneChain(ChainRef chain);
    void dropEntry(const Store::Entry &entry);

    sim::Simulator &sim_;
    Sftl &sftl_;
    Config config_;

    Store map_;
    std::vector<std::uint32_t> liveRecords_;
    std::vector<bool> pendingWrite_;
    /** LBAs being compacted by the current GC pass. */
    std::vector<bool> victimized_;
    std::deque<Lba> freeLbas_;

    PackLog packLog_;
    Time watermark_ = 0;

    bool gcRunning_ = false;
    std::uint64_t gcLowWater_ = 0;
    std::uint64_t gcHighWater_ = 0;
    sim::Promise<bool> spaceFreed_;

    common::StatSet stats_;
};

} // namespace ftl

#endif // FTL_VFTL_HH
