/**
 * @file
 * SFTL: a generic single-version page-mapped FTL, the baseline
 * substrate of the paper's evaluation (section 5.1).
 *
 * SFTL exposes a logical block device of 4 KB logical blocks (LBAs).
 * Writes are log-structured: each write programs a freshly erased
 * physical page and remaps the LBA; the old page becomes invalid and
 * is reclaimed by a greedy, wear-aware garbage collector. 10% of the
 * physical capacity is reserved for GC headroom, so the logical space
 * is 90% of the physical pages.
 *
 * Two consumers exist:
 *  - SingleVersionKv: keys mapped statically onto LBA slots with
 *    read-modify-write updates — the "SFTL" storage backend of
 *    Figure 6;
 *  - Vftl (vftl.hh): a separate multi-version KV layer that stacks its
 *    own log, mapping and GC on top of SFTL — the paper's "VFTL"
 *    baseline with duplicated functionality at two levels.
 */

#ifndef FTL_SFTL_HH
#define FTL_SFTL_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "flash/ssd.hh"
#include "ftl/kv_backend.hh"
#include "sim/future.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace ftl {

using Lba = std::int64_t;

class Sftl
{
  public:
    struct Config
    {
        /** Fraction of physical pages reserved for GC headroom. */
        double reserveFraction = 0.10;
        /** Free-space fraction the collector restores per pass
         *  (hysteresis target above the trigger). */
        double gcTargetFraction = 0.08;
    };

    Sftl(sim::Simulator &sim, flash::SsdDevice &device,
         const Config &config);

    /** Number of addressable logical blocks. */
    std::uint64_t logicalBlocks() const { return logicalBlocks_; }

    /** Logical block size in bytes (= flash page size). */
    std::uint32_t pageSize() const { return device_.geometry().pageSize; }

    /**
     * Read a logical block. Returns the page content, or nullopt if
     * the LBA has never been written (or was trimmed).
     */
    sim::Task<std::optional<flash::PageData>> read(Lba lba);

    /** Overwrite a logical block (log-structured remap). */
    sim::Task<PutStatus> write(Lba lba, flash::PageData data);

    /** Discard a logical block's contents. */
    sim::Task<void> trim(Lba lba);

    bool mapped(Lba lba) const;
    std::size_t freeBlocks() const { return freeBlocks_.size(); }

    /** Timing-free functional read of a mapped LBA (recovery scans,
     *  tests). Returns nullptr for unmapped LBAs. */
    const flash::PageData *peek(Lba lba) const;

    common::StatSet &stats() { return stats_; }

  private:
    sim::Task<flash::PageAddr> allocatePage(bool for_gc);
    bool needGc() const;
    void kickGc();
    sim::Task<void> gcOnce();
    /** Relocate one page of a GC victim (spawned in parallel). */
    sim::Task<void> moveValidPage(std::uint32_t vb, std::uint32_t pg,
                                  std::shared_ptr<sim::Quorum> done);
    std::int32_t pickVictim() const;

    /** Physical owner of each page: LBA, or -1 when invalid. */
    std::int64_t &owner(flash::PageAddr addr);

    sim::Simulator &sim_;
    flash::SsdDevice &device_;
    Config config_;

    std::uint64_t logicalBlocks_;
    std::vector<flash::PageAddr> lbaMap_;
    std::vector<std::int64_t> owners_;
    std::vector<std::uint32_t> validPages_;
    std::vector<std::uint32_t> pendingPrograms_;
    std::vector<bool> victimized_;

    std::deque<std::uint32_t> freeBlocks_;
    std::int64_t openBlock_ = -1;
    std::uint32_t nextPage_ = 0;
    std::int64_t gcOpenBlock_ = -1;
    std::uint32_t gcNextPage_ = 0;

    bool gcRunning_ = false;
    std::uint32_t gcLowWater_ = 0;
    std::uint32_t gcHighWater_ = 0;
    sim::Promise<bool> spaceFreed_;

    common::StatSet stats_;
};

/**
 * A single-version key-value store over SFTL: keys occupy fixed slots
 * (recordsPerPage keys per logical block) and an update is a
 * read-modify-write of the owning block. Multi-versioning is
 * impossible, so snapshot reads are not supported: get() ignores the
 * `at` bound and returns the current version — which is exactly why
 * tardy read-only transactions abort on this backend in Figure 6.
 */
class SingleVersionKv : public KvBackend
{
  public:
    struct Config
    {
        std::uint32_t recordSize = 512;
        /** Keys must be < capacityKeys (static slot mapping). */
        std::uint64_t capacityKeys = 0;
    };

    SingleVersionKv(sim::Simulator &sim, Sftl &sftl, const Config &config);

    sim::Task<GetResult> get(Key key, Version at) override;
    sim::Task<PutStatus> put(Key key, Value value, Version version) override;
    sim::Task<void> erase(Key key) override;
    void setWatermark(Time watermark) override;
    bool multiVersion() const override { return false; }
    common::StatSet &stats() override { return stats_; }

  private:
    Lba lbaOf(Key key) const;
    std::uint32_t slotOf(Key key) const;
    sim::Mutex &stripe(Lba lba);

    sim::Simulator &sim_;
    Sftl &sftl_;
    Config config_;
    std::uint32_t recordsPerPage_;
    /** Per-LBA write serialization (read-modify-write atomicity). */
    std::vector<std::unique_ptr<sim::Mutex>> stripes_;
    common::StatSet stats_;
};

} // namespace ftl

#endif // FTL_SFTL_HH
