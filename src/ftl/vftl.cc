#include "ftl/vftl.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace ftl {

using common::kSecond;

namespace {

constexpr common::Duration kAllocTimeout = 30 * kSecond;

} // namespace

Vftl::Vftl(sim::Simulator &sim, Sftl &sftl, const Config &config)
    : sim_(sim),
      sftl_(sftl),
      config_(config),
      map_(config.expectedKeys),
      liveRecords_(sftl.logicalBlocks(), 0),
      pendingWrite_(sftl.logicalBlocks(), false),
      victimized_(sftl.logicalBlocks(), false),
      packLog_(sim, sftl.pageSize(), config.packTimeout,
               [this](std::vector<Pending> batch) {
                   flushBatch(std::move(batch));
               }),
      spaceFreed_(sim)
{
    for (Lba lba = 0;
         lba < static_cast<Lba>(sftl_.logicalBlocks()); ++lba)
        freeLbas_.push_back(lba);
    gcLowWater_ = std::max<std::uint64_t>(
        3, static_cast<std::uint64_t>(
               config_.reserveFraction *
               static_cast<double>(sftl_.logicalBlocks())));
    // Hysteresis (see mftl.cc): collect well past the trigger so
    // logical occupancy — and with it the physical-page liveness the
    // SFTL below must cope with — stays moderate.
    gcHighWater_ = std::max<std::uint64_t>(
        gcLowWater_ + 2,
        static_cast<std::uint64_t>(
            config.gcTargetFraction *
            static_cast<double>(sftl_.logicalBlocks())));
}

void
Vftl::start()
{
    sim::spawn(watermarkSweep());
}

bool
Vftl::needGc() const
{
    // Proactive collection: pursue the high-water mark whenever
    // reclaimable space exists, instead of waiting for the cliff.
    return freeLbas_.size() < gcHighWater_;
}

void
Vftl::kickGc()
{
    if (!gcRunning_ && needGc()) {
        gcRunning_ = true;
        sim::spawn(gcOnce());
    }
}

sim::Task<void>
Vftl::admitUserWrite()
{
    // Same write-cliff backpressure as MFTL: keep user tuples out of
    // the shared pack buffer while the collector is critically low on
    // free LBAs.
    const Time start = sim_.now();
    const std::size_t floor =
        std::min<std::size_t>(gcLowWater_,
                              std::max<std::size_t>(2, gcLowWater_ / 4));
    while (freeLbas_.size() < floor) {
        kickGc();
        if (sim_.now() - start > kAllocTimeout)
            PANIC("vftl: device full — writes cannot be admitted");
        co_await spaceFreed_.future().withTimeout(
            100 * common::kMillisecond);
    }
}

sim::Task<Lba>
Vftl::allocateLba(bool has_relocation)
{
    const Time start = sim_.now();
    for (;;) {
        // User batches throttle earlier than relocation batches so the
        // collector always has working room.
        const std::size_t min_free = has_relocation ? 1 : 3;
        if (freeLbas_.size() >= min_free) {
            const Lba lba = freeLbas_.front();
            freeLbas_.pop_front();
            pendingWrite_[static_cast<std::size_t>(lba)] = true;
            kickGc();
            co_return lba;
        }
        kickGc();
        if (sim_.now() - start > kAllocTimeout)
            PANIC("vftl: out of logical blocks — KV-layer GC cannot "
                  "free space");
        co_await spaceFreed_.future().withTimeout(kSecond);
    }
}

void
Vftl::flushBatch(std::vector<Pending> batch)
{
    sim::spawn(flushTask(std::move(batch)));
}

sim::Task<void>
Vftl::flushTask(std::vector<Pending> batch)
{
    bool has_relocation = false;
    for (const auto &p : batch)
        has_relocation |= p.relocation;

    const Lba lba = co_await allocateLba(has_relocation);

    flash::PageData page;
    page.records.reserve(batch.size());
    for (const auto &p : batch)
        page.records.push_back(p.record);

    co_await sftl_.write(lba, std::move(page));
    pendingWrite_[static_cast<std::size_t>(lba)] = false;
    stats_.counter("vftl.lbas_written").inc();

    for (std::size_t i = 0; i < batch.size(); ++i) {
        auto &p = batch[i];
        const Loc loc{lba, static_cast<std::uint16_t>(i)};
        if (p.record.tombstone) {
            if (auto chain = map_.find(p.record.key)) {
                for (const auto &e : chain)
                    dropEntry(e);
                map_.erase(p.record.key);
            }
        } else if (p.relocation) {
            auto chain = map_.find(p.record.key);
            auto *entry =
                chain ? chain.find(p.record.version) : nullptr;
            if (entry != nullptr) {
                --liveRecords_[static_cast<std::size_t>(entry->loc.lba)];
                entry->loc = loc;
                ++liveRecords_[static_cast<std::size_t>(lba)];
                stats_.counter("vftl.gc_remapped").inc();
            }
        } else {
            auto chain = map_.getOrCreate(p.record.key);
            if (chain.append(p.record.version, loc)) {
                ++liveRecords_[static_cast<std::size_t>(lba)];
                pruneChain(chain);
            }
        }
        p.ack.set(PutStatus::Ok);
    }
    kickGc();
}

sim::Task<GetResult>
Vftl::get(Key key, Version at)
{
    const Time start = sim_.now();
    stats_.counter("vftl.gets").inc();

    auto chain = map_.find(key);
    if (!chain)
        co_return GetResult::miss();
    pruneChain(chain);
    const auto *entry = chain.findAt(at);
    if (entry == nullptr)
        co_return GetResult::miss();

    const Loc loc = entry->loc;
    const Version version = entry->version;
    // Second mapping step: LBA -> physical page, inside SFTL.
    auto page = co_await sftl_.read(loc.lba);
    if (!page.has_value())
        PANIC("vftl: mapped LBA has no data");
    GetResult result;
    if (loc.slot < page->records.size() &&
        page->records[loc.slot].key == key &&
        page->records[loc.slot].version == version) {
        const auto &rec = page->records[loc.slot];
        result.found = true;
        result.version = version;
        result.value = rec.value;
    } else {
        PANIC("vftl: mapping points at wrong tuple");
    }
    stats_.histogram("vftl.get_latency").record(sim_.now() - start);
    co_return result;
}

sim::Task<PutStatus>
Vftl::put(Key key, Value value, Version version)
{
    const Time start = sim_.now();
    stats_.counter("vftl.puts").inc();
    co_await admitUserWrite();
    flash::Record record;
    record.key = key;
    record.version = version;
    record.value = std::move(value);
    record.sizeBytes = config_.recordSize;
    auto ack = packLog_.append(std::move(record), false);
    const PutStatus status = co_await ack;
    stats_.histogram("vftl.put_latency").record(sim_.now() - start);
    co_return status;
}

sim::Task<void>
Vftl::erase(Key key)
{
    stats_.counter("vftl.deletes").inc();
    co_await admitUserWrite();
    flash::Record record;
    record.key = key;
    record.sizeBytes = config_.recordSize;
    record.tombstone = true;
    auto ack = packLog_.append(std::move(record), false);
    co_await ack;
}

void
Vftl::setWatermark(Time watermark)
{
    watermark_ = std::max(watermark_, watermark);
}

std::optional<Version>
Vftl::versionAt(Key key, Version at)
{
    auto chain = map_.find(key);
    if (!chain)
        return std::nullopt;
    pruneChain(chain);
    const auto *entry = chain.findAt(at);
    return entry == nullptr ? std::nullopt
                            : std::optional<Version>(entry->version);
}

void
Vftl::pruneChain(ChainRef chain)
{
    chain.pruneBelowWatermark(
        watermark_, [this](const Store::Entry &e) { dropEntry(e); });
}

void
Vftl::dropEntry(const Store::Entry &entry)
{
    --liveRecords_[static_cast<std::size_t>(entry.loc.lba)];
    stats_.counter("vftl.versions_pruned").inc();
}

sim::Task<void>
Vftl::watermarkSweep()
{
    while (!sim_.stopRequested()) {
        co_await sim::sleepFor(sim_, config_.watermarkSweepInterval);
        map_.forEach(
            [this](Key, ChainRef chain) { pruneChain(chain); });
        kickGc();
    }
}

std::int64_t
Vftl::pickVictim() const
{
    std::vector<bool> is_free(liveRecords_.size(), false);
    for (auto lba : freeLbas_)
        is_free[static_cast<std::size_t>(lba)] = true;

    std::int64_t victim = -1;
    std::uint32_t best_live = std::numeric_limits<std::uint32_t>::max();
    const std::uint32_t full =
        sftl_.pageSize() / config_.recordSize;
    for (std::size_t lba = 0; lba < liveRecords_.size(); ++lba) {
        if (is_free[lba] || pendingWrite_[lba] || victimized_[lba] ||
            !sftl_.mapped(static_cast<Lba>(lba)))
            continue;
        if (liveRecords_[lba] >= full)
            continue; // nothing reclaimable
        if (liveRecords_[lba] < best_live) {
            best_live = liveRecords_[lba];
            victim = static_cast<std::int64_t>(lba);
        }
    }
    return victim;
}

sim::Task<void>
Vftl::gcOnce()
{
    // Compaction must batch victims: relocated records from many
    // mostly-dead LBAs are re-packed together, so a pass that trims V
    // victims consumes only ceil(live/recordsPerPage) fresh LBAs.
    // (Per-victim flushing would burn one fresh LBA per victim and
    // make no forward progress.)
    const std::uint32_t per_lba = sftl_.pageSize() / config_.recordSize;
    while (freeLbas_.size() < gcHighWater_) {
        std::vector<Lba> victims;
        std::uint64_t live_total = 0;
        while (victims.size() < 256) {
            const std::int64_t v = pickVictim();
            if (v < 0)
                break;
            const std::uint64_t projected =
                (live_total + liveRecords_[static_cast<std::size_t>(v)] +
                 per_lba - 1) /
                per_lba;
            // Never select more work than the current free pool can
            // absorb (keeping one LBA spare), or the relocation writes
            // would wedge.
            if (projected + 1 > freeLbas_.size() && !victims.empty())
                break;
            victimized_[static_cast<std::size_t>(v)] = true;
            victims.push_back(v);
            live_total += liveRecords_[static_cast<std::size_t>(v)];
            const std::uint64_t consumed =
                (live_total + per_lba - 1) / per_lba;
            if (victims.size() >= consumed + 64)
                break; // pass already nets 64 free LBAs
        }
        if (victims.empty())
            break;

        // Read all victims in parallel — the collector must outpace
        // the user write stream, and serial reads through a busy
        // device cannot.
        struct Scan
        {
            Lba lba = -1;
            std::optional<flash::PageData> page;
        };
        auto scans = std::make_shared<std::vector<Scan>>();
        for (const Lba victim : victims) {
            stats_.counter("vftl.gc_victims").inc();
            if (liveRecords_[static_cast<std::size_t>(victim)] == 0)
                continue;
            scans->push_back(Scan{victim, std::nullopt});
        }
        if (!scans->empty()) {
            auto done = std::make_shared<sim::Quorum>(
                sim_, static_cast<std::uint32_t>(scans->size()));
            for (std::size_t i = 0; i < scans->size(); ++i) {
                sim::spawn([](Vftl *self,
                              std::shared_ptr<std::vector<Scan>> scans,
                              std::size_t index,
                              std::shared_ptr<sim::Quorum> done)
                               -> sim::Task<void> {
                    (*scans)[index].page =
                        co_await self->sftl_.read((*scans)[index].lba);
                    self->stats_.counter("vftl.gc_lba_reads").inc();
                    done->arrive();
                }(this, scans, i, done));
            }
            co_await done->wait();
        }

        std::vector<sim::Future<PutStatus>> acks;
        for (const Scan &scan : *scans) {
            if (!scan.page.has_value())
                PANIC("vftl: victim LBA vanished");
            const auto &page = *scan.page;
            for (std::uint16_t slot = 0; slot < page.records.size();
                 ++slot) {
                const auto &rec = page.records[slot];
                if (rec.tombstone)
                    continue;
                auto chain = map_.find(rec.key);
                if (!chain)
                    continue;
                const auto *entry = chain.find(rec.version);
                if (entry == nullptr || entry->loc.lba != scan.lba ||
                    entry->loc.slot != slot)
                    continue;
                acks.push_back(packLog_.append(rec, true));
            }
        }
        packLog_.flushNow();
        for (auto &ack : acks)
            co_await ack;

        for (const Lba victim : victims) {
            if (liveRecords_[static_cast<std::size_t>(victim)] != 0)
                PANIC("vftl: victim LBA still live after remap");
            co_await sftl_.trim(victim);
            victimized_[static_cast<std::size_t>(victim)] = false;
            freeLbas_.push_back(victim);
            stats_.counter("vftl.gc_trims").inc();

            auto freed = spaceFreed_;
            spaceFreed_ = sim::Promise<bool>(sim_);
            freed.set(true);
        }
    }
    gcRunning_ = false;
}

std::size_t
Vftl::rebuildFromStore()
{
    map_.clear();
    std::fill(liveRecords_.begin(), liveRecords_.end(), 0);
    std::fill(pendingWrite_.begin(), pendingWrite_.end(), false);
    std::fill(victimized_.begin(), victimized_.end(), false);
    freeLbas_.clear();

    std::size_t recovered = 0;
    for (Lba lba = 0; lba < static_cast<Lba>(sftl_.logicalBlocks());
         ++lba) {
        const flash::PageData *page = sftl_.peek(lba);
        if (page == nullptr) {
            freeLbas_.push_back(lba);
            continue;
        }
        for (std::uint16_t slot = 0; slot < page->records.size();
             ++slot) {
            const auto &rec = page->records[slot];
            if (rec.tombstone)
                continue;
            auto chain = map_.getOrCreate(rec.key);
            if (chain.append(rec.version, Loc{lba, slot})) {
                ++liveRecords_[static_cast<std::size_t>(lba)];
                ++recovered;
            }
        }
    }
    return recovered;
}

std::size_t
Vftl::versionCount(Key key) const
{
    return map_.versionCount(key);
}

} // namespace ftl
