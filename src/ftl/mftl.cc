#include "ftl/mftl.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace ftl {

using common::kMicrosecond;
using common::kMillisecond;
using common::kSecond;

namespace {

/** Upper bound on waiting for GC before declaring the FTL wedged. */
constexpr common::Duration kAllocTimeout = 30 * kSecond;

} // namespace

Mftl::Mftl(sim::Simulator &sim, flash::SsdDevice &device,
           const Config &config)
    : sim_(sim),
      device_(device),
      config_(config),
      map_(config.expectedKeys),
      liveTuples_(device.geometry().numBlocks, 0),
      pendingPrograms_(device.geometry().numBlocks, 0),
      victimized_(device.geometry().numBlocks, false),
      packLog_(sim, device.geometry().pageSize, config.packTimeout,
               [this](std::vector<Pending> batch) {
                   flushBatch(std::move(batch));
               }),
      spaceFreed_(sim)
{
    const auto blocks = device.geometry().numBlocks;
    for (std::uint32_t b = 0; b < blocks; ++b)
        freeBlocks_.push_back(b);
    gcLowWater_ = std::max<std::uint32_t>(
        3, static_cast<std::uint32_t>(config_.reserveFraction *
                                      static_cast<double>(blocks)));
    // Hysteresis: once triggered, collect up to the high-water mark so
    // occupancy does not ratchet up to the trigger level and stay
    // there (which would leave every victim nearly fully live).
    gcHighWater_ = std::max<std::uint32_t>(
        gcLowWater_ + 2,
        static_cast<std::uint32_t>(
            config.gcTargetFraction *
            static_cast<double>(blocks)));
}

void
Mftl::start()
{
    sim::spawn(watermarkSweep());
}

bool
Mftl::needGc() const
{
    // Proactive collection: pursue the high-water mark whenever
    // reclaimable space exists, instead of waiting for the cliff.
    return freeBlocks_.size() < gcHighWater_;
}

void
Mftl::kickGc()
{
    if (!gcRunning_ && needGc()) {
        gcRunning_ = true;
        sim::spawn(gcOnce());
    }
}

sim::Task<void>
Mftl::admitUserWrite()
{
    // Backpressure at the API: while free space is critically low,
    // user tuples must not even enter the pack buffer — otherwise they
    // ride in relocation batches and consume the blocks the collector
    // needs to make progress (the flash write cliff).
    const Time start = sim_.now();
    const std::size_t floor =
        std::min<std::size_t>(gcLowWater_,
                              std::max<std::size_t>(2, gcLowWater_ / 4));
    while (freeBlocks_.size() < floor) {
        kickGc();
        if (sim_.now() - start > kAllocTimeout)
            PANIC("mftl: device full — writes cannot be admitted");
        co_await spaceFreed_.future().withTimeout(
            100 * kMillisecond);
    }
}

sim::Task<flash::PageAddr>
Mftl::allocatePage(bool has_relocation)
{
    const Time start = sim_.now();
    for (;;) {
        if (openBlock_ >= 0 &&
            nextPage_ < device_.geometry().pagesPerBlock) {
            flash::PageAddr addr{static_cast<std::uint32_t>(openBlock_),
                                 nextPage_++};
            ++pendingPrograms_[addr.block];
            kickGc();
            co_return addr;
        }
        // Need a fresh block. Relocation batches (GC progress) may take
        // the last free block; user-only batches throttle earlier so
        // the collector always has working room (write-cliff
        // backpressure, as real FTLs apply).
        const std::size_t min_free = has_relocation ? 1 : 3;
        if (freeBlocks_.size() >= min_free) {
            // Wear-leveling: open the least-worn free block.
            auto best = freeBlocks_.begin();
            for (auto it = freeBlocks_.begin(); it != freeBlocks_.end();
                 ++it) {
                if (device_.eraseCount(*it) < device_.eraseCount(*best))
                    best = it;
            }
            openBlock_ = *best;
            freeBlocks_.erase(best);
            nextPage_ = 0;
            continue;
        }
        kickGc();
        if (sim_.now() - start > kAllocTimeout)
            PANIC("mftl: device full — GC cannot free space "
                  "(live data exceeds usable capacity)");
        co_await spaceFreed_.future().withTimeout(kSecond);
    }
}

void
Mftl::flushBatch(std::vector<Pending> batch)
{
    sim::spawn(flushTask(std::move(batch)));
}

sim::Task<void>
Mftl::flushTask(std::vector<Pending> batch)
{
    bool has_relocation = false;
    for (const auto &p : batch)
        has_relocation |= p.relocation;

    const flash::PageAddr addr = co_await allocatePage(has_relocation);

    flash::PageData page;
    page.records.reserve(batch.size());
    for (const auto &p : batch)
        page.records.push_back(p.record);

    co_await device_.programPage(addr, std::move(page));
    --pendingPrograms_[addr.block];
    stats_.counter("mftl.pages_written").inc();

    // Publish the new locations in the mapping table.
    for (std::size_t i = 0; i < batch.size(); ++i) {
        auto &p = batch[i];
        const Loc loc{addr, static_cast<std::uint16_t>(i)};
        if (p.record.tombstone) {
            // A durable delete: drop the whole chain.
            if (auto chain = map_.find(p.record.key)) {
                for (const auto &e : chain)
                    dropEntry(e);
                map_.erase(p.record.key);
            }
        } else if (p.relocation) {
            auto chain = map_.find(p.record.key);
            auto *entry =
                chain ? chain.find(p.record.version) : nullptr;
            if (entry != nullptr) {
                --liveTuples_[entry->loc.page.block];
                entry->loc = loc;
                ++liveTuples_[addr.block];
                stats_.counter("mftl.gc_remapped").inc();
            }
            // else: the version was pruned while in flight — the new
            // copy is dead on arrival, which is fine.
        } else {
            auto chain = map_.getOrCreate(p.record.key);
            if (chain.append(p.record.version, loc)) {
                ++liveTuples_[addr.block];
                pruneChain(chain);
            }
            // else: idempotent duplicate; dead on arrival.
        }
        p.ack.set(PutStatus::Ok);
    }
    kickGc();
}

sim::Task<GetResult>
Mftl::get(Key key, Version at)
{
    const Time start = sim_.now();
    stats_.counter("mftl.gets").inc();

    auto chain = map_.find(key);
    if (!chain)
        co_return GetResult::miss();
    pruneChain(chain);
    const auto *entry = chain.findAt(at);
    if (entry == nullptr)
        co_return GetResult::miss();

    // Copy the locator, then pin before any suspension: between the
    // lookup and the pin no other coroutine can run, so the mapping
    // cannot move under us, and the pin blocks GC's erase afterwards.
    const Loc loc = entry->loc;
    const Version version = entry->version;
    device_.pinBlock(loc.page.block);
    const flash::PageData *page = co_await device_.readPage(loc.page);
    GetResult result;
    if (loc.slot < page->records.size() &&
        page->records[loc.slot].key == key &&
        page->records[loc.slot].version == version) {
        result.found = true;
        result.version = version;
        result.value = page->records[loc.slot].value;
    } else {
        PANIC("mftl: mapping points at wrong tuple");
    }
    device_.unpinBlock(loc.page.block);
    stats_.histogram("mftl.get_latency").record(sim_.now() - start);
    co_return result;
}

sim::Task<PutStatus>
Mftl::put(Key key, Value value, Version version)
{
    const Time start = sim_.now();
    stats_.counter("mftl.puts").inc();
    co_await admitUserWrite();
    flash::Record record;
    record.key = key;
    record.version = version;
    record.value = std::move(value);
    record.sizeBytes = config_.recordSize;
    auto ack = packLog_.append(std::move(record), false);
    const PutStatus status = co_await ack;
    stats_.histogram("mftl.put_latency").record(sim_.now() - start);
    co_return status;
}

sim::Task<void>
Mftl::erase(Key key)
{
    stats_.counter("mftl.deletes").inc();
    co_await admitUserWrite();
    flash::Record record;
    record.key = key;
    record.sizeBytes = config_.recordSize;
    record.tombstone = true;
    auto ack = packLog_.append(std::move(record), false);
    co_await ack;
}

void
Mftl::setWatermark(Time watermark)
{
    watermark_ = std::max(watermark_, watermark);
}

std::optional<Version>
Mftl::versionAt(Key key, Version at)
{
    auto chain = map_.find(key);
    if (!chain)
        return std::nullopt;
    pruneChain(chain);
    const auto *entry = chain.findAt(at);
    return entry == nullptr ? std::nullopt
                            : std::optional<Version>(entry->version);
}

void
Mftl::pruneChain(ChainRef chain)
{
    chain.pruneBelowWatermark(
        watermark_, [this](const Store::Entry &e) { dropEntry(e); });
}

void
Mftl::dropEntry(const Store::Entry &entry)
{
    --liveTuples_[entry.loc.page.block];
    stats_.counter("mftl.versions_pruned").inc();
}

sim::Task<void>
Mftl::watermarkSweep()
{
    while (!sim_.stopRequested()) {
        co_await sim::sleepFor(sim_, config_.watermarkSweepInterval);
        map_.forEach(
            [this](Key, ChainRef chain) { pruneChain(chain); });
        kickGc();
    }
}

std::int32_t
Mftl::pickVictim() const
{
    std::int32_t victim = -1;
    std::uint64_t best_cost = std::numeric_limits<std::uint64_t>::max();
    std::vector<bool> is_free(liveTuples_.size(), false);
    for (auto b : freeBlocks_)
        is_free[b] = true;
    for (std::uint32_t b = 0; b < liveTuples_.size(); ++b) {
        if (is_free[b] || victimized_[b] ||
            static_cast<std::int64_t>(b) == openBlock_ ||
            pendingPrograms_[b] != 0)
            continue;
        // Greedy-by-liveness with wear-aware tie-breaking.
        const std::uint64_t cost =
            (static_cast<std::uint64_t>(liveTuples_[b]) << 20) +
            device_.eraseCount(b);
        if (cost < best_cost) {
            best_cost = cost;
            victim = static_cast<std::int32_t>(b);
        }
    }
    if (victim >= 0) {
        // A fully-live victim frees nothing; treat as unreclaimable.
        const auto per_block =
            static_cast<std::uint64_t>(device_.geometry().pagesPerBlock) *
            (device_.geometry().pageSize / config_.recordSize);
        if (liveTuples_[static_cast<std::uint32_t>(victim)] >= per_block)
            return -1;
    }
    return victim;
}

sim::Task<void>
Mftl::gcOnce()
{
    // Victims are processed in batches: their live tuples re-pack
    // tightly together, so a pass that erases V blocks consumes only
    // ceil(live_total / tuples_per_block) fresh blocks. Selection is
    // bounded by the current free pool so the relocation writes can
    // never exhaust it (which would deadlock the collector against its
    // own flushes).
    const std::uint64_t per_block =
        static_cast<std::uint64_t>(device_.geometry().pagesPerBlock) *
        (device_.geometry().pageSize / config_.recordSize);
    while (freeBlocks_.size() < gcHighWater_) {
        std::vector<std::uint32_t> victims;
        std::uint64_t live_total = 0;
        while (victims.size() < 32) {
            const std::int32_t v = pickVictim();
            if (v < 0)
                break;
            const auto vb = static_cast<std::uint32_t>(v);
            const std::uint64_t projected =
                (live_total + liveTuples_[vb] + per_block) / per_block +
                1;
            // Leave at least one free block outside the pass.
            if (projected + 1 > freeBlocks_.size() && !victims.empty())
                break;
            victimized_[vb] = true;
            victims.push_back(vb);
            live_total += liveTuples_[vb];
            const std::uint64_t consumed =
                (live_total + per_block - 1) / per_block;
            if (victims.size() >= consumed + 12)
                break; // pass already nets 12 blocks
        }
        if (victims.empty())
            break;

        // Read every victim page in parallel (pins held across the
        // scan): a serial collector cannot outpace the user write
        // stream through a saturated device.
        struct Scan
        {
            flash::PageAddr addr;
            const flash::PageData *page = nullptr;
        };
        auto scans = std::make_shared<std::vector<Scan>>();
        std::vector<std::uint32_t> pinned;
        const auto pages = device_.geometry().pagesPerBlock;
        for (const std::uint32_t vb : victims) {
            stats_.counter("mftl.gc_victims").inc();
            if (liveTuples_[vb] == 0)
                continue;
            device_.pinBlock(vb);
            pinned.push_back(vb);
            for (std::uint32_t pg = 0; pg < pages; ++pg) {
                const flash::PageAddr addr{vb, pg};
                if (device_.pageState(addr) ==
                    flash::PageState::Programmed)
                    scans->push_back(Scan{addr, nullptr});
            }
        }
        if (!scans->empty()) {
            auto done = std::make_shared<sim::Quorum>(
                sim_, static_cast<std::uint32_t>(scans->size()));
            for (std::size_t i = 0; i < scans->size(); ++i) {
                sim::spawn([](Mftl *self,
                              std::shared_ptr<std::vector<Scan>> scans,
                              std::size_t index,
                              std::shared_ptr<sim::Quorum> done)
                               -> sim::Task<void> {
                    (*scans)[index].page = co_await
                        self->device_.readPage((*scans)[index].addr);
                    self->stats_.counter("mftl.gc_page_reads").inc();
                    done->arrive();
                }(this, scans, i, done));
            }
            co_await done->wait();
        }

        std::vector<sim::Future<PutStatus>> acks;
        for (const Scan &scan : *scans) {
            for (std::uint16_t slot = 0;
                 slot < scan.page->records.size(); ++slot) {
                const auto &rec = scan.page->records[slot];
                if (rec.tombstone)
                    continue;
                auto chain = map_.find(rec.key);
                if (!chain)
                    continue;
                const auto *entry = chain.find(rec.version);
                if (entry == nullptr || entry->loc.page != scan.addr ||
                    entry->loc.slot != slot)
                    continue; // dead or already moved
                // Live: remap through the shared pack buffer
                // ("puts or remapped keys", section 5).
                acks.push_back(packLog_.append(rec, true));
            }
        }
        for (const std::uint32_t vb : pinned)
            device_.unpinBlock(vb);
        packLog_.flushNow();
        for (auto &ack : acks)
            co_await ack;

        for (const std::uint32_t vb : victims) {
            if (liveTuples_[vb] != 0)
                PANIC("mftl: victim block "
                      << vb << " still has " << liveTuples_[vb]
                      << " live tuples after remap");
            co_await device_.eraseBlock(vb);
            victimized_[vb] = false;
            freeBlocks_.push_back(vb);
            stats_.counter("mftl.gc_erases").inc();

            auto freed = spaceFreed_;
            spaceFreed_ = sim::Promise<bool>(sim_);
            freed.set(true);
        }
    }
    gcRunning_ = false;
}

std::size_t
Mftl::versionCount(Key key) const
{
    return map_.versionCount(key);
}

std::size_t
Mftl::rebuildFromFlash()
{
    map_.clear();
    std::fill(liveTuples_.begin(), liveTuples_.end(), 0);
    std::fill(pendingPrograms_.begin(), pendingPrograms_.end(), 0);
    std::fill(victimized_.begin(), victimized_.end(), false);
    freeBlocks_.clear();
    openBlock_ = -1;
    nextPage_ = 0;

    std::size_t recovered = 0;
    const auto &geo = device_.geometry();
    for (std::uint32_t b = 0; b < geo.numBlocks; ++b) {
        bool any_programmed = false;
        for (std::uint32_t pg = 0; pg < geo.pagesPerBlock; ++pg) {
            const flash::PageAddr addr{b, pg};
            if (device_.pageState(addr) != flash::PageState::Programmed)
                continue;
            any_programmed = true;
            const auto &page = device_.peekPage(addr);
            for (std::uint16_t slot = 0; slot < page.records.size();
                 ++slot) {
                const auto &rec = page.records[slot];
                if (rec.tombstone) {
                    // Tombstones erase everything older; chains are
                    // rebuilt in arbitrary order, so apply by removing
                    // versions <= the tombstone stamp.
                    continue;
                }
                auto chain = map_.getOrCreate(rec.key);
                if (chain.append(rec.version, Loc{addr, slot})) {
                    ++liveTuples_[b];
                    ++recovered;
                }
            }
        }
        if (!any_programmed)
            freeBlocks_.push_back(b);
    }
    return recovered;
}

} // namespace ftl
