/**
 * @file
 * The packing logic of the paper's section 5: key-value tuples are
 * 512 B while a flash page is 4 KB, so the FTL "waits for up to 1 ms
 * (tunable) to pack data of multiple keys (puts or remapped keys) into
 * a page". A page flushes when it is full or when the pack timer for
 * its oldest tuple expires, whichever comes first.
 *
 * Put latency therefore includes the residual pack wait — the reason
 * MFTL's put latency in Table 1 exceeds VFTL's: VFTL garbage-collects
 * more (10% capacity reserved at two levels), its remapped tuples fill
 * pages faster, and its tuples wait less.
 *
 * PackLog owns only the buffering and timing; the owning FTL supplies
 * the flush function that allocates a page, programs the device, and
 * updates its mapping table.
 */

#ifndef FTL_PACK_LOG_HH
#define FTL_PACK_LOG_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "flash/ssd.hh"
#include "ftl/kv_backend.hh"
#include "sim/future.hh"

namespace ftl {

/** A tuple waiting in the pack buffer. */
struct Pending
{
    flash::Record record;
    /** True when this is a GC remap rather than a new write. */
    bool relocation = false;
    /** Resolved once the tuple is durable on flash. */
    sim::Promise<PutStatus> ack;

    Pending(flash::Record r, bool reloc, sim::Simulator &sim)
        : record(std::move(r)), relocation(reloc), ack(sim)
    {
    }
};

class PackLog
{
  public:
    /**
     * @param flush Called with a full (or timed-out) batch; must
     *              eventually resolve every Pending's ack. Invoked
     *              from event context; implementations spawn a task.
     */
    PackLog(sim::Simulator &sim, std::uint32_t page_bytes,
            common::Duration pack_timeout,
            std::function<void(std::vector<Pending>)> flush);

    /**
     * Queue a tuple; returns a future resolved when it is durable.
     * Triggers an immediate flush when the page fills.
     */
    sim::Future<PutStatus> append(flash::Record record, bool relocation);

    /** Force out a partial page (e.g. at the end of a GC pass). */
    void flushNow();

    bool empty() const { return buffer_.empty(); }
    std::uint32_t bufferedBytes() const { return bytes_; }

  private:
    void armTimer();
    void doFlush();

    sim::Simulator &sim_;
    std::uint32_t pageBytes_;
    common::Duration packTimeout_;
    std::function<void(std::vector<Pending>)> flush_;
    std::vector<Pending> buffer_;
    std::uint32_t bytes_ = 0;
    /** Invalidates pack timers armed for batches already flushed. */
    std::uint64_t epoch_ = 0;
};

} // namespace ftl

#endif // FTL_PACK_LOG_HH
