/**
 * @file
 * Per-key version chains: the in-DRAM mapping-table entries of the
 * paper's multi-version FTL (Figure 3). Each key maps to a list of
 * versions sorted by descending create-timestamp; a version carries a
 * location cookie (physical page for MFTL, logical block for VFTL,
 * nothing for DRAM).
 *
 * Watermark pruning implements section 3.1's rule: keep the youngest
 * version whose stamp is <= watermark plus everything younger; discard
 * the rest.
 *
 * Two chain implementations share the algorithms in ftl::chain_ops:
 *
 *  - VersionChain (this file): a std::vector-backed chain. Kept as the
 *    reference implementation — tests/store_semantics_test.cc replays
 *    identical operation sequences against it and the arena-backed
 *    chains inside ftl::VersionStore (mapping_table.hh) and demands
 *    identical observable behaviour.
 *  - VersionStore::ChainRef (mapping_table.hh): the production data
 *    plane — inline 1-version slots with size-class arena overflow.
 *
 * All lookups and insertions are branch-light binary searches over the
 * descending entries (chains are sorted, so a linear walk is pure
 * waste once hot keys accumulate versions).
 */

#ifndef FTL_VERSION_CHAIN_HH
#define FTL_VERSION_CHAIN_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ftl {

using common::Time;
using common::Version;

/** One version's mapping entry. Loc is a backend-specific locator. */
template <typename Loc>
struct VersionEntry
{
    Version version;
    Loc loc;
};

/**
 * Shared algorithms over a descending-sorted array of VersionEntry.
 * Both chain implementations call these, so their semantics cannot
 * drift apart.
 */
namespace chain_ops {

/**
 * Index of the first entry with version <= @p v (entries are sorted
 * descending, so this is the youngest version at or below v), or
 * @p count when every entry is younger. Branch-light binary search:
 * the loop body is a compare + conditional base advance, no
 * data-dependent early exit.
 */
template <typename Entry>
inline std::size_t
firstLeq(const Entry *entries, std::size_t count, Version v)
{
    std::size_t lo = 0;
    std::size_t n = count;
    while (n > 0) {
        const std::size_t half = n >> 1;
        if (entries[lo + half].version > v) {
            lo += half + 1;
            n -= half + 1;
        } else {
            n = half;
        }
    }
    return lo;
}

/**
 * Index of the first entry with version.timestamp <= @p watermark
 * (the youngest entry at or below the watermark), or @p count.
 * Timestamps are non-increasing along a descending-version chain, so
 * the same binary-search shape applies.
 */
template <typename Entry>
inline std::size_t
firstTsLeq(const Entry *entries, std::size_t count, Time watermark)
{
    std::size_t lo = 0;
    std::size_t n = count;
    while (n > 0) {
        const std::size_t half = n >> 1;
        if (entries[lo + half].version.timestamp > watermark) {
            lo += half + 1;
            n -= half + 1;
        } else {
            n = half;
        }
    }
    return lo;
}

} // namespace chain_ops

/**
 * Sorted (descending by version) chain of a key's versions.
 */
template <typename Loc>
class VersionChain
{
  public:
    using Entry = VersionEntry<Loc>;

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Youngest entry; chain must be non-empty. */
    const Entry &youngest() const { return entries_.front(); }

    const std::vector<Entry> &entries() const { return entries_; }

    /**
     * Insert a version, keeping descending order. Duplicate stamps
     * (idempotent replays) are ignored; returns false in that case.
     */
    bool
    insert(Version v, Loc loc)
    {
        const std::size_t idx =
            chain_ops::firstLeq(entries_.data(), entries_.size(), v);
        if (idx < entries_.size() && entries_[idx].version == v)
            return false;
        entries_.insert(entries_.begin() +
                            static_cast<std::ptrdiff_t>(idx),
                        Entry{v, std::move(loc)});
        return true;
    }

    /**
     * Bulk-load fast path: append a version known to be older than
     * everything present (loaders feed versions pre-sorted, newest
     * first). Falls back to insert() when the precondition does not
     * hold. Returns false on a duplicate stamp.
     */
    bool
    append(Version v, Loc loc)
    {
        if (!entries_.empty()) {
            const Version tail = entries_.back().version;
            if (tail == v)
                return false;
            if (tail < v)
                return insert(v, std::move(loc));
        }
        entries_.push_back(Entry{v, std::move(loc)});
        return true;
    }

    /** Youngest entry with stamp <= at, or nullptr. */
    const Entry *
    findAt(Version at) const
    {
        const std::size_t idx =
            chain_ops::firstLeq(entries_.data(), entries_.size(), at);
        return idx < entries_.size() ? &entries_[idx] : nullptr;
    }

    /** Mutable entry for an exact version, or nullptr. */
    Entry *
    find(Version v)
    {
        const std::size_t idx =
            chain_ops::firstLeq(entries_.data(), entries_.size(), v);
        if (idx < entries_.size() && entries_[idx].version == v)
            return &entries_[idx];
        return nullptr;
    }

    /** True if the given exact version is present. */
    bool
    contains(Version v) const
    {
        const std::size_t idx =
            chain_ops::firstLeq(entries_.data(), entries_.size(), v);
        return idx < entries_.size() && entries_[idx].version == v;
    }

    /**
     * Drop versions made obsolete by the watermark; invokes
     * @p on_drop(entry) for each discarded entry so the caller can
     * release the storage it references. Keeps the youngest version
     * with timestamp <= watermark and everything younger.
     */
    template <typename OnDrop>
    void
    pruneBelowWatermark(Time watermark, OnDrop &&on_drop)
    {
        // entries_ is descending; the youngest entry <= watermark is
        // kept, everything after it is prunable.
        const std::size_t keep = chain_ops::firstTsLeq(
            entries_.data(), entries_.size(), watermark);
        const std::size_t first_drop = keep + 1;
        for (std::size_t i = first_drop; i < entries_.size(); ++i)
            on_drop(entries_[i]);
        if (first_drop < entries_.size())
            entries_.resize(first_drop);
    }

    /**
     * Remove one exact version (used when GC relocates a record or a
     * delete removes the key). Returns true if found.
     */
    bool
    remove(Version v)
    {
        const std::size_t idx =
            chain_ops::firstLeq(entries_.data(), entries_.size(), v);
        if (idx < entries_.size() && entries_[idx].version == v) {
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(idx));
            return true;
        }
        return false;
    }

    /** Update the locator of an exact version (GC relocation). */
    bool
    relocate(Version v, Loc loc)
    {
        if (Entry *e = find(v)) {
            e->loc = std::move(loc);
            return true;
        }
        return false;
    }

  private:
    std::vector<Entry> entries_;
};

} // namespace ftl

#endif // FTL_VERSION_CHAIN_HH
