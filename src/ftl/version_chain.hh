/**
 * @file
 * Per-key version chains: the in-DRAM mapping-table entries of the
 * paper's multi-version FTL (Figure 3). Each key maps to a list of
 * versions sorted by descending create-timestamp; a version carries a
 * location cookie (physical page for MFTL, logical block for VFTL,
 * nothing for DRAM).
 *
 * Watermark pruning implements section 3.1's rule: keep the youngest
 * version whose stamp is <= watermark plus everything younger; discard
 * the rest.
 */

#ifndef FTL_VERSION_CHAIN_HH
#define FTL_VERSION_CHAIN_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace ftl {

using common::Time;
using common::Version;

/** One version's mapping entry. Loc is a backend-specific locator. */
template <typename Loc>
struct VersionEntry
{
    Version version;
    Loc loc;
};

/**
 * Sorted (descending by version) chain of a key's versions.
 */
template <typename Loc>
class VersionChain
{
  public:
    using Entry = VersionEntry<Loc>;

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Youngest entry; chain must be non-empty. */
    const Entry &youngest() const { return entries_.front(); }

    const std::vector<Entry> &entries() const { return entries_; }

    /**
     * Insert a version, keeping descending order. Duplicate stamps
     * (idempotent replays) are ignored; returns false in that case.
     */
    bool
    insert(Version v, Loc loc)
    {
        auto it = entries_.begin();
        while (it != entries_.end() && it->version > v)
            ++it;
        if (it != entries_.end() && it->version == v)
            return false;
        entries_.insert(it, Entry{v, loc});
        return true;
    }

    /** Youngest entry with stamp <= at, or nullptr. */
    const Entry *
    findAt(Version at) const
    {
        for (const auto &e : entries_) {
            if (e.version <= at)
                return &e;
        }
        return nullptr;
    }

    /** Mutable entry for an exact version, or nullptr. */
    Entry *
    find(Version v)
    {
        for (auto &e : entries_) {
            if (e.version == v)
                return &e;
            if (e.version < v)
                break;
        }
        return nullptr;
    }

    /** True if the given exact version is present. */
    bool
    contains(Version v) const
    {
        for (const auto &e : entries_) {
            if (e.version == v)
                return true;
            if (e.version < v)
                break;
        }
        return false;
    }

    /**
     * Drop versions made obsolete by the watermark; invokes
     * @p on_drop(entry) for each discarded entry so the caller can
     * release the storage it references. Keeps the youngest version
     * with timestamp <= watermark and everything younger.
     */
    template <typename OnDrop>
    void
    pruneBelowWatermark(Time watermark, OnDrop &&on_drop)
    {
        // entries_ is descending; find the first entry with
        // timestamp <= watermark. Everything after it is prunable.
        std::size_t keep = 0;
        while (keep < entries_.size() &&
               entries_[keep].version.timestamp > watermark)
            ++keep;
        // entries_[keep] is the youngest <= watermark: keep it too.
        const std::size_t first_drop = keep + 1;
        for (std::size_t i = first_drop; i < entries_.size(); ++i)
            on_drop(entries_[i]);
        if (first_drop < entries_.size())
            entries_.resize(first_drop);
    }

    /**
     * Remove one exact version (used when GC relocates a record or a
     * delete removes the key). Returns true if found.
     */
    bool
    remove(Version v)
    {
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->version == v) {
                entries_.erase(it);
                return true;
            }
        }
        return false;
    }

    /** Update the locator of an exact version (GC relocation). */
    bool
    relocate(Version v, Loc loc)
    {
        for (auto &e : entries_) {
            if (e.version == v) {
                e.loc = loc;
                return true;
            }
        }
        return false;
    }

  private:
    std::vector<Entry> entries_;
};

} // namespace ftl

#endif // FTL_VERSION_CHAIN_HH
