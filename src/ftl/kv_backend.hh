/**
 * @file
 * The storage-backend interface shared by all four backends the paper
 * evaluates: MFTL (unified multi-version FTL), VFTL (multi-version KV
 * layer stacked on a generic FTL), SFTL used as a single-version KV
 * store, and DRAM.
 *
 * SEMEL servers talk to a KvBackend; everything above (replication,
 * transactions) is backend-agnostic, exactly as in the paper where the
 * same MILANA code runs over DRAM, VFTL and MFTL (Figures 7 and 8).
 */

#ifndef FTL_KV_BACKEND_HH
#define FTL_KV_BACKEND_HH

#include <cstdint>
#include <optional>
#include <utility>

#include "common/stats.hh"
#include "common/types.hh"
#include "sim/task.hh"

namespace ftl {

using common::Key;
using common::Time;
using common::Value;
using common::Version;

/** Result of a read. */
struct GetResult
{
    bool found = false;
    /** Stamp of the version returned. */
    Version version;
    Value value;

    static GetResult
    miss()
    {
        return GetResult{};
    }
};

/** Result of a write. */
enum class PutStatus
{
    Ok,
    /** Single-version backends reject writes older than the stored
     *  version (SEMEL's at-most-once rule, section 3.3). */
    StaleVersion,
    DeviceFull,
};

class KvBackend
{
  public:
    virtual ~KvBackend() = default;

    /**
     * Read the youngest version of @p key with stamp <= @p at.
     *
     * Single-version backends ignore @p at and return the only stored
     * version — the caller detects a non-snapshot read by comparing
     * the returned stamp with its own bound (this is precisely why
     * single-version storage aborts tardy read-only transactions in
     * Figure 6).
     */
    virtual sim::Task<GetResult> get(Key key, Version at) = 0;

    /** Convenience: read the youngest version. */
    sim::Task<GetResult> getLatest(Key key);

    /** Durably store a new version of @p key. */
    virtual sim::Task<PutStatus> put(Key key, Value value,
                                     Version version) = 0;

    /** Remove all versions of @p key. */
    virtual sim::Task<void> erase(Key key) = 0;

    /**
     * Advance the garbage-collection watermark (section 3.1): the
     * backend must retain, for every key, the youngest version with
     * stamp <= watermark and everything younger; older versions may be
     * discarded.
     */
    virtual void setWatermark(Time watermark) = 0;

    /**
     * Mapping-table-only lookup of the stamp of the youngest version
     * with stamp <= @p at. Synchronous: touches only the in-DRAM
     * mapping table, never the device — used by validation fast paths.
     * Returns nullopt when the backend keeps no in-DRAM version index
     * (e.g. a single-version store whose state lives on flash).
     */
    virtual std::optional<Version>
    versionAt(Key key, Version at)
    {
        (void)key;
        (void)at;
        return std::nullopt;
    }

    /** True if the backend stores multiple versions per key. */
    virtual bool multiVersion() const = 0;

    /**
     * Pre-size the in-DRAM mapping structures for @p keys distinct
     * keys so bulk load performs zero rehashes. Synchronous; no-op
     * for backends without a resizable index.
     */
    virtual void
    reserveKeys(std::uint64_t keys)
    {
        (void)keys;
    }

    /**
     * Exact bytes held by the in-DRAM data plane (mapping table slots
     * + version-chain arena slabs); 0 when the backend keeps no
     * in-DRAM index. Deterministic — computed from table capacity and
     * arena accounting, not from the host allocator.
     */
    virtual std::uint64_t
    dataPlaneBytes() const
    {
        return 0;
    }

    virtual common::StatSet &stats() = 0;
};

} // namespace ftl

#endif // FTL_KV_BACKEND_HH
