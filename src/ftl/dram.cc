#include "ftl/dram.hh"

#include <algorithm>

namespace ftl {

DramBackend::DramBackend(sim::Simulator &sim)
    : DramBackend(sim, Config{})
{
}

DramBackend::DramBackend(sim::Simulator &sim, const Config &config)
    : sim_(sim), config_(config), map_(config.expectedKeys)
{
}

sim::Task<GetResult>
DramBackend::get(Key key, Version at)
{
    // Look up at coroutine entry (atomic w.r.t. other coroutines), then
    // model the access latency: callers rely on the snapshot being
    // taken when the request is issued.
    stats_.counter("dram.gets").inc();
    GetResult result;
    if (auto chain = map_.find(key)) {
        chain.pruneBelowWatermark(watermark_, [](const auto &) {});
        if (const auto *entry = chain.findAt(at)) {
            result.found = true;
            result.version = entry->version;
            result.value = entry->loc.value;
        }
    }
    co_await sim::sleepFor(sim_, config_.readLatency);
    co_return result;
}

sim::Task<PutStatus>
DramBackend::put(Key key, Value value, Version version)
{
    // Mutate at entry, then charge the write latency: the new version
    // is visible to lookups issued after this call starts.
    stats_.counter("dram.puts").inc();
    auto chain = map_.getOrCreate(key);
    chain.append(version, Stored{std::move(value)});
    chain.pruneBelowWatermark(watermark_, [](const auto &) {});
    co_await sim::sleepFor(sim_, config_.writeLatency);
    co_return PutStatus::Ok;
}

sim::Task<void>
DramBackend::erase(Key key)
{
    stats_.counter("dram.deletes").inc();
    co_await sim::sleepFor(sim_, config_.writeLatency);
    map_.erase(key);
}

void
DramBackend::setWatermark(Time watermark)
{
    watermark_ = std::max(watermark_, watermark);
}

std::optional<Version>
DramBackend::versionAt(Key key, Version at)
{
    auto chain = map_.find(key);
    if (!chain)
        return std::nullopt;
    const auto *entry = chain.findAt(at);
    return entry == nullptr ? std::nullopt
                            : std::optional<Version>(entry->version);
}

std::size_t
DramBackend::versionCount(Key key) const
{
    return map_.versionCount(key);
}

} // namespace ftl
