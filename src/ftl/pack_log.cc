#include "ftl/pack_log.hh"

#include "common/logging.hh"

namespace ftl {

PackLog::PackLog(sim::Simulator &sim, std::uint32_t page_bytes,
                 common::Duration pack_timeout,
                 std::function<void(std::vector<Pending>)> flush)
    : sim_(sim),
      pageBytes_(page_bytes),
      packTimeout_(pack_timeout),
      flush_(std::move(flush))
{
}

sim::Future<PutStatus>
PackLog::append(flash::Record record, bool relocation)
{
    if (record.sizeBytes > pageBytes_)
        PANIC("record larger than a page");
    if (bytes_ + record.sizeBytes > pageBytes_)
        doFlush(); // close the page that cannot fit this tuple

    const bool was_empty = buffer_.empty();
    buffer_.emplace_back(std::move(record), relocation, sim_);
    bytes_ += buffer_.back().record.sizeBytes;
    auto future = buffer_.back().ack.future();

    if (bytes_ >= pageBytes_) {
        doFlush();
    } else if (was_empty) {
        armTimer();
    }
    return future;
}

void
PackLog::flushNow()
{
    if (!buffer_.empty())
        doFlush();
}

void
PackLog::armTimer()
{
    const std::uint64_t epoch = epoch_;
    sim_.schedule(packTimeout_, [this, epoch] {
        // Fires only if the batch it was armed for is still open.
        if (epoch == epoch_ && !buffer_.empty())
            doFlush();
    });
}

void
PackLog::doFlush()
{
    ++epoch_;
    bytes_ = 0;
    std::vector<Pending> batch;
    batch.swap(buffer_);
    flush_(std::move(batch));
}

} // namespace ftl
