/**
 * @file
 * The zero-allocation storage data plane: an open-addressing
 * robin-hood mapping table from Key to a version chain, with the
 * common 1-version case stored inline in the table slot and overflow
 * chains carved from a size-class arena (arena.hh).
 *
 * This replaces `std::unordered_map<Key, VersionChain>` in the DRAM,
 * MFTL and VFTL backends. Design points:
 *
 *  - Power-of-two capacity, multiplicative (Fibonacci) hashing,
 *    linear probing with robin-hood displacement: a probing insert
 *    that meets a slot closer to its home bucket than itself evicts
 *    it (forward-shifting the contiguous run), keeping probe-length
 *    variance tiny at the 7/8 max load factor.
 *  - Tombstone-free erase: deleting a key backward-shifts the
 *    following run members one slot toward their home buckets, so
 *    lookups never wade through tombstones and the table never needs
 *    an anti-tombstone rehash.
 *  - Slot layout (DRAM backend: 64 bytes, one cache line):
 *
 *        Key      key       8B   }
 *        u32      dist      4B   }  header: dist==0 <=> slot empty,
 *        u16      count     2B   }  dist is probe distance + 1
 *        u16      capClass  2B   }  kInlineClass <=> entry is inline
 *        union {
 *          Entry  one      (inline newest version)
 *          Entry *many     (arena block, capacity 2 << capClass)
 *        }
 *
 *    A key with one live version (the overwhelming case after
 *    watermark pruning) costs one cache line and zero pointer
 *    chases. Chains that grow past one entry move to an arena block
 *    that doubles per size class; chains that shrink back to <= 1
 *    entry return their block to the arena freelist, so steady-state
 *    put/prune churn allocates nothing.
 *  - All chain operations share ftl::chain_ops binary searches with
 *    the reference VersionChain, so semantics cannot drift
 *    (tests/store_semantics_test.cc replays both).
 *
 * Iteration order is slot order, which differs from unordered_map
 * order — safe here because every map iteration in the backends
 * (watermark sweeps, rebuild scans) is order-independent and runs
 * without suspension points.
 *
 * Single-threaded by design, like the simulator that owns it.
 */

#ifndef FTL_MAPPING_TABLE_HH
#define FTL_MAPPING_TABLE_HH

#include <bit>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <new>
#include <utility>

#include "common/types.hh"
#include "ftl/arena.hh"
#include "ftl/version_chain.hh"

namespace ftl {

using common::Key;
using common::Time;
using common::Version;

namespace table_detail {

/** Fibonacci multiplicative hash; the table keeps the high bits. */
inline std::uint64_t
mixKey(Key key)
{
    return static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
}

inline std::size_t
pow2AtLeast(std::size_t n)
{
    return std::bit_ceil(n < 2 ? std::size_t{2} : n);
}

} // namespace table_detail

/**
 * Open-addressing robin-hood map from Key to a descending version
 * chain. See the file comment for layout and invariants.
 */
template <typename Loc>
class VersionStore
{
  private:
    struct Slot;

  public:
    using Entry = VersionEntry<Loc>;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /**
     * @param expected_keys pre-sizes the table so that many distinct
     * keys insert without a single rehash (0 = start minimal and
     * grow).
     */
    explicit VersionStore(std::uint64_t expected_keys = 0)
    {
        if (expected_keys > 0)
            rehash(capacityFor(expected_keys));
    }

    VersionStore(const VersionStore &) = delete;
    VersionStore &operator=(const VersionStore &) = delete;

    ~VersionStore()
    {
        clear();
        ::operator delete(slots_);
    }

    class ChainRef;

    /** Chain for @p key, or a falsy ChainRef when absent. */
    ChainRef
    find(Key key)
    {
        const std::size_t idx = findIndex(key);
        return idx == npos ? ChainRef{} : ChainRef{this, idx};
    }

    /** Chain for @p key, creating an empty chain when absent. */
    ChainRef
    getOrCreate(Key key)
    {
        if ((size_ + 1) * 8 > cap_ * 7)
            grow();
        std::size_t i = bucketOf(key);
        std::uint32_t dist = 1;
        for (;;) {
            Slot &s = slots_[i];
            if (s.dist == 0) {
                fillEmpty(s, key, dist);
                return ChainRef{this, i};
            }
            if (s.key == key)
                return ChainRef{this, i};
            if (s.dist < dist) {
                // Robin hood: this resident is closer to home than we
                // are; shift the run right and take its slot.
                shiftForward(i);
                fillEmpty(slots_[i], key, dist);
                return ChainRef{this, i};
            }
            i = (i + 1) & mask_;
            ++dist;
        }
    }

    /**
     * Remove a key and its chain. Backward-shift erase: the following
     * run members move one slot toward home, leaving no tombstone.
     */
    bool
    erase(Key key)
    {
        const std::size_t idx = findIndex(key);
        if (idx == npos)
            return false;
        destroyChain(slots_[idx]);
        std::size_t hole = idx;
        for (;;) {
            const std::size_t next = (hole + 1) & mask_;
            Slot &n = slots_[next];
            if (n.dist <= 1)
                break;
            Slot &h = slots_[hole];
            h.key = n.key;
            h.dist = n.dist - 1;
            movePayload(h, n);
            hole = next;
        }
        slots_[hole].dist = 0;
        --size_;
        return true;
    }

    /** Drop every chain; capacity and arena slabs are retained. */
    void
    clear()
    {
        for (std::size_t i = 0; i < cap_; ++i) {
            if (slots_[i].dist != 0) {
                destroyChain(slots_[i]);
                slots_[i].dist = 0;
            }
        }
        size_ = 0;
    }

    /**
     * Pre-size for @p keys distinct keys so bulk load performs no
     * rehashes. Never shrinks.
     */
    void
    reserveKeys(std::uint64_t keys)
    {
        const std::size_t want = capacityFor(keys);
        if (want > cap_)
            rehash(want);
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return cap_; }

    /** Number of live versions for @p key (0 when absent). */
    std::size_t
    versionCount(Key key) const
    {
        const std::size_t idx = findIndex(key);
        return idx == npos ? 0 : slots_[idx].count;
    }

    /**
     * Visit every (key, chain). @p fn may mutate the chain (insert,
     * prune, relocate) but must NOT erase keys or insert new ones —
     * either would move slots under the iteration.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < cap_; ++i) {
            if (slots_[i].dist != 0)
                fn(slots_[i].key, ChainRef{this, i});
        }
    }

    /** Exact bytes held: slot array + arena slabs. */
    std::uint64_t
    memoryBytes() const
    {
        return static_cast<std::uint64_t>(cap_) * sizeof(Slot) +
               arena_.slabBytes();
    }

    /**
     * Borrowed reference to one key's chain. Valid until the next
     * operation that can move slots (getOrCreate of a new key, erase,
     * reserveKeys, clear); chain mutations through the ref itself are
     * fine. Mirrors VersionChain's interface.
     */
    class ChainRef
    {
      public:
        ChainRef() = default;

        explicit operator bool() const { return store_ != nullptr; }

        bool empty() const { return slot().count == 0; }
        std::size_t size() const { return slot().count; }

        /** Youngest entry; chain must be non-empty. */
        const Entry &youngest() const { return begin()[0]; }

        const Entry *
        begin() const
        {
            return VersionStore::entriesOf(slot());
        }
        const Entry *end() const { return begin() + slot().count; }

        /** Same contract as VersionChain::insert. */
        bool
        insert(Version v, Loc loc)
        {
            Slot &s = slot();
            Entry *e = VersionStore::entriesOf(s);
            const std::size_t idx =
                chain_ops::firstLeq(e, s.count, v);
            if (idx < s.count && e[idx].version == v)
                return false;
            store_->insertAt(s, idx, v, std::move(loc));
            return true;
        }

        /** Same contract as VersionChain::append. */
        bool
        append(Version v, Loc loc)
        {
            Slot &s = slot();
            if (s.count > 0) {
                const Entry *e = VersionStore::entriesOf(s);
                const Version tail = e[s.count - 1].version;
                if (tail == v)
                    return false;
                if (tail < v)
                    return insert(v, std::move(loc));
            }
            store_->insertAt(s, s.count, v, std::move(loc));
            return true;
        }

        /** Youngest entry with stamp <= at, or nullptr. */
        const Entry *
        findAt(Version at) const
        {
            const Slot &s = slot();
            const Entry *e = VersionStore::entriesOf(s);
            const std::size_t idx =
                chain_ops::firstLeq(e, s.count, at);
            return idx < s.count ? &e[idx] : nullptr;
        }

        /** Mutable entry for an exact version, or nullptr. */
        Entry *
        find(Version v)
        {
            Slot &s = slot();
            Entry *e = VersionStore::entriesOf(s);
            const std::size_t idx =
                chain_ops::firstLeq(e, s.count, v);
            if (idx < s.count && e[idx].version == v)
                return &e[idx];
            return nullptr;
        }

        bool
        contains(Version v) const
        {
            const Slot &s = slot();
            const Entry *e = VersionStore::entriesOf(s);
            const std::size_t idx =
                chain_ops::firstLeq(e, s.count, v);
            return idx < s.count && e[idx].version == v;
        }

        /** Same contract as VersionChain::pruneBelowWatermark. */
        template <typename OnDrop>
        void
        pruneBelowWatermark(Time watermark, OnDrop &&on_drop)
        {
            Slot &s = slot();
            Entry *e = VersionStore::entriesOf(s);
            const std::size_t keep =
                chain_ops::firstTsLeq(e, s.count, watermark);
            const std::size_t first_drop = keep + 1;
            if (first_drop >= s.count)
                return;
            for (std::size_t i = first_drop; i < s.count; ++i)
                on_drop(e[i]);
            store_->truncate(s, first_drop);
        }

        /** Same contract as VersionChain::remove. */
        bool
        remove(Version v)
        {
            Slot &s = slot();
            Entry *e = VersionStore::entriesOf(s);
            const std::size_t idx =
                chain_ops::firstLeq(e, s.count, v);
            if (idx < s.count && e[idx].version == v) {
                store_->removeAt(s, idx);
                return true;
            }
            return false;
        }

        /** Same contract as VersionChain::relocate. */
        bool
        relocate(Version v, Loc loc)
        {
            if (Entry *e = find(v)) {
                e->loc = std::move(loc);
                return true;
            }
            return false;
        }

      private:
        friend class VersionStore;
        ChainRef(VersionStore *store, std::size_t index)
            : store_(store), index_(index)
        {
        }

        Slot &slot() const { return store_->slots_[index_]; }

        VersionStore *store_ = nullptr;
        std::size_t index_ = 0;
    };

  private:
    friend class ChainRef;

    /** capClass value marking "entry lives inline in the slot". */
    static constexpr std::uint16_t kInlineClass = 0xffff;
    static constexpr std::size_t kMinTableCap = 16;

    struct Slot
    {
        Key key;
        std::uint32_t dist;     // probe distance + 1; 0 = empty
        std::uint16_t count;    // live versions in this chain
        std::uint16_t capClass; // arena class, or kInlineClass
        union Rep {
            Rep() {}
            ~Rep() {}
            Entry one;
            Entry *many;
        } rep;
    };

    static Entry *
    entriesOf(Slot &s)
    {
        return s.capClass == kInlineClass ? &s.rep.one : s.rep.many;
    }

    static const Entry *
    entriesOf(const Slot &s)
    {
        return s.capClass == kInlineClass ? &s.rep.one : s.rep.many;
    }

    static std::uint32_t
    chainCapacity(const Slot &s)
    {
        return s.capClass == kInlineClass
                   ? 1u
                   : ChainArena<Entry>::capacityOf(s.capClass);
    }

    void
    fillEmpty(Slot &s, Key key, std::uint32_t dist)
    {
        s.key = key;
        s.dist = dist;
        s.count = 0;
        s.capClass = kInlineClass;
        ++size_;
    }

    std::size_t
    bucketOf(Key key) const
    {
        return table_detail::mixKey(key) >> shift_;
    }

    static std::size_t
    capacityFor(std::uint64_t keys)
    {
        // Keep the live load under 7/8 after `keys` inserts.
        const std::size_t want = static_cast<std::size_t>(
            keys + keys / 7 + 1);
        return table_detail::pow2AtLeast(
            want < kMinTableCap ? kMinTableCap : want);
    }

    std::size_t
    findIndex(Key key) const
    {
        if (cap_ == 0)
            return npos;
        std::size_t i = bucketOf(key);
        std::uint32_t dist = 1;
        for (;;) {
            const Slot &s = slots_[i];
            if (s.dist < dist) // includes empty (dist == 0)
                return npos;
            if (s.key == key)
                return i;
            i = (i + 1) & mask_;
            ++dist;
        }
    }

    // --- chain storage management ------------------------------------

    /** Insert at chain index @p idx in [0, count], growing if full. */
    void
    insertAt(Slot &s, std::size_t idx, Version v, Loc &&loc)
    {
        if (s.count == chainCapacity(s))
            growChain(s);
        Entry *e = entriesOf(s);
        if (idx == s.count) {
            new (&e[idx]) Entry{v, std::move(loc)};
        } else {
            // Shift [idx, count) up by one: move-construct the new
            // tail, move-assign the middle, assign the freed hole.
            new (&e[s.count]) Entry(std::move(e[s.count - 1]));
            for (std::size_t j = s.count - 1; j > idx; --j)
                e[j] = std::move(e[j - 1]);
            e[idx] = Entry{v, std::move(loc)};
        }
        ++s.count;
    }

    void
    removeAt(Slot &s, std::size_t idx)
    {
        Entry *e = entriesOf(s);
        for (std::size_t j = idx + 1; j < s.count; ++j)
            e[j - 1] = std::move(e[j]);
        e[s.count - 1].~Entry();
        --s.count;
        maybeShrink(s);
    }

    /** Destroy entries [from, count) — the prune tail drop. */
    void
    truncate(Slot &s, std::size_t from)
    {
        Entry *e = entriesOf(s);
        for (std::size_t j = from; j < s.count; ++j)
            e[j].~Entry();
        s.count = static_cast<std::uint16_t>(from);
        maybeShrink(s);
    }

    void
    growChain(Slot &s)
    {
        const std::uint16_t cls =
            s.capClass == kInlineClass
                ? 0
                : static_cast<std::uint16_t>(s.capClass + 1);
        Entry *blk = arena_.allocate(cls);
        Entry *e = entriesOf(s);
        for (std::size_t i = 0; i < s.count; ++i) {
            new (&blk[i]) Entry(std::move(e[i]));
            e[i].~Entry();
        }
        if (s.capClass != kInlineClass)
            arena_.deallocate(s.rep.many, s.capClass);
        s.rep.many = blk;
        s.capClass = cls;
    }

    /** Chains at <= 1 entry fold back inline, recycling their block. */
    void
    maybeShrink(Slot &s)
    {
        if (s.capClass == kInlineClass || s.count > 1)
            return;
        // rep is a union: save the block pointer before rep.one
        // overwrites those bytes.
        Entry *blk = s.rep.many;
        const std::uint16_t cls = s.capClass;
        s.capClass = kInlineClass;
        if (s.count == 1) {
            new (&s.rep.one) Entry(std::move(blk[0]));
            blk[0].~Entry();
        }
        arena_.deallocate(blk, cls);
    }

    void
    destroyChain(Slot &s)
    {
        Entry *e = entriesOf(s);
        for (std::size_t i = 0; i < s.count; ++i)
            e[i].~Entry();
        if (s.capClass != kInlineClass)
            arena_.deallocate(s.rep.many, s.capClass);
        s.count = 0;
        s.capClass = kInlineClass;
    }

    /**
     * Move src's chain payload into dst (dst's payload must be dead).
     * Inline entries move by move-construction; overflow chains just
     * transfer the block pointer. src is left empty.
     */
    static void
    movePayload(Slot &dst, Slot &src)
    {
        dst.count = src.count;
        dst.capClass = src.capClass;
        if (src.capClass == kInlineClass) {
            if (src.count == 1) {
                new (&dst.rep.one) Entry(std::move(src.rep.one));
                src.rep.one.~Entry();
            }
        } else {
            dst.rep.many = src.rep.many;
        }
        src.count = 0;
        src.capClass = kInlineClass;
    }

    // --- table growth / displacement ---------------------------------

    /**
     * Make slot @p pos a hole by moving the contiguous run starting
     * there one step right (into the first empty slot), bumping each
     * displaced resident's probe distance.
     */
    void
    shiftForward(std::size_t pos)
    {
        std::size_t e = pos;
        while (slots_[e].dist != 0)
            e = (e + 1) & mask_;
        while (e != pos) {
            const std::size_t p = (e + cap_ - 1) & mask_;
            Slot &dst = slots_[e];
            Slot &src = slots_[p];
            dst.key = src.key;
            dst.dist = src.dist + 1;
            movePayload(dst, src);
            e = p;
        }
        slots_[pos].dist = 0;
    }

    void
    grow()
    {
        rehash(cap_ == 0 ? kMinTableCap : cap_ * 2);
    }

    void
    rehash(std::size_t new_cap)
    {
        Slot *old = slots_;
        const std::size_t old_cap = cap_;
        slots_ = allocSlots(new_cap);
        cap_ = new_cap;
        mask_ = new_cap - 1;
        shift_ = static_cast<std::uint32_t>(
            64 - std::countr_zero(new_cap));
        size_ = 0;
        for (std::size_t i = 0; i < old_cap; ++i) {
            Slot &s = old[i];
            if (s.dist == 0)
                continue;
            // Capacity is already final, so this cannot re-enter
            // grow(); the new slot's payload is empty — overwrite it.
            ChainRef ref = getOrCreate(s.key);
            movePayload(ref.slot(), s);
        }
        ::operator delete(old);
    }

    Slot *
    allocSlots(std::size_t n)
    {
        auto *p = static_cast<Slot *>(::operator new(n * sizeof(Slot)));
        // Zero-fill: dist == 0 marks every slot empty; union bytes are
        // raw until a chain is constructed.
        std::memset(static_cast<void *>(p), 0, n * sizeof(Slot));
        return p;
    }

    Slot *slots_ = nullptr;
    std::size_t cap_ = 0;
    std::size_t mask_ = 0;
    std::uint32_t shift_ = 64; // >> 64 is UB; guarded by cap_ == 0
    std::size_t size_ = 0;
    ChainArena<Entry> arena_;
};

/**
 * Robin-hood set of Keys: the same table discipline without a
 * payload. Replaces `std::unordered_map<Key, bool>` membership maps
 * (e.g. MilanaServer's per-key ensure-loaded latch) with 16-byte
 * slots and zero steady-state allocations.
 */
class KeySet
{
  public:
    explicit KeySet(std::uint64_t expected = 0)
    {
        if (expected > 0)
            rehash(capacityFor(expected));
    }

    KeySet(const KeySet &) = delete;
    KeySet &operator=(const KeySet &) = delete;

    ~KeySet() { ::operator delete(slots_); }

    bool
    contains(Key key) const
    {
        if (cap_ == 0)
            return false;
        std::size_t i = bucketOf(key);
        std::uint32_t dist = 1;
        for (;;) {
            const Slot &s = slots_[i];
            if (s.dist < dist)
                return false;
            if (s.key == key)
                return true;
            i = (i + 1) & mask_;
            ++dist;
        }
    }

    /** Add a key; returns false when it was already present. */
    bool
    insert(Key key)
    {
        if ((size_ + 1) * 8 > cap_ * 7)
            grow();
        std::size_t i = bucketOf(key);
        std::uint32_t dist = 1;
        for (;;) {
            Slot &s = slots_[i];
            if (s.dist == 0) {
                s.key = key;
                s.dist = dist;
                ++size_;
                return true;
            }
            if (s.key == key)
                return false;
            if (s.dist < dist) {
                // Displace the richer resident and keep probing on
                // its behalf.
                std::swap(s.key, key);
                std::swap(s.dist, dist);
            }
            i = (i + 1) & mask_;
            ++dist;
        }
    }

    void
    clear()
    {
        if (cap_ > 0)
            std::memset(static_cast<void *>(slots_), 0,
                        cap_ * sizeof(Slot));
        size_ = 0;
    }

    /** Pre-size for @p keys inserts with no rehash. Never shrinks. */
    void
    reserve(std::uint64_t keys)
    {
        const std::size_t want = capacityFor(keys);
        if (want > cap_)
            rehash(want);
    }

    std::size_t size() const { return size_; }

    std::uint64_t
    memoryBytes() const
    {
        return static_cast<std::uint64_t>(cap_) * sizeof(Slot);
    }

  private:
    static constexpr std::size_t kMinTableCap = 16;

    struct Slot
    {
        Key key;
        std::uint32_t dist; // probe distance + 1; 0 = empty
        std::uint32_t pad_ = 0;
    };

    std::size_t
    bucketOf(Key key) const
    {
        return table_detail::mixKey(key) >> shift_;
    }

    static std::size_t
    capacityFor(std::uint64_t keys)
    {
        const std::size_t want =
            static_cast<std::size_t>(keys + keys / 7 + 1);
        return table_detail::pow2AtLeast(
            want < kMinTableCap ? kMinTableCap : want);
    }

    void
    grow()
    {
        rehash(cap_ == 0 ? kMinTableCap : cap_ * 2);
    }

    void
    rehash(std::size_t new_cap)
    {
        Slot *old = slots_;
        const std::size_t old_cap = cap_;
        slots_ = static_cast<Slot *>(
            ::operator new(new_cap * sizeof(Slot)));
        std::memset(static_cast<void *>(slots_), 0,
                    new_cap * sizeof(Slot));
        cap_ = new_cap;
        mask_ = new_cap - 1;
        shift_ = static_cast<std::uint32_t>(
            64 - std::countr_zero(new_cap));
        size_ = 0;
        for (std::size_t i = 0; i < old_cap; ++i) {
            if (old[i].dist != 0)
                insert(old[i].key);
        }
        ::operator delete(old);
    }

    Slot *slots_ = nullptr;
    std::size_t cap_ = 0;
    std::size_t mask_ = 0;
    std::uint32_t shift_ = 64;
    std::size_t size_ = 0;
};

} // namespace ftl

#endif // FTL_MAPPING_TABLE_HH
