/**
 * @file
 * MFTL: the paper's unified multi-version flash translation layer
 * (section 3.1, Contribution 3).
 *
 * A single in-DRAM mapping table maps each key directly to the
 * physical locations of its versions (no LBA indirection): key ->
 * list of <create-timestamp, physical page, slot>, sorted by
 * descending timestamp. New tuples are written log-structured through
 * a pack buffer (pack_log.hh); version management is integrated with
 * flash garbage collection:
 *
 *  - validity: a flash tuple is live iff the mapping table still
 *    references its exact <key, version, location>;
 *  - watermark GC (section 3.1): once every client's clock has passed
 *    the watermark, only the youngest version with stamp <= watermark
 *    plus all younger versions are kept; older tuples become dead in
 *    place and are never remapped;
 *  - flash GC: when free blocks fall below the reserve (10% of
 *    capacity), the block with the fewest live tuples is victimized
 *    (ties broken toward least-worn, providing wear-leveling); its
 *    live tuples are re-packed through the same pack buffer as user
 *    writes — "puts or remapped keys" share pages, as in the paper —
 *    and the block is erased once they are durable.
 */

#ifndef FTL_MFTL_HH
#define FTL_MFTL_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "flash/ssd.hh"
#include "ftl/kv_backend.hh"
#include "ftl/mapping_table.hh"
#include "ftl/pack_log.hh"
#include "sim/future.hh"
#include "sim/task.hh"

namespace ftl {

class Mftl : public KvBackend
{
  public:
    struct Config
    {
        /** Max time a tuple waits in the pack buffer (paper: 1 ms). */
        common::Duration packTimeout = common::kMillisecond;
        /** Fraction of blocks reserved for GC headroom (paper: 10%). */
        double reserveFraction = 0.10;
        /** Free-block fraction the integrated collector maintains:
         *  version management is fused with flash GC, so dead versions
         *  are reclaimed eagerly as the watermark advances. */
        double gcTargetFraction = 0.25;
        /** Accounted on-flash tuple size (paper: 512 B). */
        std::uint32_t recordSize = 512;
        /** Interval of the background watermark pruning sweep. */
        common::Duration watermarkSweepInterval =
            50 * common::kMillisecond;
        /** Pre-size the mapping table for this many keys (0 = grow). */
        std::uint64_t expectedKeys = 0;
    };

    Mftl(sim::Simulator &sim, flash::SsdDevice &device,
         const Config &config);

    // KvBackend interface.
    sim::Task<GetResult> get(Key key, Version at) override;
    sim::Task<PutStatus> put(Key key, Value value, Version version) override;
    sim::Task<void> erase(Key key) override;
    void setWatermark(Time watermark) override;
    std::optional<Version> versionAt(Key key, Version at) override;
    bool multiVersion() const override { return true; }
    common::StatSet &stats() override { return stats_; }
    void reserveKeys(std::uint64_t keys) override { map_.reserveKeys(keys); }
    std::uint64_t dataPlaneBytes() const override
    {
        return map_.memoryBytes();
    }

    /** Start background processes (GC trigger loop, watermark sweep). */
    void start();

    /** Number of live versions of a key (tests/introspection). */
    std::size_t versionCount(Key key) const;

    /** Number of free (erased, unallocated) blocks. */
    std::size_t freeBlocks() const { return freeBlocks_.size(); }

    /**
     * Rebuild the mapping table by scanning all programmed pages, as a
     * restarted storage server would. Returns the number of tuples
     * recovered. (Timing-free: models an offline scan.)
     */
    std::size_t rebuildFromFlash();

  private:
    /** Physical locator of one tuple. */
    struct Loc
    {
        flash::PageAddr page;
        std::uint16_t slot;
    };

    using Store = VersionStore<Loc>;
    using ChainRef = Store::ChainRef;

    void flushBatch(std::vector<Pending> batch);
    sim::Task<void> flushTask(std::vector<Pending> batch);

    /** Block user writes while free space is critically low. */
    sim::Task<void> admitUserWrite();

    /** Allocate the next log page; may wait for GC to free space. */
    sim::Task<flash::PageAddr> allocatePage(bool has_relocation);

    /** True when the free pool is below the GC trigger level. */
    bool needGc() const;
    void kickGc();
    sim::Task<void> gcLoop();
    sim::Task<void> gcOnce();
    sim::Task<void> watermarkSweep();

    std::int32_t pickVictim() const;
    void pruneChain(ChainRef chain);
    void dropEntry(const Store::Entry &entry);

    sim::Simulator &sim_;
    flash::SsdDevice &device_;
    Config config_;

    Store map_;
    /** Live tuples per block (validity counters for GC). */
    std::vector<std::uint32_t> liveTuples_;
    /** Programs issued but whose mapping update is still pending. */
    std::vector<std::uint32_t> pendingPrograms_;
    /** Blocks in the current GC pass's victim set. */
    std::vector<bool> victimized_;

    std::deque<std::uint32_t> freeBlocks_;
    std::int64_t openBlock_ = -1;
    std::uint32_t nextPage_ = 0;

    PackLog packLog_;
    Time watermark_ = 0;

    bool gcRunning_ = false;
    std::uint32_t gcLowWater_ = 0;
    std::uint32_t gcHighWater_ = 0;
    /** Resolved (and replaced) each time GC frees a block. */
    sim::Promise<bool> spaceFreed_;

    common::StatSet stats_;
};

} // namespace ftl

#endif // FTL_MFTL_HH
