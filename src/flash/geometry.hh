/**
 * @file
 * Flash device geometry and timing parameters.
 *
 * Defaults reproduce the emulated Open-Channel SSD of the paper's
 * experimental setup (section 5): 4 KB pages, 32 pages per block,
 * 50 us page read, 100 us page program, 1 ms block erase, hardware
 * queue depth 128.
 */

#ifndef FLASH_GEOMETRY_HH
#define FLASH_GEOMETRY_HH

#include <cstdint>

#include "common/types.hh"

namespace flash {

using common::Duration;

struct Geometry
{
    /** Page size in bytes (smallest read/program unit). */
    std::uint32_t pageSize = 4096;
    /** Pages per erase block. */
    std::uint32_t pagesPerBlock = 32;
    /** Total number of erase blocks on the device. */
    std::uint32_t numBlocks = 1024;
    /** Independent flash channels/LUNs that service ops in parallel. */
    std::uint32_t numChannels = 32;
    /** Hardware queue depth: max ops admitted to the device at once. */
    std::uint32_t queueDepth = 128;

    Duration readLatency = 50 * common::kMicrosecond;
    Duration writeLatency = 100 * common::kMicrosecond;
    Duration eraseLatency = 1 * common::kMillisecond;

    std::uint64_t
    totalPages() const
    {
        return static_cast<std::uint64_t>(numBlocks) * pagesPerBlock;
    }

    std::uint64_t
    capacityBytes() const
    {
        return totalPages() * pageSize;
    }

    /**
     * The paper's emulated SSD, scaled to hold roughly
     * @p data_bytes of live data at ~@p target_utilization occupancy.
     */
    static Geometry
    scaledFor(std::uint64_t data_bytes, double target_utilization = 0.6)
    {
        Geometry g;
        const std::uint64_t needed = static_cast<std::uint64_t>(
            static_cast<double>(data_bytes) / target_utilization);
        const std::uint64_t block_bytes =
            static_cast<std::uint64_t>(g.pageSize) * g.pagesPerBlock;
        g.numBlocks = static_cast<std::uint32_t>(
            (needed + block_bytes - 1) / block_bytes);
        if (g.numBlocks < 64)
            g.numBlocks = 64;
        return g;
    }
};

/** Physical page address. */
struct PageAddr
{
    std::uint32_t block = 0;
    std::uint32_t page = 0;

    auto operator<=>(const PageAddr &) const = default;
};

/** Sentinel for "no physical page". */
constexpr PageAddr kNoPage{0xffffffff, 0xffffffff};

} // namespace flash

#endif // FLASH_GEOMETRY_HH
