#include "flash/ssd.hh"

#include <algorithm>

#include "common/logging.hh"

namespace flash {

SsdDevice::SsdDevice(sim::Simulator &sim, const Geometry &geometry)
    : sim_(sim),
      geometry_(geometry),
      blocks_(geometry.numBlocks),
      pins_(geometry.numBlocks, 0),
      queue_(sim, geometry.queueDepth)
{
    for (auto &b : blocks_) {
        b.pages.resize(geometry.pagesPerBlock);
        b.states.assign(geometry.pagesPerBlock, PageState::Erased);
    }
    channels_.reserve(geometry.numChannels);
    channelOps_.reserve(geometry.numChannels);
    for (std::uint32_t c = 0; c < geometry.numChannels; ++c) {
        channels_.push_back(std::make_unique<sim::Mutex>(sim));
        channelOps_.push_back(
            &stats_.counter("ssd.channel." + std::to_string(c) + ".ops"));
    }
    channelFactor_.assign(geometry.numChannels, 1.0);
}

sim::Task<void>
SsdDevice::service(std::uint32_t block, common::Duration latency,
                   const char *op)
{
    const std::uint32_t chan = block % geometry_.numChannels;
    if (channelFactor_[chan] != 1.0)
        latency = static_cast<common::Duration>(
            static_cast<double>(latency) * channelFactor_[chan]);
    common::ScopedSpan span(trace_, "flash.ssd.op", op);
    span.setArg(chan);
    const common::Time entered = sim_.now();
    co_await queue_.acquire();
    // Admit/release instants bracket the hardware-queue occupancy:
    // their concurrency per node is the device queue depth (bounded by
    // Geometry::queueDepth — the invariant monitor checks it), and the
    // admit's arg2 is the pre-admission queueing delay, letting
    // trace-report split flash.ssd.op into queueing vs. device time.
    trace_.instant("flash.ssd.admit", op, chan, sim_.now() - entered);
    auto &channel = *channels_[chan];
    co_await channel.lock();
    // Time from arrival to channel grant: the queueing delay Table 1's
    // GC-interference numbers come from.
    stats_.histogram("ssd.queue_wait").record(sim_.now() - entered);
    channelOps_[chan]->inc();
    co_await sim::sleepFor(sim_, latency);
    channel.unlock();
    queue_.release();
    trace_.instant("flash.ssd.release", op, chan);
}

sim::Task<const PageData *>
SsdDevice::readPage(PageAddr addr)
{
    if (addr.block >= blocks_.size() ||
        addr.page >= geometry_.pagesPerBlock)
        PANIC("readPage out of range: " << addr.block << "/" << addr.page);
    auto &block = blocks_[addr.block];
    if (block.states[addr.page] != PageState::Programmed)
        PANIC("read of unprogrammed page " << addr.block << "/"
                                           << addr.page);
    co_await service(addr.block, geometry_.readLatency, "read");
    // Read-retry storm (gray failure): the controller re-reads with
    // tuned thresholds, burning more channel time per user read.
    for (std::uint32_t extra = 0;
         retryProb_ > 0.0 && extra < retryMax_ &&
         faultRng_.nextBool(retryProb_);
         ++extra) {
        stats_.counter("ssd.read_retries").inc();
        co_await service(addr.block, geometry_.readLatency, "read_retry");
    }
    stats_.counter("ssd.reads").inc();
    co_return &block.pages[addr.page];
}

sim::Task<void>
SsdDevice::programPage(PageAddr addr, PageData data)
{
    if (addr.block >= blocks_.size() ||
        addr.page >= geometry_.pagesPerBlock)
        PANIC("programPage out of range");
    auto &block = blocks_[addr.block];
    if (block.states[addr.page] != PageState::Erased)
        PANIC("program of non-erased page " << addr.block << "/"
                                            << addr.page);
    if (addr.page != block.nextProgramPage)
        PANIC("out-of-order program within block " << addr.block << ": page "
              << addr.page << " but next is " << block.nextProgramPage);
    if (data.bytes() > geometry_.pageSize)
        PANIC("page overflow: " << data.bytes() << " bytes");

    // Commit functional state before the timing wait so a reader that
    // observes the mapping update (made by the FTL after we return)
    // always finds the data. NAND-wise the data is on the page once
    // program completes; the FTL publishes the mapping only after that.
    block.states[addr.page] = PageState::Programmed;
    block.nextProgramPage = addr.page + 1;
    block.pages[addr.page] = std::move(data);

    co_await service(addr.block, geometry_.writeLatency, "program");
    stats_.counter("ssd.programs").inc();
}

sim::Task<void>
SsdDevice::eraseBlock(std::uint32_t block_index)
{
    if (block_index >= blocks_.size())
        PANIC("eraseBlock out of range");
    // Wait for read-pins to drain so no in-flight read sees erased data.
    while (pins_[block_index] != 0)
        co_await sim::sleepFor(sim_, 10 * common::kMicrosecond);

    co_await service(block_index, geometry_.eraseLatency, "erase");

    auto &block = blocks_[block_index];
    for (auto &p : block.pages)
        p = PageData{};
    std::fill(block.states.begin(), block.states.end(), PageState::Erased);
    block.nextProgramPage = 0;
    ++block.eraseCount;
    stats_.counter("ssd.erases").inc();
}

PageState
SsdDevice::pageState(PageAddr addr) const
{
    return blocks_[addr.block].states[addr.page];
}

const PageData &
SsdDevice::peekPage(PageAddr addr) const
{
    if (pageState(addr) != PageState::Programmed)
        PANIC("peek of unprogrammed page");
    return blocks_[addr.block].pages[addr.page];
}

std::uint32_t
SsdDevice::eraseCount(std::uint32_t block) const
{
    return blocks_[block].eraseCount;
}

std::uint32_t
SsdDevice::wearSpread() const
{
    std::uint32_t lo = blocks_[0].eraseCount;
    std::uint32_t hi = lo;
    for (const auto &b : blocks_) {
        lo = std::min(lo, b.eraseCount);
        hi = std::max(hi, b.eraseCount);
    }
    return hi - lo;
}

void
SsdDevice::unpinBlock(std::uint32_t block)
{
    if (pins_[block] == 0)
        PANIC("unpin of unpinned block " << block);
    --pins_[block];
}

std::uint32_t
SsdDevice::inflightOps() const
{
    return geometry_.queueDepth -
           static_cast<std::uint32_t>(queue_.available());
}

void
SsdDevice::setChannelLatencyFactor(std::uint32_t channel, double factor)
{
    if (channel >= channelFactor_.size())
        PANIC("setChannelLatencyFactor: no channel " << channel);
    channelFactor_[channel] = factor;
    stats_.counter("ssd.gray_channel_changes").inc();
}

void
SsdDevice::setReadRetryStorm(double probability, std::uint32_t max_extra)
{
    retryProb_ = probability;
    retryMax_ = max_extra;
}

sim::Task<void>
SsdDevice::gcStormLoop(std::uint32_t channel)
{
    // Synthetic background erases: pure timing load on the channel
    // (no functional state is touched), through the same queue +
    // channel mutex as user ops, so admission stays bounded by the
    // hardware queue depth.
    while (gcStorm_ && !sim_.stopRequested()) {
        stats_.counter("ssd.gc_storm_ops").inc();
        co_await service(channel, geometry_.eraseLatency, "gc_storm");
    }
}

void
SsdDevice::startGcStorm()
{
    if (gcStorm_)
        return;
    gcStorm_ = true;
    stats_.counter("ssd.gc_storms").inc();
    for (std::uint32_t c = 0; c < geometry_.numChannels; ++c)
        sim::spawn(gcStormLoop(c));
}

std::uint32_t
SsdDevice::busyChannels() const
{
    std::uint32_t n = 0;
    for (const auto &ch : channels_)
        if (ch->locked())
            ++n;
    return n;
}

} // namespace flash
