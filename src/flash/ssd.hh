/**
 * @file
 * Functional + timing model of a NAND flash SSD, in the spirit of the
 * LightNVM Open-Channel emulation the paper extends (section 5): the
 * host-side FTL issues raw page reads/programs and block erases; the
 * device enforces flash semantics (program-after-erase, sequential
 * programming within a block) and models service time.
 *
 * Timing model: the device admits at most `queueDepth` operations at
 * once (hardware queue). Admitted operations are dispatched to the
 * channel that owns their block (block % numChannels); each channel
 * services one operation at a time, FIFO. Service time is the
 * per-operation latency from the geometry. This reproduces the two
 * effects the paper's Table 1 depends on: read/program/erase latency
 * asymmetry and queueing delay under background GC traffic.
 *
 * Functional model: a page stores a small vector of records (packed
 * key-value tuples). Byte layout is accounted for, not materialized,
 * so large simulated devices stay cheap in host memory.
 */

#ifndef FLASH_SSD_HH
#define FLASH_SSD_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "flash/geometry.hh"
#include "sim/future.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

namespace flash {

using common::Key;
using common::Value;
using common::Version;

/**
 * One packed tuple in a flash page. `lba` carries the owning logical
 * block address when the page belongs to a block-device FTL (Sftl);
 * key/version identify the tuple for KV FTLs. `sizeBytes` is the
 * accounted on-flash footprint.
 */
struct Record
{
    Key key = 0;
    Version version;
    Value value;
    std::int64_t lba = -1;
    std::uint32_t sizeBytes = 512;
    bool tombstone = false;
};

/** Contents of one programmed page. */
struct PageData
{
    std::vector<Record> records;

    std::uint32_t
    bytes() const
    {
        std::uint32_t total = 0;
        for (const auto &r : records)
            total += r.sizeBytes;
        return total;
    }
};

/** Lifecycle state of a physical page. */
enum class PageState : std::uint8_t
{
    Erased,
    Programmed,
};

class SsdDevice
{
  public:
    SsdDevice(sim::Simulator &sim, const Geometry &geometry);

    const Geometry &geometry() const { return geometry_; }

    /**
     * Read a programmed page. The returned pointer is valid until the
     * block is erased; callers must hold a block read-pin (see
     * pinBlock) if a concurrent GC could erase it.
     */
    sim::Task<const PageData *> readPage(PageAddr addr);

    /** Program an erased page. Pages within a block must be programmed
     *  in order (NAND constraint); violating this panics. */
    sim::Task<void> programPage(PageAddr addr, PageData data);

    /** Erase a whole block; all its pages become Erased. */
    sim::Task<void> eraseBlock(std::uint32_t block);

    PageState pageState(PageAddr addr) const;

    /**
     * Timing-free functional access to a programmed page's content,
     * for offline operations (recovery scans, tests). Must not be used
     * on the simulated fast path.
     */
    const PageData &peekPage(PageAddr addr) const;

    /** Number of times the block has been erased (wear). */
    std::uint32_t eraseCount(std::uint32_t block) const;

    /** Spread between the most- and least-worn block. */
    std::uint32_t wearSpread() const;

    /**
     * Read-pin a block: eraseBlock waits until the pin count drops to
     * zero, so an in-flight read can never observe erased data.
     */
    void pinBlock(std::uint32_t block) { ++pins_[block]; }
    void unpinBlock(std::uint32_t block);

    common::StatSet &stats() { return stats_; }
    const common::StatSet &stats() const { return stats_; }

    /** Operations admitted past the hardware queue right now. */
    std::uint32_t inflightOps() const;
    /** Operations waiting for a hardware queue slot right now. */
    std::size_t queuedOps() const { return queue_.waiting(); }
    /** Channels currently servicing an operation. */
    std::uint32_t busyChannels() const;

    /** Trace emission handle; disabled until the cluster attaches it. */
    common::Tracer &tracer() { return trace_; }

    // ------------------------------------------------------------------
    // Gray-failure injection hooks (chaos engine; mutations only at
    // quiescent points, see common/chaos.hh).
    // ------------------------------------------------------------------

    /** One slow channel: multiply @p channel's service time by
     *  @p factor (1.0 = healthy again). */
    void setChannelLatencyFactor(std::uint32_t channel, double factor);

    /**
     * Read-retry storm: after a read's normal service, each extra
     * retry happens with probability @p probability (chained, at most
     * @p max_extra per read), burning another read-latency slot on the
     * same channel. 0 probability switches the storm off. Coin flips
     * come from the dedicated fault RNG (setFaultRng), never from a
     * simulator stream.
     */
    void setReadRetryStorm(double probability, std::uint32_t max_extra);

    /** Install the dedicated fault-randomness stream (forked from the
     *  chaos engine in construction order). */
    void setFaultRng(common::Rng rng) { faultRng_ = rng; }

    /** GC storm: background erase-length ops hog every channel until
     *  stopped, modelling garbage-collection backpressure. The ops go
     *  through the normal queue/channel path, so the queue-depth
     *  invariant still holds. */
    void startGcStorm();
    void stopGcStorm() { gcStorm_ = false; }
    bool gcStormActive() const { return gcStorm_; }

  private:
    struct Block
    {
        std::vector<PageData> pages;
        std::vector<PageState> states;
        std::uint32_t nextProgramPage = 0;
        std::uint32_t eraseCount = 0;
    };

    /** Acquire queue slot + channel, wait the service time. @p op
     *  ("read" | "program" | "erase") labels the trace span. */
    sim::Task<void> service(std::uint32_t block, common::Duration latency,
                            const char *op);

    /** One channel's share of a GC storm (see startGcStorm). */
    sim::Task<void> gcStormLoop(std::uint32_t channel);

    sim::Simulator &sim_;
    Geometry geometry_;
    std::vector<Block> blocks_;
    std::vector<std::uint32_t> pins_;
    sim::Semaphore queue_;
    std::vector<std::unique_ptr<sim::Mutex>> channels_;
    common::StatSet stats_;
    common::Tracer trace_;
    /** Per-channel op counters, pre-resolved (stable map nodes). */
    std::vector<common::Counter *> channelOps_;

    // Gray-failure state (written at quiescent points only).
    std::vector<double> channelFactor_;
    double retryProb_ = 0.0;
    std::uint32_t retryMax_ = 0;
    bool gcStorm_ = false;
    common::Rng faultRng_;
};

} // namespace flash

#endif // FLASH_SSD_HH
