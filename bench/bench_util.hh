/**
 * @file
 * Shared helpers for the experiment harnesses: a tiny flag parser
 * (--name=value) and table printing. Every bench accepts:
 *
 *   --seconds=N   simulated measurement seconds per cell
 *   --warmup=N    simulated warm-up seconds (excluded from stats)
 *   --keys=N      key-space size
 *   --seed=N      root RNG seed
 *   --full        paper-scale parameters (slower)
 *
 * Defaults are sized so the whole bench suite finishes in minutes of
 * wall time while preserving the paper's shapes; EXPERIMENTS.md records
 * the settings used for the committed results.
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>
#include <string>

namespace bench {

class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            args_.emplace_back(argv[i]);
    }

    double
    getDouble(const std::string &name, double def) const
    {
        const std::string prefix = "--" + name + "=";
        for (const auto &a : args_) {
            if (a.rfind(prefix, 0) == 0)
                return std::atof(a.c_str() + prefix.size());
        }
        return def;
    }

    std::int64_t
    getInt(const std::string &name, std::int64_t def) const
    {
        const std::string prefix = "--" + name + "=";
        for (const auto &a : args_) {
            if (a.rfind(prefix, 0) == 0)
                return std::atoll(a.c_str() + prefix.size());
        }
        return def;
    }

    bool
    has(const std::string &name) const
    {
        const std::string flag = "--" + name;
        for (const auto &a : args_) {
            if (a == flag)
                return true;
        }
        return false;
    }

  private:
    std::vector<std::string> args_;
};

inline void
printHeader(const char *title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title);
    std::printf("================================================================\n");
}

} // namespace bench

#endif // BENCH_BENCH_UTIL_HH
