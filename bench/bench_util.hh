/**
 * @file
 * Shared helpers for the experiment harnesses: a tiny flag parser
 * (--name=value), table printing, and the machine-readable report
 * writer behind every harness's --json flag. Every bench accepts:
 *
 *   --seconds=N   simulated measurement seconds per cell
 *   --warmup=N    simulated warm-up seconds (excluded from stats)
 *   --keys=N      key-space size
 *   --seed=N      root RNG seed
 *   --full        paper-scale parameters (slower)
 *   --json=PATH   write a milana-bench-v1 JSON report to PATH
 *
 * Defaults are sized so the whole bench suite finishes in minutes of
 * wall time while preserving the paper's shapes; EXPERIMENTS.md records
 * the settings used for the committed results.
 */

#ifndef BENCH_BENCH_UTIL_HH
#define BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "common/json.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace bench {

class Args
{
  public:
    Args(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i)
            args_.emplace_back(argv[i]);
    }

    double
    getDouble(const std::string &name, double def) const
    {
        const std::string prefix = "--" + name + "=";
        for (const auto &a : args_) {
            if (a.rfind(prefix, 0) == 0)
                return std::atof(a.c_str() + prefix.size());
        }
        return def;
    }

    std::int64_t
    getInt(const std::string &name, std::int64_t def) const
    {
        const std::string prefix = "--" + name + "=";
        for (const auto &a : args_) {
            if (a.rfind(prefix, 0) == 0)
                return std::atoll(a.c_str() + prefix.size());
        }
        return def;
    }

    std::string
    getString(const std::string &name, const std::string &def) const
    {
        const std::string prefix = "--" + name + "=";
        const std::string flag = "--" + name;
        for (std::size_t i = 0; i < args_.size(); ++i) {
            if (args_[i].rfind(prefix, 0) == 0)
                return args_[i].substr(prefix.size());
            // Also accept the two-token form "--name value".
            if (args_[i] == flag && i + 1 < args_.size())
                return args_[i + 1];
        }
        return def;
    }

    bool
    has(const std::string &name) const
    {
        const std::string flag = "--" + name;
        for (const auto &a : args_) {
            if (a == flag)
                return true;
        }
        return false;
    }

    /**
     * A duration flag with unit suffix: "100ms", "250us", "2s",
     * "500ns". A bare number means milliseconds (the natural unit for
     * sampling intervals). Returns @p def when absent or malformed.
     */
    common::Duration
    getDuration(const std::string &name, common::Duration def) const
    {
        const std::string text = getString(name, "");
        if (text.empty())
            return def;
        char *end = nullptr;
        const double n = std::strtod(text.c_str(), &end);
        if (end == text.c_str())
            return def;
        const std::string unit(end);
        double scale = static_cast<double>(common::kMillisecond);
        if (unit == "ns")
            scale = static_cast<double>(common::kNanosecond);
        else if (unit == "us")
            scale = static_cast<double>(common::kMicrosecond);
        else if (unit == "ms" || unit.empty())
            scale = static_cast<double>(common::kMillisecond);
        else if (unit == "s")
            scale = static_cast<double>(common::kSecond);
        else
            return def;
        return static_cast<common::Duration>(n * scale);
    }

  private:
    std::vector<std::string> args_;
};

/**
 * Write a TimeSeriesLog as the `milana-metrics-v1` JSON document at
 * @p path plus a sibling CSV of its deterministic series (PATH with
 * a .json suffix swapped for .csv, else PATH + ".csv"). Exits on I/O
 * error, like Report::write.
 */
inline void
writeMetricsOutputs(const common::TimeSeriesLog &log,
                    const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
        std::exit(1);
    }
    log.writeJson(os);
    std::string csv_path = path;
    if (csv_path.size() >= 5 &&
        csv_path.compare(csv_path.size() - 5, 5, ".json") == 0)
        csv_path.resize(csv_path.size() - 5);
    csv_path += ".csv";
    std::ofstream cs(csv_path);
    if (!cs) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     csv_path.c_str());
        std::exit(1);
    }
    log.writeCsv(cs);
    std::printf("wrote %s and %s (%zu series)\n", path.c_str(),
                csv_path.c_str(), log.seriesCount());
}

inline void
printHeader(const char *title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title);
    std::printf("================================================================\n");
}

/**
 * An ordered list of key/value pairs serialized as one JSON object —
 * the building block of a Report's "params" object and "rows" entries.
 * Insertion order is preserved so rows read like the printed tables.
 */
class KvList
{
  public:
    using Value = std::variant<bool, std::int64_t, double, std::string>;

    template <typename T>
    KvList &
    set(const std::string &key, T v)
    {
        if constexpr (std::is_same_v<T, bool>)
            items_.emplace_back(key, Value(v));
        else if constexpr (std::is_integral_v<T>)
            items_.emplace_back(key,
                                Value(static_cast<std::int64_t>(v)));
        else if constexpr (std::is_floating_point_v<T>)
            items_.emplace_back(key, Value(static_cast<double>(v)));
        else
            items_.emplace_back(key, Value(std::string(v)));
        return *this;
    }

    void
    writeTo(common::JsonWriter &w) const
    {
        w.beginObject();
        for (const auto &[key, value] : items_) {
            w.key(key);
            if (std::holds_alternative<bool>(value))
                w.value(std::get<bool>(value));
            else if (std::holds_alternative<std::int64_t>(value))
                w.value(std::get<std::int64_t>(value));
            else if (std::holds_alternative<double>(value))
                w.value(std::get<double>(value));
            else
                w.value(std::get<std::string>(value));
        }
        w.endObject();
    }

  private:
    std::vector<std::pair<std::string, Value>> items_;
};

/**
 * Machine-readable run report, schema "milana-bench-v1":
 *
 *   {
 *     "schema": "milana-bench-v1",
 *     "bench":  "<harness name>",
 *     "params": { flag: value, ... },
 *     "rows":   [ { cell coordinates and measurements }, ... ],
 *     "stats":  { "<section>": {"counters": ..., "histograms": ...} }
 *   }
 *
 * Each printed table cell becomes one row object; "stats" carries the
 * optional full StatSet dumps (e.g. the traced cell of fig6). Finish
 * with write(args): a no-op unless the user passed --json=PATH.
 */
class Report
{
  public:
    explicit Report(std::string bench) : bench_(std::move(bench)) {}

    KvList &params() { return params_; }

    /** Append a row. The reference is valid until the next addRow(). */
    KvList &
    addRow()
    {
        rows_.emplace_back();
        return rows_.back();
    }

    /** Attach a full StatSet dump under stats.<section>, with every
     *  metric name prefixed by @p prefix (e.g. "client."). */
    void
    addStats(const std::string &section, const common::StatSet &stats,
             const std::string &prefix = "")
    {
        stats_.emplace_back(section, std::make_pair(prefix, stats));
    }

    void
    writeTo(std::ostream &os) const
    {
        common::JsonWriter w(os);
        w.beginObject();
        w.key("schema").value("milana-bench-v1");
        w.key("bench").value(bench_);
        w.key("params");
        params_.writeTo(w);
        w.key("rows").beginArray();
        for (const auto &row : rows_)
            row.writeTo(w);
        w.endArray();
        if (!stats_.empty()) {
            w.key("stats").beginObject();
            for (const auto &[section, entry] : stats_) {
                w.key(section);
                entry.second.toJson(w, entry.first);
            }
            w.endObject();
        }
        w.endObject();
        os << "\n";
    }

    /** Write the report to --json=PATH if given; exits on I/O error so
     *  scripted pipelines fail loudly rather than read a stale file. */
    void
    write(const Args &args) const
    {
        const std::string path = args.getString("json", "");
        if (path.empty())
            return;
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         path.c_str());
            std::exit(1);
        }
        writeTo(os);
        std::printf("\nwrote %s\n", path.c_str());
    }

  private:
    std::string bench_;
    KvList params_;
    std::vector<KvList> rows_;
    std::vector<std::pair<std::string, std::pair<std::string, common::StatSet>>>
        stats_;
};

} // namespace bench

#endif // BENCH_BENCH_UTIL_HH
