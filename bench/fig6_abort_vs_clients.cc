/**
 * @file
 * Reproduces Figure 6: transaction abort rate vs number of clients,
 * single-version FTL (SFTL) vs multi-version FTL (MFTL), on a single
 * node with zero clock skew, for several Retwis contention levels.
 *
 * Paper shape: with multi-versioning, tardy read-only transactions
 * read from a consistent snapshot and commit, so MFTL's abort rate
 * stays well below SFTL's, and the gap widens with contention.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::kSecond;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

namespace {

double
runCell(BackendKind backend, std::uint32_t clients, double alpha,
        std::uint64_t keys, common::Duration warmup,
        common::Duration measure, std::uint64_t seed)
{
    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 1; // single VM: storage layer + clients
    cfg.numClients = clients;
    cfg.backend = backend;
    cfg.clocks = ClockKind::Perfect; // eliminates clock skew
    cfg.numKeys = keys;
    cfg.seed = seed;
    // Same-machine "network": IPC-scale latency.
    cfg.net.oneWayMean = 5 * common::kMicrosecond;
    cfg.net.oneWaySigma = 1 * common::kMicrosecond;
    cfg.net.minLatency = 1 * common::kMicrosecond;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = alpha;
    retwis.numKeys = keys;
    retwis.seed = seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.sim().runUntil(cluster.sim().now() + warmup);
    fleet.resetMeasurement();
    cluster.sim().runFor(measure);
    return fleet.abortRate() * 100.0;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys =
        args.getInt("keys", args.has("full") ? 2'000'000 : 20'000);
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure =
        args.getInt("seconds", args.has("full") ? 60 : 4) * kSecond;
    const std::uint64_t seed = args.getInt("seed", 1);

    bench::printHeader(
        "Figure 6: Transaction abort rate (%) vs number of clients\n"
        "single node, zero clock skew, Retwis; SFTL = single-version,\n"
        "MFTL = multi-version");
    std::printf("%7s %9s | %8s %8s | %8s %8s\n", "alpha", "clients",
                "SFTL", "MFTL", "", "MFTL/SFTL");
    std::printf("------------------+-------------------+-----------\n");

    for (double alpha : {0.6, 0.8, 0.99}) {
        for (std::uint32_t clients : {4u, 8u, 16u, 32u}) {
            const double sftl =
                runCell(BackendKind::SingleVersion, clients, alpha,
                        keys, warmup, measure, seed);
            const double mftl = runCell(BackendKind::Mftl, clients,
                                        alpha, keys, warmup, measure,
                                        seed);
            std::printf("%7.2f %9u | %7.2f%% %7.2f%% | %8.2f\n", alpha,
                        clients, sftl, mftl,
                        sftl > 0 ? mftl / sftl : 0.0);
        }
    }
    std::printf(
        "\nPaper (Figure 6): multi-versioning cuts abort rates because\n"
        "tardy read-only transactions commit from a snapshot; the gap\n"
        "grows with contention and client count.\n");
    return 0;
}
