/**
 * @file
 * Reproduces Figure 6: transaction abort rate vs number of clients,
 * single-version FTL (SFTL) vs multi-version FTL (MFTL), on a single
 * node with zero clock skew, for several Retwis contention levels.
 *
 * Paper shape: with multi-versioning, tardy read-only transactions
 * read from a consistent snapshot and commit, so MFTL's abort rate
 * stays well below SFTL's, and the gap widens with contention.
 *
 * Extra flags beyond the common set:
 *   --jobs=N              run sweep cells on N worker threads (see
 *                         sweep_runner.hh; output is identical for
 *                         any N, including the --json report)
 *   --sim-threads=N       run EACH cell's one scenario on N worker
 *                         threads (conservative time windows, see
 *                         sim/partition.hh). Output is byte-identical
 *                         for every N >= 1 — but differs from the
 *                         default N=0 single-simulator mode, whose
 *                         RNG streams are laid out differently.
 *                         Composes with --jobs (cells x partitions).
 *   --trace=PATH          rerun one cell with tracing on and dump the
 *                         event log (.csv extension = CSV, else JSON)
 *   --perfetto=PATH       same rerun, exported as Chrome/Perfetto
 *                         trace-event JSON (combines with --trace)
 *   --monitor             run the online invariant monitor over the
 *                         traced cell; violations exit non-zero
 *   --trace-alpha=F       traced cell contention (default 0.8)
 *   --trace-clients=N     traced cell client count (default 16)
 *   --trace-capacity=N    trace ring size in events (default 262144)
 *   --metrics=PATH        rerun the same cell with the time-series
 *                         metrics plane on and write milana-metrics-v1
 *                         JSON to PATH plus a sibling CSV; the
 *                         deterministic sections are byte-identical
 *                         for every --sim-threads value
 *   --metrics-interval=D  sampling window (default 100ms; accepts
 *                         ns/us/ms/s suffixes)
 * The traced cell's full client/server StatSets are embedded in the
 * --json report so tools/trace_report output can be cross-checked
 * against the txn.abort.<reason> counters.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sweep_runner.hh"
#include "common/invariant_monitor.hh"
#include "common/trace.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::kSecond;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

namespace {

struct CellResult
{
    double abortPct = 0.0;
    /** Real (host) seconds spent bulk-loading the key space; reported
     *  separately on stdout, never mixed into the measured window. */
    double populateSeconds = 0.0;
    common::StatSet clientStats;
    common::StatSet serverStats;
    /** Partitioned-scheduler self-counters; all zero when the cell ran
     *  in classic mode. Deterministic for every sim-threads >= 1, so
     *  embedding them in the byte-compared report is safe. */
    Cluster::SchedStats sched;
};

CellResult
runCell(BackendKind backend, std::uint32_t clients, double alpha,
        std::uint64_t keys, common::Duration warmup,
        common::Duration measure, std::uint64_t seed,
        std::uint32_t sim_threads, common::TraceLog *trace = nullptr,
        common::MetricsRegistry *metrics = nullptr)
{
    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 1; // single VM: storage layer + clients
    cfg.numClients = clients;
    cfg.backend = backend;
    cfg.clocks = ClockKind::Perfect; // eliminates clock skew
    cfg.numKeys = keys;
    cfg.seed = seed;
    cfg.trace = trace;
    cfg.metrics = metrics;
    cfg.simThreads = sim_threads;
    // Same-machine "network": IPC-scale latency.
    cfg.net.oneWayMean = 5 * common::kMicrosecond;
    cfg.net.oneWaySigma = 1 * common::kMicrosecond;
    cfg.net.minLatency = 1 * common::kMicrosecond;

    Cluster cluster(cfg);
    const auto populate_start = std::chrono::steady_clock::now();
    cluster.populate();
    const double populate_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      populate_start)
            .count();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = alpha;
    retwis.numKeys = keys;
    retwis.seed = seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.runUntil(cluster.now() + warmup);
    fleet.resetMeasurement();
    cluster.resetStats(); // align counters with the measured window
    cluster.runFor(measure);
    cluster.finishTrace();
    cluster.finishMetrics();

    CellResult result;
    result.abortPct = fleet.abortRate() * 100.0;
    result.populateSeconds = populate_secs;
    result.clientStats = cluster.clientStats();
    result.serverStats = cluster.serverStats();
    result.sched = cluster.schedStats();
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys =
        args.getInt("keys", args.has("full") ? 2'000'000 : 20'000);
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure =
        args.getInt("seconds", args.has("full") ? 60 : 4) * kSecond;
    const std::uint64_t seed = args.getInt("seed", 1);
    const auto sim_threads =
        static_cast<std::uint32_t>(args.getInt("sim-threads", 0));

    bench::Report report("fig6_abort_vs_clients");
    report.params()
        .set("keys", keys)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure))
        .set("seed", seed)
        .set("full", args.has("full"));
    // Like --jobs, --sim-threads is deliberately NOT a report param:
    // the report must be byte-identical for every thread count (CI
    // cmp's the --sim-threads=1 and =8 reports).

    bench::printHeader(
        "Figure 6: Transaction abort rate (%) vs number of clients\n"
        "single node, zero clock skew, Retwis; SFTL = single-version,\n"
        "MFTL = multi-version");
    std::printf("%7s %9s | %8s %8s | %8s %8s\n", "alpha", "clients",
                "SFTL", "MFTL", "", "MFTL/SFTL");
    std::printf("------------------+-------------------+-----------\n");

    struct Cell
    {
        double alpha;
        std::uint32_t clients;
        BackendKind backend;
    };
    // --alpha=F / --clients=N restrict the sweep to matching cells —
    // the single-cell path for paper-scale runs (e.g. --keys=2000000
    // --alpha=0.8 --clients=16). Absent, the full grid runs and the
    // --json report is unchanged.
    const std::string only_alpha = args.getString("alpha", "");
    const std::string only_clients = args.getString("clients", "");
    std::vector<Cell> cells;
    for (double alpha : {0.6, 0.8, 0.99}) {
        if (!only_alpha.empty() &&
            std::abs(alpha - std::atof(only_alpha.c_str())) > 1e-9)
            continue;
        for (std::uint32_t clients : {4u, 8u, 16u, 32u}) {
            if (!only_clients.empty() &&
                clients != static_cast<std::uint32_t>(
                               std::atoll(only_clients.c_str())))
                continue;
            cells.push_back({alpha, clients, BackendKind::SingleVersion});
            cells.push_back({alpha, clients, BackendKind::Mftl});
        }
    }
    if (cells.empty()) {
        std::fprintf(stderr,
                     "error: --alpha/--clients matched no grid cell\n");
        return 1;
    }

    bench::SweepRunner runner(bench::jobsFromArgs(args));
    std::vector<double> abortPct(cells.size());
    std::vector<double> populateSecs(cells.size());
    std::vector<Cluster::SchedStats> sched(cells.size());
    runner.run(cells.size(), [&](std::size_t i) {
        const Cell &c = cells[i];
        const CellResult r = runCell(c.backend, c.clients, c.alpha,
                                     keys, warmup, measure, seed,
                                     sim_threads);
        abortPct[i] = r.abortPct;
        populateSecs[i] = r.populateSeconds;
        sched[i] = r.sched;
    });

    // Cells come in SFTL/MFTL pairs per (alpha, clients) coordinate.
    for (std::size_t i = 0; i < cells.size(); i += 2) {
        const Cell &c = cells[i];
        const double sftl = abortPct[i];
        const double mftl = abortPct[i + 1];
        std::printf("%7.2f %9u | %7.2f%% %7.2f%% | %8.2f\n", c.alpha,
                    c.clients, sftl, mftl,
                    sftl > 0 ? mftl / sftl : 0.0);
        auto &row = report.addRow();
        row.set("alpha", c.alpha)
            .set("clients", c.clients)
            .set("sftl_abort_pct", sftl)
            .set("mftl_abort_pct", mftl);
        if (sim_threads > 0) {
            // The MFTL cell's scheduler self-counters make the
            // adaptive engine's wins (windows skipped, barriers
            // avoided) machine-readable per grid coordinate; they are
            // identical for every --sim-threads >= 1, so the report
            // still byte-compares across thread counts.
            const Cluster::SchedStats &s = sched[i + 1];
            row.set("sched_windows", s.windows)
                .set("sched_windows_skipped", s.skipped)
                .set("sched_barriers", s.barriers)
                .set("sched_events", s.events);
        }
    }
    double populate_total = 0;
    for (const double s : populateSecs)
        populate_total += s;
    std::printf("\npopulate wall-clock: %.2f s total across %zu cells "
                "(bulk load, excluded from the measured window)\n",
                populate_total, cells.size());
    std::printf(
        "\nPaper (Figure 6): multi-versioning cuts abort rates because\n"
        "tardy read-only transactions commit from a snapshot; the gap\n"
        "grows with contention and client count.\n");

    const std::string trace_path = args.getString("trace", "");
    const std::string perfetto_path = args.getString("perfetto", "");
    const std::string metrics_path = args.getString("metrics", "");
    const bool monitor_on = args.has("monitor");
    bool monitor_failed = false;
    if (!trace_path.empty() || !perfetto_path.empty() ||
        !metrics_path.empty() || monitor_on) {
        const double trace_alpha = args.getDouble("trace-alpha", 0.8);
        const auto trace_clients = static_cast<std::uint32_t>(
            args.getInt("trace-clients", 16));
        common::TraceLog log(static_cast<std::size_t>(
            args.getInt("trace-capacity", 262'144)));
        common::InvariantMonitor monitor(
            [] {
                common::InvariantMonitor::Config mcfg;
                // The traced cell is MFTL (multi-version), so the
                // snapshot-read check is sound; single replica, so
                // the replication check stays off.
                mcfg.checkSnapshotReads = true;
                mcfg.checkReplicationBeforeAck = false;
                return mcfg;
            }(),
            &std::cerr);
        if (monitor_on)
            monitor.attach(log);
        std::unique_ptr<common::MetricsRegistry> metrics;
        if (!metrics_path.empty())
            metrics = std::make_unique<common::MetricsRegistry>(
                args.getDuration("metrics-interval",
                                 100 * common::kMillisecond));
        std::printf("\ntracing one MFTL cell (alpha=%.2f, %u clients)"
                    "...\n",
                    trace_alpha, trace_clients);
        const CellResult cell =
            runCell(BackendKind::Mftl, trace_clients, trace_alpha, keys,
                    warmup, measure, seed, sim_threads,
                    (trace_path.empty() && perfetto_path.empty() &&
                     !monitor_on)
                        ? nullptr
                        : &log,
                    metrics.get());
        if (!trace_path.empty()) {
            std::ofstream os(trace_path);
            if (!os) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             trace_path.c_str());
                return 1;
            }
            if (trace_path.size() >= 4 &&
                trace_path.compare(trace_path.size() - 4, 4, ".csv") ==
                    0)
                log.writeCsv(os);
            else
                log.writeJson(os);
            std::printf("wrote %s (%zu events kept, %llu dropped)\n",
                        trace_path.c_str(), log.size(),
                        static_cast<unsigned long long>(log.dropped()));
        }
        if (!perfetto_path.empty()) {
            std::ofstream os(perfetto_path);
            if (!os) {
                std::fprintf(stderr, "error: cannot write %s\n",
                             perfetto_path.c_str());
                return 1;
            }
            log.writePerfetto(os, metrics != nullptr ? &metrics->log()
                                                     : nullptr);
            std::printf("wrote %s (Perfetto trace-event JSON; open at "
                        "ui.perfetto.dev)\n",
                        perfetto_path.c_str());
        }
        if (metrics != nullptr)
            bench::writeMetricsOutputs(metrics->log(), metrics_path);
        if (monitor_on) {
            monitor.report(std::cout);
            monitor_failed = !monitor.ok();
        }
        report.params()
            .set("trace_path", trace_path)
            .set("trace_alpha", trace_alpha)
            .set("trace_clients", trace_clients)
            .set("trace_abort_pct", cell.abortPct);
        if (sim_threads > 0)
            report.params()
                .set("trace_sched_windows", cell.sched.windows)
                .set("trace_sched_windows_skipped", cell.sched.skipped)
                .set("trace_sched_barriers", cell.sched.barriers)
                .set("trace_sched_events", cell.sched.events);
        report.addStats("traced_cell.client", cell.clientStats,
                        "client.");
        report.addStats("traced_cell.server", cell.serverStats,
                        "server.");
    }

    report.write(args);
    return monitor_failed ? 1 : 0;
}
