/**
 * @file
 * Ablation: the FTL pack timer (section 5's "packing logic waits for
 * up to 1 ms (tunable)"). Sweeps the timeout and reports MFTL put
 * latency, get latency and throughput under a mixed workload.
 *
 * Expected trade-off: a short timer wastes page capacity on
 * mostly-empty pages (more program operations, more GC) but bounds put
 * latency; a long timer packs densely but parks puts in the buffer.
 *
 * --jobs=N runs sweep cells on N worker threads (sweep_runner.hh);
 * output is identical for any N.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "flash/ssd.hh"
#include "ftl/mftl.hh"
#include "sim/simulator.hh"
#include "sweep_runner.hh"
#include "workload/micro.hh"

using common::kMicrosecond;
using common::kSecond;
using common::toMicros;

namespace {

struct Cell
{
    double kReqPerSec = 0;
    double getLatencyUs = 0;
    double putLatencyUs = 0;
    std::uint64_t pagesWritten = 0;
};

Cell
runCell(common::Duration timeout, std::uint64_t keys,
        common::Duration warmup, common::Duration measure)
{
    sim::Simulator sim;
    flash::SsdDevice ssd(sim,
                         flash::Geometry::scaledFor(keys * 512, 0.35));
    ftl::Mftl::Config cfg;
    cfg.packTimeout = timeout;
    ftl::Mftl mftl(sim, ssd, cfg);

    workload::MicroConfig mcfg;
    mcfg.getPercent = 95;
    mcfg.workers = 48;
    mcfg.numKeys = keys;
    workload::MicroBench micro(sim, mftl, mcfg);
    micro.populate();
    mftl.start();
    micro.start();
    sim.runUntil(sim.now() + warmup);
    micro.resetMeasurement();
    mftl.stats().reset();
    sim.runFor(measure);

    Cell cell;
    cell.kReqPerSec = micro.throughput(measure) / 1000.0;
    cell.getLatencyUs = toMicros(
        static_cast<common::Duration>(micro.getLatency().mean()));
    cell.putLatencyUs = toMicros(
        static_cast<common::Duration>(micro.putLatency().mean()));
    cell.pagesWritten =
        mftl.stats().counterValue("mftl.pages_written");
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys = args.getInt("keys", 30'000);
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure = args.getInt("seconds", 2) * kSecond;

    bench::Report report("ablation_pack_timer");
    report.params()
        .set("keys", keys)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure));

    bench::printHeader(
        "Ablation: pack-timer sweep (MFTL, 95% gets — sparse writes)\n"
        "put latency vs page-fill efficiency");
    std::printf("%12s | %10s | %10s | %10s | %12s\n", "pack timeout",
                "k req/s", "get lat us", "put lat us",
                "pages written");
    std::printf("-------------+------------+------------+------------+"
                "-------------\n");

    const std::vector<common::Duration> timeouts = {
        100 * kMicrosecond,  250 * kMicrosecond, 500 * kMicrosecond,
        1000 * kMicrosecond, 2000 * kMicrosecond, 4000 * kMicrosecond};

    bench::SweepRunner runner(bench::jobsFromArgs(args));
    std::vector<Cell> cells(timeouts.size());
    runner.run(timeouts.size(), [&](std::size_t i) {
        cells[i] = runCell(timeouts[i], keys, warmup, measure);
    });

    for (std::size_t i = 0; i < timeouts.size(); ++i) {
        const Cell &cell = cells[i];
        std::printf("%9.1f ms | %10.0f | %10.1f | %10.1f | %12llu\n",
                    common::toMillis(timeouts[i]), cell.kReqPerSec,
                    cell.getLatencyUs, cell.putLatencyUs,
                    static_cast<unsigned long long>(cell.pagesWritten));
        report.addRow()
            .set("pack_timeout_ms", common::toMillis(timeouts[i]))
            .set("kreq_per_sec", cell.kReqPerSec)
            .set("get_latency_us", cell.getLatencyUs)
            .set("put_latency_us", cell.putLatencyUs)
            .set("pages_written", cell.pagesWritten);
    }
    report.write(args);
    return 0;
}
