/**
 * @file
 * Ablation: the FTL pack timer (section 5's "packing logic waits for
 * up to 1 ms (tunable)"). Sweeps the timeout and reports MFTL put
 * latency, get latency and throughput under a mixed workload.
 *
 * Expected trade-off: a short timer wastes page capacity on
 * mostly-empty pages (more program operations, more GC) but bounds put
 * latency; a long timer packs densely but parks puts in the buffer.
 */

#include <cstdio>

#include "bench_util.hh"
#include "flash/ssd.hh"
#include "ftl/mftl.hh"
#include "sim/simulator.hh"
#include "workload/micro.hh"

using common::kMicrosecond;
using common::kSecond;
using common::toMicros;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys = args.getInt("keys", 30'000);
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure = args.getInt("seconds", 2) * kSecond;

    bench::Report report("ablation_pack_timer");
    report.params()
        .set("keys", keys)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure));

    bench::printHeader(
        "Ablation: pack-timer sweep (MFTL, 95% gets — sparse writes)\n"
        "put latency vs page-fill efficiency");
    std::printf("%12s | %10s | %10s | %10s | %12s\n", "pack timeout",
                "k req/s", "get lat us", "put lat us",
                "pages written");
    std::printf("-------------+------------+------------+------------+"
                "-------------\n");

    for (const common::Duration timeout :
         {100 * kMicrosecond, 250 * kMicrosecond, 500 * kMicrosecond,
          1000 * kMicrosecond, 2000 * kMicrosecond,
          4000 * kMicrosecond}) {
        sim::Simulator sim;
        flash::SsdDevice ssd(
            sim, flash::Geometry::scaledFor(keys * 512, 0.35));
        ftl::Mftl::Config cfg;
        cfg.packTimeout = timeout;
        ftl::Mftl mftl(sim, ssd, cfg);

        workload::MicroConfig mcfg;
        mcfg.getPercent = 95;
        mcfg.workers = 48;
        mcfg.numKeys = keys;
        workload::MicroBench micro(sim, mftl, mcfg);
        micro.populate();
        mftl.start();
        micro.start();
        sim.runUntil(sim.now() + warmup);
        micro.resetMeasurement();
        mftl.stats().reset();
        sim.runFor(measure);

        std::printf("%9.1f ms | %10.0f | %10.1f | %10.1f | %12llu\n",
                    common::toMillis(timeout),
                    micro.throughput(measure) / 1000.0,
                    toMicros(static_cast<common::Duration>(
                        micro.getLatency().mean())),
                    toMicros(static_cast<common::Duration>(
                        micro.putLatency().mean())),
                    static_cast<unsigned long long>(
                        mftl.stats().counterValue(
                            "mftl.pages_written")));
        report.addRow()
            .set("pack_timeout_ms", common::toMillis(timeout))
            .set("kreq_per_sec", micro.throughput(measure) / 1000.0)
            .set("get_latency_us",
                 toMicros(static_cast<common::Duration>(
                     micro.getLatency().mean())))
            .set("put_latency_us",
                 toMicros(static_cast<common::Duration>(
                     micro.putLatency().mean())))
            .set("pages_written",
                 mftl.stats().counterValue("mftl.pages_written"));
    }
    report.write(args);
    return 0;
}
