/**
 * @file
 * Storage data-plane microbenchmark: throughput and exact per-op heap
 * traffic of the mapping-table + version-chain structures that back
 * every storage backend (ftl/mapping_table.hh, ftl/arena.hh).
 *
 * This deliberately benchmarks the data plane directly — not through
 * the simulated IO stack — because that is where paper-scale key
 * counts (2M/6M, Figure 6 / Table 1) live or die: the pack log and
 * flash model charge simulated time, but the mapping table costs real
 * memory and real wall-clock on every operation.
 *
 * One scenario per (backend flavor, key count):
 *  - dram: VersionStore with an inline-string payload (DRAM backend's
 *    chain entry shape — 64-byte slots, one cache line per 1-version
 *    key);
 *  - mftl: VersionStore keyed to <physical page, slot> locators;
 *  - vftl: VersionStore keyed to <LBA, slot> locators;
 *  - sftl: the single-version discipline — every put replaces the
 *    previous version (insert + prune to one), modeling a
 *    single-version KV's in-DRAM index.
 *
 * Phases per scenario, each measured separately:
 *  - populate: bulk load (getOrCreate + append fast path) of all keys
 *    into a pre-sized table — allocs/op counts slab carving, and
 *    bytes_per_key reports the exact data-plane footprint;
 *  - get: snapshot lookups (findAt) at random keys;
 *  - put: version inserts over a hot key set with per-put watermark
 *    pruning — the steady-state churn shape; must be 0 allocs/op
 *    (arena freelists recycle overflow chains);
 *  - prune: full-table watermark sweeps (forEach + prune); 0 allocs.
 *
 * Heap traffic is measured by interposing global operator new/delete
 * (sim_core.cc discipline), so allocs/op is exact. BENCH_store_core.json
 * is the committed baseline; CI fails on any allocs/op rise or a >20%
 * throughput drop on get/put/prune.
 *
 * Flags: --ops=N measured ops per phase (default 1,000,000),
 * --full (adds the 6M-key tier and 4x ops), --json=PATH.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "flash/geometry.hh"
#include "ftl/mapping_table.hh"

// ---------------------------------------------------------------------
// Interposed allocation counter (see sim_core.cc).
// ---------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_allocCalls{0};
std::atomic<std::uint64_t> g_allocBytes{0};
std::atomic<std::uint64_t> g_freeCalls{0};

void *
countedAlloc(std::size_t size)
{
    g_allocCalls.fetch_add(1, std::memory_order_relaxed);
    g_allocBytes.fetch_add(size, std::memory_order_relaxed);
    void *p = std::malloc(size ? size : 1);
    if (!p)
        std::abort();
    return p;
}

void
countedFree(void *p) noexcept
{
    if (!p)
        return;
    g_freeCalls.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

} // namespace

void *operator new(std::size_t size) { return countedAlloc(size); }
void *operator new[](std::size_t size) { return countedAlloc(size); }
void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}
void operator delete(void *p) noexcept { countedFree(p); }
void operator delete[](void *p) noexcept { countedFree(p); }
void operator delete(void *p, std::size_t) noexcept { countedFree(p); }
void operator delete[](void *p, std::size_t) noexcept { countedFree(p); }
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

namespace {

using common::Key;
using common::Time;
using common::Version;

struct AllocSnapshot
{
    std::uint64_t calls;
    std::uint64_t bytes;

    static AllocSnapshot
    take()
    {
        return {g_allocCalls.load(std::memory_order_relaxed),
                g_allocBytes.load(std::memory_order_relaxed)};
    }
};

double
wallSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

struct PhaseResult
{
    std::string scenario;
    std::uint64_t keys = 0;
    std::string op;
    std::uint64_t ops = 0;
    double seconds = 0;
    double allocsPerOp = 0;
    double bytesPerOp = 0;
    /** Exact data-plane footprint after populate (populate row only). */
    double bytesPerKey = 0;
};

// Locator payloads matching the real backends' chain entries.

/** DRAM: the value lives in the chain (SSO strings — no heap). */
struct DramLoc
{
    common::Value value;
};

/** MFTL: physical page + slot. */
struct MftlLoc
{
    flash::PageAddr page;
    std::uint16_t slot;
};

/** VFTL: logical block + slot. */
struct VftlLoc
{
    std::int64_t lba;
    std::uint16_t slot;
};

template <typename Loc>
Loc makeLoc(std::uint64_t i);

template <>
DramLoc
makeLoc<DramLoc>(std::uint64_t i)
{
    // 12 chars max — inside libstdc++'s 15-char SSO buffer.
    char buf[16];
    std::snprintf(buf, sizeof buf, "v%010llu",
                  static_cast<unsigned long long>(i % 9999999999ull));
    return DramLoc{common::Value(buf)};
}

template <>
MftlLoc
makeLoc<MftlLoc>(std::uint64_t i)
{
    return MftlLoc{
        flash::PageAddr{static_cast<std::uint32_t>(i >> 5),
                        static_cast<std::uint32_t>(i & 31)},
        static_cast<std::uint16_t>(i & 7)};
}

template <>
VftlLoc
makeLoc<VftlLoc>(std::uint64_t i)
{
    return VftlLoc{static_cast<std::int64_t>(i),
                   static_cast<std::uint16_t>(i & 7)};
}

/**
 * Run the four phases against one VersionStore instantiation.
 * single_version = true models the SFTL-style index: each put prunes
 * the chain down to the version it just wrote.
 */
template <typename Loc>
std::vector<PhaseResult>
runScenario(const std::string &name, std::uint64_t keys,
            std::uint64_t ops, bool single_version)
{
    std::vector<PhaseResult> out;
    ftl::VersionStore<Loc> store(keys);
    common::Rng rng(0x5107e + keys);

    const auto noDrop = [](const auto &) {};

    // ---- populate: bulk-load path (append — versions arrive sorted).
    {
        const AllocSnapshot before = AllocSnapshot::take();
        const auto start = std::chrono::steady_clock::now();
        for (std::uint64_t k = 0; k < keys; ++k)
            store.getOrCreate(k).append(Version{1, 0},
                                        makeLoc<Loc>(k));
        const double secs = wallSeconds(start);
        const AllocSnapshot after = AllocSnapshot::take();
        if (store.size() != keys)
            PANIC("store_core: populate lost keys");
        PhaseResult r;
        r.scenario = name;
        r.keys = keys;
        r.op = "populate";
        r.ops = keys;
        r.seconds = secs;
        r.allocsPerOp = static_cast<double>(after.calls - before.calls) /
                        static_cast<double>(keys);
        r.bytesPerOp = static_cast<double>(after.bytes - before.bytes) /
                       static_cast<double>(keys);
        r.bytesPerKey = static_cast<double>(store.memoryBytes()) /
                        static_cast<double>(keys);
        out.push_back(r);
    }

    // ---- put: steady-state churn over a hot key set. Warm up one
    // full pass over the hot set so every hot chain has carved its
    // overflow block (arena freelists are hot afterwards).
    const std::uint64_t hot =
        std::min<std::uint64_t>(keys, 64 * 1024);
    Time ts = 2;
    constexpr Time kWindow = 8;
    const auto doPut = [&](std::uint64_t i) {
        const Key key = (i * 0x9E3779B97F4A7C15ull) % hot;
        auto chain = store.getOrCreate(key);
        chain.insert(Version{ts, 1}, makeLoc<Loc>(i));
        const Time wm = single_version ? ts : ts - kWindow;
        chain.pruneBelowWatermark(wm, noDrop);
        ++ts;
    };
    for (std::uint64_t i = 0; i < 2 * hot; ++i)
        doPut(i);
    {
        const AllocSnapshot before = AllocSnapshot::take();
        const auto start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < ops; ++i)
            doPut(2 * hot + i);
        const double secs = wallSeconds(start);
        const AllocSnapshot after = AllocSnapshot::take();
        PhaseResult r;
        r.scenario = name;
        r.keys = keys;
        r.op = "put";
        r.ops = ops;
        r.seconds = secs;
        r.allocsPerOp = static_cast<double>(after.calls - before.calls) /
                        static_cast<double>(ops);
        r.bytesPerOp = static_cast<double>(after.bytes - before.bytes) /
                       static_cast<double>(ops);
        out.push_back(r);
    }

    // ---- get: random snapshot lookups across the whole key space.
    {
        const Version latest{ts, 0xffffffff};
        std::uint64_t found = 0;
        const AllocSnapshot before = AllocSnapshot::take();
        const auto start = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < ops; ++i) {
            const Key key = rng.nextBounded(keys);
            auto chain = store.find(key);
            const auto *entry = chain ? chain.findAt(latest) : nullptr;
            found += entry != nullptr;
        }
        const double secs = wallSeconds(start);
        const AllocSnapshot after = AllocSnapshot::take();
        if (found != ops)
            PANIC("store_core: get phase missed "
                  << (ops - found) << " of " << ops << " lookups");
        PhaseResult r;
        r.scenario = name;
        r.keys = keys;
        r.op = "get";
        r.ops = ops;
        r.seconds = secs;
        r.allocsPerOp = static_cast<double>(after.calls - before.calls) /
                        static_cast<double>(ops);
        r.bytesPerOp = static_cast<double>(after.bytes - before.bytes) /
                       static_cast<double>(ops);
        out.push_back(r);
    }

    // ---- prune: full-table watermark sweeps (one "op" per key
    // visited). The first sweep drops the put phase's leftovers; later
    // sweeps see already-minimal chains — both shapes are steady-state
    // sweep work, and neither may allocate.
    {
        const std::uint64_t sweeps =
            std::max<std::uint64_t>(1, ops / keys);
        const AllocSnapshot before = AllocSnapshot::take();
        const auto start = std::chrono::steady_clock::now();
        for (std::uint64_t s = 0; s < sweeps; ++s) {
            const Time wm = ts + static_cast<Time>(s);
            store.forEach([&](Key, auto chain) {
                chain.pruneBelowWatermark(wm, noDrop);
            });
        }
        const double secs = wallSeconds(start);
        const AllocSnapshot after = AllocSnapshot::take();
        const std::uint64_t visited = sweeps * keys;
        PhaseResult r;
        r.scenario = name;
        r.keys = keys;
        r.op = "prune";
        r.ops = visited;
        r.seconds = secs;
        r.allocsPerOp = static_cast<double>(after.calls - before.calls) /
                        static_cast<double>(visited);
        r.bytesPerOp = static_cast<double>(after.bytes - before.bytes) /
                       static_cast<double>(visited);
        out.push_back(r);
    }

    return out;
}

std::vector<PhaseResult>
runFlavor(const std::string &flavor, std::uint64_t keys,
          std::uint64_t ops)
{
    if (flavor == "dram")
        return runScenario<DramLoc>(flavor, keys, ops, false);
    if (flavor == "mftl")
        return runScenario<MftlLoc>(flavor, keys, ops, false);
    if (flavor == "vftl")
        return runScenario<VftlLoc>(flavor, keys, ops, false);
    if (flavor == "sftl")
        return runScenario<MftlLoc>(flavor, keys, ops, true);
    PANIC("store_core: unknown flavor " << flavor);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const bool full = args.has("full");
    const std::uint64_t ops = static_cast<std::uint64_t>(
        args.getInt("ops", full ? 4'000'000 : 1'000'000));

    std::vector<std::uint64_t> tiers{100'000, 2'000'000};
    if (full)
        tiers.push_back(6'000'000);

    bench::Report report("store_core");
    report.params().set("ops", ops).set("full", full);

    bench::printHeader(
        "store_core: mapping-table + version-chain throughput and\n"
        "per-op heap traffic (interposed operator new counter)");
    std::printf("%6s | %9s | %9s | %12s | %12s | %10s | %10s\n",
                "store", "keys", "op", "ops", "ops/sec", "allocs/op",
                "bytes/key");
    std::printf("-------+-----------+-----------+--------------+"
                "--------------+------------+-----------\n");

    for (const std::uint64_t keys : tiers) {
        for (const char *flavor : {"dram", "mftl", "vftl", "sftl"}) {
            const auto results = runFlavor(flavor, keys, ops);
            for (const PhaseResult &r : results) {
                const double ops_per_sec =
                    static_cast<double>(r.ops) /
                    (r.seconds > 0 ? r.seconds : 1);
                std::printf("%6s | %9llu | %9s | %12llu | %12.0f | "
                            "%10.4f | %10.1f\n",
                            r.scenario.c_str(),
                            static_cast<unsigned long long>(r.keys),
                            r.op.c_str(),
                            static_cast<unsigned long long>(r.ops),
                            ops_per_sec, r.allocsPerOp, r.bytesPerKey);
                report.addRow()
                    .set("scenario", r.scenario)
                    .set("keys", r.keys)
                    .set("op", r.op)
                    .set("ops", r.ops)
                    .set("seconds", r.seconds)
                    .set("ops_per_sec", ops_per_sec)
                    .set("allocs_per_op", r.allocsPerOp)
                    .set("bytes_per_op", r.bytesPerOp)
                    .set("bytes_per_key", r.bytesPerKey);
            }
        }
    }

    report.write(args);
    return 0;
}
