/**
 * @file
 * Reproduces Figure 8: Retwis transaction latency vs throughput for
 * the three storage backends (DRAM, VFTL, MFTL), with and without
 * client-local validation (LV), as client load increases.
 *
 * Setup mirrors the paper: 3 shards x 3 replicas, 75% read-only
 * Retwis mix, PTP clocks.
 *
 * Paper shapes:
 *  - LV buys up to +55% throughput and -35% latency (it removes two
 *    round trips from every read-only commit);
 *  - MFTL ~ +15% throughput / -10% latency vs VFTL;
 *  - VFTL *with* LV beats MFTL *without* LV.
 *
 * --jobs=N runs sweep cells on N worker threads (sweep_runner.hh);
 * output is identical for any N.
 *
 * --sim-threads=N asks for partitioned DES inside each cell.
 * Partitioned mode requires Perfect clocks, and every Figure 8 cell
 * runs software PTP, so the guard in runCell forces classic mode
 * here; the flag exists so all figure benches share one interface.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sweep_runner.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::kSecond;
using common::toMillis;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

namespace {

struct Cell
{
    double txnPerSec = 0;
    double latencyMs = 0;
};

Cell
runCell(BackendKind backend, bool local_validation,
        std::uint32_t clients, std::uint64_t keys,
        common::Duration warmup, common::Duration measure,
        std::uint64_t seed, std::uint32_t simThreads)
{
    ClusterConfig cfg;
    cfg.numShards = 3;
    cfg.replicasPerShard = 3;
    cfg.numClients = clients;
    cfg.backend = backend;
    cfg.clocks = ClockKind::PtpSw;
    cfg.numKeys = keys;
    cfg.seed = seed;
    cfg.localValidation = local_validation;
    // Partitioned DES is only legal under Perfect clocks; disciplined
    // cells (all of Figure 8) run classic regardless of the flag.
    cfg.simThreads =
        cfg.clocks == ClockKind::Perfect ? simThreads : 0;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = 0.6;
    retwis.numKeys = keys;
    retwis.readHeavy = true; // 5/10/10/75 mix
    retwis.seed = seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.runUntil(cluster.now() + warmup);
    fleet.resetMeasurement();
    cluster.runFor(measure);

    Cell cell;
    cell.txnPerSec = static_cast<double>(fleet.totalCommits()) /
                     common::toSeconds(measure);
    cell.latencyMs = toMillis(static_cast<common::Duration>(
        fleet.mergedLatency().mean()));
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys =
        args.getInt("keys", args.has("full") ? 6'000'000 : 30'000);
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure =
        args.getInt("seconds", args.has("full") ? 60 : 4) * kSecond;
    const std::uint64_t seed = args.getInt("seed", 1);
    // Like --jobs, --sim-threads is not a report param: it must never
    // change results, so reports from different values must compare
    // byte-identical.
    const auto simThreads =
        static_cast<std::uint32_t>(args.getInt("sim-threads", 0));

    bench::Report report("fig8_latency_throughput");
    report.params()
        .set("keys", keys)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure))
        .set("seed", seed)
        .set("full", args.has("full"));

    bench::printHeader(
        "Figure 8: Retwis transaction latency vs throughput\n"
        "3 shards x 3 replicas, 75% read-only mix, PTP; LV = "
        "client-local\nvalidation of read-only transactions");
    std::printf("%5s %4s %8s | %10s %12s\n", "store", "LV", "clients",
                "txn/sec", "latency(ms)");
    std::printf("---------------------+------------------------\n");

    struct Coord
    {
        BackendKind backend;
        bool lv;
        std::uint32_t clients;
    };
    std::vector<Coord> coords;
    for (BackendKind backend :
         {BackendKind::Dram, BackendKind::Vftl, BackendKind::Mftl}) {
        for (bool lv : {true, false}) {
            for (std::uint32_t clients : {8u, 16u, 32u, 64u, 96u})
                coords.push_back({backend, lv, clients});
        }
    }

    bench::SweepRunner runner(bench::jobsFromArgs(args));
    std::vector<Cell> cells(coords.size());
    runner.run(coords.size(), [&](std::size_t i) {
        const Coord &c = coords[i];
        cells[i] = runCell(c.backend, c.lv, c.clients, keys, warmup,
                           measure, seed, simThreads);
    });

    for (std::size_t i = 0; i < coords.size(); ++i) {
        const Coord &c = coords[i];
        std::printf("%5s %4s %8u | %10.0f %12.2f\n",
                    workload::backendName(c.backend),
                    c.lv ? "on" : "off", c.clients, cells[i].txnPerSec,
                    cells[i].latencyMs);
        report.addRow()
            .set("backend", workload::backendName(c.backend))
            .set("local_validation", c.lv)
            .set("clients", c.clients)
            .set("txn_per_sec", cells[i].txnPerSec)
            .set("latency_ms", cells[i].latencyMs);
    }
    std::printf(
        "\nPaper (Figure 8): local validation: up to +55%% throughput\n"
        "and -35%% latency; MFTL ~ +15%% throughput vs VFTL; VFTL w/ LV\n"
        "outperforms MFTL w/o LV.\n");
    report.write(args);
    return 0;
}
