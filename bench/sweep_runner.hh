/**
 * @file
 * Parallel execution of independent sweep cells.
 *
 * Every figure/table harness is a grid sweep: N independent cells,
 * each of which builds a private Cluster (with its own Simulator, RNG
 * chain, Tracer and StatSet), runs it, and produces a small result
 * struct. Cells share nothing — the only ambient state the sim layer
 * uses, the current TraceContext, is thread_local (common/trace.hh) —
 * so they can run on a worker pool.
 *
 * Determinism contract: the runner only changes *which thread* runs a
 * cell, never what the cell computes. Each cell derives its seeds from
 * the cell coordinates exactly as the serial loop did, and results are
 * collected into a pre-sized slot per cell; callers print tables and
 * emit report rows from those slots after run() returns, in cell
 * order. A --json report is therefore byte-identical for any --jobs
 * value (tests/parallel_sweep_test.cc holds this at jobs 1 vs 8), and
 * for the same reason --jobs must never be written into report params.
 *
 * Usage:
 *
 *   bench::SweepRunner runner(bench::jobsFromArgs(args));
 *   std::vector<CellResult> results(cells.size());
 *   runner.run(cells.size(),
 *              [&](std::size_t i) { results[i] = runCell(cells[i]); });
 *   // ... print / report from results in index order ...
 */

#ifndef BENCH_SWEEP_RUNNER_HH
#define BENCH_SWEEP_RUNNER_HH

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.hh"

namespace bench {

/** Worker count from --jobs=N (default 1 = serial; 0 means "all
 *  hardware threads"). */
inline unsigned
jobsFromArgs(const Args &args)
{
    const std::int64_t jobs = args.getInt("jobs", 1);
    if (jobs <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? hw : 1;
    }
    return static_cast<unsigned>(jobs);
}

class SweepRunner
{
  public:
    explicit SweepRunner(unsigned jobs) : jobs_(jobs > 0 ? jobs : 1) {}

    unsigned jobs() const { return jobs_; }

    /**
     * Invoke fn(i) once for every i in [0, cells), spread over the
     * worker pool, and block until all cells finished. With one job
     * (or one cell) everything runs on the calling thread. The first
     * exception thrown by a cell is rethrown here after the pool
     * drains.
     */
    template <typename Fn>
    void
    run(std::size_t cells, Fn fn)
    {
        if (cells == 0)
            return;
        const unsigned workers =
            jobs_ < cells ? jobs_ : static_cast<unsigned>(cells);
        if (workers <= 1) {
            for (std::size_t i = 0; i < cells; ++i)
                fn(i);
            return;
        }

        std::atomic<std::size_t> next{0};
        std::atomic<bool> failed{false};
        std::exception_ptr error;
        std::mutex errorMutex;

        auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= cells || failed.load(std::memory_order_relaxed))
                    return;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errorMutex);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                    return;
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        for (unsigned t = 1; t < workers; ++t)
            pool.emplace_back(worker);
        worker();
        for (std::thread &t : pool)
            t.join();
        if (error)
            std::rethrow_exception(error);
    }

  private:
    unsigned jobs_;
};

} // namespace bench

#endif // BENCH_SWEEP_RUNNER_HH
