/**
 * @file
 * Reproduces Table 1: single-SSD multi-version FTL performance —
 * throughput and average get/put latency for VFTL (separate
 * multi-version KV layer over a generic FTL) vs MFTL (unified
 * multi-version FTL), across GET percentages.
 *
 * Paper shapes to reproduce:
 *  - MFTL wins throughput at read-heavy mixes (up to +45%);
 *  - MFTL GET latency is far lower (up to 7x) under mixed load,
 *    because VFTL's two-level GC floods the device with remap traffic;
 *  - MFTL PUT latency is *higher* (it packs lazily; VFTL's heavier GC
 *    fills pages sooner, shortening the pack wait);
 *  - at the most write-heavy mix the extra GC lets VFTL edge ahead in
 *    throughput.
 *
 * --jobs=N runs sweep cells on N worker threads (sweep_runner.hh);
 * output is identical for any N.
 */

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "sweep_runner.hh"
#include "common/types.hh"
#include "flash/ssd.hh"
#include "ftl/mftl.hh"
#include "ftl/sftl.hh"
#include "ftl/vftl.hh"
#include "sim/simulator.hh"
#include "workload/micro.hh"

using common::kSecond;
using common::toMicros;

namespace {

struct CellResult
{
    double kReqPerSec = 0;
    double getLatencyUs = 0;
    double putLatencyUs = 0;
    /** Real (host) seconds spent in populate — reported separately so
     *  bulk load never pollutes the steady-state numbers. */
    double populateSeconds = 0;
    /** Deterministic data-plane footprint (mapping table + version
     *  arena) per key, from KvBackend::dataPlaneBytes(). */
    double bytesPerKey = 0;
};

CellResult
runCell(bool unified, double get_percent, std::uint64_t keys,
        std::uint32_t workers, common::Duration warmup,
        common::Duration measure, std::uint64_t seed)
{
    sim::Simulator sim;
    const auto data_bytes = keys * 512ull;
    flash::SsdDevice ssd(sim, flash::Geometry::scaledFor(data_bytes, 0.35));

    std::unique_ptr<ftl::Sftl> sftl;
    std::unique_ptr<ftl::Mftl> mftl;
    std::unique_ptr<ftl::Vftl> vftl;
    ftl::KvBackend *backend = nullptr;
    if (unified) {
        mftl = std::make_unique<ftl::Mftl>(sim, ssd, ftl::Mftl::Config{});
        backend = mftl.get();
    } else {
        sftl = std::make_unique<ftl::Sftl>(sim, ssd, ftl::Sftl::Config{});
        vftl = std::make_unique<ftl::Vftl>(sim, *sftl, ftl::Vftl::Config{});
        backend = vftl.get();
    }

    workload::MicroConfig cfg;
    cfg.getPercent = get_percent;
    cfg.numKeys = keys;
    cfg.workers = workers;
    cfg.seed = seed;
    workload::MicroBench micro(sim, *backend, cfg);
    // Populate drains the simulator, so the FTLs' periodic background
    // sweeps must start only afterwards.
    const auto populate_start = std::chrono::steady_clock::now();
    micro.populate();
    const double populate_secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      populate_start)
            .count();
    if (mftl)
        mftl->start();
    if (vftl)
        vftl->start();
    micro.start();
    sim.runUntil(sim.now() + warmup);
    micro.resetMeasurement();
    sim.runFor(measure);

    CellResult r;
    r.kReqPerSec = micro.throughput(measure) / 1000.0;
    r.getLatencyUs = toMicros(
        static_cast<common::Duration>(micro.getLatency().mean()));
    r.putLatencyUs = toMicros(
        static_cast<common::Duration>(micro.putLatency().mean()));
    r.populateSeconds = populate_secs;
    r.bytesPerKey = static_cast<double>(backend->dataPlaneBytes()) /
                    static_cast<double>(keys);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys =
        args.getInt("keys", args.has("full") ? 2'000'000 : 60'000);
    const auto warmup =
        args.getInt("warmup", 1) * kSecond;
    const auto measure =
        args.getInt("seconds", args.has("full") ? 30 : 2) * kSecond;
    const std::uint64_t seed = args.getInt("seed", 1);
    const std::uint32_t workers =
        static_cast<std::uint32_t>(args.getInt("workers", 64));

    bench::Report report("table1_ftl_perf");
    report.params()
        .set("keys", keys)
        .set("workers", workers)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure))
        .set("seed", seed)
        .set("full", args.has("full"));

    bench::printHeader(
        "Table 1: Single SSD Multi-version FTL Performance\n"
        "(throughput in kilo-requests/sec; latency in microseconds)");
    std::printf("%6s | %9s %9s | %9s %9s | %9s %9s\n", "Get %",
                "VFTL", "MFTL", "VFTL get", "MFTL get", "VFTL put",
                "MFTL put");
    std::printf("-------+---------------------+---------------------+"
                "--------------------\n");

    const std::vector<double> getPcts = {100.0, 75.0, 50.0, 25.0};
    bench::SweepRunner runner(bench::jobsFromArgs(args));
    std::vector<CellResult> vftlCells(getPcts.size());
    std::vector<CellResult> mftlCells(getPcts.size());
    runner.run(getPcts.size() * 2, [&](std::size_t i) {
        const bool unified = (i % 2 != 0);
        CellResult r = runCell(unified, getPcts[i / 2], keys, workers,
                               warmup, measure, seed);
        (unified ? mftlCells : vftlCells)[i / 2] = r;
    });

    // Opt-in so the default report stays byte-identical across
    // revisions; with --mem each row gains deterministic data-plane
    // bytes/key from the table + arena accounting.
    const bool mem = args.has("mem");
    if (mem)
        report.params().set("mem", true);

    double populate_total = 0;
    for (std::size_t i = 0; i < getPcts.size(); ++i) {
        const double get_pct = getPcts[i];
        const CellResult &vftl = vftlCells[i];
        const CellResult &mftl = mftlCells[i];
        populate_total += vftl.populateSeconds + mftl.populateSeconds;
        std::printf(
            "%6.0f | %9.0f %9.0f | %9.1f %9.1f | %9.1f %9.1f\n",
            get_pct, vftl.kReqPerSec, mftl.kReqPerSec,
            vftl.getLatencyUs, mftl.getLatencyUs, vftl.putLatencyUs,
            mftl.putLatencyUs);
        auto &row = report.addRow();
        row.set("get_pct", get_pct)
            .set("vftl_kreq_per_sec", vftl.kReqPerSec)
            .set("mftl_kreq_per_sec", mftl.kReqPerSec)
            .set("vftl_get_latency_us", vftl.getLatencyUs)
            .set("mftl_get_latency_us", mftl.getLatencyUs)
            .set("vftl_put_latency_us", vftl.putLatencyUs)
            .set("mftl_put_latency_us", mftl.putLatencyUs);
        if (mem)
            row.set("vftl_bytes_per_key", vftl.bytesPerKey)
                .set("mftl_bytes_per_key", mftl.bytesPerKey);
    }
    if (mem)
        std::printf("\ndata plane: VFTL %.1f B/key, MFTL %.1f B/key "
                    "(at 100%% gets; table + version arena)\n",
                    vftlCells[0].bytesPerKey, mftlCells[0].bytesPerKey);
    std::printf("\npopulate wall-clock: %.2f s total across %zu cells "
                "(bulk load, excluded from the measured window)\n",
                populate_total, getPcts.size() * 2);
    std::printf(
        "\nPaper (Table 1): MFTL up to +45%% throughput and up to 7x\n"
        "lower GET latency on read-heavy mixes; VFTL lower PUT latency\n"
        "(GC remaps shorten its pack wait) and ahead at 25%% gets.\n");
    report.write(args);
    return 0;
}
