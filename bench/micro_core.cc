/**
 * @file
 * google-benchmark micro-benchmarks for the hot paths of the
 * simulation and the FTL mapping structures: event queue throughput,
 * coroutine round trips, Zipf sampling, version-chain operations, and
 * validation-table lookups. These bound the wall-clock cost of the
 * experiment harnesses.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/random.hh"
#include "common/zipf.hh"
#include "ftl/version_chain.hh"
#include "milana/txn_table.hh"
#include "sim/future.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int batch = static_cast<int>(state.range(0));
    for (auto _ : state) {
        sim::Simulator sim;
        int fired = 0;
        for (int i = 0; i < batch; ++i)
            sim.schedule(i, [&fired] { ++fired; });
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(16384);

void
BM_CoroutineRoundTrip(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        int done = 0;
        auto child = [](sim::Simulator &s) -> sim::Task<int> {
            co_await sim::sleepFor(s, 1);
            co_return 1;
        };
        auto parent = [&](int n) -> sim::Task<void> {
            for (int i = 0; i < n; ++i)
                done += co_await child(sim);
        };
        sim::spawn(parent(256));
        sim.run();
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_CoroutineRoundTrip);

void
BM_ZipfSample(benchmark::State &state)
{
    common::Rng rng(1);
    common::ZipfSampler zipf(1'000'000,
                             static_cast<double>(state.range(0)) / 100.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(0)->Arg(80)->Arg(99);

void
BM_VersionChainInsertFind(benchmark::State &state)
{
    const int versions = static_cast<int>(state.range(0));
    for (auto _ : state) {
        ftl::VersionChain<int> chain;
        for (int i = 1; i <= versions; ++i)
            chain.insert(common::Version{i * 100, 1}, i);
        benchmark::DoNotOptimize(
            chain.findAt(common::Version{versions * 50, 1}));
    }
    state.SetItemsProcessed(state.iterations() * versions);
}
BENCHMARK(BM_VersionChainInsertFind)->Arg(4)->Arg(64);

void
BM_VersionChainWatermarkPrune(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        ftl::VersionChain<int> chain;
        for (int i = 1; i <= 64; ++i)
            chain.insert(common::Version{i * 100, 1}, i);
        state.ResumeTiming();
        int dropped = 0;
        chain.pruneBelowWatermark(3200,
                                  [&dropped](const auto &) { ++dropped; });
        benchmark::DoNotOptimize(dropped);
    }
}
BENCHMARK(BM_VersionChainWatermarkPrune);

void
BM_KeyStateLookup(benchmark::State &state)
{
    milana::KeyStateTable table;
    for (common::Key k = 0; k < 100'000; ++k)
        table.state(k).latestCommitted = common::Version{100, 1};
    common::Rng rng(2);
    for (auto _ : state) {
        const common::Key k = rng.nextBounded(100'000);
        benchmark::DoNotOptimize(table.find(k));
    }
}
BENCHMARK(BM_KeyStateLookup);

void
BM_TxnTableInsertResolve(benchmark::State &state)
{
    for (auto _ : state) {
        milana::TxnTable table;
        for (std::uint64_t i = 0; i < 64; ++i) {
            milana::TxnEntry entry;
            entry.txn = semel::TxnId{1, i};
            table.insert(entry);
        }
        for (std::uint64_t i = 0; i < 64; ++i)
            table.resolve(semel::TxnId{1, i},
                          semel::TxnStatus::Committed);
        benchmark::DoNotOptimize(table.size());
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_TxnTableInsertResolve);

} // namespace

/**
 * Custom main so this harness shares the suite's uniform --json=PATH
 * flag: it is rewritten into google-benchmark's --benchmark_out
 * flags, so the output file follows *google-benchmark's* JSON schema
 * rather than milana-bench-v1 (see OBSERVABILITY.md).
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> rewritten;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0) {
            rewritten.push_back("--benchmark_out=" + arg.substr(7));
            rewritten.push_back("--benchmark_out_format=json");
        } else {
            rewritten.push_back(arg);
        }
    }
    std::vector<char *> argv2;
    argv2.reserve(rewritten.size());
    for (auto &arg : rewritten)
        argv2.push_back(arg.data());
    int argc2 = static_cast<int>(argv2.size());

    benchmark::Initialize(&argc2, argv2.data());
    if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
