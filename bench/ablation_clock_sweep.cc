/**
 * @file
 * Ablation: generalizes Figure 7 across the full clock-discipline
 * spectrum — DTP (~150 ns), hardware PTP (<1 us), software PTP
 * (~53 us), NTP (~1.5 ms) — plus a perfect clock, for DRAM and MFTL
 * backends at fixed contention.
 *
 * This probes the paper's central claim (Figure 1): spurious aborts
 * appear once the inter-client skew approaches/exceeds the storage
 * write latency, so the faster the medium, the tighter the clock
 * discipline must be.
 *
 * --jobs=N runs sweep cells on N worker threads (sweep_runner.hh);
 * output is identical for any N.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sweep_runner.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::kSecond;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

namespace {

struct Cell
{
    double abortPct = 0;
    double skewUs = 0;
};

Cell
runCell(ClockKind clocks, BackendKind backend, double alpha,
        std::uint64_t keys, common::Duration warmup,
        common::Duration measure, std::uint64_t seed)
{
    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 3;
    cfg.numClients = 20;
    cfg.backend = backend;
    cfg.clocks = clocks;
    cfg.numKeys = keys;
    cfg.seed = seed;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = alpha;
    retwis.numKeys = keys;
    retwis.seed = seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();
    cluster.sim().runUntil(cluster.sim().now() + warmup);
    fleet.resetMeasurement();
    cluster.sim().runFor(measure);

    Cell cell;
    cell.abortPct = fleet.abortRate() * 100.0;
    cell.skewUs = cluster.avgClientSkew() / 1000.0;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys = args.getInt("keys", 20'000);
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure = args.getInt("seconds", 4) * kSecond;
    const double alpha = args.getDouble("alpha", 0.7);
    const std::uint64_t seed = args.getInt("seed", 1);

    bench::Report report("ablation_clock_sweep");
    report.params()
        .set("keys", keys)
        .set("alpha", alpha)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure))
        .set("seed", seed);

    bench::printHeader(
        "Ablation: abort rate vs clock discipline (Retwis, alpha "
        "fixed)\nskew spans ~150ns (DTP) to ~1.5ms (NTP)");
    std::printf("%9s | %12s | %10s | %10s\n", "clocks", "avg skew us",
                "DRAM ab%", "MFTL ab%");
    std::printf("----------+--------------+------------+-----------\n");

    const std::vector<ClockKind> clockKinds = {
        ClockKind::Perfect, ClockKind::Dtp, ClockKind::PtpHw,
        ClockKind::PtpSw, ClockKind::Ntp};
    const BackendKind backends[2] = {BackendKind::Dram,
                                     BackendKind::Mftl};

    bench::SweepRunner runner(bench::jobsFromArgs(args));
    std::vector<Cell> cells(clockKinds.size() * 2);
    runner.run(cells.size(), [&](std::size_t i) {
        cells[i] = runCell(clockKinds[i / 2], backends[i % 2], alpha,
                           keys, warmup, measure, seed);
    });

    for (std::size_t c = 0; c < clockKinds.size(); ++c) {
        const Cell &dram = cells[c * 2];
        const Cell &mftl = cells[c * 2 + 1];
        // The serial loop reported the skew realized by the last
        // backend run (MFTL); keep that.
        std::printf("%9s | %12.2f | %9.2f%% | %9.2f%%\n",
                    workload::clockName(clockKinds[c]), mftl.skewUs,
                    dram.abortPct, mftl.abortPct);
        report.addRow()
            .set("clocks", workload::clockName(clockKinds[c]))
            .set("avg_skew_us", mftl.skewUs)
            .set("dram_abort_pct", dram.abortPct)
            .set("mftl_abort_pct", mftl.abortPct);
    }
    std::printf(
        "\nShape: disciplines whose skew sits below the write window\n"
        "(DTP, PTP-hw, PTP-sw) are indistinguishable from perfect\n"
        "clocks — their aborts are genuine OCC conflicts; NTP's\n"
        "millisecond skew adds a large spurious-abort component on\n"
        "top (Figure 1's model).\n");
    report.write(args);
    return 0;
}
