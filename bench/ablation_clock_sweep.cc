/**
 * @file
 * Ablation: generalizes Figure 7 across the full clock-discipline
 * spectrum — DTP (~150 ns), hardware PTP (<1 us), software PTP
 * (~53 us), NTP (~1.5 ms) — plus a perfect clock, for DRAM and MFTL
 * backends at fixed contention.
 *
 * This probes the paper's central claim (Figure 1): spurious aborts
 * appear once the inter-client skew approaches/exceeds the storage
 * write latency, so the faster the medium, the tighter the clock
 * discipline must be.
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::kSecond;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys = args.getInt("keys", 20'000);
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure = args.getInt("seconds", 4) * kSecond;
    const double alpha = args.getDouble("alpha", 0.7);
    const std::uint64_t seed = args.getInt("seed", 1);

    bench::Report report("ablation_clock_sweep");
    report.params()
        .set("keys", keys)
        .set("alpha", alpha)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure))
        .set("seed", seed);

    bench::printHeader(
        "Ablation: abort rate vs clock discipline (Retwis, alpha "
        "fixed)\nskew spans ~150ns (DTP) to ~1.5ms (NTP)");
    std::printf("%9s | %12s | %10s | %10s\n", "clocks", "avg skew us",
                "DRAM ab%", "MFTL ab%");
    std::printf("----------+--------------+------------+-----------\n");

    for (ClockKind clocks :
         {ClockKind::Perfect, ClockKind::Dtp, ClockKind::PtpHw,
          ClockKind::PtpSw, ClockKind::Ntp}) {
        double aborts[2] = {0, 0};
        double skew = 0;
        int idx = 0;
        for (BackendKind backend :
             {BackendKind::Dram, BackendKind::Mftl}) {
            ClusterConfig cfg;
            cfg.numShards = 1;
            cfg.replicasPerShard = 3;
            cfg.numClients = 20;
            cfg.backend = backend;
            cfg.clocks = clocks;
            cfg.numKeys = keys;
            cfg.seed = seed;

            Cluster cluster(cfg);
            cluster.populate();
            cluster.start();

            RetwisConfig retwis;
            retwis.alpha = alpha;
            retwis.numKeys = keys;
            retwis.seed = seed + 100;
            RetwisWorkload fleet(cluster, retwis);
            fleet.start();
            cluster.sim().runUntil(cluster.sim().now() + warmup);
            fleet.resetMeasurement();
            cluster.sim().runFor(measure);
            aborts[idx++] = fleet.abortRate() * 100.0;
            skew = cluster.avgClientSkew() / 1000.0;
        }
        std::printf("%9s | %12.2f | %9.2f%% | %9.2f%%\n",
                    workload::clockName(clocks), skew, aborts[0],
                    aborts[1]);
        report.addRow()
            .set("clocks", workload::clockName(clocks))
            .set("avg_skew_us", skew)
            .set("dram_abort_pct", aborts[0])
            .set("mftl_abort_pct", aborts[1]);
    }
    std::printf(
        "\nShape: disciplines whose skew sits below the write window\n"
        "(DTP, PTP-hw, PTP-sw) are indistinguishable from perfect\n"
        "clocks — their aborts are genuine OCC conflicts; NTP's\n"
        "millisecond skew adds a large spurious-abort component on\n"
        "top (Figure 1's model).\n");
    report.write(args);
    return 0;
}
