/**
 * @file
 * Chaos sweep: fault scenarios x workloads x clock presets, each cell
 * a private cluster driven by a deterministic ChaosEngine schedule
 * (docs/CHAOS.md), with the invariant monitor attached throughout.
 *
 * Two oracles gate every cell:
 *  - correctness: zero InvariantMonitor violations (commit-timestamp
 *    monotonicity, snapshot reads, replication-before-ack, SSD queue
 *    bound) no matter what the fault does;
 *  - availability: the abort rate may not degrade beyond a
 *    per-scenario bound over the fault-free baseline with the same
 *    workload and clock preset (crash-induced *failures* are reported
 *    separately and never counted as aborts).
 *
 * The process exits non-zero if any cell breaks either oracle, so CI
 * can gate on it directly.
 *
 * Determinism: every cell derives its seeds from its coordinates, all
 * fault randomness comes from the cell's ChaosEngine streams, and
 * perfect-clock cells run under --sim-threads=N partitioned DES. The
 * --json report is byte-identical for every --jobs value and for
 * every --sim-threads >= 1 (CI holds 1 vs 8); neither flag is ever
 * written into the report.
 *
 * Report schema: "milana-chaos-v1" — params/rows like
 * milana-bench-v1, plus a "summary" verdict object.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sweep_runner.hh"
#include "common/chaos.hh"
#include "common/invariant_monitor.hh"
#include "common/json.hh"
#include "common/trace.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::kSecond;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

namespace {

struct Scenario
{
    const char *name;
    /** Chaos schedule (times relative to measurement start). */
    const char *schedule;
    /** Needs misbehaving clocks: run under PTP/NTP ensembles only
     *  (clock faults are no-ops with Perfect clocks). Also set for
     *  crash+failover, whose recovery depends on lease timing. */
    bool ensembleOnly = false;
    /** Max allowed abort-rate degradation over baseline, in
     *  percentage points. */
    double boundPp = 10.0;
};

/** The fault vocabulary, one scenario per kind (plus combinations).
 *  Fault windows sit inside [200ms, 700ms] so a 1-second measurement
 *  covers inject + heal + aftermath. */
const Scenario kScenarios[] = {
    {"crash_restart", "at 200ms crash backup:0:0 for 300ms", false,
     10.0},
    {"crash_failover", "at 200ms crash primary:0 failover", true, 25.0},
    {"partition_sym", "at 200ms partition client:2 servers for 250ms",
     false, 10.0},
    {"partition_asym",
     "at 200ms partition node:* client:2 oneway for 250ms", false,
     10.0},
    {"delay_spike", "at 200ms delay all factor=8 for 300ms", false,
     12.0},
    {"clock_step", "at 250ms clock-step clock:0 by=4ms for 300ms", true,
     60.0},
    {"clock_stuck", "at 250ms clock-stuck clock:1 for 300ms", true,
     60.0},
    {"clock_runaway", "at 200ms clock-drift clock:0 ppm=500 for 400ms",
     true, 40.0},
    {"ptp_holdover",
     "at 200ms master-down for 400ms\n"
     "at 250ms clock-drift clock:2 ppm=200 for 300ms",
     true, 40.0},
    {"ssd_slow_channel",
     "at 200ms ssd-slow servers channel=1 factor=20 for 400ms", false,
     15.0},
    {"ssd_read_retry",
     "at 200ms ssd-retry servers prob=0.5 retries=4 for 400ms", false,
     15.0},
    {"ssd_gc_storm", "at 200ms ssd-gc servers for 300ms", false, 15.0},
};

struct WorkloadMix
{
    const char *name;
    double alpha;
    bool readHeavy;
};

const WorkloadMix kWorkloads[] = {
    {"mix", 0.7, false},
    {"readheavy", 0.9, true},
};

/** Baseline presets: every preset any scenario can run under. */
const ClockKind kBaselinePresets[] = {ClockKind::Perfect,
                                      ClockKind::PtpSw, ClockKind::Ntp};

struct CellSpec
{
    const Scenario *scenario; ///< null = fault-free baseline
    const WorkloadMix *mix;
    ClockKind clocks;
};

struct CellResult
{
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t failed = 0;
    std::uint64_t readFailures = 0;
    double abortPct = 0;
    double skewUs = 0;
    std::uint64_t injections = 0;
    std::uint64_t heals = 0;
    std::uint64_t clockSuspectAborts = 0;
    std::uint64_t faultActiveAborts = 0;
    std::uint64_t violations = 0;
    std::uint64_t traceDropped = 0;
};

CellResult
runCell(const CellSpec &spec, std::size_t cellIndex, std::uint64_t keys,
        common::Duration warmup, common::Duration measure,
        std::uint64_t seed, std::uint64_t chaosSeed,
        std::uint32_t simThreads)
{
    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 3;
    cfg.numClients = 8;
    cfg.backend = BackendKind::Mftl;
    cfg.clocks = spec.clocks;
    cfg.numKeys = keys;
    cfg.seed = seed;
    // Partitioned DES only fits Perfect clocks; the partition count is
    // topology-derived, so any simThreads >= 1 is byte-identical.
    cfg.simThreads = spec.clocks == ClockKind::Perfect ? simThreads : 0;

    // The monitor observes every append (classic) or the merged stream
    // (partitioned) — the ring is sized so nothing is evicted before
    // the merge in partitioned mode.
    common::TraceLog trace(cfg.simThreads > 0 ? (1u << 21) : (1u << 16));
    cfg.trace = &trace;
    common::InvariantMonitor::Config mcfg;
    mcfg.checkSnapshotReads = true;
    mcfg.checkReplicationBeforeAck = true;
    mcfg.failFast = false; // count everything; the sweep fails at exit
    common::InvariantMonitor monitor(mcfg, nullptr);
    monitor.attach(trace);

    common::ChaosEngine chaos(chaosSeed + cellIndex);
    if (spec.scenario != nullptr) {
        std::string error;
        if (!chaos.parse(spec.scenario->schedule, &error)) {
            std::fprintf(stderr, "chaos_sweep: scenario %s: %s\n",
                         spec.scenario->name, error.c_str());
            std::exit(2);
        }
        cfg.chaos = &chaos;
    }

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = spec.mix->alpha;
    retwis.readHeavy = spec.mix->readHeavy;
    retwis.numKeys = keys;
    retwis.seed = seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.runUntil(cluster.now() + warmup);
    fleet.resetMeasurement();
    cluster.resetStats();
    if (spec.scenario != nullptr)
        chaos.arm(cluster.now());
    cluster.runFor(measure);
    cluster.finishTrace();

    const common::StatSet clients = cluster.clientStats();
    const common::StatSet servers = cluster.serverStats();
    CellResult r;
    r.committed = fleet.totalCommits();
    r.aborted = fleet.totalAborts();
    r.failed = clients.counterValue("txn.failed");
    r.readFailures = clients.counterValue("txn.read_failures");
    r.abortPct = fleet.abortRate() * 100.0;
    r.skewUs = cluster.avgClientSkew() / 1000.0;
    r.injections = chaos.injections();
    r.heals = chaos.heals();
    r.clockSuspectAborts =
        servers.counterValue("milana.abort_clock_suspect");
    r.faultActiveAborts =
        clients.counterValue("txn.fault_active_aborts");
    r.violations = monitor.violationCount();
    // Classic-mode ring evictions are harmless (the monitor observes
    // every append before eviction); what invalidates the verdict is
    // events lost before the partitioned merge could surface them.
    r.traceDropped = cluster.traceEventsLost();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys = args.getInt("keys", 4'000);
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure = args.getInt("seconds", 1) * kSecond;
    const std::uint64_t seed = args.getInt("seed", 1);
    const std::uint64_t chaosSeed = args.getInt("chaos-seed", 42);
    const auto simThreads =
        static_cast<std::uint32_t>(args.getInt("sim-threads", 0));

    // Cell list: fault-free baselines first (one per preset x
    // workload), then every scenario under its two eligible presets.
    std::vector<CellSpec> cells;
    for (const WorkloadMix &mix : kWorkloads)
        for (ClockKind preset : kBaselinePresets)
            cells.push_back({nullptr, &mix, preset});
    for (const Scenario &scenario : kScenarios) {
        const ClockKind presetA =
            scenario.ensembleOnly ? ClockKind::PtpSw
                                  : ClockKind::Perfect;
        const ClockKind presetB =
            scenario.ensembleOnly ? ClockKind::Ntp : ClockKind::PtpSw;
        for (const WorkloadMix &mix : kWorkloads) {
            cells.push_back({&scenario, &mix, presetA});
            cells.push_back({&scenario, &mix, presetB});
        }
    }

    bench::printHeader(
        "Chaos sweep: fault scenarios x workloads x clock presets\n"
        "oracles: zero invariant violations; abort degradation within "
        "per-scenario bound");

    bench::SweepRunner runner(bench::jobsFromArgs(args));
    std::vector<CellResult> results(cells.size());
    runner.run(cells.size(), [&](std::size_t i) {
        results[i] = runCell(cells[i], i, keys, warmup, measure, seed,
                             chaosSeed, simThreads);
    });

    // Baseline lookup: abort rate of the fault-free cell with the same
    // workload and preset.
    const auto baselineFor = [&](const CellSpec &spec) -> double {
        for (std::size_t i = 0; i < cells.size(); ++i)
            if (cells[i].scenario == nullptr &&
                cells[i].mix == spec.mix &&
                cells[i].clocks == spec.clocks)
                return results[i].abortPct;
        return 0.0;
    };

    std::printf("%-16s %-9s %-8s | %8s %8s %7s | %7s %9s | %4s %5s | "
                "%s\n",
                "scenario", "workload", "clocks", "commit", "abort",
                "failed", "abort%", "baseline%", "inj", "viol",
                "verdict");
    std::printf("-----------------------------------------------------"
                "---------------------------------------------\n");

    bench::KvList params;
    params.set("keys", keys)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure))
        .set("seed", seed)
        .set("chaos_seed", chaosSeed)
        .set("scenarios",
             static_cast<std::int64_t>(std::size(kScenarios)))
        .set("workloads",
             static_cast<std::int64_t>(std::size(kWorkloads)))
        .set("clock_presets",
             static_cast<std::int64_t>(std::size(kBaselinePresets)));

    std::vector<bench::KvList> rows;
    std::uint64_t violations = 0;
    std::uint64_t breaches = 0;
    std::uint64_t dropped = 0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const CellSpec &spec = cells[i];
        const CellResult &r = results[i];
        const bool baseline = spec.scenario == nullptr;
        const double base = baseline ? r.abortPct : baselineFor(spec);
        const double bound = baseline ? 0.0 : spec.scenario->boundPp;
        const double degradation = r.abortPct - base;
        const bool boundOk = baseline || degradation <= bound;
        const bool ok =
            boundOk && r.violations == 0 && r.traceDropped == 0;
        violations += r.violations;
        dropped += r.traceDropped;
        if (!boundOk)
            ++breaches;

        const char *name = baseline ? "none" : spec.scenario->name;
        const char *clocks = workload::clockName(spec.clocks);
        std::printf("%-16s %-9s %-8s | %8llu %8llu %7llu | %6.2f%% "
                    "%8.2f%% | %4llu %5llu | %s\n",
                    name, spec.mix->name, clocks,
                    static_cast<unsigned long long>(r.committed),
                    static_cast<unsigned long long>(r.aborted),
                    static_cast<unsigned long long>(r.failed),
                    r.abortPct, base,
                    static_cast<unsigned long long>(r.injections),
                    static_cast<unsigned long long>(r.violations),
                    ok ? "ok" : "FAIL");

        rows.emplace_back();
        rows.back()
            .set("scenario", name)
            .set("workload", spec.mix->name)
            .set("clocks", clocks)
            .set("committed", r.committed)
            .set("aborted", r.aborted)
            .set("failed", r.failed)
            .set("read_failures", r.readFailures)
            .set("abort_pct", r.abortPct)
            .set("baseline_abort_pct", base)
            .set("degradation_pp", baseline ? 0.0 : degradation)
            .set("bound_pp", bound)
            .set("avg_skew_us", r.skewUs)
            .set("injections", r.injections)
            .set("heals", r.heals)
            .set("clock_suspect_aborts", r.clockSuspectAborts)
            .set("fault_active_aborts", r.faultActiveAborts)
            .set("violations", r.violations)
            .set("trace_dropped", r.traceDropped)
            .set("pass", ok);
    }

    const bool pass = violations == 0 && breaches == 0 && dropped == 0;
    std::printf("\n%zu cells; %llu invariant violations, %llu abort-"
                "bound breaches, %llu dropped trace events -> %s\n",
                cells.size(),
                static_cast<unsigned long long>(violations),
                static_cast<unsigned long long>(breaches),
                static_cast<unsigned long long>(dropped),
                pass ? "PASS" : "FAIL");

    const std::string path = args.getString("json", "");
    if (!path.empty()) {
        std::ofstream os(path);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         path.c_str());
            return 1;
        }
        common::JsonWriter w(os);
        w.beginObject();
        w.key("schema").value("milana-chaos-v1");
        w.key("bench").value("chaos_sweep");
        w.key("params");
        params.writeTo(w);
        w.key("rows").beginArray();
        for (const bench::KvList &row : rows)
            row.writeTo(w);
        w.endArray();
        w.key("summary").beginObject();
        w.key("cells").value(static_cast<std::int64_t>(cells.size()));
        w.key("violations").value(static_cast<std::int64_t>(violations));
        w.key("bound_breaches").value(static_cast<std::int64_t>(breaches));
        w.key("trace_dropped").value(static_cast<std::int64_t>(dropped));
        w.key("pass").value(pass);
        w.endObject();
        w.endObject();
        os << "\n";
        std::printf("wrote %s\n", path.c_str());
    }

    return pass ? 0 : 1;
}
