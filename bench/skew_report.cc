/**
 * @file
 * Supporting measurement for section 5.2: realized average and maximum
 * pairwise clock skew for each synchronization discipline. The paper
 * reports 1.51 ms average skew under NTP and 53.2 us under
 * software-timestamped PTP; section 2.1 cites <1 us for hardware PTP
 * and ~150 ns for DTP [37].
 */

#include <cstdio>

#include "bench_util.hh"
#include "clocksync/sync.hh"
#include "sim/simulator.hh"

using clocksync::ClockEnsemble;
using clocksync::SyncConfig;
using common::kSecond;

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const int nodes = static_cast<int>(args.getInt("nodes", 5));
    const int seconds =
        static_cast<int>(args.getInt("seconds", 120));
    const std::uint64_t seed = args.getInt("seed", 42);

    bench::Report report("skew_report");
    report.params()
        .set("nodes", nodes)
        .set("seconds", seconds)
        .set("seed", seed);

    bench::printHeader(
        "Clock synchronization: realized pairwise skew (section 5.2)");
    std::printf("%10s | %12s | %12s | %10s\n", "discipline",
                "avg skew", "max skew", "paper avg");
    std::printf("-----------+--------------+--------------+----------\n");

    struct Row
    {
        SyncConfig cfg;
        const char *paper;
    };
    const Row rows[] = {
        {SyncConfig::ntp(), "1510 us"},
        {SyncConfig::ptpSoftware(), "53.2 us"},
        {SyncConfig::ptpHardware(), "< 1 us"},
        {SyncConfig::dtp(), "~0.15 us"},
    };

    for (const auto &row : rows) {
        sim::Simulator sim;
        common::Rng rng(seed);
        ClockEnsemble ensemble(sim, static_cast<std::size_t>(nodes),
                               row.cfg, rng);
        ensemble.start();
        sim.runFor(seconds * kSecond);
        std::printf("%10s | %9.2f us | %9.2f us | %10s\n",
                    row.cfg.name.c_str(),
                    ensemble.avgPairwiseSkew() / 1000.0,
                    static_cast<double>(ensemble.maxPairwiseSkew()) /
                        1000.0,
                    row.paper);
        report.addRow()
            .set("discipline", row.cfg.name)
            .set("avg_skew_us", ensemble.avgPairwiseSkew() / 1000.0)
            .set("max_skew_us",
                 static_cast<double>(ensemble.maxPairwiseSkew()) /
                     1000.0)
            .set("exchanges",
                 ensemble.stats().counterValue("clocksync.exchanges"));
    }
    report.write(args);
    return 0;
}
