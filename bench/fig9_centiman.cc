/**
 * @file
 * Reproduces Figure 9: MILANA's local validation vs Centiman's
 * watermark-based local validation, throughput vs contention.
 *
 * Setup mirrors the paper: 3 shards on MFTL, unreplicated (Centiman's
 * validators do not replicate), 30 Retwis instances, 75% read-only
 * mix, PTP clocks, Centiman watermark disseminated every 1,000
 * transactions.
 *
 * Paper shapes:
 *  - comparable throughput at low contention (alpha 0.4);
 *  - Centiman's local-validation success falls from ~89% to ~25% as
 *    alpha rises to 0.8, forcing remote validation, while MILANA
 *    validates 100% of read-only transactions locally and ends ~20%
 *    ahead; abort rates stay similar.
 *
 * --jobs=N runs sweep cells on N worker threads (sweep_runner.hh);
 * output is identical for any N.
 *
 * --sim-threads=N asks for partitioned DES inside each cell.
 * Partitioned mode requires Perfect clocks and no Centiman, and every
 * Figure 9 cell runs software PTP, so the guard in runCell forces
 * classic mode here; the flag exists so all figure benches share one
 * interface.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sweep_runner.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::kSecond;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

namespace {

struct Cell
{
    double txnPerSec = 0;
    double abortPct = 0;
    double localValidatedPct = 100.0;
};

Cell
runCell(bool centiman, double alpha, std::uint64_t keys,
        std::uint32_t clients, common::Duration warmup,
        common::Duration measure, std::uint64_t seed,
        std::uint32_t simThreads)
{
    ClusterConfig cfg;
    cfg.numShards = 3;
    cfg.replicasPerShard = 1; // no replication (Centiman parity)
    cfg.numClients = clients;
    cfg.backend = BackendKind::Mftl;
    cfg.clocks = ClockKind::PtpSw;
    cfg.numKeys = keys;
    cfg.seed = seed;
    cfg.centiman = centiman;
    cfg.centimanDisseminateEvery = 1000;
    // Partitioned DES is only legal under Perfect clocks and without
    // Centiman's shared watermark state; every Figure 9 cell is
    // disciplined, so this always resolves to classic mode.
    cfg.simThreads =
        cfg.clocks == ClockKind::Perfect && !cfg.centiman ? simThreads
                                                          : 0;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = alpha;
    retwis.numKeys = keys;
    retwis.readHeavy = true;
    retwis.seed = seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.runUntil(cluster.now() + warmup);
    fleet.resetMeasurement();
    cluster.resetStats();
    cluster.runFor(measure);

    Cell cell;
    cell.txnPerSec = static_cast<double>(fleet.totalCommits()) /
                     common::toSeconds(measure);
    cell.abortPct = fleet.abortRate() * 100.0;
    if (centiman) {
        const auto stats = cluster.clientStats();
        const double local = static_cast<double>(
            stats.counterValue("centiman.local_validated"));
        const double remote = static_cast<double>(
            stats.counterValue("centiman.remote_validated"));
        cell.localValidatedPct =
            local + remote == 0 ? 0.0 : 100.0 * local / (local + remote);
    }
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys =
        args.getInt("keys", args.has("full") ? 6'000'000 : 200'000);
    const std::uint32_t clients =
        static_cast<std::uint32_t>(args.getInt("clients", 30));
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure =
        args.getInt("seconds", args.has("full") ? 60 : 2) * kSecond;
    const std::uint64_t seed = args.getInt("seed", 1);
    // Like --jobs, --sim-threads is not a report param: it must never
    // change results, so reports from different values must compare
    // byte-identical.
    const auto simThreads =
        static_cast<std::uint32_t>(args.getInt("sim-threads", 0));

    bench::Report report("fig9_centiman");
    report.params()
        .set("keys", keys)
        .set("clients", clients)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure))
        .set("seed", seed)
        .set("full", args.has("full"));

    bench::printHeader(
        "Figure 9: Local-validation techniques — MILANA vs Centiman\n"
        "3 shards (MFTL, unreplicated), 30 Retwis instances, 75% "
        "read-only");
    std::printf("%7s | %10s %10s | %9s | %8s %8s\n", "alpha",
                "MILANA t/s", "Centi t/s", "Centi LV%", "MIL ab%",
                "Cen ab%");
    std::printf("--------+-----------------------+-----------+"
                "------------------\n");

    const std::vector<double> alphas = {0.4, 0.5, 0.6, 0.7, 0.8};
    bench::SweepRunner runner(bench::jobsFromArgs(args));
    std::vector<Cell> milanaCells(alphas.size());
    std::vector<Cell> centiCells(alphas.size());
    runner.run(alphas.size() * 2, [&](std::size_t i) {
        const bool centiman = (i % 2 != 0);
        Cell cell = runCell(centiman, alphas[i / 2], keys, clients,
                            warmup, measure, seed, simThreads);
        (centiman ? centiCells : milanaCells)[i / 2] = cell;
    });

    for (std::size_t i = 0; i < alphas.size(); ++i) {
        const double alpha = alphas[i];
        const Cell &milana = milanaCells[i];
        const Cell &centi = centiCells[i];
        std::printf("%7.2f | %10.0f %10.0f | %8.1f%% | %7.2f%% "
                    "%7.2f%%\n",
                    alpha, milana.txnPerSec, centi.txnPerSec,
                    centi.localValidatedPct, milana.abortPct,
                    centi.abortPct);
        report.addRow()
            .set("alpha", alpha)
            .set("milana_txn_per_sec", milana.txnPerSec)
            .set("centiman_txn_per_sec", centi.txnPerSec)
            .set("milana_abort_pct", milana.abortPct)
            .set("centiman_abort_pct", centi.abortPct)
            .set("milana_local_validated_pct", milana.localValidatedPct)
            .set("centiman_local_validated_pct",
                 centi.localValidatedPct);
    }
    std::printf(
        "\nPaper (Figure 9): equal at alpha=0.4; Centiman's LV success\n"
        "drops 89%% -> 25%% with contention, MILANA stays at 100%% and\n"
        "ends ~20%% ahead in throughput; abort rates similar.\n");
    report.write(args);
    return 0;
}
