/**
 * @file
 * Reproduces Figure 7: MILANA transaction abort rates, PTP vs NTP
 * clock synchronization, across Retwis contention levels, for the
 * three storage backends (DRAM, VFTL, MFTL).
 *
 * Setup mirrors the paper: one shard with 1 primary + 2 backups,
 * 20 Retwis client instances (each with its own disciplined clock),
 * retry-same-keys on abort.
 *
 * Paper shapes:
 *  - PTP aborts well below NTP everywhere (up to 43% lower);
 *  - under NTP the DRAM backend is worst: its fast writes make the
 *    millisecond skew dominate (Figure 1's epsilon >> t_w);
 *  - VFTL slightly worse than MFTL (lower effective write latency).
 * Also prints the realized average client skew per discipline
 * (paper: NTP 1.51 ms, software PTP 53.2 us).
 *
 * --jobs=N runs sweep cells on N worker threads (sweep_runner.hh);
 * output is identical for any N.
 *
 * --sim-threads=N asks for partitioned DES inside each cell.
 * Partitioned mode requires Perfect clocks (disciplined clocks couple
 * nodes through shared sync state), and every Figure 7 cell runs PTP
 * or NTP, so the guard in runCell forces classic mode here; the flag
 * exists so all figure benches share one interface.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "sweep_runner.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::kSecond;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

namespace {

struct Cell
{
    double abortPct = 0;
    double skewUs = 0;
};

Cell
runCell(BackendKind backend, ClockKind clocks, double alpha,
        std::uint64_t keys, std::uint32_t clients,
        common::Duration warmup, common::Duration measure,
        std::uint64_t seed, std::uint32_t simThreads)
{
    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 3; // 1 primary + 2 backups (paper)
    cfg.numClients = clients;
    cfg.backend = backend;
    cfg.clocks = clocks;
    cfg.numKeys = keys;
    cfg.seed = seed;
    // Partitioned DES is only legal under Perfect clocks; disciplined
    // cells (all of Figure 7) run classic regardless of the flag.
    cfg.simThreads =
        cfg.clocks == ClockKind::Perfect ? simThreads : 0;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = alpha;
    retwis.numKeys = keys;
    retwis.seed = seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.runUntil(cluster.now() + warmup);
    fleet.resetMeasurement();
    cluster.runFor(measure);

    Cell cell;
    cell.abortPct = fleet.abortRate() * 100.0;
    cell.skewUs = cluster.avgClientSkew() / 1000.0;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys =
        args.getInt("keys", args.has("full") ? 2'000'000 : 20'000);
    const std::uint32_t clients =
        static_cast<std::uint32_t>(args.getInt("clients", 20));
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure =
        args.getInt("seconds", args.has("full") ? 60 : 4) * kSecond;
    const std::uint64_t seed = args.getInt("seed", 1);
    // Like --jobs, --sim-threads is not a report param: it must never
    // change results, so reports from different values must compare
    // byte-identical.
    const auto simThreads =
        static_cast<std::uint32_t>(args.getInt("sim-threads", 0));

    bench::Report report("fig7_ptp_vs_ntp");
    report.params()
        .set("keys", keys)
        .set("clients", clients)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure))
        .set("seed", seed)
        .set("full", args.has("full"));

    bench::printHeader(
        "Figure 7: PTP vs NTP — MILANA transaction abort rates (%)\n"
        "1 primary + 2 backups, 20 Retwis instances, "
        "retry-same-keys");
    std::printf("%7s | %15s | %15s | %15s\n", "", "DRAM", "VFTL",
                "MFTL");
    std::printf("%7s | %7s %7s | %7s %7s | %7s %7s\n", "alpha", "PTP",
                "NTP", "PTP", "NTP", "PTP", "NTP");
    std::printf("--------+-----------------+-----------------+"
                "----------------\n");

    struct Coord
    {
        double alpha;
        BackendKind backend;
    };
    std::vector<Coord> coords;
    for (double alpha : {0.5, 0.7, 0.9, 0.99}) {
        for (BackendKind backend :
             {BackendKind::Dram, BackendKind::Vftl, BackendKind::Mftl})
            coords.push_back({alpha, backend});
    }

    bench::SweepRunner runner(bench::jobsFromArgs(args));
    std::vector<Cell> ptpCells(coords.size());
    std::vector<Cell> ntpCells(coords.size());
    runner.run(coords.size() * 2, [&](std::size_t i) {
        const Coord &c = coords[i / 2];
        const ClockKind clocks =
            (i % 2 == 0) ? ClockKind::PtpSw : ClockKind::Ntp;
        Cell cell = runCell(c.backend, clocks, c.alpha, keys, clients,
                            warmup, measure, seed, simThreads);
        ((i % 2 == 0) ? ptpCells : ntpCells)[i / 2] = cell;
    });

    for (std::size_t row = 0; row < coords.size(); row += 3) {
        for (std::size_t b = 0; b < 3; ++b) {
            const Coord &c = coords[row + b];
            report.addRow()
                .set("alpha", c.alpha)
                .set("backend", workload::backendName(c.backend))
                .set("ptp_abort_pct", ptpCells[row + b].abortPct)
                .set("ntp_abort_pct", ntpCells[row + b].abortPct)
                .set("ptp_skew_us", ptpCells[row + b].skewUs)
                .set("ntp_skew_us", ntpCells[row + b].skewUs);
        }
        std::printf(
            "%7.2f | %6.2f%% %6.2f%% | %6.2f%% %6.2f%% | %6.2f%% "
            "%6.2f%%\n",
            coords[row].alpha, ptpCells[row].abortPct,
            ntpCells[row].abortPct, ptpCells[row + 1].abortPct,
            ntpCells[row + 1].abortPct, ptpCells[row + 2].abortPct,
            ntpCells[row + 2].abortPct);
    }
    // Matches the serial loop's behaviour: the skew summary comes from
    // the last cell run (alpha=0.99, MFTL).
    const double skew_ptp = ptpCells.back().skewUs;
    const double skew_ntp = ntpCells.back().skewUs;
    std::printf("\nRealized average client skew: PTP %.1f us, NTP %.1f "
                "us\n(paper section 5.2: PTP-sw 53.2 us, NTP 1510 "
                "us)\n",
                skew_ptp, skew_ntp);
    std::printf(
        "Paper (Figure 7): PTP's tighter sync lowers abort rates (up\n"
        "to 43%%); NTP hurts most on the fastest backend (DRAM).\n");
    report.write(args);
    return 0;
}
