/**
 * @file
 * Reproduces Figure 7: MILANA transaction abort rates, PTP vs NTP
 * clock synchronization, across Retwis contention levels, for the
 * three storage backends (DRAM, VFTL, MFTL).
 *
 * Setup mirrors the paper: one shard with 1 primary + 2 backups,
 * 20 Retwis client instances (each with its own disciplined clock),
 * retry-same-keys on abort.
 *
 * Paper shapes:
 *  - PTP aborts well below NTP everywhere (up to 43% lower);
 *  - under NTP the DRAM backend is worst: its fast writes make the
 *    millisecond skew dominate (Figure 1's epsilon >> t_w);
 *  - VFTL slightly worse than MFTL (lower effective write latency).
 * Also prints the realized average client skew per discipline
 * (paper: NTP 1.51 ms, software PTP 53.2 us).
 */

#include <cstdio>

#include "bench_util.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::kSecond;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

namespace {

struct Cell
{
    double abortPct = 0;
    double skewUs = 0;
};

Cell
runCell(BackendKind backend, ClockKind clocks, double alpha,
        std::uint64_t keys, std::uint32_t clients,
        common::Duration warmup, common::Duration measure,
        std::uint64_t seed)
{
    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 3; // 1 primary + 2 backups (paper)
    cfg.numClients = clients;
    cfg.backend = backend;
    cfg.clocks = clocks;
    cfg.numKeys = keys;
    cfg.seed = seed;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = alpha;
    retwis.numKeys = keys;
    retwis.seed = seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.sim().runUntil(cluster.sim().now() + warmup);
    fleet.resetMeasurement();
    cluster.sim().runFor(measure);

    Cell cell;
    cell.abortPct = fleet.abortRate() * 100.0;
    cell.skewUs = cluster.avgClientSkew() / 1000.0;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t keys =
        args.getInt("keys", args.has("full") ? 2'000'000 : 20'000);
    const std::uint32_t clients =
        static_cast<std::uint32_t>(args.getInt("clients", 20));
    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure =
        args.getInt("seconds", args.has("full") ? 60 : 4) * kSecond;
    const std::uint64_t seed = args.getInt("seed", 1);

    bench::Report report("fig7_ptp_vs_ntp");
    report.params()
        .set("keys", keys)
        .set("clients", clients)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", common::toSeconds(measure))
        .set("seed", seed)
        .set("full", args.has("full"));

    bench::printHeader(
        "Figure 7: PTP vs NTP — MILANA transaction abort rates (%)\n"
        "1 primary + 2 backups, 20 Retwis instances, "
        "retry-same-keys");
    std::printf("%7s | %15s | %15s | %15s\n", "", "DRAM", "VFTL",
                "MFTL");
    std::printf("%7s | %7s %7s | %7s %7s | %7s %7s\n", "alpha", "PTP",
                "NTP", "PTP", "NTP", "PTP", "NTP");
    std::printf("--------+-----------------+-----------------+"
                "----------------\n");

    double skew_ptp = 0, skew_ntp = 0;
    for (double alpha : {0.5, 0.7, 0.9, 0.99}) {
        double cells[3][2];
        int b = 0;
        for (BackendKind backend :
             {BackendKind::Dram, BackendKind::Vftl, BackendKind::Mftl}) {
            const Cell ptp = runCell(backend, ClockKind::PtpSw, alpha,
                                     keys, clients, warmup, measure,
                                     seed);
            const Cell ntp = runCell(backend, ClockKind::Ntp, alpha,
                                     keys, clients, warmup, measure,
                                     seed);
            cells[b][0] = ptp.abortPct;
            cells[b][1] = ntp.abortPct;
            skew_ptp = ptp.skewUs;
            skew_ntp = ntp.skewUs;
            report.addRow()
                .set("alpha", alpha)
                .set("backend", workload::backendName(backend))
                .set("ptp_abort_pct", ptp.abortPct)
                .set("ntp_abort_pct", ntp.abortPct)
                .set("ptp_skew_us", ptp.skewUs)
                .set("ntp_skew_us", ntp.skewUs);
            ++b;
        }
        std::printf(
            "%7.2f | %6.2f%% %6.2f%% | %6.2f%% %6.2f%% | %6.2f%% "
            "%6.2f%%\n",
            alpha, cells[0][0], cells[0][1], cells[1][0], cells[1][1],
            cells[2][0], cells[2][1]);
    }
    std::printf("\nRealized average client skew: PTP %.1f us, NTP %.1f "
                "us\n(paper section 5.2: PTP-sw 53.2 us, NTP 1510 "
                "us)\n",
                skew_ptp, skew_ntp);
    std::printf(
        "Paper (Figure 7): PTP's tighter sync lowers abort rates (up\n"
        "to 43%%); NTP hurts most on the fastest backend (DRAM).\n");
    report.write(args);
    return 0;
}
