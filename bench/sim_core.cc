/**
 * @file
 * Simulator-core microbenchmark: raw event throughput and per-event
 * heap traffic for the DES hot paths the whole reproduction stands on.
 *
 * Scenarios:
 *  - timer_ring:          N self-rescheduling timers (the steady-state
 *                         shape of GC sweeps, lease renewals, clock
 *                         sync). The pass/fail bar for "zero heap
 *                         allocations per steady-state timer event".
 *  - same_instant_burst:  fan-out of zero-delay events at one instant
 *                         (future resolution storms, semaphore pumps) —
 *                         exercises the event queue's same-instant path.
 *  - future_pingpong:     promise/future resolve + co_await per
 *                         iteration — exercises FutureState allocation.
 *  - timeout_race:        Future::withTimeout where the value beats the
 *                         timer — the combinator's bookkeeping cost.
 *  - partitioned_ring:    4 partitions under the PartitionedScheduler
 *                         (one worker thread — this measures the
 *                         window/merge machinery, not parallel
 *                         speed-up): self-rescheduling timers plus one
 *                         cross-partition post per tick around the
 *                         ring. Tracks the mailbox + window-barrier
 *                         overhead per event. The ring's edges are
 *                         declared in a per-edge lookahead matrix, so
 *                         bounds come from the min-plus closure.
 *  - partitioned_idle:    the same ring with one 100us timer per
 *                         partition against a 1us lookahead — long
 *                         empty stretches the adaptive engine must
 *                         jump in one window advance each (the
 *                         idle-gap-skipping bar: allocs/event stays 0
 *                         and skipped windows dominate executed ones).
 *  - metrics_ring:        timer_ring with the metrics plane on: every
 *                         tick bumps counters and a histogram in a
 *                         StatSet a MetricsRegistry samples on a fixed
 *                         interval. The pass/fail bar for "zero heap
 *                         allocations per event with sampling enabled"
 *                         (pre-sized rings, pointer-keyed snapshot
 *                         maps).
 *
 * Heap traffic is measured by interposing global operator new/delete in
 * this binary (counts + bytes), so "allocs/event" is exact, not
 * sampled. Wall-clock events/sec is the headline number tracked by
 * BENCH_sim_core.json and the CI regression gate (>20% drop fails).
 *
 * Flags: --events=N per-scenario target (default 2,000,000), --full
 * (10x), --json=PATH (milana-bench-v1).
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "common/types.hh"
#include "sim/future.hh"
#include "sim/partition.hh"
#include "sim/simulator.hh"
#include "sim/sync.hh"
#include "sim/task.hh"

// ---------------------------------------------------------------------
// Interposed allocation counter. Every global new/delete in this binary
// funnels through here; the scenarios read deltas around the measured
// window.
// ---------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_allocCalls{0};
std::atomic<std::uint64_t> g_allocBytes{0};
std::atomic<std::uint64_t> g_freeCalls{0};

void *
countedAlloc(std::size_t size)
{
    g_allocCalls.fetch_add(1, std::memory_order_relaxed);
    g_allocBytes.fetch_add(size, std::memory_order_relaxed);
    void *p = std::malloc(size ? size : 1);
    if (!p)
        std::abort();
    return p;
}

void
countedFree(void *p) noexcept
{
    if (!p)
        return;
    g_freeCalls.fetch_add(1, std::memory_order_relaxed);
    std::free(p);
}

} // namespace

void *operator new(std::size_t size) { return countedAlloc(size); }
void *operator new[](std::size_t size) { return countedAlloc(size); }
void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}
void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return countedAlloc(size);
}
void operator delete(void *p) noexcept { countedFree(p); }
void operator delete[](void *p) noexcept { countedFree(p); }
void operator delete(void *p, std::size_t) noexcept { countedFree(p); }
void operator delete[](void *p, std::size_t) noexcept { countedFree(p); }
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    countedFree(p);
}

namespace {

using common::Duration;
using common::kMicrosecond;

struct ScenarioResult
{
    std::string name;
    std::uint64_t events = 0;
    double seconds = 0;
    double allocsPerEvent = 0;
    double bytesPerEvent = 0;
};

struct AllocSnapshot
{
    std::uint64_t calls;
    std::uint64_t bytes;

    static AllocSnapshot
    take()
    {
        return {g_allocCalls.load(std::memory_order_relaxed),
                g_allocBytes.load(std::memory_order_relaxed)};
    }
};

double
wallSeconds(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/**
 * Self-rescheduling timer: the steady-state periodic-process shape.
 * The capture is 32 bytes — matching this codebase's real timers (GC
 * sweeps, lease renewals, sync exchanges capture `this` plus an epoch
 * or stats pointer), which is past std::function's 16-byte SBO.
 */
struct Tick
{
    sim::Simulator *sim;
    std::uint64_t *fired;
    Duration period;
    std::uint64_t id;

    void
    operator()() const
    {
        ++*fired;
        sim->schedule(period, Tick{*this});
    }
};

ScenarioResult
timerRing(std::uint64_t target_events)
{
    sim::Simulator sim;
    std::uint64_t fired = 0;
    constexpr std::uint32_t kTimers = 64;
    for (std::uint32_t i = 0; i < kTimers; ++i) {
        // Spread periods so instants hit the time-ordered path as well
        // as the same-instant path.
        const Duration period = (1 + i % 7) * kMicrosecond;
        sim.schedule(period, Tick{&sim, &fired, period, i});
    }
    // Warm up: grows the queue's storage and fills any free lists so
    // the measured window sees steady state only.
    sim.runUntil(200 * kMicrosecond);

    // Each timer fires 1/period times per us; with ~9 timers on each
    // period in {1..7}us that is ~24 events/us of virtual time.
    const Duration horizon =
        static_cast<Duration>(target_events / 24 + 1) * kMicrosecond;

    const AllocSnapshot before = AllocSnapshot::take();
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t processed =
        sim.runUntil(sim.now() + horizon);
    const double secs = wallSeconds(start);
    const AllocSnapshot after = AllocSnapshot::take();

    ScenarioResult r;
    r.name = "timer_ring";
    r.events = processed;
    r.seconds = secs;
    r.allocsPerEvent =
        static_cast<double>(after.calls - before.calls) /
        static_cast<double>(processed ? processed : 1);
    r.bytesPerEvent = static_cast<double>(after.bytes - before.bytes) /
                      static_cast<double>(processed ? processed : 1);
    return r;
}

/** Zero-delay fan-out: one driver schedules a burst at "now". */
struct Burst
{
    sim::Simulator *sim;
    std::uint64_t *sink;

    void
    operator()() const
    {
        constexpr int kBurst = 256;
        for (int i = 0; i < kBurst; ++i) {
            std::uint64_t *s = sink;
            sim->schedule(0, [s] { ++*s; });
        }
        sim->schedule(kMicrosecond, Burst{*this});
    }
};

ScenarioResult
sameInstantBurst(std::uint64_t target_events)
{
    sim::Simulator sim;
    std::uint64_t sink = 0;
    sim.schedule(0, Burst{&sim, &sink});
    sim.runUntil(100 * kMicrosecond); // warm-up

    const Duration horizon =
        static_cast<Duration>(target_events / 257 + 1) * kMicrosecond;

    const AllocSnapshot before = AllocSnapshot::take();
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t processed = sim.runUntil(sim.now() + horizon);
    const double secs = wallSeconds(start);
    const AllocSnapshot after = AllocSnapshot::take();

    ScenarioResult r;
    r.name = "same_instant_burst";
    r.events = processed;
    r.seconds = secs;
    r.allocsPerEvent =
        static_cast<double>(after.calls - before.calls) /
        static_cast<double>(processed ? processed : 1);
    r.bytesPerEvent = static_cast<double>(after.bytes - before.bytes) /
                      static_cast<double>(processed ? processed : 1);
    return r;
}

/** One promise/future round trip per iteration. */
sim::Task<void>
pingpongLoop(sim::Simulator &sim, std::uint64_t iters,
             std::uint64_t *done)
{
    for (std::uint64_t i = 0; i < iters; ++i) {
        sim::Promise<std::uint64_t> p(sim);
        sim.schedule(kMicrosecond, [p, i]() mutable { p.set(i); });
        const std::uint64_t v = co_await p.future();
        *done += (v == i);
    }
}

ScenarioResult
futurePingpong(std::uint64_t target_events)
{
    // Each iteration is ~3 simulator events (set, waiter resume, next
    // loop's timer); size iterations accordingly.
    const std::uint64_t iters = target_events / 3 + 1;

    sim::Simulator sim;
    std::uint64_t done = 0;
    // Warm-up round primes the pool / queue storage.
    sim::spawn(pingpongLoop(sim, 1000, &done));
    sim.run();

    sim::spawn(pingpongLoop(sim, iters, &done));
    const AllocSnapshot before = AllocSnapshot::take();
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t processed = sim.run();
    const double secs = wallSeconds(start);
    const AllocSnapshot after = AllocSnapshot::take();

    if (done != iters + 1000)
        PANIC("future_pingpong lost iterations");

    ScenarioResult r;
    r.name = "future_pingpong";
    r.events = processed;
    r.seconds = secs;
    r.allocsPerEvent =
        static_cast<double>(after.calls - before.calls) /
        static_cast<double>(processed ? processed : 1);
    r.bytesPerEvent = static_cast<double>(after.bytes - before.bytes) /
                      static_cast<double>(processed ? processed : 1);
    return r;
}

/** withTimeout where the value always beats the timer. */
sim::Task<void>
timeoutLoop(sim::Simulator &sim, std::uint64_t iters, std::uint64_t *won)
{
    for (std::uint64_t i = 0; i < iters; ++i) {
        sim::Promise<int> p(sim);
        sim.schedule(kMicrosecond, [p]() mutable { p.set(7); });
        const auto v =
            co_await p.future().withTimeout(5 * kMicrosecond);
        *won += v.has_value();
    }
}

ScenarioResult
timeoutRace(std::uint64_t target_events)
{
    // ~4 events per iteration (set, value resume, dead timer, next
    // timer).
    const std::uint64_t iters = target_events / 4 + 1;

    sim::Simulator sim;
    std::uint64_t won = 0;
    sim::spawn(timeoutLoop(sim, 1000, &won));
    sim.run();

    sim::spawn(timeoutLoop(sim, iters, &won));
    const AllocSnapshot before = AllocSnapshot::take();
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t processed = sim.run();
    const double secs = wallSeconds(start);
    const AllocSnapshot after = AllocSnapshot::take();

    if (won != iters + 1000)
        PANIC("timeout_race lost a value");

    ScenarioResult r;
    r.name = "timeout_race";
    r.events = processed;
    r.seconds = secs;
    r.allocsPerEvent =
        static_cast<double>(after.calls - before.calls) /
        static_cast<double>(processed ? processed : 1);
    r.bytesPerEvent = static_cast<double>(after.bytes - before.bytes) /
                      static_cast<double>(processed ? processed : 1);
    return r;
}

/**
 * Conservative-window scheduler overhead: each partition runs
 * self-rescheduling timers whose every tick also posts one event to
 * the next partition around the ring, at exactly that edge's declared
 * lookahead (the worst case for window count — every window carries
 * mail). The ring declares a per-edge lookahead matrix — only the
 * p -> p+1 edges exist — so the scheduler's bounds come from the
 * min-plus closure (a full ring traversal), not from a global
 * all-pairs minimum.
 */
struct RingTick
{
    sim::PartitionedScheduler *sched;
    std::uint64_t *received; ///< dst partition's remote-event counter
    std::uint32_t part;
    Duration period;

    void
    operator()() const
    {
        sim::Simulator &sim = sched->partition(part);
        const std::uint32_t dst =
            (part + 1) % sched->numPartitions();
        std::uint64_t *r = received;
        sched->post(part, dst,
                    sim.now() + sched->edgeLookahead(part, dst),
                    common::TraceContext{}, [r] { ++*r; });
        sim.schedule(period, RingTick{*this});
    }
};

/** Declare the ring's only edges, p -> p+1, each at @p la. */
void
declareRingEdges(sim::PartitionedScheduler &sched, Duration la)
{
    const std::uint32_t parts = sched.numPartitions();
    std::vector<std::vector<Duration>> matrix(
        parts, std::vector<Duration>(
                   parts, sim::PartitionedScheduler::kNoEdge));
    for (std::uint32_t p = 0; p < parts; ++p)
        matrix[p][(p + 1) % parts] = la;
    sched.setEdgeLookahead(std::move(matrix));
}

ScenarioResult
partitionedRing(std::uint64_t target_events)
{
    constexpr std::uint32_t kParts = 4;
    constexpr std::uint32_t kTimersPerPart = 16;
    // One worker thread: the number is the coordination overhead of
    // the window/mailbox machinery itself, comparable against
    // timer_ring, not a parallel-speed-up figure.
    sim::PartitionedScheduler sched(kParts, 1, kMicrosecond);
    declareRingEdges(sched, kMicrosecond);

    std::vector<std::uint64_t> received(kParts, 0);
    for (std::uint32_t p = 0; p < kParts; ++p) {
        for (std::uint32_t i = 0; i < kTimersPerPart; ++i) {
            const Duration period = (1 + i % 7) * kMicrosecond;
            sched.partition(p).schedule(
                period, RingTick{&sched, &received[(p + 1) % kParts],
                                 p, period});
        }
    }
    sched.runUntil(200 * kMicrosecond); // warm-up

    // Each timer contributes ~2 events (tick + remote delivery); with
    // 4x16 timers on periods {1..7}us that is ~2 * 64/3.7 ~ 35
    // events/us of virtual time.
    const Duration horizon =
        static_cast<Duration>(target_events / 35 + 1) * kMicrosecond;

    const AllocSnapshot before = AllocSnapshot::take();
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t processed =
        sched.runUntil(sched.now() + horizon);
    const double secs = wallSeconds(start);
    const AllocSnapshot after = AllocSnapshot::take();

    std::uint64_t delivered = 0;
    for (const std::uint64_t r : received)
        delivered += r;
    if (delivered == 0)
        PANIC("partitioned_ring delivered no cross-partition events");

    ScenarioResult r;
    r.name = "partitioned_ring";
    r.events = processed;
    r.seconds = secs;
    r.allocsPerEvent =
        static_cast<double>(after.calls - before.calls) /
        static_cast<double>(processed ? processed : 1);
    r.bytesPerEvent = static_cast<double>(after.bytes - before.bytes) /
                      static_cast<double>(processed ? processed : 1);
    return r;
}

/**
 * Idle-gap skipping: the same 4-partition ring, but each partition
 * runs a single timer with a 100us period against a 1us lookahead, so
 * between consecutive ticks there is a ~99us stretch with no events
 * anywhere. A fixed-width window engine would cross ~100 barriers per
 * tick; the adaptive engine must jump each gap in one window advance.
 * The pass/fail bars: zero allocations per steady-state event, and
 * windowsSkipped() dominating windowsExecuted().
 */
ScenarioResult
partitionedIdle(std::uint64_t target_events)
{
    constexpr std::uint32_t kParts = 4;
    constexpr Duration kPeriod = 100 * kMicrosecond;
    sim::PartitionedScheduler sched(kParts, 1, kMicrosecond);
    declareRingEdges(sched, kMicrosecond);

    std::vector<std::uint64_t> received(kParts, 0);
    for (std::uint32_t p = 0; p < kParts; ++p)
        sched.partition(p).schedule(
            kPeriod,
            RingTick{&sched, &received[(p + 1) % kParts], p, kPeriod});
    sched.runUntil(10 * kPeriod); // warm-up

    // Each period fires one tick + one remote delivery per partition:
    // 8 events per 100us across the ring.
    const Duration horizon =
        static_cast<Duration>(target_events / 8 + 1) * kPeriod;

    const std::uint64_t windows_before = sched.windowsExecuted();
    const AllocSnapshot before = AllocSnapshot::take();
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t processed =
        sched.runUntil(sched.now() + horizon);
    const double secs = wallSeconds(start);
    const AllocSnapshot after = AllocSnapshot::take();
    const std::uint64_t windows =
        sched.windowsExecuted() - windows_before;

    std::uint64_t delivered = 0;
    for (const std::uint64_t r : received)
        delivered += r;
    if (delivered == 0)
        PANIC("partitioned_idle delivered no cross-partition events");
    // The whole point of the scenario: the engine may not pay a
    // window per lookahead of idle simulated time.
    if (sched.windowsSkipped() < 10 * windows)
        PANIC("partitioned_idle barely skipped: "
              << sched.windowsSkipped() << " skipped vs " << windows
              << " executed windows");

    ScenarioResult r;
    r.name = "partitioned_idle";
    r.events = processed;
    r.seconds = secs;
    r.allocsPerEvent =
        static_cast<double>(after.calls - before.calls) /
        static_cast<double>(processed ? processed : 1);
    r.bytesPerEvent = static_cast<double>(after.bytes - before.bytes) /
                      static_cast<double>(processed ? processed : 1);
    return r;
}

/**
 * timer_ring with the metrics plane sampling on top: ticks bump two
 * counters and record one histogram sample; a self-rescheduling
 * sampler snapshots the StatSet every simulated 100us. Steady state
 * must stay at zero allocations per event — the sampler reuses
 * pre-sized rings, pointer-keyed snapshot maps, and a scratch
 * histogram for the window delta.
 */
struct StatTick
{
    sim::Simulator *sim;
    common::StatSet *stats;
    std::uint64_t *fired;
    Duration period;

    void
    operator()() const
    {
        ++*fired;
        stats->counter("ops").inc();
        if (*fired % 16 == 0)
            stats->counter("slow").inc();
        stats->histogram("lat").record(
            static_cast<std::int64_t>(*fired % 4096));
        sim->schedule(period, StatTick{*this});
    }
};

struct SampleTick
{
    sim::Simulator *sim;
    common::MetricsRegistry *reg;

    void
    operator()() const
    {
        const Duration interval = reg->interval();
        const common::Time t = sim->now();
        reg->sample(t - interval, t);
        sim->schedule(interval, SampleTick{*this});
    }
};

ScenarioResult
metricsRing(std::uint64_t target_events)
{
    constexpr Duration kInterval = 100 * kMicrosecond;
    sim::Simulator sim;
    common::StatSet stats;
    common::MetricsRegistry reg(kInterval);
    reg.addStatSet("ring.", 0, stats);
    std::uint64_t fired = 0;
    reg.addGauge("ring.fired", 0, [&fired] {
        return static_cast<double>(fired);
    });

    constexpr std::uint32_t kTimers = 64;
    for (std::uint32_t i = 0; i < kTimers; ++i) {
        const Duration period = (1 + i % 7) * kMicrosecond;
        sim.schedule(period, StatTick{&sim, &stats, &fired, period});
    }
    sim.schedule(kInterval, SampleTick{&sim, &reg});
    // Warm up past several sampling windows so every series exists and
    // its ring storage is reserved before the measured window.
    sim.runUntil(5 * kInterval);

    const Duration horizon =
        static_cast<Duration>(target_events / 24 + 1) * kMicrosecond;

    const AllocSnapshot before = AllocSnapshot::take();
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t processed = sim.runUntil(sim.now() + horizon);
    const double secs = wallSeconds(start);
    const AllocSnapshot after = AllocSnapshot::take();

    if (reg.samples() < 5)
        PANIC("metrics_ring sampler never ran");

    ScenarioResult r;
    r.name = "metrics_ring";
    r.events = processed;
    r.seconds = secs;
    r.allocsPerEvent =
        static_cast<double>(after.calls - before.calls) /
        static_cast<double>(processed ? processed : 1);
    r.bytesPerEvent = static_cast<double>(after.bytes - before.bytes) /
                      static_cast<double>(processed ? processed : 1);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    const std::uint64_t target = static_cast<std::uint64_t>(
        args.getInt("events", args.has("full") ? 20'000'000 : 2'000'000));

    bench::Report report("sim_core");
    report.params().set("events", target).set("full", args.has("full"));

    bench::printHeader(
        "sim_core: DES kernel throughput and per-event heap traffic\n"
        "(allocs/event from an interposed operator new counter)");
    std::printf("%20s | %12s | %10s | %12s | %12s\n", "scenario",
                "events", "wall s", "events/sec", "allocs/event");
    std::printf("---------------------+--------------+------------+"
                "--------------+-------------\n");

    std::vector<ScenarioResult> results;
    results.push_back(timerRing(target));
    results.push_back(sameInstantBurst(target));
    results.push_back(futurePingpong(target));
    results.push_back(timeoutRace(target));
    results.push_back(partitionedRing(target));
    results.push_back(partitionedIdle(target));
    results.push_back(metricsRing(target));

    for (const ScenarioResult &r : results) {
        const double eps =
            static_cast<double>(r.events) / (r.seconds > 0 ? r.seconds : 1);
        std::printf("%20s | %12llu | %10.3f | %12.0f | %12.3f\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.events), r.seconds,
                    eps, r.allocsPerEvent);
        report.addRow()
            .set("scenario", r.name)
            .set("events", r.events)
            .set("seconds", r.seconds)
            .set("events_per_sec", eps)
            .set("allocs_per_event", r.allocsPerEvent)
            .set("bytes_per_event", r.bytesPerEvent);
    }

    report.write(args);
    return 0;
}
