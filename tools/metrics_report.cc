/**
 * @file
 * Offline analyzer for `milana-metrics-v1` time-series dumps
 * (--metrics=PATH on the benches and tools/milana-sim).
 *
 *   metrics-report [--sched] <metrics.json>
 *
 * Prints a windowed timeline correlating the transaction abort rate
 * (from the client.txn.committed / client.txn.aborted counter deltas,
 * summed across client nodes) with the instantaneous clock skew (the
 * clocksync.max_pairwise_skew_ns gauge when present, else max-min over
 * the per-node clocksync.offset_ns gauges), then the Pearson
 * correlation between the two. With --sched it also summarizes the
 * scheduler self-profiler series (sched.*) when the run was
 * partitioned. Exit codes: 0 ok, 1 I/O or parse error, 2 usage.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.hh"

namespace {

/** One parsed point of one series. */
struct Point
{
    std::int64_t windowStart = 0;
    std::int64_t windowEnd = 0;
    double value = 0.0; ///< counter delta or gauge value
    std::uint64_t count = 0;
    std::int64_t p50 = 0, p99 = 0, p999 = 0;
};

struct Series
{
    std::string name;
    std::uint32_t node = 0;
    std::string kind; ///< "counter" | "gauge" | "hist"
    bool deterministic = true;
    std::vector<Point> points;
};

bool
loadSeries(const common::JsonValue &arr, bool deterministic,
           std::vector<Series> &out, std::string &error)
{
    if (!arr.isArray()) {
        error = "\"series\" is not an array";
        return false;
    }
    for (std::size_t i = 0; i < arr.size(); ++i) {
        const common::JsonValue &s = arr[i];
        Series series;
        series.name = s.at("name").asString();
        series.node = static_cast<std::uint32_t>(s.at("node").asInt());
        series.kind = s.at("kind").asString();
        series.deterministic = deterministic;
        const common::JsonValue &pts = s.at("points");
        if (series.name.empty() || !pts.isArray()) {
            error = "malformed series entry #" + std::to_string(i);
            return false;
        }
        for (std::size_t j = 0; j < pts.size(); ++j) {
            const common::JsonValue &p = pts[j];
            Point point;
            point.windowStart = p.at("w").asInt();
            point.windowEnd = p.at("we").asInt();
            if (series.kind == "counter")
                point.value = static_cast<double>(p.at("d").asInt());
            else if (series.kind == "gauge")
                point.value = p.at("v").asDouble();
            else {
                point.count =
                    static_cast<std::uint64_t>(p.at("n").asInt());
                point.p50 = p.at("p50").asInt();
                point.p99 = p.at("p99").asInt();
                point.p999 = p.at("p999").asInt();
            }
            series.points.push_back(point);
        }
        out.push_back(std::move(series));
    }
    return true;
}

double
seconds(std::int64_t ns)
{
    return static_cast<double>(ns) / 1e9;
}

/** A proportional bar, e.g. "#####     " scaled to @p maxValue. */
std::string
bar(double value, double maxValue, int width)
{
    if (maxValue <= 0.0)
        return std::string(width, ' ');
    int n = static_cast<int>(std::lround(
        value / maxValue * static_cast<double>(width)));
    n = std::clamp(n, value > 0.0 ? 1 : 0, width);
    return std::string(static_cast<std::size_t>(n), '#') +
           std::string(static_cast<std::size_t>(width - n), ' ');
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    bool wantSched = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--sched") {
            wantSched = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            path.clear();
            break;
        }
    }
    if (path.empty()) {
        std::fprintf(
            stderr,
            "usage: metrics-report [--sched] <metrics.json>\n"
            "analyzes a milana-metrics-v1 time-series dump; see "
            "OBSERVABILITY.md\n"
            "  --sched  also summarize the scheduler self-profiler "
            "series\n");
        return 2;
    }

    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 1;
    }
    std::stringstream buffer;
    buffer << is.rdbuf();
    std::string error;
    const common::JsonValue doc =
        common::JsonValue::parse(buffer.str(), &error);
    if (doc.isNull() && !error.empty()) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    if (doc.at("schema").asString() != "milana-metrics-v1") {
        std::fprintf(stderr,
                     "error: %s: not a milana-metrics-v1 document\n",
                     path.c_str());
        return 1;
    }

    std::vector<Series> series;
    if (!loadSeries(doc.at("series"), true, series, error)) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    if (doc.has("nondeterministic") &&
        !loadSeries(doc.at("nondeterministic").at("series"), false,
                    series, error)) {
        std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }

    const std::int64_t interval = doc.at("interval_ns").asInt();
    std::size_t totalPoints = 0;
    for (const Series &s : series)
        totalPoints += s.points.size();
    std::printf("%s: %zu series, %zu points, interval %.0f ms\n",
                path.c_str(), series.size(), totalPoints,
                static_cast<double>(interval) / 1e6);

    // ---- per-window abort-rate vs skew timeline --------------------
    struct Window
    {
        std::int64_t end = 0;
        double committed = 0.0, aborted = 0.0;
        double maxSkew = 0.0;
        bool haveSkewGauge = false;
        double offsetMin = 0.0, offsetMax = 0.0;
        bool haveOffset = false;
    };
    std::map<std::int64_t, Window> windows; // keyed by windowStart

    for (const Series &s : series) {
        for (const Point &p : s.points) {
            Window &w = windows[p.windowStart];
            w.end = std::max(w.end, p.windowEnd);
            if (s.name == "client.txn.committed")
                w.committed += p.value;
            else if (s.name == "client.txn.aborted")
                w.aborted += p.value;
            else if (s.name == "clocksync.max_pairwise_skew_ns") {
                w.maxSkew = std::max(w.maxSkew, p.value);
                w.haveSkewGauge = true;
            } else if (s.name == "clocksync.offset_ns") {
                if (!w.haveOffset) {
                    w.offsetMin = w.offsetMax = p.value;
                    w.haveOffset = true;
                } else {
                    w.offsetMin = std::min(w.offsetMin, p.value);
                    w.offsetMax = std::max(w.offsetMax, p.value);
                }
            }
        }
    }
    // Fallback: derive max pairwise skew from per-node offsets when
    // the cluster-wide gauge is absent (partitioned runs).
    for (auto &[start, w] : windows) {
        (void)start;
        if (!w.haveSkewGauge && w.haveOffset)
            w.maxSkew = w.offsetMax - w.offsetMin;
    }

    double maxAbortPct = 0.0, maxSkewUs = 0.0;
    std::vector<std::pair<double, double>> samples; // (abort%, skew us)
    for (const auto &[start, w] : windows) {
        (void)start;
        const double total = w.committed + w.aborted;
        const double abortPct =
            total > 0.0 ? 100.0 * w.aborted / total : 0.0;
        const double skewUs = w.maxSkew / 1e3;
        if (total > 0.0)
            samples.emplace_back(abortPct, skewUs);
        maxAbortPct = std::max(maxAbortPct, abortPct);
        maxSkewUs = std::max(maxSkewUs, skewUs);
    }

    std::printf("\n--- abort rate vs clock skew, per %.0f ms window "
                "---\n",
                static_cast<double>(interval) / 1e6);
    std::printf("%10s %10s %10s %8s %-14s %10s\n", "t_start(s)",
                "commits/s", "aborts/s", "abort%", "", "skew(us)");
    for (const auto &[start, w] : windows) {
        const double width = seconds(w.end - start);
        if (width <= 0.0)
            continue;
        const double total = w.committed + w.aborted;
        const double abortPct =
            total > 0.0 ? 100.0 * w.aborted / total : 0.0;
        std::printf("%10.3f %10.0f %10.0f %7.2f%% %-14s %10.1f\n",
                    seconds(start), w.committed / width,
                    w.aborted / width, abortPct,
                    bar(abortPct, maxAbortPct, 14).c_str(),
                    w.maxSkew / 1e3);
    }

    // Pearson correlation of abort% against max skew across windows.
    if (samples.size() >= 2) {
        double meanA = 0.0, meanS = 0.0;
        for (const auto &[a, s] : samples) {
            meanA += a;
            meanS += s;
        }
        meanA /= static_cast<double>(samples.size());
        meanS /= static_cast<double>(samples.size());
        double cov = 0.0, varA = 0.0, varS = 0.0;
        for (const auto &[a, s] : samples) {
            cov += (a - meanA) * (s - meanS);
            varA += (a - meanA) * (a - meanA);
            varS += (s - meanS) * (s - meanS);
        }
        if (varA > 0.0 && varS > 0.0)
            std::printf("\nPearson(abort%%, skew) = %+.3f over %zu "
                        "windows\n",
                        cov / std::sqrt(varA * varS), samples.size());
        else
            std::printf("\nPearson(abort%%, skew) = n/a (%s variance "
                        "is zero over %zu windows)\n",
                        varA > 0.0 ? "skew" : "abort-rate",
                        samples.size());
    }

    // ---- optional scheduler self-profiler summary ------------------
    if (wantSched) {
        std::map<std::uint32_t, double> eventsByPart, mailByPart;
        double wallNs = 0.0, schedWindows = 0.0;
        double schedSkipped = 0.0, schedBarriers = 0.0;
        bool any = false;
        for (const Series &s : series) {
            for (const Point &p : s.points) {
                if (s.name == "sched.events") {
                    eventsByPart[s.node] += p.value;
                    any = true;
                } else if (s.name == "sched.mailbox_in") {
                    mailByPart[s.node] += p.value;
                    any = true;
                } else if (s.name == "sched.windows") {
                    schedWindows += p.value;
                    any = true;
                } else if (s.name == "sched.windows_skipped") {
                    schedSkipped += p.value;
                    any = true;
                } else if (s.name == "sched.barriers") {
                    schedBarriers += p.value;
                    any = true;
                } else if (s.name == "sched.window_wall_ns") {
                    wallNs += p.value;
                    any = true;
                }
            }
        }
        if (!any) {
            std::printf("\nno sched.* series (run was not "
                        "partitioned, or profiling was off)\n");
        } else {
            std::printf("\n--- scheduler self-profile ---\n");
            std::printf("%10s %14s %14s\n", "partition", "events",
                        "mailbox in");
            double totalEvents = 0.0;
            for (const auto &[part, events] : eventsByPart) {
                std::printf("%10u %14.0f %14.0f\n", part, events,
                            mailByPart.count(part)
                                ? mailByPart.at(part)
                                : 0.0);
                totalEvents += events;
            }
            std::printf("%10s %14.0f\n", "total", totalEvents);
            if (schedWindows > 0.0) {
                std::printf("windows executed: %.0f (%.1f events/"
                            "window)%s\n",
                            schedWindows, totalEvents / schedWindows,
                            wallNs > 0.0 ? "" : " [no wall-clock "
                                               "series]");
                // Skipped = fixed-width reference windows the adaptive
                // engine jumped over; barriers = multi-partition
                // windows, the only ones that ever wake workers.
                std::printf("windows skipped: %.0f (%.1fx fewer than "
                            "fixed-width)\n",
                            schedSkipped,
                            (schedWindows + schedSkipped) /
                                schedWindows);
                std::printf("worker barriers: %.0f (%.1f%% of "
                            "windows)\n",
                            schedBarriers,
                            100.0 * schedBarriers / schedWindows);
            }
            if (wallNs > 0.0 && schedWindows > 0.0)
                std::printf("wall clock in windows: %.1f ms (%.1f us/"
                            "window) [non-deterministic]\n",
                            wallNs / 1e6,
                            wallNs / 1e3 / schedWindows);
        }
    }
    return 0;
}
