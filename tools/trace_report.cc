/**
 * @file
 * trace-report — offline analysis of a milana-trace-v1 event log (the
 * --trace output of fig6_abort_vs_clients, milana-sim, or any harness
 * wired through ClusterConfig::trace).
 *
 * Reads JSON or CSV (chosen by file extension), pairs SpanBegin/SpanEnd
 * records, and prints:
 *
 *  - a per-layer breakdown (layer = the first dot-separated segment of
 *    the event name: milana, semel, flash, clocksync, ...) of span
 *    counts and latency quantiles;
 *  - a per-span-name latency table (count, mean, p50, p95, p99, max);
 *  - the transaction abort-reason split, from the tags of
 *    `milana.txn.commit` span-end events — the same vocabulary as the
 *    client txn.abort.<reason> counters, so the split can be checked
 *    against the bench's --json stat dump;
 *  - observed local-vs-true clock error of the traced nodes.
 *
 * The trace is a bounded recent window (the ring drops the oldest
 * events), so absolute counts cover the window, not the whole run;
 * proportions are what to compare. See OBSERVABILITY.md for a worked
 * example.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/histogram.hh"
#include "common/json.hh"

namespace {

struct Event
{
    std::uint64_t seq = 0;
    std::int64_t trueTime = 0;
    std::int64_t localTime = 0;
    std::uint32_t node = 0;
    char kind = 'I'; // 'I', 'B', 'E'
    std::uint64_t span = 0;
    std::string name;
    std::string tag;
    std::int64_t arg = 0;
};

struct Trace
{
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
    std::vector<Event> events;
};

bool
loadJson(const std::string &text, Trace &trace, std::string &error)
{
    const common::JsonValue doc = common::JsonValue::parse(text, &error);
    if (!doc.isObject())
        return false;
    if (doc.at("schema").asString() != "milana-trace-v1") {
        error = "not a milana-trace-v1 document";
        return false;
    }
    trace.recorded =
        static_cast<std::uint64_t>(doc.at("recorded").asInt());
    trace.dropped = static_cast<std::uint64_t>(doc.at("dropped").asInt());
    for (const common::JsonValue &e : doc.at("events").items()) {
        Event ev;
        ev.seq = static_cast<std::uint64_t>(e.at("seq").asInt());
        ev.trueTime = e.at("t").asInt();
        ev.localTime = e.at("lt").asInt();
        ev.node = static_cast<std::uint32_t>(e.at("node").asInt());
        ev.kind = e.at("kind").asString().empty()
                      ? 'I'
                      : e.at("kind").asString()[0];
        ev.span = static_cast<std::uint64_t>(e.at("span").asInt());
        ev.name = e.at("name").asString();
        ev.tag = e.at("tag").asString();
        ev.arg = e.at("arg").asInt();
        trace.events.push_back(std::move(ev));
    }
    return true;
}

bool
loadCsv(std::istream &is, Trace &trace, std::string &error)
{
    std::string line;
    if (!std::getline(is, line) ||
        line.rfind("seq,true_ns,local_ns", 0) != 0) {
        error = "missing trace CSV header";
        return false;
    }
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::vector<std::string> fields;
        std::size_t start = 0;
        for (std::size_t i = 0; i <= line.size(); ++i) {
            if (i == line.size() || line[i] == ',') {
                fields.push_back(line.substr(start, i - start));
                start = i + 1;
            }
        }
        if (fields.size() != 9) {
            error = "line " + std::to_string(lineno) + ": expected 9 "
                    "fields, got " + std::to_string(fields.size());
            return false;
        }
        Event ev;
        ev.seq = std::strtoull(fields[0].c_str(), nullptr, 10);
        ev.trueTime = std::strtoll(fields[1].c_str(), nullptr, 10);
        ev.localTime = std::strtoll(fields[2].c_str(), nullptr, 10);
        ev.node = static_cast<std::uint32_t>(
            std::strtoul(fields[3].c_str(), nullptr, 10));
        ev.kind = fields[4].empty() ? 'I' : fields[4][0];
        ev.span = std::strtoull(fields[5].c_str(), nullptr, 10);
        ev.name = fields[6];
        ev.tag = fields[7];
        ev.arg = std::strtoll(fields[8].c_str(), nullptr, 10);
        trace.events.push_back(std::move(ev));
    }
    trace.recorded = trace.events.size(); // CSV has no header counters
    trace.dropped = 0;
    return true;
}

std::string
layerOf(const std::string &name)
{
    const std::size_t dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

double
us(double ns)
{
    return ns / 1000.0;
}

void
printLatencyRow(const std::string &label, const common::Histogram &h)
{
    std::printf("%-28s %9llu %9.1f %9.1f %9.1f %9.1f %9.1f\n",
                label.c_str(),
                static_cast<unsigned long long>(h.count()),
                us(h.mean()), us(static_cast<double>(h.p50())),
                us(static_cast<double>(h.p95())),
                us(static_cast<double>(h.p99())),
                us(static_cast<double>(h.max())));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2 || std::string(argv[1]) == "--help") {
        std::fprintf(stderr,
                     "usage: trace-report <trace.json | trace.csv>\n"
                     "analyzes a milana-trace-v1 event log; see "
                     "OBSERVABILITY.md\n");
        return 2;
    }
    const std::string path = argv[1];

    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 1;
    }

    Trace trace;
    std::string error;
    const bool is_csv =
        path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0;
    if (is_csv) {
        if (!loadCsv(is, trace, error)) {
            std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                         error.c_str());
            return 1;
        }
    } else {
        std::stringstream buffer;
        buffer << is.rdbuf();
        if (!loadJson(buffer.str(), trace, error)) {
            std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                         error.c_str());
            return 1;
        }
    }

    if (trace.events.empty()) {
        std::printf("%s: empty trace\n", path.c_str());
        return 0;
    }

    std::int64_t t_min = trace.events.front().trueTime;
    std::int64_t t_max = t_min;
    for (const Event &e : trace.events) {
        t_min = std::min(t_min, e.trueTime);
        t_max = std::max(t_max, e.trueTime);
    }

    std::printf("%s: %zu events", path.c_str(), trace.events.size());
    if (trace.dropped != 0)
        std::printf(" (window of %llu recorded; %llu evicted)",
                    static_cast<unsigned long long>(trace.recorded),
                    static_cast<unsigned long long>(trace.dropped));
    std::printf("\ncovers %.3f ms of simulated time (t=%.3f..%.3f s)\n",
                static_cast<double>(t_max - t_min) / 1e6,
                static_cast<double>(t_min) / 1e9,
                static_cast<double>(t_max) / 1e9);

    // Pair spans; unmatched ends (begin evicted from the ring) and
    // unmatched begins (still open at snapshot) are counted, not fatal.
    std::map<std::uint64_t, const Event *> open;
    std::map<std::string, common::Histogram> byName;
    std::map<std::string, common::Histogram> byLayer;
    std::map<std::string, std::uint64_t> instants;
    std::map<std::string, std::uint64_t> commitTags;
    common::Histogram clockError;
    std::uint64_t spans = 0, orphanEnds = 0;

    for (const Event &e : trace.events) {
        if (e.localTime != e.trueTime)
            clockError.record(std::abs(e.localTime - e.trueTime));
        switch (e.kind) {
          case 'I':
            ++instants[e.name];
            break;
          case 'B':
            open[e.span] = &e;
            break;
          case 'E': {
            const auto it = open.find(e.span);
            if (it == open.end()) {
                ++orphanEnds;
                break;
            }
            const std::int64_t duration =
                e.trueTime - it->second->trueTime;
            open.erase(it);
            ++spans;
            byName[e.name].record(duration);
            byLayer[layerOf(e.name)].record(duration);
            if (e.name == "milana.txn.commit")
                ++commitTags[e.tag.empty() ? "?" : e.tag];
            break;
          }
          default:
            break;
        }
    }

    std::printf("\nspans: %llu paired, %llu still open, %llu ends "
                "missing their begin (evicted)\n",
                static_cast<unsigned long long>(spans),
                static_cast<unsigned long long>(open.size()),
                static_cast<unsigned long long>(orphanEnds));

    std::printf("\n--- per-layer span latency (us) ---\n");
    std::printf("%-28s %9s %9s %9s %9s %9s %9s\n", "layer", "count",
                "mean", "p50", "p95", "p99", "max");
    for (const auto &[layer, hist] : byLayer)
        printLatencyRow(layer, hist);

    std::printf("\n--- per-span latency (us) ---\n");
    std::printf("%-28s %9s %9s %9s %9s %9s %9s\n", "span", "count",
                "mean", "p50", "p95", "p99", "max");
    for (const auto &[name, hist] : byName)
        printLatencyRow(name, hist);

    if (!instants.empty()) {
        std::printf("\n--- instant events ---\n");
        for (const auto &[name, count] : instants)
            std::printf("%-28s %9llu\n", name.c_str(),
                        static_cast<unsigned long long>(count));
    }

    if (!commitTags.empty()) {
        std::uint64_t total = 0, aborted = 0;
        for (const auto &[tag, count] : commitTags) {
            total += count;
            if (tag != "committed" && tag != "failed")
                aborted += count;
        }
        std::printf("\n--- transaction outcomes (milana.txn.commit "
                    "spans) ---\n");
        for (const auto &[tag, count] : commitTags)
            std::printf("%-28s %9llu  (%5.2f%% of commits)\n",
                        tag.c_str(),
                        static_cast<unsigned long long>(count),
                        100.0 * static_cast<double>(count) /
                            static_cast<double>(total));
        if (aborted != 0) {
            std::printf("abort-reason split (%% of aborts):\n");
            for (const auto &[tag, count] : commitTags) {
                if (tag == "committed" || tag == "failed")
                    continue;
                std::printf("  %-26s %9llu  (%5.2f%%)\n", tag.c_str(),
                            static_cast<unsigned long long>(count),
                            100.0 * static_cast<double>(count) /
                                static_cast<double>(aborted));
            }
        }
    }

    if (clockError.count() != 0) {
        std::printf("\n--- observed |LocalTime - TrueTime| (us) ---\n");
        std::printf("%-28s %9llu %9.1f %9.1f %9.1f %9.1f %9.1f\n",
                    "clock error",
                    static_cast<unsigned long long>(clockError.count()),
                    us(clockError.mean()),
                    us(static_cast<double>(clockError.p50())),
                    us(static_cast<double>(clockError.p95())),
                    us(static_cast<double>(clockError.p99())),
                    us(static_cast<double>(clockError.max())));
    } else {
        std::printf("\nall events stamped with LocalTime == TrueTime "
                    "(perfect clocks)\n");
    }
    return 0;
}
