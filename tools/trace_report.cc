/**
 * @file
 * trace-report — offline analysis of a milana-trace event log (the
 * --trace output of fig6_abort_vs_clients, milana-sim, or any harness
 * wired through ClusterConfig::trace). Reads both milana-trace-v1 and
 * milana-trace-v2 documents (JSON or CSV, chosen by file extension).
 *
 * Default report:
 *
 *  - window coverage, with a prominent WARNING when the ring evicted
 *    events (the trace is a bounded recent window, so absolute counts
 *    cover the window, not the run; compare proportions);
 *  - per-layer and per-span-name latency tables (layer = first
 *    dot-separated segment of the event name);
 *  - transaction outcome/abort-reason split from `milana.txn.commit`
 *    end tags — same vocabulary as the client txn.abort.<reason>
 *    counters, so the split can be checked against --json stats;
 *  - the slowest traced transactions (their trace ids feed --txn=);
 *  - observed local-vs-true clock error.
 *
 * Options:
 *   --strict     exit 3 if the window is incomplete (dropped > 0)
 *   --txn=<id>   per-transaction timeline + critical-path breakdown
 *                (v2 traces only — needs the causal fields)
 *
 * See OBSERVABILITY.md for worked examples.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/histogram.hh"
#include "common/trace.hh"

using common::TraceEvent;
using common::TraceKind;

namespace {

bool
loadCsv(std::istream &is, common::ParsedTrace &trace, std::string &error)
{
    std::string line;
    if (!std::getline(is, line) ||
        line.rfind("seq,true_ns,local_ns", 0) != 0) {
        error = "missing trace CSV header";
        return false;
    }
    // v1 header has 9 columns; v2 adds trace,parent (after span) and
    // arg2 (last) for 12.
    const bool v2 = line.find(",trace,parent,") != std::string::npos;
    trace.schemaVersion = v2 ? 2 : 1;
    const std::size_t expect = v2 ? 12 : 9;
    std::size_t lineno = 1;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::vector<std::string> fields;
        std::size_t start = 0;
        for (std::size_t i = 0; i <= line.size(); ++i) {
            if (i == line.size() || line[i] == ',') {
                fields.push_back(line.substr(start, i - start));
                start = i + 1;
            }
        }
        if (fields.size() != expect) {
            error = "line " + std::to_string(lineno) + ": expected " +
                    std::to_string(expect) + " fields, got " +
                    std::to_string(fields.size());
            return false;
        }
        TraceEvent ev;
        std::size_t f = 0;
        ev.seq = std::strtoull(fields[f++].c_str(), nullptr, 10);
        ev.trueTime = std::strtoll(fields[f++].c_str(), nullptr, 10);
        ev.localTime = std::strtoll(fields[f++].c_str(), nullptr, 10);
        ev.node = static_cast<std::uint32_t>(
            std::strtoul(fields[f++].c_str(), nullptr, 10));
        const std::string &kind = fields[f++];
        ev.kind = kind == "B"   ? TraceKind::SpanBegin
                  : kind == "E" ? TraceKind::SpanEnd
                                : TraceKind::Instant;
        ev.span = std::strtoull(fields[f++].c_str(), nullptr, 10);
        if (v2) {
            ev.traceId = std::strtoull(fields[f++].c_str(), nullptr, 10);
            ev.parentSpan =
                std::strtoull(fields[f++].c_str(), nullptr, 10);
        }
        ev.name = fields[f++];
        ev.tag = fields[f++];
        ev.arg = std::strtoll(fields[f++].c_str(), nullptr, 10);
        if (v2)
            ev.arg2 = std::strtoll(fields[f++].c_str(), nullptr, 10);
        trace.events.push_back(std::move(ev));
    }
    // CSV carries no recorded/dropped header counters, but seq is the
    // global append order: everything before the oldest surviving
    // event was evicted.
    std::uint64_t minSeq = ~0ULL, maxSeq = 0;
    for (const TraceEvent &e : trace.events) {
        minSeq = std::min(minSeq, e.seq);
        maxSeq = std::max(maxSeq, e.seq);
    }
    trace.recorded = trace.events.empty() ? 0 : maxSeq + 1;
    trace.dropped = trace.events.empty() ? 0 : minSeq;
    return true;
}

std::string
layerOf(const std::string &name)
{
    const std::size_t dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(0, dot);
}

double
us(double ns)
{
    return ns / 1000.0;
}

void
printLatencyRow(const std::string &label, const common::Histogram &h)
{
    std::printf("%-28s %9llu %9.1f %9.1f %9.1f %9.1f %9.1f\n",
                label.c_str(),
                static_cast<unsigned long long>(h.count()),
                us(h.mean()), us(static_cast<double>(h.p50())),
                us(static_cast<double>(h.p95())),
                us(static_cast<double>(h.p99())),
                us(static_cast<double>(h.max())));
}

/** Critical-path attribution bucket for a span name. */
const char *
categoryOf(const std::string &name)
{
    if (name == "net.rpc")
        return "network";
    if (name == "milana.repl.txn_record" || name == "semel.repl.write")
        return "replication";
    if (name == "milana.server.prepare")
        return "validation";
    if (name == "milana.server.get")
        return "server read";
    if (name == "milana.server.decision")
        return "commit apply";
    if (name.rfind("semel.server.", 0) == 0)
        return "server write";
    if (name.rfind("flash.", 0) == 0)
        return "device";
    if (name.rfind("milana.txn.", 0) == 0 ||
        name.rfind("semel.client.", 0) == 0)
        return "client";
    return "other";
}

/** One reconstructed span of a single transaction. */
struct TxnSpan
{
    std::uint64_t id = 0;
    std::uint64_t parent = 0;
    std::string name;
    std::string tag; ///< from the end event (outcome)
    std::int64_t begin = -1;
    std::int64_t end = -1;

    bool complete() const { return begin >= 0 && end >= 0; }
    std::int64_t duration() const { return end - begin; }
};

/**
 * Per-transaction view: the txn's timeline plus a critical-path
 * breakdown of where its wall-clock went. Self-time attribution: each
 * completed span's duration minus the durations of its completed
 * children, bucketed by categoryOf(); SSD pre-admission queueing
 * (flash.ssd.admit arg2) is split out of "device" into "queueing".
 */
int
reportTxn(const common::ParsedTrace &trace, std::uint64_t txnId)
{
    std::vector<const TraceEvent *> events;
    for (const TraceEvent &e : trace.events)
        if (e.traceId == txnId)
            events.push_back(&e);
    if (events.empty()) {
        std::fprintf(stderr,
                     "error: no events with trace id %llu "
                     "(v1 traces carry no trace ids)\n",
                     static_cast<unsigned long long>(txnId));
        return 1;
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent *a, const TraceEvent *b) {
                  if (a->trueTime != b->trueTime)
                      return a->trueTime < b->trueTime;
                  return a->seq < b->seq;
              });

    std::unordered_map<std::uint64_t, TxnSpan> spans;
    std::int64_t queueing = 0; // flash.ssd.admit arg2 sum
    for (const TraceEvent *e : events) {
        if (e->kind == TraceKind::SpanBegin) {
            TxnSpan &s = spans[e->span];
            s.id = e->span;
            s.parent = e->parentSpan;
            s.name = e->name;
            s.begin = e->trueTime;
        } else if (e->kind == TraceKind::SpanEnd) {
            TxnSpan &s = spans[e->span];
            s.id = e->span;
            if (s.begin < 0) { // begin evicted; keep what we know
                s.parent = e->parentSpan;
                s.name = e->name;
            }
            s.tag = e->tag;
            s.end = e->trueTime;
        } else if (e->name == "flash.ssd.admit") {
            queueing += e->arg2;
        }
    }

    // Nesting depth via the parent chain (for timeline indentation).
    std::unordered_map<std::uint64_t, int> depth;
    std::function<int(std::uint64_t)> depthOf =
        [&](std::uint64_t id) -> int {
        if (id == 0)
            return 0;
        auto d = depth.find(id);
        if (d != depth.end())
            return d->second;
        depth[id] = 0; // break cycles defensively
        const auto s = spans.find(id);
        const int v =
            s == spans.end() ? 0 : 1 + depthOf(s->second.parent);
        depth[id] = v;
        return v;
    };

    std::printf("--- transaction %llu: timeline (%zu events) ---\n",
                static_cast<unsigned long long>(txnId), events.size());
    const std::int64_t t0 = events.front()->trueTime;
    constexpr std::size_t kMaxLines = 400;
    std::size_t printed = 0;
    for (const TraceEvent *e : events) {
        if (++printed > kMaxLines) {
            std::printf("  ... %zu more events (timeline capped)\n",
                        events.size() - kMaxLines);
            break;
        }
        const int ind =
            2 * depthOf(e->kind == TraceKind::Instant ? e->parentSpan
                                                      : e->span);
        std::printf("  %+11.1f us  node %-4u %*s", us(static_cast<double>(e->trueTime - t0)),
                    e->node, ind, "");
        switch (e->kind) {
          case TraceKind::SpanBegin: {
            std::printf("%s", e->name.c_str());
            const auto s = spans.find(e->span);
            if (s != spans.end() && s->second.complete())
                std::printf("  [%.1f us]",
                            us(static_cast<double>(s->second.duration())));
            break;
          }
          case TraceKind::SpanEnd:
            std::printf("end %s", e->name.c_str());
            break;
          case TraceKind::Instant:
            std::printf("* %s", e->name.c_str());
            break;
        }
        if (!e->tag.empty())
            std::printf("  tag=%s", e->tag.c_str());
        if (e->arg != 0)
            std::printf("  arg=%lld", static_cast<long long>(e->arg));
        if (e->arg2 != 0)
            std::printf("  arg2=%lld", static_cast<long long>(e->arg2));
        std::printf("\n");
    }

    // Root: the commit span if present, else the longest complete span.
    const TxnSpan *root = nullptr;
    for (const auto &[id, s] : spans) {
        if (!s.complete())
            continue;
        if (s.name == "milana.txn.commit") {
            root = &s;
            break;
        }
        if (root == nullptr || s.duration() > root->duration())
            root = &s;
    }
    if (root == nullptr) {
        std::printf("\n(no complete span — cannot compute a "
                    "critical-path breakdown)\n");
        return 0;
    }

    std::unordered_map<std::uint64_t, std::int64_t> childTime;
    for (const auto &[id, s] : spans)
        if (s.complete() && s.parent != 0)
            childTime[s.parent] += s.duration();

    std::map<std::string, std::int64_t> byCategory;
    for (const auto &[id, s] : spans) {
        if (!s.complete())
            continue;
        std::int64_t self = s.duration() - childTime[id];
        if (self < 0)
            self = 0; // children overlapped the parent's tail
        byCategory[categoryOf(s.name)] += self;
    }
    if (queueing > 0) {
        // Pre-admission queueing was counted inside the SSD spans'
        // self-time; reattribute it.
        auto &device = byCategory["device"];
        const std::int64_t moved = std::min(device, queueing);
        device -= moved;
        byCategory["queueing"] += moved;
    }

    // Denominator: the transaction's full extent — its begin instant
    // (when present) through the root span's end — so read phases
    // before the commit span count sensibly.
    std::int64_t extentBegin = root->begin;
    for (const TraceEvent *e : events) {
        if (e->kind == TraceKind::Instant &&
            e->name == "milana.txn.begin") {
            extentBegin = e->trueTime;
            break;
        }
    }
    const std::int64_t extent =
        std::max<std::int64_t>(1, root->end - extentBegin);

    std::printf("\n--- critical-path breakdown (%s, txn extent %.1f us",
                root->name.c_str(), us(static_cast<double>(extent)));
    if (!root->tag.empty())
        std::printf(", outcome %s", root->tag.c_str());
    std::printf(") ---\n");
    std::vector<std::pair<std::string, std::int64_t>> rows(
        byCategory.begin(), byCategory.end());
    std::sort(rows.begin(), rows.end(), [](const auto &a, const auto &b) {
        return a.second > b.second;
    });
    double totalPct = 0;
    for (const auto &[cat, ns] : rows) {
        if (ns == 0)
            continue;
        const double pct = 100.0 * static_cast<double>(ns) /
                           static_cast<double>(extent);
        totalPct += pct;
        std::printf("%-16s %11.1f us  %6.1f%%\n", cat.c_str(),
                    us(static_cast<double>(ns)), pct);
    }
    if (totalPct > 100.5)
        std::printf("(shares sum to %.0f%% of the txn extent: "
                    "sub-operations overlap, and post-ack work — e.g. "
                    "the async decision fan-out — runs past the "
                    "client-visible end)\n",
                    totalPct);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string csvPath;
    bool strict = false;
    bool haveTxn = false;
    std::uint64_t txnId = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help") {
            path.clear();
            break;
        }
        if (arg == "--strict") {
            strict = true;
        } else if (arg.rfind("--csv=", 0) == 0) {
            csvPath = arg.substr(6);
        } else if (arg.rfind("--txn=", 0) == 0) {
            haveTxn = true;
            txnId = std::strtoull(arg.c_str() + 6, nullptr, 10);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "error: unknown option %s\n",
                         arg.c_str());
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            path.clear();
            break;
        }
    }
    if (path.empty()) {
        std::fprintf(
            stderr,
            "usage: trace-report [--strict] [--txn=<id>] "
            "[--csv=PATH] <trace.json | trace.csv>\n"
            "analyzes a milana-trace-v1/v2 event log; see "
            "OBSERVABILITY.md\n"
            "  --strict   exit 3 when the ring evicted events\n"
            "  --txn=<id> per-transaction timeline and critical-path "
            "breakdown\n"
            "  --csv=PATH also write the latency tables as CSV "
            "(scope,name,count,mean_us,p50_us,p95_us,p99_us,max_us)\n");
        return 2;
    }

    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 1;
    }

    common::ParsedTrace trace;
    std::string error;
    const bool is_csv =
        path.size() >= 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0;
    if (is_csv) {
        if (!loadCsv(is, trace, error)) {
            std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                         error.c_str());
            return 1;
        }
    } else {
        std::stringstream buffer;
        buffer << is.rdbuf();
        if (!common::parseTraceJson(buffer.str(), trace, error)) {
            std::fprintf(stderr, "error: %s: %s\n", path.c_str(),
                         error.c_str());
            return 1;
        }
    }

    if (trace.events.empty()) {
        std::printf("%s: empty trace\n", path.c_str());
        return 0;
    }
    // Deterministic order regardless of producer: (trueTime, seq).
    std::sort(trace.events.begin(), trace.events.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.trueTime != b.trueTime)
                      return a.trueTime < b.trueTime;
                  return a.seq < b.seq;
              });

    if (haveTxn)
        return reportTxn(trace, txnId);

    std::int64_t t_min = trace.events.front().trueTime;
    std::int64_t t_max = trace.events.back().trueTime;

    std::printf("%s: %zu events (schema v%d)\n", path.c_str(),
                trace.events.size(), trace.schemaVersion);
    if (trace.dropped != 0) {
        std::printf("WARNING: incomplete window — the ring evicted "
                    "%llu of %llu recorded events (%.1f%%).\n"
                    "         Absolute counts below cover only the "
                    "retained window; compare proportions, or rerun "
                    "with a larger --trace-capacity.\n",
                    static_cast<unsigned long long>(trace.dropped),
                    static_cast<unsigned long long>(trace.recorded),
                    100.0 * static_cast<double>(trace.dropped) /
                        static_cast<double>(trace.recorded));
    }
    std::printf("covers %.3f ms of simulated time (t=%.3f..%.3f s)\n",
                static_cast<double>(t_max - t_min) / 1e6,
                static_cast<double>(t_min) / 1e9,
                static_cast<double>(t_max) / 1e9);

    // Pair spans; unmatched ends (begin evicted from the ring) and
    // unmatched begins (still open at snapshot) are counted, not fatal.
    std::map<std::uint64_t, const TraceEvent *> open;
    std::map<std::string, common::Histogram> byName;
    std::map<std::string, common::Histogram> byLayer;
    std::map<std::string, std::uint64_t> instants;
    std::map<std::string, std::uint64_t> commitTags;
    /** (duration, traceId, outcome) of traced commit spans. */
    std::vector<std::tuple<std::int64_t, std::uint64_t, std::string>>
        slowest;
    common::Histogram clockError;
    std::uint64_t spans = 0, orphanEnds = 0;

    for (const TraceEvent &e : trace.events) {
        if (e.localTime != e.trueTime)
            clockError.record(std::abs(e.localTime - e.trueTime));
        switch (e.kind) {
          case TraceKind::Instant:
            ++instants[e.name];
            break;
          case TraceKind::SpanBegin:
            open[e.span] = &e;
            break;
          case TraceKind::SpanEnd: {
            const auto it = open.find(e.span);
            if (it == open.end()) {
                ++orphanEnds;
                break;
            }
            const std::int64_t duration =
                e.trueTime - it->second->trueTime;
            open.erase(it);
            ++spans;
            byName[e.name].record(duration);
            byLayer[layerOf(e.name)].record(duration);
            if (e.name == "milana.txn.commit") {
                ++commitTags[e.tag.empty() ? "?" : e.tag];
                if (e.traceId != 0)
                    slowest.emplace_back(duration, e.traceId,
                                         e.tag.empty() ? "?" : e.tag);
            }
            break;
          }
        }
    }

    std::printf("\nspans: %llu paired, %llu still open, %llu ends "
                "missing their begin (evicted)\n",
                static_cast<unsigned long long>(spans),
                static_cast<unsigned long long>(open.size()),
                static_cast<unsigned long long>(orphanEnds));

    std::printf("\n--- per-layer span latency (us) ---\n");
    std::printf("%-28s %9s %9s %9s %9s %9s %9s\n", "layer", "count",
                "mean", "p50", "p95", "p99", "max");
    for (const auto &[layer, hist] : byLayer)
        printLatencyRow(layer, hist);

    std::printf("\n--- per-span latency (us) ---\n");
    std::printf("%-28s %9s %9s %9s %9s %9s %9s\n", "span", "count",
                "mean", "p50", "p95", "p99", "max");
    for (const auto &[name, hist] : byName)
        printLatencyRow(name, hist);

    if (!csvPath.empty()) {
        std::ofstream cs(csvPath);
        if (!cs) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         csvPath.c_str());
            return 1;
        }
        cs << "scope,name,count,mean_us,p50_us,p95_us,p99_us,max_us\n";
        const auto emit = [&cs](const char *scope,
                                const std::string &name,
                                const common::Histogram &h) {
            char line[256];
            std::snprintf(line, sizeof(line),
                          "%s,%s,%llu,%.3f,%.3f,%.3f,%.3f,%.3f\n",
                          scope, name.c_str(),
                          static_cast<unsigned long long>(h.count()),
                          us(h.mean()),
                          us(static_cast<double>(h.p50())),
                          us(static_cast<double>(h.p95())),
                          us(static_cast<double>(h.p99())),
                          us(static_cast<double>(h.max())));
            cs << line;
        };
        for (const auto &[layer, hist] : byLayer)
            emit("layer", layer, hist);
        for (const auto &[name, hist] : byName)
            emit("span", name, hist);
        std::printf("\nwrote %s (%zu layer rows, %zu span rows)\n",
                    csvPath.c_str(), byLayer.size(), byName.size());
    }

    if (!instants.empty()) {
        std::printf("\n--- instant events ---\n");
        for (const auto &[name, count] : instants)
            std::printf("%-28s %9llu\n", name.c_str(),
                        static_cast<unsigned long long>(count));
    }

    if (!commitTags.empty()) {
        std::uint64_t total = 0, aborted = 0;
        for (const auto &[tag, count] : commitTags) {
            total += count;
            if (tag != "committed" && tag != "failed")
                aborted += count;
        }
        std::printf("\n--- transaction outcomes (milana.txn.commit "
                    "spans) ---\n");
        for (const auto &[tag, count] : commitTags)
            std::printf("%-28s %9llu  (%5.2f%% of commits)\n",
                        tag.c_str(),
                        static_cast<unsigned long long>(count),
                        100.0 * static_cast<double>(count) /
                            static_cast<double>(total));
        if (aborted != 0) {
            std::printf("abort-reason split (%% of aborts):\n");
            for (const auto &[tag, count] : commitTags) {
                if (tag == "committed" || tag == "failed")
                    continue;
                std::printf("  %-26s %9llu  (%5.2f%%)\n", tag.c_str(),
                            static_cast<unsigned long long>(count),
                            100.0 * static_cast<double>(count) /
                                static_cast<double>(aborted));
            }
        }
    }

    if (!slowest.empty()) {
        std::sort(slowest.begin(), slowest.end(),
                  [](const auto &a, const auto &b) {
                      return std::get<0>(a) > std::get<0>(b);
                  });
        std::printf("\n--- slowest traced transactions (drill in with "
                    "--txn=<id>) ---\n");
        std::printf("%-12s %12s  %s\n", "trace id", "duration", "outcome");
        const std::size_t top = std::min<std::size_t>(slowest.size(), 10);
        for (std::size_t i = 0; i < top; ++i)
            std::printf("%-12llu %10.1f us  %s\n",
                        static_cast<unsigned long long>(
                            std::get<1>(slowest[i])),
                        us(static_cast<double>(std::get<0>(slowest[i]))),
                        std::get<2>(slowest[i]).c_str());
    }

    if (clockError.count() != 0) {
        std::printf("\n--- observed |LocalTime - TrueTime| (us) ---\n");
        std::printf("%-28s %9llu %9.1f %9.1f %9.1f %9.1f %9.1f\n",
                    "clock error",
                    static_cast<unsigned long long>(clockError.count()),
                    us(clockError.mean()),
                    us(static_cast<double>(clockError.p50())),
                    us(static_cast<double>(clockError.p95())),
                    us(static_cast<double>(clockError.p99())),
                    us(static_cast<double>(clockError.max())));
    } else {
        std::printf("\nall events stamped with LocalTime == TrueTime "
                    "(perfect clocks)\n");
    }

    if (strict && trace.dropped != 0) {
        std::fprintf(stderr,
                     "strict: trace window incomplete (%llu events "
                     "evicted)\n",
                     static_cast<unsigned long long>(trace.dropped));
        return 3;
    }
    return 0;
}
