/**
 * @file
 * milana_sim — command-line scenario runner for the simulated
 * MILANA/SEMEL stack. Builds an arbitrary topology, drives a Retwis
 * fleet, optionally injects a primary crash + failover, and reports
 * throughput, latency, abort rates, skew, and (on request) the full
 * stat dump of every component.
 *
 * Examples:
 *   # the paper's Figure 7 point, by hand:
 *   milana_sim --shards=1 --replicas=3 --clients=20 --backend=mftl \
 *              --clocks=ntp --alpha=0.9 --seconds=5
 *
 *   # kill shard 0's primary two seconds in, watch recovery:
 *   milana_sim --shards=2 --replicas=3 --crash-at=2 --seconds=8
 *
 *   # everything the simulator knows, for debugging:
 *   milana_sim --seconds=2 --dump-stats
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "../bench/bench_util.hh"
#include "common/chaos.hh"
#include "common/invariant_monitor.hh"
#include "common/trace.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::kSecond;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

namespace {

BackendKind
parseBackend(const std::string &name)
{
    if (name == "dram")
        return BackendKind::Dram;
    if (name == "mftl")
        return BackendKind::Mftl;
    if (name == "vftl")
        return BackendKind::Vftl;
    if (name == "sftl")
        return BackendKind::SingleVersion;
    std::fprintf(stderr, "unknown backend '%s' "
                         "(dram|mftl|vftl|sftl)\n",
                 name.c_str());
    std::exit(2);
}

ClockKind
parseClocks(const std::string &name)
{
    if (name == "perfect")
        return ClockKind::Perfect;
    if (name == "ptp")
        return ClockKind::PtpSw;
    if (name == "ptp-hw")
        return ClockKind::PtpHw;
    if (name == "ntp")
        return ClockKind::Ntp;
    if (name == "dtp")
        return ClockKind::Dtp;
    std::fprintf(stderr, "unknown clocks '%s' "
                         "(perfect|ptp|ptp-hw|ntp|dtp)\n",
                 name.c_str());
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Args args(argc, argv);
    if (args.has("help")) {
        std::printf(
            "usage: milana_sim [options]\n"
            "  --shards=N --replicas=N --clients=N --keys=N --seed=N\n"
            "  --backend=dram|mftl|vftl|sftl   --clocks=perfect|ptp|"
            "ptp-hw|ntp|dtp\n"
            "  --alpha=F (Zipf contention)     --read-heavy (75%% "
            "read-only mix)\n"
            "  --no-local-validation           --centiman\n"
            "  --seconds=N --warmup=N          --crash-at=N (crash "
            "shard 0's primary)\n"
            "  --sim-threads=N (parallel DES inside the one scenario;\n"
            "                   requires --clocks=perfect, no "
            "--centiman,\n"
            "                   no --crash-at; output byte-identical "
            "for\n"
            "                   every N>=1)\n"
            "  --chaos=PATH (fault schedule, see docs/CHAOS.md; armed\n"
            "                when measurement starts — times are "
            "relative\n"
            "                to the end of warmup)\n"
            "  --chaos-seed=N (fault-randomness seed, default 42)\n"
            "  --dump-stats\n"
            "  --json=PATH  (milana-bench-v1 report with full stat "
            "sets)\n"
            "  --trace=PATH (event trace; .csv extension = CSV, else "
            "JSON)\n"
            "  --trace-capacity=N (trace ring size, default 262144)\n"
            "  --perfetto=PATH (Chrome/Perfetto trace-event JSON)\n"
            "  --monitor (online invariant checks; violations exit 1)\n"
            "  --metrics=PATH (milana-metrics-v1 time-series JSON +\n"
            "                  sibling CSV; feed to tools/metrics-"
            "report)\n"
            "  --metrics-interval=D (sampling window, default 100ms;\n"
            "                        ns/us/ms/s suffixes)\n");
        return 0;
    }

    ClusterConfig cfg;
    cfg.numShards = static_cast<std::uint32_t>(args.getInt("shards", 3));
    cfg.replicasPerShard =
        static_cast<std::uint32_t>(args.getInt("replicas", 3));
    cfg.numClients =
        static_cast<std::uint32_t>(args.getInt("clients", 20));
    cfg.numKeys = static_cast<std::uint64_t>(args.getInt("keys", 50'000));
    cfg.seed = static_cast<std::uint64_t>(args.getInt("seed", 1));
    cfg.backend = parseBackend(args.getString("backend", "mftl"));
    cfg.clocks = parseClocks(args.getString("clocks", "ptp"));
    cfg.localValidation = !args.has("no-local-validation");
    cfg.centiman = args.has("centiman");
    cfg.simThreads =
        static_cast<std::uint32_t>(args.getInt("sim-threads", 0));

    const std::string chaos_path = args.getString("chaos", "");
    std::unique_ptr<common::ChaosEngine> chaos;
    if (!chaos_path.empty()) {
        chaos = std::make_unique<common::ChaosEngine>(
            static_cast<std::uint64_t>(args.getInt("chaos-seed", 42)));
        std::string error;
        if (!chaos->parseFile(chaos_path, &error)) {
            std::fprintf(stderr, "error: %s: %s\n", chaos_path.c_str(),
                         error.c_str());
            return 2;
        }
        cfg.chaos = chaos.get();
    }

    const std::string trace_path = args.getString("trace", "");
    const std::string perfetto_path = args.getString("perfetto", "");
    const bool monitor_on = args.has("monitor");
    std::unique_ptr<common::TraceLog> trace;
    if (!trace_path.empty() || !perfetto_path.empty() || monitor_on) {
        trace = std::make_unique<common::TraceLog>(
            static_cast<std::size_t>(
                args.getInt("trace-capacity", 262'144)));
        cfg.trace = trace.get();
    }
    const std::string metrics_path = args.getString("metrics", "");
    std::unique_ptr<common::MetricsRegistry> metrics;
    if (!metrics_path.empty()) {
        metrics = std::make_unique<common::MetricsRegistry>(
            args.getDuration("metrics-interval",
                             100 * common::kMillisecond));
        cfg.metrics = metrics.get();
    }
    std::unique_ptr<common::InvariantMonitor> monitor;
    if (monitor_on) {
        common::InvariantMonitor::Config mcfg;
        // Single-version FTLs legitimately return versions newer than
        // the snapshot and rely on validation to abort.
        mcfg.checkSnapshotReads =
            cfg.backend != BackendKind::SingleVersion;
        mcfg.checkReplicationBeforeAck = cfg.replicasPerShard > 1;
        monitor = std::make_unique<common::InvariantMonitor>(mcfg,
                                                             &std::cerr);
        monitor->attach(*trace);
    }

    RetwisConfig retwis;
    retwis.alpha = args.getDouble("alpha", 0.6);
    retwis.numKeys = cfg.numKeys;
    retwis.readHeavy = args.has("read-heavy");
    retwis.seed = cfg.seed + 100;

    const auto warmup = args.getInt("warmup", 1) * kSecond;
    const auto measure = args.getInt("seconds", 5) * kSecond;
    const auto crash_at = args.getInt("crash-at", -1);
    if (cfg.simThreads > 0 && crash_at >= 0) {
        // The crash ticker schedules a raw harness callback on the
        // single simulator; in partitioned mode there is no such
        // simulator (and failover's recovery RPCs would need a
        // partition-aware driver).
        std::fprintf(stderr, "error: --crash-at is not supported with "
                             "--sim-threads > 0\n");
        return 2;
    }

    std::printf("milana_sim: %u shard(s) x %u replica(s), %u clients, "
                "%s backend, %s clocks, alpha=%.2f%s%s\n",
                cfg.numShards, cfg.replicasPerShard, cfg.numClients,
                workload::backendName(cfg.backend),
                workload::clockName(cfg.clocks), retwis.alpha,
                cfg.localValidation ? "" : ", LV off",
                cfg.centiman ? ", centiman validation" : "");

    Cluster cluster(cfg);
    std::printf("populating %llu keys...\n",
                static_cast<unsigned long long>(cfg.numKeys));
    cluster.populate();
    cluster.start();

    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    if (crash_at >= 0) {
        const auto victim = cluster.master().primaryOf(0);
        cluster.sim().schedule(
            warmup + crash_at * kSecond, [&cluster, victim] {
                std::printf("[t=%.2fs] crashing shard-0 primary "
                            "(node %u) and promoting a backup\n",
                            common::toSeconds(cluster.sim().now()),
                            victim);
                cluster.crashServer(victim);
                const auto promoted =
                    cluster.master().backupsOf(0)[0];
                sim::spawn([](Cluster *c, common::NodeId promoted)
                               -> sim::Task<void> {
                    co_await c->failover(0, promoted);
                    std::printf("[t=%.2fs] recovery complete; shard 0 "
                                "serving from node %u\n",
                                common::toSeconds(c->sim().now()),
                                promoted);
                }(&cluster, promoted));
            });
    }

    cluster.runUntil(cluster.now() + warmup);
    fleet.resetMeasurement();
    cluster.resetStats();
    if (chaos != nullptr) {
        // Schedule times are relative to this instant: warmup and
        // population ran fault-free.
        chaos->arm(cluster.now());
        std::printf("chaos armed: %zu fault(s) from %s (seed %lld)\n",
                    chaos->faultCount(), chaos_path.c_str(),
                    static_cast<long long>(
                        args.getInt("chaos-seed", 42)));
    }
    cluster.runFor(measure);
    cluster.finishTrace();
    cluster.finishMetrics();

    const double seconds = common::toSeconds(measure);
    const auto latency = fleet.mergedLatency();
    std::printf("\n=== results (%.0fs measured after %.0fs warmup) ===\n",
                seconds, common::toSeconds(warmup));
    std::printf("committed:  %10llu  (%.0f txn/s)\n",
                static_cast<unsigned long long>(fleet.totalCommits()),
                static_cast<double>(fleet.totalCommits()) / seconds);
    std::printf("aborted:    %10llu  (abort rate %.2f%%)\n",
                static_cast<unsigned long long>(fleet.totalAborts()),
                fleet.abortRate() * 100.0);
    std::printf("latency:    mean %.2f ms, p50 %.2f, p95 %.2f, p99 "
                "%.2f\n",
                common::toMillis(
                    static_cast<common::Duration>(latency.mean())),
                common::toMillis(latency.p50()),
                common::toMillis(latency.p95()),
                common::toMillis(latency.p99()));
    if (cfg.clocks != ClockKind::Perfect)
        std::printf("avg client clock skew: %.1f us\n",
                    cluster.avgClientSkew() / 1000.0);

    const auto clients = cluster.clientStats();
    std::printf("local validations: %llu  (failures %llu)\n",
                static_cast<unsigned long long>(
                    clients.counterValue("txn.local_validations")),
                static_cast<unsigned long long>(clients.counterValue(
                    "txn.local_validation_fail")));

    if (args.has("dump-stats")) {
        std::printf("\n--- client stats ---\n%s",
                    clients.dump("  ").c_str());
        std::printf("--- server stats ---\n%s",
                    cluster.serverStats().dump("  ").c_str());
        std::printf("--- network stats ---\n%s",
                    cluster.network().stats().dump("  ").c_str());
    }

    if (trace != nullptr) {
        std::ofstream os(trace_path);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         trace_path.c_str());
            return 1;
        }
        if (trace_path.size() >= 4 &&
            trace_path.compare(trace_path.size() - 4, 4, ".csv") == 0)
            trace->writeCsv(os);
        else
            trace->writeJson(os);
        std::printf("wrote %s (%zu events kept, %llu dropped)\n",
                    trace_path.c_str(), trace->size(),
                    static_cast<unsigned long long>(trace->dropped()));
    }
    if (!perfetto_path.empty()) {
        std::ofstream os(perfetto_path);
        if (!os) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         perfetto_path.c_str());
            return 1;
        }
        trace->writePerfetto(os, metrics != nullptr ? &metrics->log()
                                                    : nullptr);
        std::printf("wrote %s (Perfetto trace-event JSON; open at "
                    "ui.perfetto.dev)\n",
                    perfetto_path.c_str());
    }
    if (metrics != nullptr)
        bench::writeMetricsOutputs(metrics->log(), metrics_path);

    bench::Report report("milana_sim");
    report.params()
        .set("shards", cfg.numShards)
        .set("replicas", cfg.replicasPerShard)
        .set("clients", cfg.numClients)
        .set("keys", cfg.numKeys)
        .set("seed", cfg.seed)
        .set("backend", workload::backendName(cfg.backend))
        .set("clocks", workload::clockName(cfg.clocks))
        .set("alpha", retwis.alpha)
        .set("read_heavy", retwis.readHeavy)
        .set("local_validation", cfg.localValidation)
        .set("centiman", cfg.centiman)
        .set("warmup_s", common::toSeconds(warmup))
        .set("seconds", seconds);
    if (chaos != nullptr) {
        report.params()
            .set("chaos", chaos_path)
            .set("chaos_seed", args.getInt("chaos-seed", 42))
            .set("chaos_injections", chaos->injections())
            .set("chaos_heals", chaos->heals());
    }
    report.addRow()
        .set("committed", fleet.totalCommits())
        .set("aborted", fleet.totalAborts())
        .set("txn_per_sec",
             static_cast<double>(fleet.totalCommits()) / seconds)
        .set("abort_pct", fleet.abortRate() * 100.0)
        .set("latency_mean_ms",
             common::toMillis(
                 static_cast<common::Duration>(latency.mean())))
        .set("latency_p50_ms", common::toMillis(latency.p50()))
        .set("latency_p95_ms", common::toMillis(latency.p95()))
        .set("latency_p99_ms", common::toMillis(latency.p99()))
        .set("avg_client_skew_us", cluster.avgClientSkew() / 1000.0);
    report.addStats("client", clients, "client.");
    report.addStats("server", cluster.serverStats(), "server.");
    report.addStats("network", cluster.network().stats(), "net.");
    report.addStats("clocksync", cluster.clockStats());
    report.write(args);

    if (monitor != nullptr) {
        monitor->report(std::cout);
        if (!monitor->ok())
            return 1;
    }
    return 0;
}
