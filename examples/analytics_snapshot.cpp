/**
 * @file
 * Long-running read-only analytics over a live store — the use case
 * behind SEMEL's tunable version-retention window (section 3.1) and
 * MILANA's watermark-driven version management (section 4.4).
 *
 * An analytics transaction scans a large key range at its begin
 * timestamp while writers keep updating; because storage is
 * multi-version and the watermark cannot pass any active client's last
 * decided transaction, the scan always completes from one consistent
 * snapshot and still commits with *local* validation.
 */

#include <cstdio>
#include <string>

#include "milana/client.hh"
#include "workload/cluster.hh"

using common::Key;
using milana::CommitResult;
using milana::MilanaClient;
using workload::Cluster;
using workload::ClusterConfig;

namespace {

constexpr Key kRange = 512;

/** Writers bump per-key counters continuously. */
sim::Task<void>
writerLoop(Cluster &cluster, std::uint32_t client_index)
{
    auto &client = cluster.client(client_index);
    common::Rng rng(client_index + 13);
    std::uint64_t epoch = 0;
    while (!cluster.sim().stopRequested()) {
        auto txn = client.beginTransaction();
        const Key k = rng.nextBounded(kRange);
        (void)co_await client.get(txn, k);
        client.put(txn, k, "epoch-" + std::to_string(++epoch));
        (void)co_await client.commitTransaction(txn);
    }
}

/** One slow full-range scan at a single snapshot. */
sim::Task<void>
analyticsScan(Cluster &cluster)
{
    auto &client = cluster.client(0);
    auto txn = client.beginTransaction();
    const auto begin_ts = txn.begin().timestamp;

    std::size_t behind_snapshot = 0;
    std::size_t scanned = 0;
    for (Key k = 0; k < kRange; ++k) {
        auto r = co_await client.get(txn, k);
        if (!r.ok)
            continue;
        ++scanned;
        // Every value we see was written at or before our begin
        // timestamp, no matter how many updates landed since.
        behind_snapshot += r.found;
        // Be a deliberately slow scanner so plenty of writes overtake
        // the snapshot while it runs.
        co_await sim::sleepFor(cluster.sim(), common::kMillisecond);
    }
    const auto result = co_await client.commitTransaction(txn);

    std::printf("scan of %zu keys at ts_begin=%lld: %zu values, "
                "%s with LOCAL validation\n",
                scanned, static_cast<long long>(begin_ts),
                behind_snapshot,
                result == CommitResult::Committed ? "COMMITTED"
                                                  : "ABORTED");

    const auto client_stats = cluster.clientStats();
    std::printf("while scanning, the writers committed %llu "
                "transactions over the same range\n",
                static_cast<unsigned long long>(
                    client_stats.counterValue("txn.committed")));
    cluster.sim().requestStop();
}

} // namespace

int
main()
{
    ClusterConfig cfg;
    cfg.numShards = 3;
    cfg.replicasPerShard = 3;
    cfg.numClients = 4; // 1 analyst + 3 writers
    cfg.backend = workload::BackendKind::Mftl;
    cfg.clocks = workload::ClockKind::PtpSw;
    cfg.numKeys = kRange;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    std::printf("starting 3 writers and one slow full-range analytics "
                "scan...\n");
    sim::spawn(writerLoop(cluster, 1));
    sim::spawn(writerLoop(cluster, 2));
    sim::spawn(writerLoop(cluster, 3));
    sim::spawn(analyticsScan(cluster));
    cluster.sim().run();

    // Version-retention proof: the storage kept enough versions for
    // the scan because the watermark trailed the open transaction.
    const auto server_stats = cluster.serverStats();
    std::printf("server-side watermark advances during the run: %llu\n",
                static_cast<unsigned long long>(server_stats.counterValue(
                    "semel.watermark_advances")));
    return 0;
}
