/**
 * @file
 * A miniature Retwis-style social network on MILANA — the workload the
 * paper's evaluation is built on, written against the public
 * transaction API instead of the synthetic driver.
 *
 * Data model (keys are hashes of logical names):
 *   user:<id>            profile blob
 *   followers:<id>       follower count (stringified int)
 *   timeline:<id>        latest-post pointer
 *   post:<id>:<n>        post bodies
 *
 * Transactions: PostTweet (read profile + timeline, write post +
 * timeline), FollowUser (read + bump follower counts), and
 * ReadTimeline (read-only, committed with client-local validation).
 */

#include <cstdio>
#include <string>

#include "milana/client.hh"
#include "workload/cluster.hh"

using common::Key;
using milana::CommitResult;
using milana::MilanaClient;
using workload::Cluster;
using workload::ClusterConfig;

namespace {

Key
keyOf(const std::string &name)
{
    // FNV-1a folded into the populated key range.
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : name) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h % 10'000;
}

sim::Task<bool>
postTweet(MilanaClient &client, const std::string &user,
          const std::string &text, int post_id)
{
    auto txn = client.beginTransaction();
    (void)co_await client.get(txn, keyOf("user:" + user));
    auto timeline = co_await client.get(txn, keyOf("timeline:" + user));
    client.put(txn, keyOf("post:" + user + ":" + std::to_string(post_id)),
               text);
    client.put(txn, keyOf("timeline:" + user), std::to_string(post_id));
    co_return co_await client.commitTransaction(txn) ==
        CommitResult::Committed;
}

sim::Task<bool>
followUser(MilanaClient &client, const std::string &who,
           const std::string &whom)
{
    auto txn = client.beginTransaction();
    auto mine = co_await client.get(txn, keyOf("followers:" + who));
    auto theirs = co_await client.get(txn, keyOf("followers:" + whom));
    const int my_count = mine.found && !mine.value.empty() &&
                                 mine.value != "init"
                             ? std::stoi(mine.value)
                             : 0;
    const int their_count = theirs.found && !theirs.value.empty() &&
                                    theirs.value != "init"
                                ? std::stoi(theirs.value)
                                : 0;
    client.put(txn, keyOf("followers:" + who),
               std::to_string(my_count));
    client.put(txn, keyOf("followers:" + whom),
               std::to_string(their_count + 1));
    co_return co_await client.commitTransaction(txn) ==
        CommitResult::Committed;
}

sim::Task<void>
readTimeline(MilanaClient &client, const std::string &user)
{
    auto txn = client.beginTransaction();
    auto head = co_await client.get(txn, keyOf("timeline:" + user));
    std::string latest = "(none)";
    if (head.found && head.value != "init") {
        auto post = co_await client.get(
            txn, keyOf("post:" + user + ":" + head.value));
        if (post.found)
            latest = post.value;
    }
    const bool ok = co_await client.commitTransaction(txn) ==
                    CommitResult::Committed;
    std::printf("  timeline(%s): %s  [read-only txn %s, local "
                "validation]\n",
                user.c_str(), latest.c_str(),
                ok ? "committed" : "aborted");
}

sim::Task<void>
scenario(Cluster &cluster)
{
    auto &app1 = cluster.client(0);
    auto &app2 = cluster.client(1);

    std::printf("alice posts...\n");
    (void)co_await postTweet(app1, "alice",
                             "precision time is neat", 1);
    std::printf("bob follows alice and posts...\n");
    (void)co_await followUser(app2, "bob", "alice");
    (void)co_await postTweet(app2, "bob", "ack alice", 1);
    co_await sim::sleepFor(cluster.sim(), 10 * common::kMillisecond);

    std::printf("reading timelines (snapshot reads):\n");
    co_await readTimeline(app1, "alice");
    co_await readTimeline(app1, "bob");

    // Contended follow storm on one celebrity account.
    std::printf("follow storm on 'celeb' from both app servers...\n");
    int ok = 0, conflicts = 0;
    for (int i = 0; i < 10; ++i) {
        const bool a = co_await followUser(
            app1, "fan" + std::to_string(i), "celeb");
        const bool b = co_await followUser(
            app2, "fan" + std::to_string(100 + i), "celeb");
        ok += a + b;
        conflicts += 2 - (a + b);
    }
    std::printf("  %d follows committed, %d aborted (OCC conflicts; "
                "clients retry in a real app)\n",
                ok, conflicts);
    cluster.sim().requestStop();
}

} // namespace

int
main()
{
    ClusterConfig cfg;
    cfg.numShards = 3;
    cfg.replicasPerShard = 3;
    cfg.numClients = 2;
    cfg.backend = workload::BackendKind::Mftl;
    cfg.clocks = workload::ClockKind::PtpSw;
    cfg.numKeys = 10'000;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    sim::spawn(scenario(cluster));
    cluster.sim().run();
    return 0;
}
