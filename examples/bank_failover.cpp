/**
 * @file
 * Fault-tolerance walkthrough: a bank ledger runs transfer
 * transactions while the primary of one shard is killed and a backup
 * is promoted. Demonstrates:
 *
 *  - inconsistent primary/backup replication surviving a crash;
 *  - Algorithm 2 recovery (merging replica transaction logs);
 *  - the read lease: the promoted primary waits out the old lease
 *    before serving, so no pre-crash read can be contradicted;
 *  - an invariant check (total balance) across the failover.
 */

#include <cstdio>
#include <string>

#include "milana/client.hh"
#include "workload/cluster.hh"

using common::Key;
using milana::CommitResult;
using milana::MilanaClient;
using workload::Cluster;
using workload::ClusterConfig;

namespace {

constexpr Key kAccounts = 32;
constexpr int kInitialBalance = 1000;

sim::Task<bool>
transfer(MilanaClient &client, Key from, Key to, int amount)
{
    auto txn = client.beginTransaction();
    auto rf = co_await client.get(txn, from);
    auto rt = co_await client.get(txn, to);
    if (!rf.ok || !rt.ok) {
        client.abortTransaction(txn);
        co_return false;
    }
    const int bf = std::stoi(rf.value);
    const int bt = std::stoi(rt.value);
    if (bf < amount) {
        client.abortTransaction(txn);
        co_return false;
    }
    client.put(txn, from, std::to_string(bf - amount));
    client.put(txn, to, std::to_string(bt + amount));
    co_return co_await client.commitTransaction(txn) ==
        CommitResult::Committed;
}

sim::Task<long>
audit(MilanaClient &client)
{
    for (int attempt = 0; attempt < 20; ++attempt) {
        auto txn = client.beginTransaction();
        long total = 0;
        bool ok = true;
        for (Key a = 0; a < kAccounts && ok; ++a) {
            auto r = co_await client.get(txn, a);
            ok = r.ok && r.found;
            if (ok)
                total += std::stoi(r.value);
        }
        if (ok && co_await client.commitTransaction(txn) ==
                      CommitResult::Committed)
            co_return total;
        client.abortTransaction(txn);
    }
    co_return -1;
}

sim::Task<void>
scenario(Cluster &cluster)
{
    auto &teller = cluster.client(0);
    auto &auditor = cluster.client(1);

    // Open the accounts.
    auto setup = teller.beginTransaction();
    for (Key a = 0; a < kAccounts; ++a)
        teller.put(setup, a, std::to_string(kInitialBalance));
    (void)co_await teller.commitTransaction(setup);
    co_await sim::sleepFor(cluster.sim(), 50 * common::kMillisecond);
    std::printf("opened %llu accounts with %d each (total %lld)\n",
                static_cast<unsigned long long>(kAccounts),
                kInitialBalance,
                static_cast<long long>(kAccounts * kInitialBalance));

    // Steady stream of transfers.
    common::Rng rng(7);
    int committed = 0, aborted = 0;
    for (int i = 0; i < 50; ++i) {
        const Key from = rng.nextBounded(kAccounts);
        const Key to = (from + 1 + rng.nextBounded(kAccounts - 1)) %
                       kAccounts;
        (co_await transfer(teller, from, to,
                           static_cast<int>(rng.nextBounded(50)) + 1)
             ? committed
             : aborted)++;
    }
    std::printf("before failover: %d transfers committed, %d aborted\n",
                committed, aborted);

    // Kill shard 0's primary and promote its first backup.
    const auto old_primary = cluster.master().primaryOf(0);
    const auto promoted = cluster.master().backupsOf(0)[0];
    std::printf("\n!!! crashing shard-0 primary (node %u), promoting "
                "node %u\n",
                old_primary, promoted);
    cluster.crashServer(old_primary);
    const auto t0 = cluster.sim().now();
    co_await cluster.failover(0, promoted);
    std::printf("recovery complete after %.1f ms simulated (includes "
                "the lease wait)\n",
                common::toMillis(cluster.sim().now() - t0));

    // Keep transferring against the new primary.
    committed = aborted = 0;
    for (int i = 0; i < 50; ++i) {
        const Key from = rng.nextBounded(kAccounts);
        const Key to = (from + 1 + rng.nextBounded(kAccounts - 1)) %
                       kAccounts;
        (co_await transfer(teller, from, to,
                           static_cast<int>(rng.nextBounded(50)) + 1)
             ? committed
             : aborted)++;
    }
    std::printf("after failover:  %d transfers committed, %d aborted\n",
                committed, aborted);

    const long total = co_await audit(auditor);
    std::printf("\naudit (read-only snapshot txn): total = %ld — %s\n",
                total,
                total == kAccounts * kInitialBalance
                    ? "invariant holds across the crash"
                    : "INVARIANT VIOLATED");
    cluster.sim().requestStop();
}

} // namespace

int
main()
{
    ClusterConfig cfg;
    cfg.numShards = 2;
    cfg.replicasPerShard = 3;
    cfg.numClients = 2;
    cfg.backend = workload::BackendKind::Mftl;
    cfg.clocks = workload::ClockKind::PtpSw;
    cfg.numKeys = 1000;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    sim::spawn(scenario(cluster));
    cluster.sim().run();
    return 0;
}
