/**
 * @file
 * Quickstart: bring up a simulated MILANA deployment (3 shards x 3
 * replicas over MFTL flash, PTP-disciplined client clocks), run a few
 * transactions, and print what happened.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "milana/client.hh"
#include "workload/cluster.hh"

using milana::CommitResult;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;

namespace {

sim::Task<void>
demo(Cluster &cluster)
{
    auto &alice = cluster.client(0);
    auto &bob = cluster.client(1);

    // --- a read-write transaction from Alice -------------------------
    auto t1 = alice.beginTransaction();
    auto hello = co_await alice.get(t1, /*key=*/1);
    std::printf("alice reads key 1: '%s'\n", hello.value.c_str());
    alice.put(t1, 1, "hello from alice");
    alice.put(t1, 2, "second key, same transaction");
    auto r1 = co_await alice.commitTransaction(t1);
    std::printf("alice's read-write txn: %s\n",
                r1 == CommitResult::Committed ? "COMMITTED" : "ABORTED");

    // Decisions propagate asynchronously; give them a moment.
    co_await sim::sleepFor(cluster.sim(), 10 * common::kMillisecond);

    // --- a read-only transaction from Bob: commits locally -----------
    auto t2 = bob.beginTransaction();
    auto v1 = co_await bob.get(t2, 1);
    auto v2 = co_await bob.get(t2, 2);
    auto r2 = co_await bob.commitTransaction(t2);
    std::printf("bob reads keys 1,2: '%s' / '%s'\n", v1.value.c_str(),
                v2.value.c_str());
    std::printf("bob's read-only txn (validated locally, zero commit "
                "messages): %s\n",
                r2 == CommitResult::Committed ? "COMMITTED" : "ABORTED");

    // --- a conflict: two writers race on key 7 -----------------------
    auto ta = alice.beginTransaction();
    auto tb = bob.beginTransaction();
    (void)co_await alice.get(ta, 7);
    (void)co_await bob.get(tb, 7);
    alice.put(ta, 7, "alice was here");
    bob.put(tb, 7, "bob was here");
    auto ra = co_await alice.commitTransaction(ta);
    auto rb = co_await bob.commitTransaction(tb);
    std::printf("conflicting writers on key 7: alice=%s bob=%s\n",
                ra == CommitResult::Committed ? "COMMITTED" : "ABORTED",
                rb == CommitResult::Committed ? "COMMITTED" : "ABORTED");

    cluster.sim().requestStop();
}

} // namespace

int
main()
{
    ClusterConfig cfg;
    cfg.numShards = 3;
    cfg.replicasPerShard = 3;
    cfg.numClients = 2;
    cfg.backend = BackendKind::Mftl; // flash with the unified FTL
    cfg.clocks = ClockKind::PtpSw;   // the paper's PTP configuration
    cfg.numKeys = 1000;

    std::printf("building 3-shard x 3-replica MILANA cluster on MFTL "
                "flash...\n");
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    sim::spawn(demo(cluster));
    cluster.sim().run();

    const auto stats = cluster.clientStats();
    std::printf("\ntotals: %llu committed, %llu aborted, %llu local "
                "validations\n",
                static_cast<unsigned long long>(
                    stats.counterValue("txn.committed")),
                static_cast<unsigned long long>(
                    stats.counterValue("txn.aborted")),
                static_cast<unsigned long long>(
                    stats.counterValue("txn.local_validations")));
    return 0;
}
