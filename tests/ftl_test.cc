/**
 * @file
 * Tests for the storage backends: MFTL, VFTL, SFTL/SingleVersionKv and
 * DRAM. Cover round-trips, snapshot reads, packing behaviour,
 * watermark pruning, garbage collection under space pressure,
 * idempotent replays, and recovery scans.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "flash/ssd.hh"
#include "ftl/dram.hh"
#include "ftl/mftl.hh"
#include "ftl/sftl.hh"
#include "ftl/vftl.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace ftl;
using common::kMicrosecond;
using common::kMillisecond;
using common::kSecond;
using common::Version;

namespace {

flash::Geometry
smallGeometry(std::uint32_t blocks = 64)
{
    flash::Geometry g;
    g.numBlocks = blocks;
    g.pagesPerBlock = 8;
    g.numChannels = 4;
    g.queueDepth = 16;
    return g;
}

/** Drive a coroutine to completion on a fresh simulator. */
template <typename Fn>
void
runSim(sim::Simulator &s, Fn &&fn)
{
    sim::spawn(fn());
    s.run();
}

Version
v(common::Time ts, common::ClientId c = 1)
{
    return Version{ts, c};
}

} // namespace

// ---------------------------------------------------------------- MFTL

struct MftlFixture
{
    sim::Simulator s;
    flash::SsdDevice ssd;
    Mftl mftl;

    explicit MftlFixture(std::uint32_t blocks = 64,
                         Mftl::Config cfg = Mftl::Config{})
        : ssd(s, smallGeometry(blocks)), mftl(s, ssd, cfg)
    {
    }
};

TEST(Mftl, PutGetRoundTrip)
{
    MftlFixture f;
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        auto st = co_await f.mftl.put(7, "hello", v(100));
        EXPECT_EQ(st, PutStatus::Ok);
        got = co_await f.mftl.get(7, v(100));
    });
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.value, "hello");
    EXPECT_EQ(got.version, v(100));
}

TEST(Mftl, MissingKeyIsMiss)
{
    MftlFixture f;
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        got = co_await f.mftl.get(999, v(100));
    });
    EXPECT_FALSE(got.found);
}

TEST(Mftl, SnapshotReadsPickVersionAtOrBelow)
{
    MftlFixture f;
    GetResult at150, at250, at99;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.mftl.put(1, "v100", v(100));
        co_await f.mftl.put(1, "v200", v(200));
        co_await f.mftl.put(1, "v300", v(300));
        at150 = co_await f.mftl.get(1, v(150));
        at250 = co_await f.mftl.get(1, v(250));
        at99 = co_await f.mftl.get(1, v(99));
    });
    EXPECT_EQ(at150.value, "v100");
    EXPECT_EQ(at250.value, "v200");
    EXPECT_FALSE(at99.found); // older than the oldest version
}

TEST(Mftl, VersionsAccumulate)
{
    MftlFixture f;
    runSim(f.s, [&]() -> sim::Task<void> {
        for (int i = 1; i <= 5; ++i)
            co_await f.mftl.put(3, "x", v(i * 100));
    });
    EXPECT_EQ(f.mftl.versionCount(3), 5u);
}

TEST(Mftl, OutOfOrderInsertsKeepChainsSorted)
{
    MftlFixture f;
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.mftl.put(5, "late", v(300));
        co_await f.mftl.put(5, "early", v(100)); // arrives late
        got = co_await f.mftl.get(5, v(200));
    });
    EXPECT_EQ(got.value, "early");
}

TEST(Mftl, IdempotentReplayIgnored)
{
    MftlFixture f;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.mftl.put(4, "a", v(100));
        co_await f.mftl.put(4, "a", v(100)); // replay, same stamp
    });
    EXPECT_EQ(f.mftl.versionCount(4), 1u);
}

TEST(Mftl, PackTimerBoundsPutLatency)
{
    // A lone put cannot fill a page; it must flush at the pack timeout.
    Mftl::Config cfg;
    cfg.packTimeout = kMillisecond;
    MftlFixture f(64, cfg);
    common::Time done = 0;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.mftl.put(1, "x", v(10));
        done = f.s.now();
    });
    // pack wait (1 ms) + program (100 us).
    EXPECT_GE(done, kMillisecond);
    EXPECT_LE(done, kMillisecond + 300 * kMicrosecond);
}

TEST(Mftl, FullPageFlushesImmediately)
{
    // 8 puts of 512 B fill a 4 KB page; no pack wait for the batch.
    MftlFixture f;
    common::Time done = 0;
    runSim(f.s, [&]() -> sim::Task<void> {
        std::vector<sim::Task<PutStatus>> noop;
        for (int i = 0; i < 8; ++i)
            sim::spawn([&, i]() -> sim::Task<void> {
                (void)co_await f.mftl.put(static_cast<Key>(i), "x", v(10 + i));
            }());
        co_await sim::sleepFor(f.s, 150 * kMicrosecond);
        done = f.s.now();
        GetResult g0 = co_await f.mftl.get(0, v(1000));
        EXPECT_TRUE(g0.found);
    });
    EXPECT_LT(done, kMillisecond); // did not wait for the pack timer
}

TEST(Mftl, EraseRemovesAllVersions)
{
    MftlFixture f;
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.mftl.put(9, "a", v(100));
        co_await f.mftl.put(9, "b", v(200));
        co_await f.mftl.erase(9);
        got = co_await f.mftl.get(9, v(1000));
    });
    EXPECT_FALSE(got.found);
    EXPECT_EQ(f.mftl.versionCount(9), 0u);
}

TEST(Mftl, WatermarkPrunesOldVersions)
{
    MftlFixture f;
    runSim(f.s, [&]() -> sim::Task<void> {
        for (int i = 1; i <= 6; ++i)
            co_await f.mftl.put(2, "x", v(i * 100));
        // Watermark at 450: keep v400 (youngest <= 450), v500, v600.
        f.mftl.setWatermark(450);
        (void)co_await f.mftl.get(2, v(10000)); // triggers lazy prune
    });
    EXPECT_EQ(f.mftl.versionCount(2), 3u);
}

TEST(Mftl, WatermarkKeepsSnapshotReadable)
{
    MftlFixture f;
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.mftl.put(2, "old", v(100));
        co_await f.mftl.put(2, "new", v(500));
        f.mftl.setWatermark(300);
        // A transaction with begin timestamp 300 must still read "old".
        got = co_await f.mftl.get(2, v(300));
    });
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.value, "old");
}

TEST(Mftl, GcReclaimsSpaceUnderOverwrites)
{
    // 32 blocks x 8 pages x 8 tuples = 2048 tuple slots. Writing 200
    // keys 40 times each = 8000 tuples forces several GC passes; the
    // watermark advances so old versions die.
    MftlFixture f(32);
    f.mftl.start();
    bool all_ok = true;
    runSim(f.s, [&]() -> sim::Task<void> {
        for (int round = 0; round < 40; ++round) {
            for (Key k = 0; k < 200; ++k) {
                auto st = co_await f.mftl.put(
                    k, "r" + std::to_string(round),
                    v(round * 1000 + static_cast<int>(k) + 1));
                all_ok &= (st == PutStatus::Ok);
            }
            f.mftl.setWatermark(round * 1000);
        }
        // Everything still readable at the latest version.
        for (Key k = 0; k < 200; ++k) {
            auto g = co_await f.mftl.getLatest(k);
            all_ok &= g.found && g.value == "r39";
        }
        f.s.requestStop();
    });
    EXPECT_TRUE(all_ok);
    EXPECT_GT(f.mftl.stats().counterValue("mftl.gc_erases"), 0u);
    EXPECT_GT(f.ssd.stats().counterValue("ssd.erases"), 0u);
}

TEST(Mftl, WearLevelingKeepsSpreadSmall)
{
    MftlFixture f(32);
    f.mftl.start();
    runSim(f.s, [&]() -> sim::Task<void> {
        for (int round = 0; round < 60; ++round) {
            for (Key k = 0; k < 100; ++k)
                co_await f.mftl.put(
                    k, "x", v(round * 1000 + static_cast<int>(k) + 1));
            f.mftl.setWatermark(round * 1000);
        }
        f.s.requestStop();
    });
    // Greedy+wear-aware victim selection should keep erase counts
    // within a modest band.
    EXPECT_GT(f.ssd.stats().counterValue("ssd.erases"), 20u);
    EXPECT_LE(f.ssd.wearSpread(), 12u);
}

TEST(Mftl, RebuildFromFlashRecoversMappings)
{
    MftlFixture f;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.mftl.put(1, "a", v(100));
        co_await f.mftl.put(1, "b", v(200));
        co_await f.mftl.put(2, "c", v(150));
    });
    const std::size_t recovered = f.mftl.rebuildFromFlash();
    EXPECT_GE(recovered, 3u);
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        got = co_await f.mftl.get(1, v(150));
    });
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.value, "a");
}

// ---------------------------------------------------------------- SFTL

struct SftlFixture
{
    sim::Simulator s;
    flash::SsdDevice ssd;
    Sftl sftl;

    explicit SftlFixture(std::uint32_t blocks = 64)
        : ssd(s, smallGeometry(blocks)), sftl(s, ssd, Sftl::Config{})
    {
    }
};

TEST(Sftl, LogicalSpaceIsNinetyPercent)
{
    SftlFixture f;
    const auto total = f.ssd.geometry().totalPages();
    EXPECT_EQ(f.sftl.logicalBlocks(),
              static_cast<std::uint64_t>(total * 0.9));
}

TEST(Sftl, WriteReadRoundTrip)
{
    SftlFixture f;
    std::optional<flash::PageData> got;
    runSim(f.s, [&]() -> sim::Task<void> {
        flash::PageData d;
        flash::Record r;
        r.key = 11;
        r.value = "data";
        d.records.push_back(r);
        co_await f.sftl.write(5, std::move(d));
        got = co_await f.sftl.read(5);
    });
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->records[0].key, 11u);
}

TEST(Sftl, UnwrittenLbaReadsEmpty)
{
    SftlFixture f;
    std::optional<flash::PageData> got;
    runSim(f.s, [&]() -> sim::Task<void> {
        got = co_await f.sftl.read(17);
    });
    EXPECT_FALSE(got.has_value());
}

TEST(Sftl, OverwriteRemapsAndInvalidatesOld)
{
    SftlFixture f;
    std::optional<flash::PageData> got;
    runSim(f.s, [&]() -> sim::Task<void> {
        flash::PageData d1, d2;
        flash::Record r;
        r.key = 1;
        r.value = "one";
        d1.records.push_back(r);
        r.value = "two";
        d2.records.push_back(r);
        co_await f.sftl.write(3, std::move(d1));
        co_await f.sftl.write(3, std::move(d2));
        got = co_await f.sftl.read(3);
    });
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->records[0].value, "two");
}

TEST(Sftl, TrimUnmaps)
{
    SftlFixture f;
    std::optional<flash::PageData> got;
    runSim(f.s, [&]() -> sim::Task<void> {
        flash::PageData d;
        d.records.push_back(flash::Record{});
        co_await f.sftl.write(2, std::move(d));
        co_await f.sftl.trim(2);
        got = co_await f.sftl.read(2);
    });
    EXPECT_FALSE(got.has_value());
    EXPECT_FALSE(f.sftl.mapped(2));
}

TEST(Sftl, GcReclaimsInvalidPages)
{
    SftlFixture f(16); // 16 blocks x 8 pages = 128 phys pages, 115 LBAs
    bool all_ok = true;
    runSim(f.s, [&]() -> sim::Task<void> {
        // Repeatedly overwrite a small LBA set; the log wraps several
        // times and GC must reclaim the dead pages.
        for (int round = 0; round < 40; ++round) {
            for (Lba lba = 0; lba < 20; ++lba) {
                flash::PageData d;
                flash::Record r;
                r.key = static_cast<Key>(lba);
                r.value = std::to_string(round);
                d.records.push_back(r);
                auto st = co_await f.sftl.write(lba, std::move(d));
                all_ok &= (st == PutStatus::Ok);
            }
        }
        for (Lba lba = 0; lba < 20; ++lba) {
            auto g = co_await f.sftl.read(lba);
            all_ok &= g.has_value() && g->records[0].value == "39";
        }
        f.s.requestStop();
    });
    EXPECT_TRUE(all_ok);
    EXPECT_GT(f.sftl.stats().counterValue("sftl.gc_erases"), 0u);
}

// ---------------------------------------------------- SingleVersionKv

struct SvkvFixture
{
    sim::Simulator s;
    flash::SsdDevice ssd;
    Sftl sftl;
    SingleVersionKv kv;

    static SingleVersionKv::Config
    cfg()
    {
        SingleVersionKv::Config c;
        c.capacityKeys = 1000;
        return c;
    }

    SvkvFixture()
        : ssd(s, smallGeometry(64)), sftl(s, ssd, Sftl::Config{}),
          kv(s, sftl, cfg())
    {
    }
};

TEST(SingleVersionKv, RoundTrip)
{
    SvkvFixture f;
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.kv.put(42, "val", v(100));
        got = co_await f.kv.get(42, v(100));
    });
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.value, "val");
}

TEST(SingleVersionKv, IgnoresSnapshotBound)
{
    // Single-version storage returns the current version even when the
    // reader asked for an older snapshot — the caller detects this by
    // the returned stamp (Figure 6's abort mechanism).
    SvkvFixture f;
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.kv.put(1, "new", v(500));
        got = co_await f.kv.get(1, v(100));
    });
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.version, v(500)); // newer than the requested bound
}

TEST(SingleVersionKv, StaleWriteRejected)
{
    SvkvFixture f;
    PutStatus st{};
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.kv.put(1, "newer", v(500));
        st = co_await f.kv.put(1, "older", v(400));
    });
    EXPECT_EQ(st, PutStatus::StaleVersion);
}

TEST(SingleVersionKv, SameSlotNeighborsIndependent)
{
    // Keys 0..7 share one LBA; updates must not clobber neighbours.
    SvkvFixture f;
    bool all_ok = true;
    runSim(f.s, [&]() -> sim::Task<void> {
        for (Key k = 0; k < 8; ++k)
            co_await f.kv.put(k, "k" + std::to_string(k), v(100 + (int)k));
        for (Key k = 0; k < 8; ++k) {
            auto g = co_await f.kv.getLatest(k);
            all_ok &= g.found && g.value == "k" + std::to_string(k);
        }
    });
    EXPECT_TRUE(all_ok);
}

TEST(SingleVersionKv, ConcurrentRmwSerializes)
{
    SvkvFixture f;
    // Two concurrent writers to keys in the same LBA; both must land.
    runSim(f.s, [&]() -> sim::Task<void> {
        sim::spawn([&]() -> sim::Task<void> {
            (void)co_await f.kv.put(0, "a", v(100));
        }());
        sim::spawn([&]() -> sim::Task<void> {
            (void)co_await f.kv.put(1, "b", v(101));
        }());
        co_await sim::sleepFor(f.s, 10 * kMillisecond);
        auto g0 = co_await f.kv.getLatest(0);
        auto g1 = co_await f.kv.getLatest(1);
        EXPECT_TRUE(g0.found);
        EXPECT_TRUE(g1.found);
        EXPECT_EQ(g0.value, "a");
        EXPECT_EQ(g1.value, "b");
    });
}

TEST(SingleVersionKv, EraseLeavesMiss)
{
    SvkvFixture f;
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.kv.put(5, "x", v(10));
        co_await f.kv.erase(5);
        got = co_await f.kv.getLatest(5);
    });
    EXPECT_FALSE(got.found);
}

// ---------------------------------------------------------------- VFTL

struct VftlFixture
{
    sim::Simulator s;
    flash::SsdDevice ssd;
    Sftl sftl;
    Vftl vftl;

    explicit VftlFixture(std::uint32_t blocks = 64)
        : ssd(s, smallGeometry(blocks)), sftl(s, ssd, Sftl::Config{}),
          vftl(s, sftl, Vftl::Config{})
    {
    }
};

TEST(Vftl, PutGetRoundTrip)
{
    VftlFixture f;
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.vftl.put(7, "hello", v(100));
        got = co_await f.vftl.get(7, v(100));
    });
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.value, "hello");
}

TEST(Vftl, SnapshotReads)
{
    VftlFixture f;
    GetResult at150;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.vftl.put(1, "v100", v(100));
        co_await f.vftl.put(1, "v200", v(200));
        at150 = co_await f.vftl.get(1, v(150));
    });
    EXPECT_EQ(at150.value, "v100");
}

TEST(Vftl, WatermarkPrunes)
{
    VftlFixture f;
    runSim(f.s, [&]() -> sim::Task<void> {
        for (int i = 1; i <= 4; ++i)
            co_await f.vftl.put(2, "x", v(i * 100));
        f.vftl.setWatermark(250);
        (void)co_await f.vftl.get(2, v(10000));
    });
    // Keep v200 (youngest <= 250), v300, v400.
    EXPECT_EQ(f.vftl.versionCount(2), 3u);
}

TEST(Vftl, ReservesLbasForGc)
{
    VftlFixture f;
    // VFTL holds back ~10% of SFTL's logical blocks.
    EXPECT_LT(f.vftl.freeLbas(), f.sftl.logicalBlocks() + 1);
}

TEST(Vftl, GcCompactsDeadVersions)
{
    VftlFixture f(24);
    f.vftl.start();
    bool all_ok = true;
    runSim(f.s, [&]() -> sim::Task<void> {
        for (int round = 0; round < 30; ++round) {
            for (Key k = 0; k < 150; ++k) {
                auto st = co_await f.vftl.put(
                    k, "r" + std::to_string(round),
                    v(round * 1000 + static_cast<int>(k) + 1));
                all_ok &= (st == PutStatus::Ok);
            }
            f.vftl.setWatermark(round * 1000);
        }
        for (Key k = 0; k < 150; ++k) {
            auto g = co_await f.vftl.getLatest(k);
            all_ok &= g.found && g.value == "r29";
        }
        f.s.requestStop();
    });
    EXPECT_TRUE(all_ok);
    EXPECT_GT(f.vftl.stats().counterValue("vftl.gc_trims"), 0u);
}

TEST(Vftl, TwoLevelGcBothRun)
{
    VftlFixture f(20);
    f.vftl.start();
    runSim(f.s, [&]() -> sim::Task<void> {
        for (int round = 0; round < 40; ++round) {
            for (Key k = 0; k < 120; ++k)
                co_await f.vftl.put(
                    k, "x", v(round * 1000 + static_cast<int>(k) + 1));
            f.vftl.setWatermark(round * 1000);
        }
        f.s.requestStop();
    });
    // Both the KV-layer GC and the SFTL GC below it must have worked.
    EXPECT_GT(f.vftl.stats().counterValue("vftl.gc_trims"), 0u);
    EXPECT_GT(f.sftl.stats().counterValue("sftl.gc_erases"), 0u);
}

// ---------------------------------------------------------------- DRAM

TEST(Dram, RoundTripAndSnapshots)
{
    sim::Simulator s;
    DramBackend dram(s);
    GetResult got;
    runSim(s, [&]() -> sim::Task<void> {
        co_await dram.put(1, "a", v(100));
        co_await dram.put(1, "b", v(200));
        got = co_await dram.get(1, v(150));
    });
    EXPECT_EQ(got.value, "a");
}

TEST(Dram, FastWrites)
{
    sim::Simulator s;
    DramBackend dram(s);
    common::Time done = 0;
    runSim(s, [&]() -> sim::Task<void> {
        co_await dram.put(1, "a", v(100));
        done = s.now();
    });
    EXPECT_LT(done, 2 * kMicrosecond); // orders faster than flash
}

TEST(Dram, WatermarkPrunes)
{
    sim::Simulator s;
    DramBackend dram(s);
    runSim(s, [&]() -> sim::Task<void> {
        for (int i = 1; i <= 5; ++i)
            co_await dram.put(1, "x", v(i * 100));
        dram.setWatermark(350);
        (void)co_await dram.get(1, v(1000));
    });
    EXPECT_EQ(dram.versionCount(1), 3u); // v300, v400, v500
}

TEST(Dram, EraseRemoves)
{
    sim::Simulator s;
    DramBackend dram(s);
    GetResult got;
    runSim(s, [&]() -> sim::Task<void> {
        co_await dram.put(1, "a", v(100));
        co_await dram.erase(1);
        got = co_await dram.getLatest(1);
    });
    EXPECT_FALSE(got.found);
}

// ------------------------------------------------- cross-backend props

class BackendParamTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BackendParamTest, MonotoneVersionsReadBack)
{
    sim::Simulator s;
    flash::SsdDevice ssd(s, smallGeometry(64));
    Sftl sftl(s, ssd, Sftl::Config{});
    std::unique_ptr<KvBackend> backend;
    const std::string which = GetParam();
    if (which == "mftl")
        backend = std::make_unique<Mftl>(s, ssd, Mftl::Config{});
    else if (which == "vftl")
        backend = std::make_unique<Vftl>(s, sftl, Vftl::Config{});
    else
        backend = std::make_unique<DramBackend>(s);

    bool all_ok = true;
    runSim(s, [&]() -> sim::Task<void> {
        // Write 20 keys x 5 versions, then check every snapshot cut.
        for (int ver = 1; ver <= 5; ++ver)
            for (Key k = 0; k < 20; ++k)
                co_await backend->put(
                    k, "v" + std::to_string(ver),
                    v(ver * 100, static_cast<common::ClientId>(k % 3)));
        for (int cut = 1; cut <= 5; ++cut) {
            for (Key k = 0; k < 20; ++k) {
                auto g = co_await backend->get(k, v(cut * 100 + 50, 9));
                all_ok &= g.found &&
                          g.value == "v" + std::to_string(cut);
            }
        }
    });
    EXPECT_TRUE(all_ok);
}

INSTANTIATE_TEST_SUITE_P(AllMultiVersionBackends, BackendParamTest,
                         ::testing::Values("mftl", "vftl", "dram"));

TEST(Dram, PaperScalePopulateIdenticalAcrossTableCapacities)
{
    // 2M keys — the paper's Figure 6 key count. Populate one backend
    // that grows from the default table capacity and one pre-sized via
    // Config::expectedKeys; reads must be byte-identical, so table
    // geometry (grow schedule, slot order, robin-hood displacement)
    // is unobservable.
    constexpr Key kKeys = 2'000'000;
    sim::Simulator s1, s2;
    DramBackend grown(s1);
    DramBackend::Config cfg;
    cfg.expectedKeys = kKeys;
    DramBackend sized(s2, cfg);

    auto populate = [](sim::Simulator &s, DramBackend &d) {
        runSim(s, [&]() -> sim::Task<void> {
            for (Key k = 0; k < kKeys; ++k)
                co_await d.put(k, "k" + std::to_string(k % 97),
                               v(static_cast<common::Time>(k % 1000) + 1,
                                 static_cast<common::ClientId>(k % 5)));
        });
    };
    populate(s1, grown);
    populate(s2, sized);

    auto snapshot = [](sim::Simulator &s, DramBackend &d) {
        std::vector<GetResult> out;
        runSim(s, [&]() -> sim::Task<void> {
            for (Key k = 0; k < kKeys; k += 499) {
                const Version cut =
                    v(static_cast<common::Time>(k % 1000) + 1, 9);
                out.push_back(co_await d.get(k, cut));
            }
        });
        return out;
    };
    const auto a = snapshot(s1, grown);
    const auto b = snapshot(s2, sized);
    ASSERT_EQ(a.size(), b.size());
    bool identical = true;
    for (std::size_t i = 0; i < a.size(); ++i)
        identical &= a[i].found == b[i].found &&
                     a[i].version == b[i].version &&
                     a[i].value == b[i].value;
    EXPECT_TRUE(identical);
    EXPECT_EQ(grown.versionCount(12345), sized.versionCount(12345));
}

TEST(Vftl, RebuildFromStoreRecoversMappings)
{
    VftlFixture f;
    runSim(f.s, [&]() -> sim::Task<void> {
        co_await f.vftl.put(1, "a", v(100));
        co_await f.vftl.put(1, "b", v(200));
        co_await f.vftl.put(2, "c", v(150));
    });
    const std::size_t recovered = f.vftl.rebuildFromStore();
    EXPECT_GE(recovered, 3u);
    GetResult got;
    runSim(f.s, [&]() -> sim::Task<void> {
        got = co_await f.vftl.get(1, v(150));
    });
    EXPECT_TRUE(got.found);
    EXPECT_EQ(got.value, "a");
}

TEST(Vftl, RebuildAfterGcStillConsistent)
{
    VftlFixture f(24);
    f.vftl.start();
    runSim(f.s, [&]() -> sim::Task<void> {
        for (int round = 0; round < 20; ++round) {
            for (Key k = 0; k < 100; ++k)
                co_await f.vftl.put(
                    k, "r" + std::to_string(round),
                    v(round * 1000 + static_cast<int>(k) + 1));
            f.vftl.setWatermark(round * 1000);
        }
        f.s.requestStop();
    });
    f.vftl.rebuildFromStore();
    bool all_ok = true;
    runSim(f.s, [&]() -> sim::Task<void> {
        for (Key k = 0; k < 100; ++k) {
            auto g = co_await f.vftl.getLatest(k);
            all_ok &= g.found && g.value == "r19";
        }
    });
    EXPECT_TRUE(all_ok);
}
