/**
 * @file
 * SEMEL integration tests: sharding, linearizable puts/gets through
 * the simulated network, inconsistent replication, idempotent
 * retransmissions, stale-write rejection, and watermark propagation.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "clocksync/clock.hh"
#include "ftl/dram.hh"
#include "net/network.hh"
#include "semel/client.hh"
#include "semel/server.hh"
#include "semel/shard_map.hh"
#include "sim/simulator.hh"

using namespace semel;
using common::kMicrosecond;
using common::kMillisecond;
using common::kSecond;
using common::Key;
using common::Rng;
using common::Version;

TEST(ShardMap, CoversAllShards)
{
    ShardMap map(4);
    std::set<ShardId> seen;
    for (Key k = 0; k < 10000; ++k)
        seen.insert(map.shardOf(k));
    EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardMap, Deterministic)
{
    ShardMap a(8), b(8);
    for (Key k = 0; k < 1000; ++k)
        EXPECT_EQ(a.shardOf(k), b.shardOf(k));
}

TEST(ShardMap, RoughlyBalanced)
{
    ShardMap map(4);
    std::vector<int> counts(4, 0);
    for (Key k = 0; k < 40000; ++k)
        ++counts[map.shardOf(k)];
    for (int c : counts) {
        EXPECT_GT(c, 4000);  // no shard starved
        EXPECT_LT(c, 25000); // no shard dominates
    }
}

TEST(Master, FailoverPromotesReplica)
{
    ShardMap map(1);
    Master master(map);
    master.setReplicas(0, {10, 11, 12});
    EXPECT_EQ(master.primaryOf(0), 10u);
    master.failover(0, 12);
    EXPECT_EQ(master.primaryOf(0), 12u);
    const auto backups = master.backupsOf(0);
    EXPECT_EQ(backups.size(), 2u);
    EXPECT_EQ(backups[0], 10u);
}

namespace {

/** Hand-wired 1-shard, 3-replica SEMEL deployment on DRAM. */
struct SemelRig
{
    sim::Simulator sim;
    Rng rng{42};
    net::Network net{sim, net::NetConfig{}, Rng(43)};
    ShardMap map{1};
    Master master{map};
    Directory directory;
    std::vector<std::unique_ptr<ftl::DramBackend>> backends;
    std::vector<std::unique_ptr<Server>> servers;
    std::vector<std::unique_ptr<clocksync::PerfectClock>> clocks;
    std::vector<std::unique_ptr<Client>> clients;

    explicit SemelRig(std::uint32_t replicas = 3,
                      std::uint32_t num_clients = 2)
    {
        Server::Config cfg;
        cfg.backupAcksNeeded = replicas > 1 ? 1 : 0;
        cfg.expectedClients = num_clients;
        std::vector<common::NodeId> nodes;
        for (std::uint32_t r = 0; r < replicas; ++r) {
            backends.push_back(std::make_unique<ftl::DramBackend>(sim));
            servers.push_back(std::make_unique<Server>(
                sim, net, r, 0, *backends.back(), cfg));
            directory.add(servers.back().get());
            nodes.push_back(r);
        }
        master.setReplicas(0, nodes);
        std::vector<Server *> backups;
        for (std::uint32_t r = 1; r < replicas; ++r)
            backups.push_back(servers[r].get());
        servers[0]->setBackups(backups);

        Client::Config ccfg;
        for (std::uint32_t c = 0; c < num_clients; ++c) {
            clocks.push_back(
                std::make_unique<clocksync::PerfectClock>(sim));
            clients.push_back(std::make_unique<Client>(
                sim, net, 1000 + c, c + 1, *clocks.back(), master,
                directory, ccfg));
        }
    }
};

} // namespace

TEST(Semel, PutGetRoundTrip)
{
    SemelRig rig;
    bool ok = false;
    sim::spawn([](SemelRig *rig, bool *ok) -> sim::Task<void> {
        auto put = co_await rig->clients[0]->put(5, "hello");
        EXPECT_EQ(put, PutResult::Ok);
        auto got = co_await rig->clients[0]->get(5);
        *ok = got.has_value() && got->found && got->value == "hello";
    }(&rig, &ok));
    rig.sim.run();
    EXPECT_TRUE(ok);
}

TEST(Semel, GetMissingKey)
{
    SemelRig rig;
    bool ran = false;
    sim::spawn([](SemelRig *rig, bool *ran) -> sim::Task<void> {
        auto got = co_await rig->clients[0]->get(99);
        EXPECT_TRUE(got.has_value());
        EXPECT_FALSE(got->found);
        *ran = true;
    }(&rig, &ran));
    rig.sim.run();
    EXPECT_TRUE(ran);
}

TEST(Semel, WritesReplicateToBackups)
{
    SemelRig rig;
    sim::spawn([](SemelRig *rig) -> sim::Task<void> {
        (void)co_await rig->clients[0]->put(7, "replicated");
    }(&rig));
    rig.sim.run();
    // With one-of-two quorum both backups usually receive it; at
    // minimum the write is applied on the primary plus one backup.
    int holders = 0;
    for (auto &backend : rig.backends) {
        bool found = false;
        sim::spawn([](ftl::DramBackend *b, bool *found) -> sim::Task<void> {
            auto r = co_await b->getLatest(7);
            *found = r.found;
        }(backend.get(), &found));
        rig.sim.run();
        holders += found;
    }
    EXPECT_GE(holders, 2);
}

TEST(Semel, SurvivesOneBackupCrash)
{
    SemelRig rig;
    rig.net.setNodeDown(2, true); // crash one backup
    PutResult result{};
    sim::spawn([](SemelRig *rig, PutResult *result) -> sim::Task<void> {
        *result = co_await rig->clients[0]->put(3, "quorum");
    }(&rig, &result));
    rig.sim.run();
    EXPECT_EQ(result, PutResult::Ok);
}

TEST(Semel, StaleWriteRejected)
{
    SemelRig rig;
    PutResult second{};
    sim::spawn([](SemelRig *rig, PutResult *second) -> sim::Task<void> {
        // Let the clock advance past the forged timestamp below.
        co_await sim::sleepFor(rig->sim, kMillisecond);
        // Client 0 writes at its current clock; then we forge an older
        // version directly at the primary.
        (void)co_await rig->clients[0]->put(1, "newer");
        const Version stale{1, 9}; // far in the past
        PutRequest req{1, "older", stale};
        auto resp = co_await rig->servers[0]->handlePut(req);
        *second = resp.result;
    }(&rig, &second));
    rig.sim.run();
    EXPECT_EQ(second, PutResult::StaleRejected);
}

TEST(Semel, DuplicatePutIsIdempotent)
{
    SemelRig rig;
    PutResult first{}, replay{};
    sim::spawn([](SemelRig *rig, PutResult *first,
                  PutResult *replay) -> sim::Task<void> {
        const Version v{rig->clients[0]->now(), 1};
        PutRequest req{4, "once", v};
        auto r1 = co_await rig->servers[0]->handlePut(req);
        auto r2 = co_await rig->servers[0]->handlePut(req); // retransmit
        *first = r1.result;
        *replay = r2.result;
    }(&rig, &first, &replay));
    rig.sim.run();
    EXPECT_EQ(first, PutResult::Ok);
    EXPECT_EQ(replay, PutResult::Ok);
    EXPECT_EQ(rig.servers[0]->stats().counterValue(
                  "semel.duplicate_puts"),
              1u);
}

TEST(Semel, ConcurrentWritersConverge)
{
    SemelRig rig;
    // Two clients hammer the same key; the winner must be the highest
    // version, everywhere the value is the winner's.
    sim::spawn([](SemelRig *rig) -> sim::Task<void> {
        for (int i = 0; i < 10; ++i)
            (void)co_await rig->clients[0]->put(8, "from0");
    }(&rig));
    sim::spawn([](SemelRig *rig) -> sim::Task<void> {
        for (int i = 0; i < 10; ++i)
            (void)co_await rig->clients[1]->put(8, "from1");
    }(&rig));
    rig.sim.run();

    std::optional<GetResponse> got;
    sim::spawn([](SemelRig *rig,
                  std::optional<GetResponse> *got) -> sim::Task<void> {
        *got = co_await rig->clients[0]->get(8);
    }(&rig, &got));
    rig.sim.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_TRUE(got->found);
    EXPECT_EQ(got->version, rig.servers[0]->latestCommitted(8));
}

TEST(Semel, DeleteRemovesKey)
{
    SemelRig rig;
    bool gone = false;
    sim::spawn([](SemelRig *rig, bool *gone) -> sim::Task<void> {
        (void)co_await rig->clients[0]->put(6, "x");
        (void)co_await rig->clients[0]->del(6);
        auto got = co_await rig->clients[0]->get(6);
        *gone = got.has_value() && !got->found;
    }(&rig, &gone));
    rig.sim.run();
    EXPECT_TRUE(gone);
}

TEST(Semel, WatermarkAdvancesAfterAllClientsReport)
{
    SemelRig rig;
    // Both clients do work, then their broadcast loops report.
    for (auto &client : rig.clients)
        client->start();
    sim::spawn([](SemelRig *rig) -> sim::Task<void> {
        // A put at t=0 would carry timestamp 0, which reads as "no
        // acknowledged work yet" — advance the clock first.
        co_await sim::sleepFor(rig->sim, kMillisecond);
        (void)co_await rig->clients[0]->put(1, "a");
        (void)co_await rig->clients[1]->put(2, "b");
    }(&rig));
    rig.sim.runFor(kSecond);
    EXPECT_GT(rig.servers[0]->watermark(), 0);
    EXPECT_GT(rig.servers[0]->stats().counterValue(
                  "semel.watermark_advances"),
              0u);
}

TEST(Semel, WatermarkWaitsForSilentClient)
{
    SemelRig rig;
    // Only client 0 works and reports; client 1 never does, so the
    // watermark must not advance (its future reads could be older).
    rig.clients[0]->start();
    sim::spawn([](SemelRig *rig) -> sim::Task<void> {
        (void)co_await rig->clients[0]->put(1, "a");
    }(&rig));
    rig.sim.runFor(kSecond);
    EXPECT_EQ(rig.servers[0]->watermark(), 0);
}

TEST(Semel, RetriesThroughTransientPartition)
{
    SemelRig rig;
    // Cut client 0 <-> primary for a moment; the first attempt times
    // out but a retry after healing succeeds.
    rig.net.setLinkBroken(1000, 0, true);
    rig.sim.schedule(30 * kMillisecond,
                     [&] { rig.net.setLinkBroken(1000, 0, false); });
    PutResult result{};
    sim::spawn([](SemelRig *rig, PutResult *result) -> sim::Task<void> {
        *result = co_await rig->clients[0]->put(9, "eventually");
    }(&rig, &result));
    rig.sim.run();
    EXPECT_EQ(result, PutResult::Ok);
}
