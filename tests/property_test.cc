/**
 * @file
 * Property-based tests: randomized operation sequences checked against
 * simple reference models.
 *
 *  - VersionChain vs a std::map reference under random insert /
 *    prune / remove / relocate interleavings;
 *  - storage backends under random put/get schedules: every
 *    acknowledged write must be readable at (and after) its stamp
 *    until the watermark passes it;
 *  - clock monotonicity under random corrections;
 *  - MILANA serializability under a randomized multi-client mix
 *    (read-modify-write counters must never lose updates).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "clocksync/clock.hh"
#include "flash/ssd.hh"
#include "ftl/dram.hh"
#include "ftl/mftl.hh"
#include "ftl/sftl.hh"
#include "ftl/vftl.hh"
#include "workload/cluster.hh"

using common::Key;
using common::kMillisecond;
using common::kSecond;
using common::Rng;
using common::Version;

// ----------------------------------------------------- version chains

TEST(Property, VersionChainMatchesReferenceModel)
{
    Rng rng(101);
    for (int trial = 0; trial < 50; ++trial) {
        ftl::VersionChain<int> chain;
        std::map<Version, int> model;

        for (int op = 0; op < 200; ++op) {
            const double p = rng.nextDouble();
            const Version v{
                static_cast<common::Time>(rng.nextBounded(500) + 1),
                static_cast<common::ClientId>(rng.nextBounded(3))};
            if (p < 0.5) {
                const int loc = static_cast<int>(rng.nextBounded(1000));
                const bool inserted = chain.insert(v, loc);
                EXPECT_EQ(inserted, !model.count(v));
                model.emplace(v, loc);
            } else if (p < 0.65) {
                EXPECT_EQ(chain.remove(v), model.erase(v) > 0);
            } else if (p < 0.8) {
                const int loc = static_cast<int>(rng.nextBounded(1000));
                const bool relocated = chain.relocate(v, loc);
                auto it = model.find(v);
                EXPECT_EQ(relocated, it != model.end());
                if (it != model.end())
                    it->second = loc;
            } else {
                // Watermark prune: keep youngest <= wm plus younger.
                const common::Time wm =
                    static_cast<common::Time>(rng.nextBounded(500));
                chain.pruneBelowWatermark(wm, [](const auto &) {});
                // Reference: find youngest entry with ts <= wm; drop
                // everything older than it.
                Version keep = Version::zero();
                bool have = false;
                for (const auto &[ver, loc] : model) {
                    if (ver.timestamp <= wm &&
                        (!have || ver > keep)) {
                        keep = ver;
                        have = true;
                    }
                }
                if (have) {
                    for (auto it = model.begin(); it != model.end();) {
                        it = it->first < keep ? model.erase(it)
                                              : std::next(it);
                    }
                }
            }
            // Compare lookups at random cut points.
            const Version at{
                static_cast<common::Time>(rng.nextBounded(600)),
                static_cast<common::ClientId>(rng.nextBounded(3))};
            const auto *entry = chain.findAt(at);
            // Reference youngest <= at:
            const std::pair<const Version, int> *ref = nullptr;
            for (const auto &kv : model) {
                if (kv.first <= at && (ref == nullptr ||
                                       kv.first > ref->first))
                    ref = &kv;
            }
            ASSERT_EQ(entry != nullptr, ref != nullptr);
            if (entry != nullptr) {
                EXPECT_EQ(entry->version, ref->first);
                EXPECT_EQ(entry->loc, ref->second);
            }
        }
    }
}

// -------------------------------------------------- backend schedules

namespace {

struct BackendRig
{
    sim::Simulator sim;
    std::unique_ptr<flash::SsdDevice> ssd;
    std::unique_ptr<ftl::Sftl> sftl;
    std::unique_ptr<ftl::KvBackend> backend;

    explicit BackendRig(const std::string &which)
    {
        flash::Geometry g;
        g.numBlocks = 128;
        g.pagesPerBlock = 8;
        g.numChannels = 4;
        g.queueDepth = 16;
        if (which == "dram") {
            backend = std::make_unique<ftl::DramBackend>(sim);
            return;
        }
        ssd = std::make_unique<flash::SsdDevice>(sim, g);
        if (which == "mftl") {
            backend = std::make_unique<ftl::Mftl>(sim, *ssd,
                                                  ftl::Mftl::Config{});
        } else {
            sftl = std::make_unique<ftl::Sftl>(sim, *ssd,
                                               ftl::Sftl::Config{});
            backend = std::make_unique<ftl::Vftl>(sim, *sftl,
                                                  ftl::Vftl::Config{});
        }
    }
};

} // namespace

class BackendScheduleTest : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BackendScheduleTest, AckedWritesAlwaysReadable)
{
    BackendRig rig(GetParam());
    // Reference: per key, the set of acknowledged stamped values.
    auto model = std::make_shared<
        std::map<Key, std::map<Version, std::string>>>();
    auto failures = std::make_shared<int>(0);

    auto worker = [&](common::ClientId id) -> sim::Task<void> {
        Rng rng(200 + id);
        for (int op = 0; op < 300; ++op) {
            const Key key = rng.nextBounded(40);
            if (rng.nextBool(0.5)) {
                const Version v{rig.sim.now() + 1, id};
                const std::string val =
                    std::to_string(id) + ":" + std::to_string(op);
                auto st = co_await rig.backend->put(key, val, v);
                if (st == ftl::PutStatus::Ok)
                    (*model)[key][v] = val;
            } else {
                const Version at{rig.sim.now(), 255};
                auto r = co_await rig.backend->get(key, at);
                // Reference youngest <= at among acked writes. A racing
                // writer may have added a version we don't know about;
                // only flag values the model can prove wrong: a found
                // version claimed by the model must carry the model's
                // value.
                auto mit = model->find(key);
                if (r.found && mit != model->end()) {
                    auto vit = mit->second.find(r.version);
                    if (vit != mit->second.end() &&
                        vit->second != r.value)
                        ++*failures;
                }
                if (!r.found && mit != model->end()) {
                    // There must be no acked version <= at.
                    for (const auto &[v, val] : mit->second) {
                        if (v <= at)
                            ++*failures;
                    }
                }
            }
        }
    };
    for (common::ClientId id = 1; id <= 4; ++id)
        sim::spawn(worker(id));
    rig.sim.run();
    EXPECT_EQ(*failures, 0);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendScheduleTest,
                         ::testing::Values("dram", "mftl", "vftl"));

// -------------------------------------------------------- clock props

TEST(Property, ClockMonotoneUnderRandomCorrections)
{
    sim::Simulator s;
    Rng rng(303);
    clocksync::DriftClock::Params p;
    p.driftPpmSigma = 20.0;
    p.initialOffsetSigma = kMillisecond;
    clocksync::DriftClock clock(s, p, rng);

    common::Time last = clock.localNow();
    for (int i = 0; i < 2000; ++i) {
        s.schedule(rng.nextBounded(kMillisecond) + 1, [] {});
        s.run();
        if (rng.nextBool(0.1)) {
            clock.applyCorrection(
                rng.nextRange(-2 * kMillisecond, 2 * kMillisecond),
                rng.nextDouble());
        }
        if (rng.nextBool(0.05))
            clock.adjustRatePpm(rng.nextGaussian(0, 5));
        const common::Time now = clock.localNow();
        ASSERT_GE(now, last);
        last = now;
    }
}

// --------------------------------------------- transactional counters

TEST(Property, NoLostUpdatesUnderRandomMix)
{
    // Counters incremented via read-modify-write transactions; the
    // final values must equal the number of committed increments
    // (OCC must not lose or double-apply updates).
    workload::ClusterConfig cfg;
    cfg.numShards = 2;
    cfg.replicasPerShard = 1;
    cfg.numClients = 4;
    cfg.backend = workload::BackendKind::Dram;
    cfg.clocks = workload::ClockKind::Perfect;
    cfg.numKeys = 64;
    workload::Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    constexpr Key kCounters = 8;
    auto committed =
        std::make_shared<std::map<Key, int>>(); // per-key commits

    auto incrementer = [&](std::uint32_t c) -> sim::Task<void> {
        auto &client = cluster.client(c);
        Rng rng(400 + c);
        for (int i = 0; i < 60; ++i) {
            const Key key = rng.nextBounded(kCounters);
            auto txn = client.beginTransaction();
            auto r = co_await client.get(txn, key);
            if (!r.ok) {
                client.abortTransaction(txn);
                continue;
            }
            const int current =
                (r.found && r.value != "init") ? std::stoi(r.value) : 0;
            client.put(txn, key, std::to_string(current + 1));
            if (co_await client.commitTransaction(txn) ==
                milana::CommitResult::Committed)
                ++(*committed)[key];
        }
    };
    for (std::uint32_t c = 0; c < 4; ++c)
        sim::spawn(incrementer(c));
    cluster.sim().runFor(30 * kSecond);

    // Verify: each counter equals its committed increment count.
    auto verify = [&]() -> sim::Task<void> {
        auto &client = cluster.client(0);
        auto txn = client.beginTransaction();
        for (Key key = 0; key < kCounters; ++key) {
            auto r = co_await client.get(txn, key);
            const int value =
                (r.found && r.value != "init") ? std::stoi(r.value) : 0;
            EXPECT_EQ(value, (*committed)[key]) << "counter " << key;
        }
        (void)co_await client.commitTransaction(txn);
        cluster.sim().requestStop();
    };
    sim::spawn(verify());
    cluster.sim().run();
}
