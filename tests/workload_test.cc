/**
 * @file
 * Tests for the workload layer: Retwis mix statistics, the cluster
 * builder, end-to-end Retwis runs on every backend, the contention
 * knob, the micro-benchmark driver, and the Centiman baseline.
 */

#include <gtest/gtest.h>

#include "flash/ssd.hh"
#include "ftl/dram.hh"
#include "workload/cluster.hh"
#include "workload/micro.hh"
#include "workload/retwis.hh"

using namespace workload;
using common::kSecond;

namespace {

ClusterConfig
tinyCluster(BackendKind backend, std::uint32_t clients = 4)
{
    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 1;
    cfg.numClients = clients;
    cfg.backend = backend;
    cfg.clocks = ClockKind::Perfect;
    cfg.numKeys = 2000;
    return cfg;
}

struct RunResult
{
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    double abortRate = 0;
};

RunResult
runRetwis(const ClusterConfig &ccfg, double alpha, int seconds,
          bool read_heavy = false)
{
    Cluster cluster(ccfg);
    cluster.populate();
    cluster.start();
    RetwisConfig rcfg;
    rcfg.alpha = alpha;
    rcfg.numKeys = ccfg.numKeys;
    rcfg.readHeavy = read_heavy;
    RetwisWorkload fleet(cluster, rcfg);
    fleet.start();
    cluster.sim().runUntil(cluster.sim().now() + kSecond / 2);
    fleet.resetMeasurement();
    cluster.sim().runFor(seconds * kSecond);
    RunResult r;
    r.commits = fleet.totalCommits();
    r.aborts = fleet.totalAborts();
    r.abortRate = fleet.abortRate();
    return r;
}

} // namespace

TEST(Retwis, CommitsTransactionsOnDram)
{
    const auto r = runRetwis(tinyCluster(BackendKind::Dram), 0.6, 2);
    EXPECT_GT(r.commits, 100u);
    EXPECT_GE(r.abortRate, 0.0);
    EXPECT_LE(r.abortRate, 1.0);
}

TEST(Retwis, CommitsTransactionsOnMftl)
{
    const auto r = runRetwis(tinyCluster(BackendKind::Mftl), 0.6, 2);
    EXPECT_GT(r.commits, 100u);
}

TEST(Retwis, CommitsTransactionsOnVftl)
{
    const auto r = runRetwis(tinyCluster(BackendKind::Vftl), 0.6, 2);
    EXPECT_GT(r.commits, 100u);
}

TEST(Retwis, CommitsTransactionsOnSingleVersion)
{
    const auto r =
        runRetwis(tinyCluster(BackendKind::SingleVersion), 0.6, 2);
    EXPECT_GT(r.commits, 100u);
}

TEST(Retwis, ContentionRaisesAbortRate)
{
    const auto low = runRetwis(tinyCluster(BackendKind::Dram, 8), 0.4, 2);
    const auto high =
        runRetwis(tinyCluster(BackendKind::Dram, 8), 0.99, 2);
    EXPECT_GT(high.abortRate, low.abortRate);
}

TEST(Retwis, SingleVersionAbortsMoreThanMultiVersion)
{
    // Figure 6's core claim at test scale. (At extreme contention the
    // two converge — write-write conflicts dominate — so probe the
    // moderate-contention regime where snapshots matter.)
    const auto sv = runRetwis(
        tinyCluster(BackendKind::SingleVersion, 8), 0.7, 2);
    const auto mv = runRetwis(tinyCluster(BackendKind::Mftl, 8), 0.7, 2);
    EXPECT_LT(mv.abortRate, sv.abortRate);
}

TEST(Retwis, ReplicatedClusterWorks)
{
    ClusterConfig cfg = tinyCluster(BackendKind::Dram, 4);
    cfg.numShards = 2;
    cfg.replicasPerShard = 3;
    const auto r = runRetwis(cfg, 0.6, 2);
    EXPECT_GT(r.commits, 100u);
}

TEST(Retwis, NtpAbortsMoreThanPtp)
{
    // Figure 7's core claim at test scale: same seed, same workload,
    // only the clock discipline differs.
    ClusterConfig ptp = tinyCluster(BackendKind::Dram, 8);
    ptp.clocks = ClockKind::PtpSw;
    ClusterConfig ntp = ptp;
    ntp.clocks = ClockKind::Ntp;
    const auto r_ptp = runRetwis(ptp, 0.9, 3);
    const auto r_ntp = runRetwis(ntp, 0.9, 3);
    EXPECT_LT(r_ptp.abortRate, r_ntp.abortRate);
}

TEST(Retwis, CentimanRunsAndValidates)
{
    ClusterConfig cfg = tinyCluster(BackendKind::Dram, 4);
    cfg.numShards = 2;
    cfg.centiman = true;
    cfg.centimanDisseminateEvery = 50;
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    RetwisConfig rcfg;
    rcfg.alpha = 0.6;
    rcfg.numKeys = cfg.numKeys;
    rcfg.readHeavy = true;
    RetwisWorkload fleet(cluster, rcfg);
    fleet.start();
    cluster.sim().runFor(3 * kSecond);
    EXPECT_GT(fleet.totalCommits(), 100u);
    const auto stats = cluster.clientStats();
    // Both local and remote validation paths should have been used.
    EXPECT_GT(stats.counterValue("centiman.local_validated") +
                  stats.counterValue("centiman.remote_validated"),
              0u);
}

TEST(Cluster, StatsAggregationAndReset)
{
    ClusterConfig cfg = tinyCluster(BackendKind::Dram, 2);
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    RetwisConfig rcfg;
    rcfg.numKeys = cfg.numKeys;
    RetwisWorkload fleet(cluster, rcfg);
    fleet.start();
    cluster.sim().runFor(kSecond);
    EXPECT_GT(cluster.clientStats().counterValue("txn.begun"), 0u);
    cluster.resetStats();
    EXPECT_EQ(cluster.clientStats().counterValue("txn.begun"), 0u);
}

TEST(Micro, DriverSustainsThroughputOnDram)
{
    sim::Simulator sim;
    ftl::DramBackend dram(sim);
    MicroConfig cfg;
    cfg.numKeys = 1000;
    cfg.workers = 16;
    cfg.getPercent = 50;
    MicroBench micro(sim, dram, cfg);
    micro.populate();
    micro.start();
    // DRAM sustains ~tens of millions of ops per simulated second;
    // a few simulated milliseconds are ample for the assertion.
    sim.runFor(2 * common::kMillisecond);
    EXPECT_GT(micro.gets(), 1000u);
    EXPECT_GT(micro.puts(), 1000u);
    EXPECT_GT(micro.getLatency().count(), 0u);
}

TEST(Micro, GetPercentRespected)
{
    sim::Simulator sim;
    ftl::DramBackend dram(sim);
    MicroConfig cfg;
    cfg.numKeys = 1000;
    cfg.workers = 16;
    cfg.getPercent = 90;
    MicroBench micro(sim, dram, cfg);
    micro.populate();
    micro.start();
    sim.runFor(2 * common::kMillisecond);
    const double get_frac =
        static_cast<double>(micro.gets()) /
        static_cast<double>(micro.gets() + micro.puts());
    EXPECT_NEAR(get_frac, 0.90, 0.03);
}

TEST(Micro, MftlSurvivesSustainedMixedLoad)
{
    // Regression test for the GC wedge class of bugs: a mixed load at
    // high concurrency must keep flowing through GC pressure.
    sim::Simulator sim;
    flash::SsdDevice ssd(
        sim, flash::Geometry::scaledFor(5000 * 512, 0.35));
    ftl::Mftl mftl(sim, ssd, ftl::Mftl::Config{});
    MicroConfig cfg;
    cfg.numKeys = 5000;
    cfg.workers = 64;
    cfg.getPercent = 50;
    MicroBench micro(sim, mftl, cfg);
    micro.populate();
    mftl.start();
    micro.start();
    sim.runUntil(sim.now() + kSecond);
    const auto puts_at_1s = micro.puts();
    sim.runFor(2 * kSecond);
    // Still making progress in the final two seconds.
    EXPECT_GT(micro.puts(), puts_at_1s + 1000);
    EXPECT_GT(ssd.stats().counterValue("ssd.erases"), 0u);
}

TEST(Micro, VftlSurvivesSustainedMixedLoad)
{
    sim::Simulator sim;
    flash::SsdDevice ssd(
        sim, flash::Geometry::scaledFor(5000 * 512, 0.35));
    ftl::Sftl sftl(sim, ssd, ftl::Sftl::Config{});
    ftl::Vftl vftl(sim, sftl, ftl::Vftl::Config{});
    MicroConfig cfg;
    cfg.numKeys = 5000;
    cfg.workers = 64;
    cfg.getPercent = 50;
    MicroBench micro(sim, vftl, cfg);
    micro.populate();
    vftl.start();
    micro.start();
    sim.runUntil(sim.now() + kSecond);
    const auto puts_at_1s = micro.puts();
    sim.runFor(2 * kSecond);
    EXPECT_GT(micro.puts(), puts_at_1s + 1000);
}

TEST(RetwisInstance, MixMatchesTable2)
{
    // Drive shapes statistically: read-only fraction ~50% (default) or
    // ~75% (read-heavy).
    ClusterConfig cfg = tinyCluster(BackendKind::Dram, 1);
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    RetwisConfig rcfg;
    rcfg.numKeys = cfg.numKeys;
    rcfg.readHeavy = true;
    RetwisWorkload fleet(cluster, rcfg);
    fleet.start();
    cluster.sim().runFor(3 * kSecond);
    const auto stats = cluster.clientStats();
    const double ro = static_cast<double>(
        stats.counterValue("txn.local_validations"));
    const double total =
        static_cast<double>(stats.counterValue("txn.begun"));
    ASSERT_GT(total, 500);
    EXPECT_NEAR(ro / total, 0.75, 0.06);
}
