/**
 * @file
 * Tests for the simulated network: delay sampling, RPC round trips,
 * crash and partition semantics, one-way sends, and loss timing.
 */

#include <gtest/gtest.h>

#include "net/network.hh"
#include "sim/simulator.hh"

using namespace net;
using common::kMicrosecond;
using common::kMillisecond;
using common::Rng;

namespace {

NetConfig
fastConfig()
{
    NetConfig cfg;
    cfg.oneWayMean = 50 * kMicrosecond;
    cfg.oneWaySigma = 0;
    cfg.minLatency = 5 * kMicrosecond;
    cfg.rpcTimeout = 5 * kMillisecond;
    return cfg;
}

sim::Task<int>
echoHandler(int x)
{
    co_return x * 2;
}

} // namespace

TEST(Network, DelaySamplesRespectMinimum)
{
    sim::Simulator s;
    NetConfig cfg;
    cfg.oneWayMean = 10 * kMicrosecond;
    cfg.oneWaySigma = 50 * kMicrosecond; // wild jitter
    cfg.minLatency = 5 * kMicrosecond;
    Network net(s, cfg, Rng(1));
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(net.sampleDelay(), cfg.minLatency);
}

TEST(Network, DelayMeanApproximatelyConfigured)
{
    sim::Simulator s;
    NetConfig cfg;
    cfg.oneWayMean = 100 * kMicrosecond;
    cfg.oneWaySigma = 10 * kMicrosecond;
    Network net(s, cfg, Rng(2));
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(net.sampleDelay());
    EXPECT_NEAR(sum / n, 100 * kMicrosecond, 2 * kMicrosecond);
}

TEST(Network, RpcRoundTripDeliversAndTimes)
{
    sim::Simulator s;
    Network net(s, fastConfig(), Rng(3));
    std::optional<int> got;
    common::Time done = 0;
    sim::spawn([](sim::Simulator *s, Network *net,
                  std::optional<int> *got,
                  common::Time *done) -> sim::Task<void> {
        *got = co_await net->callTyped<int>(1, 2, echoHandler(21));
        *done = s->now();
    }(&s, &net, &got, &done));
    s.run();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 42);
    EXPECT_EQ(done, 2 * 50 * kMicrosecond); // request + response legs
}

TEST(Network, CrashedDestinationTimesOut)
{
    sim::Simulator s;
    Network net(s, fastConfig(), Rng(4));
    net.setNodeDown(2, true);
    std::optional<int> got = 7;
    common::Time done = 0;
    sim::spawn([](sim::Simulator *s, Network *net,
                  std::optional<int> *got,
                  common::Time *done) -> sim::Task<void> {
        *got = co_await net->callTyped<int>(1, 2, echoHandler(21));
        *done = s->now();
    }(&s, &net, &got, &done));
    s.run();
    EXPECT_FALSE(got.has_value());
    EXPECT_EQ(done, 5 * kMillisecond); // the configured RPC timeout
}

TEST(Network, CrashMidFlightDropsRequest)
{
    sim::Simulator s;
    Network net(s, fastConfig(), Rng(5));
    std::optional<int> got = 7;
    sim::spawn([](Network *net,
                  std::optional<int> *got) -> sim::Task<void> {
        *got = co_await net->callTyped<int>(1, 2, echoHandler(21));
    }(&net, &got));
    // Crash the destination while the request is in flight (25 us in).
    s.schedule(25 * kMicrosecond, [&] { net.setNodeDown(2, true); });
    s.run();
    EXPECT_FALSE(got.has_value());
}

TEST(Network, PartitionBlocksBothDirections)
{
    sim::Simulator s;
    Network net(s, fastConfig(), Rng(6));
    net.setLinkBroken(1, 2, true);
    EXPECT_FALSE(net.deliverable(1, 2));
    EXPECT_FALSE(net.deliverable(2, 1));
    EXPECT_TRUE(net.deliverable(1, 3));
    net.setLinkBroken(1, 2, false);
    EXPECT_TRUE(net.deliverable(1, 2));
}

TEST(Network, NodeRestartRestoresDelivery)
{
    sim::Simulator s;
    Network net(s, fastConfig(), Rng(7));
    net.setNodeDown(5, true);
    EXPECT_FALSE(net.deliverable(1, 5));
    net.setNodeDown(5, false);
    EXPECT_TRUE(net.deliverable(1, 5));
}

TEST(Network, OneWaySendDelivers)
{
    sim::Simulator s;
    Network net(s, fastConfig(), Rng(8));
    bool delivered = false;
    net.send(1, 2, [&] { delivered = true; });
    s.run();
    EXPECT_TRUE(delivered);
}

TEST(Network, OneWaySendToDownNodeDropped)
{
    sim::Simulator s;
    Network net(s, fastConfig(), Rng(9));
    net.setNodeDown(2, true);
    bool delivered = false;
    net.send(1, 2, [&] { delivered = true; });
    s.run();
    EXPECT_FALSE(delivered);
}

TEST(Network, StatsCountTraffic)
{
    sim::Simulator s;
    Network net(s, fastConfig(), Rng(10));
    sim::spawn([](Network *net) -> sim::Task<void> {
        (void)co_await net->callTyped<int>(1, 2, echoHandler(1));
    }(&net));
    s.run();
    EXPECT_EQ(net.stats().counterValue("net.calls"), 1u);
    EXPECT_EQ(net.stats().counterValue("net.request_lost"), 0u);
}
