/**
 * @file
 * Tests for the SSD device model: flash semantics (erase-before-write,
 * in-order programming), latencies, queue-depth limits, read pins, and
 * wear counters.
 */

#include <gtest/gtest.h>

#include "flash/ssd.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace flash;
using common::kMicrosecond;
using common::kMillisecond;

namespace {

Geometry
tinyGeometry()
{
    Geometry g;
    g.numBlocks = 8;
    g.pagesPerBlock = 4;
    g.numChannels = 2;
    g.queueDepth = 4;
    return g;
}

PageData
onePage(std::uint64_t key)
{
    PageData d;
    Record r;
    r.key = key;
    r.value = "v";
    d.records.push_back(r);
    return d;
}

} // namespace

TEST(Ssd, ProgramThenReadRoundTrips)
{
    sim::Simulator s;
    SsdDevice ssd(s, tinyGeometry());
    bool ok = false;
    auto t = [&]() -> sim::Task<void> {
        co_await ssd.programPage({0, 0}, onePage(42));
        const PageData *p = co_await ssd.readPage({0, 0});
        ok = p->records.size() == 1 && p->records[0].key == 42;
    };
    sim::spawn(t());
    s.run();
    EXPECT_TRUE(ok);
}

TEST(Ssd, LatenciesMatchGeometry)
{
    sim::Simulator s;
    auto g = tinyGeometry();
    SsdDevice ssd(s, g);
    common::Time wrote = 0, read = 0, erased = 0;
    auto t = [&]() -> sim::Task<void> {
        co_await ssd.programPage({0, 0}, onePage(1));
        wrote = s.now();
        (void)co_await ssd.readPage({0, 0});
        read = s.now();
        co_await ssd.eraseBlock(0);
        erased = s.now();
    };
    sim::spawn(t());
    s.run();
    EXPECT_EQ(wrote, g.writeLatency);
    EXPECT_EQ(read, wrote + g.readLatency);
    EXPECT_EQ(erased, read + g.eraseLatency);
}

TEST(SsdDeath, OutOfOrderProgramPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto run = [] {
        sim::Simulator s;
        SsdDevice ssd(s, tinyGeometry());
        auto t = [&]() -> sim::Task<void> {
            co_await ssd.programPage({0, 1}, onePage(1)); // page 0 skipped
        };
        sim::spawn(t());
        s.run();
    };
    EXPECT_DEATH(run(), "out-of-order");
}

TEST(SsdDeath, RewriteWithoutErasePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto run = [] {
        sim::Simulator s;
        SsdDevice ssd(s, tinyGeometry());
        auto t = [&]() -> sim::Task<void> {
            co_await ssd.programPage({0, 0}, onePage(1));
            co_await ssd.programPage({0, 0}, onePage(2));
        };
        sim::spawn(t());
        s.run();
    };
    EXPECT_DEATH(run(), "non-erased|out-of-order");
}

TEST(SsdDeath, ReadUnprogrammedPanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto run = [] {
        sim::Simulator s;
        SsdDevice ssd(s, tinyGeometry());
        auto t = [&]() -> sim::Task<void> {
            (void)co_await ssd.readPage({1, 0});
        };
        sim::spawn(t());
        s.run();
    };
    EXPECT_DEATH(run(), "unprogrammed");
}

TEST(Ssd, EraseResetsBlockForReuse)
{
    sim::Simulator s;
    SsdDevice ssd(s, tinyGeometry());
    bool ok = false;
    auto t = [&]() -> sim::Task<void> {
        co_await ssd.programPage({2, 0}, onePage(1));
        co_await ssd.eraseBlock(2);
        co_await ssd.programPage({2, 0}, onePage(9));
        const PageData *p = co_await ssd.readPage({2, 0});
        ok = p->records[0].key == 9;
    };
    sim::spawn(t());
    s.run();
    EXPECT_TRUE(ok);
    EXPECT_EQ(ssd.eraseCount(2), 1u);
}

TEST(Ssd, ChannelsServiceInParallel)
{
    sim::Simulator s;
    auto g = tinyGeometry(); // 2 channels
    SsdDevice ssd(s, g);
    // Blocks 0 and 1 are on different channels; their programs overlap.
    int done = 0;
    auto t = [&](std::uint32_t block) -> sim::Task<void> {
        co_await ssd.programPage({block, 0}, onePage(block));
        ++done;
    };
    sim::spawn(t(0));
    sim::spawn(t(1));
    s.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(s.now(), g.writeLatency); // parallel, not serialized
}

TEST(Ssd, SameChannelSerializes)
{
    sim::Simulator s;
    auto g = tinyGeometry(); // blocks 0 and 2 share channel 0
    SsdDevice ssd(s, g);
    auto t = [&](std::uint32_t block) -> sim::Task<void> {
        co_await ssd.programPage({block, 0}, onePage(block));
    };
    sim::spawn(t(0));
    sim::spawn(t(2));
    s.run();
    EXPECT_EQ(s.now(), 2 * g.writeLatency);
}

TEST(Ssd, QueueDepthLimitsAdmission)
{
    sim::Simulator s;
    Geometry g = tinyGeometry();
    g.numChannels = 8;
    g.numBlocks = 8;
    g.queueDepth = 2; // only 2 ops in flight despite 8 channels
    SsdDevice ssd(s, g);
    auto t = [&](std::uint32_t block) -> sim::Task<void> {
        co_await ssd.programPage({block, 0}, onePage(block));
    };
    for (std::uint32_t b = 0; b < 8; ++b)
        sim::spawn(t(b));
    s.run();
    // 8 writes, 2 at a time -> 4 serial rounds.
    EXPECT_EQ(s.now(), 4 * g.writeLatency);
}

TEST(Ssd, PinBlocksErase)
{
    sim::Simulator s;
    SsdDevice ssd(s, tinyGeometry());
    common::Time erase_done = 0;
    auto writer = [&]() -> sim::Task<void> {
        co_await ssd.programPage({3, 0}, onePage(7));
    };
    sim::spawn(writer());
    s.run();

    ssd.pinBlock(3);
    auto eraser = [&]() -> sim::Task<void> {
        co_await ssd.eraseBlock(3);
        erase_done = s.now();
    };
    sim::spawn(eraser());
    s.schedule(5 * kMillisecond, [&] { ssd.unpinBlock(3); });
    s.run();
    EXPECT_GE(erase_done, 5 * kMillisecond);
}

TEST(Ssd, WearSpreadTracksEraseImbalance)
{
    sim::Simulator s;
    SsdDevice ssd(s, tinyGeometry());
    auto t = [&]() -> sim::Task<void> {
        co_await ssd.eraseBlock(0);
        co_await ssd.eraseBlock(0);
        co_await ssd.eraseBlock(1);
    };
    sim::spawn(t());
    s.run();
    EXPECT_EQ(ssd.eraseCount(0), 2u);
    EXPECT_EQ(ssd.wearSpread(), 2u);
}

TEST(Ssd, StatsCountOps)
{
    sim::Simulator s;
    SsdDevice ssd(s, tinyGeometry());
    auto t = [&]() -> sim::Task<void> {
        co_await ssd.programPage({0, 0}, onePage(1));
        (void)co_await ssd.readPage({0, 0});
        (void)co_await ssd.readPage({0, 0});
        co_await ssd.eraseBlock(0);
    };
    sim::spawn(t());
    s.run();
    EXPECT_EQ(ssd.stats().counterValue("ssd.programs"), 1u);
    EXPECT_EQ(ssd.stats().counterValue("ssd.reads"), 2u);
    EXPECT_EQ(ssd.stats().counterValue("ssd.erases"), 1u);
}

TEST(Geometry, ScaledForTargetsUtilization)
{
    const auto g = Geometry::scaledFor(100 * 1024 * 1024, 0.5);
    EXPECT_GE(g.capacityBytes(), 200ull * 1024 * 1024);
    EXPECT_LT(g.capacityBytes(), 210ull * 1024 * 1024);
}

TEST(Geometry, PaperDefaults)
{
    const Geometry g;
    EXPECT_EQ(g.pageSize, 4096u);
    EXPECT_EQ(g.pagesPerBlock, 32u);
    EXPECT_EQ(g.readLatency, 50 * kMicrosecond);
    EXPECT_EQ(g.writeLatency, 100 * kMicrosecond);
    EXPECT_EQ(g.eraseLatency, kMillisecond);
    EXPECT_EQ(g.queueDepth, 128u);
}
