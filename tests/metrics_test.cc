/**
 * @file
 * Metrics-plane contract tests: MetricsRegistry sampling semantics
 * (counter deltas, reset detection, gauges, per-window histogram
 * quantiles), TimeSeriesLog ring behavior, sampler window alignment
 * on interval boundaries, counter-delta conservation against final
 * StatSet totals, and — the property CI byte-compares — identical
 * deterministic exports for every --sim-threads value.
 *
 * This suite doubles as a TSan gate (ctest -R tsan_metrics in a
 * -DMILANA_SANITIZE=thread build): the multi-thread cases exercise
 * per-partition registries and the scheduler self-profiler on real
 * worker threads.
 */

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

namespace {

using common::kMillisecond;
using common::kSecond;
using common::MetricPoint;
using common::MetricsRegistry;
using common::SeriesKind;
using common::StatSet;
using common::Time;
using common::TimeSeriesLog;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

constexpr common::Duration kInterval = 50 * kMillisecond;

TEST(TimeSeriesLog, RingKeepsNewestAndCountsDropped)
{
    TimeSeriesLog log(kInterval, /*windowCapacity=*/4);
    auto &s = log.series("x", 1, SeriesKind::Gauge);
    for (int i = 0; i < 10; ++i) {
        MetricPoint p;
        p.windowStart = i * kInterval;
        p.windowEnd = (i + 1) * kInterval;
        p.value = i;
        s.push(p);
    }
    EXPECT_EQ(s.appended(), 10u);
    EXPECT_EQ(s.dropped(), 6u);
    const auto points = s.points();
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points.front().value, 6.0); // oldest surviving
    EXPECT_EQ(points.back().value, 9.0);
    for (std::size_t i = 1; i < points.size(); ++i)
        EXPECT_LT(points[i - 1].windowStart, points[i].windowStart);
}

TEST(MetricsRegistry, CounterDeltasAndResetDetection)
{
    StatSet stats;
    MetricsRegistry reg(kInterval);
    reg.addStatSet("t.", 5, stats);

    stats.counter("ops").inc(100);
    reg.prime(); // baseline: the first window must not see the 100
    stats.counter("ops").inc(7);
    reg.sample(0, kInterval);
    stats.counter("ops").inc(3);
    reg.sample(kInterval, 2 * kInterval);
    // Reset mid-run (resetStats at measurement start): the delta is
    // the post-reset value, not a huge unsigned wraparound.
    stats.reset();
    stats.counter("ops").inc(2);
    reg.sample(2 * kInterval, 3 * kInterval);

    const auto *s = reg.log().find("t.ops", 5);
    ASSERT_NE(s, nullptr);
    const auto points = s->points();
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0].value, 7.0);
    EXPECT_EQ(points[1].value, 3.0);
    EXPECT_EQ(points[2].value, 2.0);
}

TEST(MetricsRegistry, SampleIsIdempotentPerWindow)
{
    StatSet stats;
    MetricsRegistry reg(kInterval);
    reg.addStatSet("t.", 0, stats);
    stats.counter("ops").inc(4);
    reg.sample(0, kInterval);
    stats.counter("ops").inc(9);
    reg.sample(0, kInterval); // same window end: must be a no-op
    const auto points = reg.log().find("t.ops", 0)->points();
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].value, 4.0);
}

TEST(MetricsRegistry, GaugeSampledAtBoundary)
{
    double level = 1.5;
    MetricsRegistry reg(kInterval);
    reg.addGauge("q.depth", 9, [&level] { return level; });
    reg.sample(0, kInterval);
    level = 4.0;
    reg.sample(kInterval, 2 * kInterval);
    const auto points = reg.log().find("q.depth", 9)->points();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].value, 1.5);
    EXPECT_EQ(points[1].value, 4.0);
}

TEST(MetricsRegistry, HistogramWindowQuantilesAreWindowLocal)
{
    StatSet stats;
    MetricsRegistry reg(kInterval);
    reg.addStatSet("t.", 0, stats);
    // Window 1: slow ops only. Window 2: fast ops only. Each window's
    // quantiles must reflect only its own samples, not the cumulative
    // distribution.
    for (int i = 0; i < 100; ++i)
        stats.histogram("lat").record(1'000'000);
    reg.sample(0, kInterval);
    for (int i = 0; i < 100; ++i)
        stats.histogram("lat").record(1'000);
    reg.sample(kInterval, 2 * kInterval);

    const auto points = reg.log().find("t.lat", 0)->points();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].count, 100u);
    EXPECT_EQ(points[1].count, 100u);
    EXPECT_GT(points[0].p50, 500'000);
    EXPECT_LT(points[1].p50, 2'000); // cumulative p50 would be huge
    EXPECT_GT(points[0].p999, points[1].p999);
}

TEST(TimeSeriesLog, MergeIsInputOrderIndependentPerSeries)
{
    TimeSeriesLog a(kInterval), b(kInterval), m1(kInterval),
        m2(kInterval);
    MetricPoint p1, p2;
    p1.windowStart = 0;
    p1.windowEnd = kInterval;
    p1.value = 1;
    p2.windowStart = kInterval;
    p2.windowEnd = 2 * kInterval;
    p2.value = 2;
    a.addPoint("s", 0, SeriesKind::Gauge, p1);
    b.addPoint("s", 0, SeriesKind::Gauge, p2);
    common::mergeTimeSeries({&a, &b}, m1);
    common::mergeTimeSeries({&b, &a}, m2);
    std::ostringstream o1, o2;
    m1.writeJson(o1, false);
    m2.writeJson(o2, false);
    EXPECT_EQ(o1.str(), o2.str());
}

/** A small fig6-style cell with the metrics plane on. */
struct CellRun
{
    std::string json; ///< deterministic-only JSON export
    std::string csv;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::vector<MetricPoint> commitPoints;
};

CellRun
runCell(std::uint32_t sim_threads, common::Duration measure)
{
    MetricsRegistry metrics(kInterval);

    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 1;
    cfg.numClients = 8;
    cfg.backend = BackendKind::Mftl;
    cfg.clocks = ClockKind::Perfect;
    cfg.numKeys = 500;
    cfg.seed = 1;
    cfg.simThreads = sim_threads;
    cfg.metrics = &metrics;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = 0.8;
    retwis.numKeys = cfg.numKeys;
    retwis.seed = cfg.seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.runFor(measure);
    cluster.finishMetrics();

    CellRun run;
    std::ostringstream js, cs;
    metrics.log().writeJson(js, /*includeNonDeterministic=*/false);
    metrics.log().writeCsv(cs);
    run.json = js.str();
    run.csv = cs.str();
    run.committed =
        cluster.clientStats().counterValue("txn.committed");
    run.aborted = cluster.clientStats().counterValue("txn.aborted");
    // Gather the committed-counter deltas across client nodes, summed
    // per window boundary for the conservation check.
    for (const auto *s : metrics.log().sorted()) {
        if (s->name != "client.txn.committed")
            continue;
        for (const MetricPoint &p : s->points())
            run.commitPoints.push_back(p);
    }
    return run;
}

TEST(MetricsPlane, WindowsAlignToIntervalBoundaries)
{
    const CellRun run = runCell(0, 230 * kMillisecond);
    ASSERT_FALSE(run.commitPoints.empty());
    for (std::size_t i = 0; i < run.commitPoints.size(); ++i) {
        const MetricPoint &p = run.commitPoints[i];
        EXPECT_EQ(p.windowStart % kInterval, 0)
            << "window " << i << " start off-grid";
        EXPECT_GT(p.windowEnd, p.windowStart);
        EXPECT_LE(p.windowEnd - p.windowStart, kInterval);
        // Every window but each series' final (flushed, possibly
        // partial) one ends exactly on the grid. commitPoints
        // concatenates the per-client-node series; within one series
        // window starts strictly increase, and a drop marks the next
        // series' first point.
        if (i + 1 < run.commitPoints.size() &&
            run.commitPoints[i + 1].windowStart > p.windowStart)
            EXPECT_EQ(p.windowEnd % kInterval, 0);
    }
}

TEST(MetricsPlane, CounterDeltasSumToFinalTotals)
{
    const CellRun run = runCell(0, kSecond / 4);
    ASSERT_GT(run.committed, 0u);
    double sum = 0.0;
    for (const MetricPoint &p : run.commitPoints)
        sum += p.value;
    EXPECT_EQ(static_cast<std::uint64_t>(sum), run.committed);
}

TEST(MetricsPlane, DeterministicExportsIdenticalAcrossSimThreads)
{
    const CellRun one = runCell(1, kSecond / 2);
    ASSERT_GT(one.committed, 100u); // guard: the workload really ran
    EXPECT_NE(one.json.find("client.txn.committed"), std::string::npos);
    EXPECT_NE(one.json.find("sched.events"), std::string::npos);

    const CellRun two = runCell(2, kSecond / 2);
    EXPECT_EQ(one.json, two.json);
    EXPECT_EQ(one.csv, two.csv);
    const CellRun eight = runCell(8, kSecond / 2);
    EXPECT_EQ(one.json, eight.json);
    EXPECT_EQ(one.csv, eight.csv);
}

TEST(MetricsPlane, PartitionedDeltasSumToFinalTotals)
{
    // Same conservation law as the classic path, but through the
    // per-partition registries + deterministic merge.
    const CellRun run = runCell(2, kSecond / 4);
    ASSERT_GT(run.committed, 0u);
    double sum = 0.0;
    for (const MetricPoint &p : run.commitPoints)
        sum += p.value;
    EXPECT_EQ(static_cast<std::uint64_t>(sum), run.committed);
}

} // namespace
