/**
 * @file
 * Unit tests for common utilities: PRNG determinism, Zipf sampling,
 * histograms, stats, and version ordering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/histogram.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "common/zipf.hh"

using namespace common;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(13);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.nextRange(1, 10);
        EXPECT_GE(v, 1);
        EXPECT_LE(v, 10);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u); // all values hit
}

TEST(Rng, GaussianMoments)
{
    Rng r(17);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = r.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean)
{
    Rng r(19);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.nextExponential(250.0);
    EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(Rng, ForkIndependence)
{
    Rng parent(23);
    Rng c1 = parent.fork();
    Rng c2 = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (c1.next() == c2.next());
    EXPECT_LT(same, 3);
}

TEST(Zipf, UniformWhenAlphaZero)
{
    Rng r(29);
    ZipfSampler z(10, 0.0);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(r)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 10, n / 50);
}

TEST(Zipf, SkewConcentratesOnLowRanks)
{
    Rng r(31);
    ZipfSampler z(1000, 0.99);
    int top10 = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        top10 += (z.sample(r) < 10);
    // With alpha ~1 over 1000 keys, top-10 ranks get roughly 40% of mass.
    EXPECT_GT(top10, n / 4);
}

TEST(Zipf, HigherAlphaMoreSkew)
{
    Rng r1(37), r2(37);
    ZipfSampler lo(1000, 0.4), hi(1000, 0.99);
    int lo_top = 0, hi_top = 0;
    for (int i = 0; i < 50000; ++i) {
        lo_top += (lo.sample(r1) < 10);
        hi_top += (hi.sample(r2) < 10);
    }
    EXPECT_GT(hi_top, 2 * lo_top);
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler z(100, 0.8);
    double sum = 0;
    for (std::uint64_t i = 0; i < 100; ++i)
        sum += z.pmf(i);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, SamplesMatchPmf)
{
    Rng r(41);
    ZipfSampler z(50, 0.9);
    std::vector<int> counts(50, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[z.sample(r)];
    // Spot-check the head of the distribution.
    for (std::uint64_t k = 0; k < 5; ++k) {
        const double expect = z.pmf(k) * n;
        EXPECT_NEAR(counts[k], expect, expect * 0.15 + 50);
    }
}

TEST(ScrambledZipf, StaysInRange)
{
    Rng r(43);
    ScrambledZipf z(1000, 0.8, 99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(z.sample(r), 1000u);
}

TEST(ScrambledZipf, HotKeysScattered)
{
    Rng r(47);
    ScrambledZipf z(1000, 0.99, 99);
    // The most popular key should not be key 0 (it is permuted).
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 50000; ++i)
        ++counts[z.sample(r)];
    const auto hottest = static_cast<std::size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    EXPECT_NE(hottest, 0u);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, ExactForSmallValues)
{
    Histogram h;
    for (int i = 0; i < 64; ++i)
        h.record(i);
    EXPECT_EQ(h.min(), 0);
    EXPECT_EQ(h.max(), 63);
    EXPECT_EQ(h.count(), 64u);
    EXPECT_NEAR(h.mean(), 31.5, 1e-9);
    EXPECT_EQ(h.quantile(0.0), 0);
}

TEST(Histogram, QuantileApproximation)
{
    Histogram h;
    for (int i = 1; i <= 100000; ++i)
        h.record(i);
    // log-bucketed: relative error should be within ~3%.
    EXPECT_NEAR(h.p50(), 50000, 50000 * 0.04);
    EXPECT_NEAR(h.p99(), 99000, 99000 * 0.04);
}

TEST(Histogram, NegativeClampsToZero)
{
    Histogram h;
    h.record(-5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 0);
}

TEST(Histogram, MergeCombines)
{
    Histogram a, b;
    a.record(10);
    b.record(1000);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 10);
    EXPECT_GE(a.max(), 1000);
}

TEST(Histogram, LargeValuesDoNotOverflow)
{
    Histogram h;
    h.record(std::int64_t{1} << 40);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_GT(h.quantile(1.0), 0);
}

TEST(Histogram, QuantileInterpolatesWithinBucket)
{
    // All mass in one wide bucket: [65536, 65536+1024). Interpolation
    // must spread quantiles across the bucket instead of returning one
    // constant for every q.
    Histogram h;
    for (int i = 0; i < 1024; ++i)
        h.record(65536 + i);
    EXPECT_LT(h.quantile(0.1), h.quantile(0.9));
    // Values stay clamped to the observed range.
    EXPECT_GE(h.quantile(0.0), h.min());
    EXPECT_LE(h.quantile(1.0), h.max());
}

TEST(Histogram, QuantileMonotoneInQ)
{
    Histogram h;
    Rng r(29);
    for (int i = 0; i < 20000; ++i)
        h.record(r.nextRange(1, 1'000'000));
    std::int64_t prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.01) {
        const std::int64_t v = h.quantile(q);
        EXPECT_GE(v, prev) << "q=" << q;
        prev = v;
    }
}

TEST(Histogram, P999TracksTail)
{
    // 0.2% of samples are slow, so the 99.9th-percentile order
    // statistic lands inside the tail.
    Histogram h;
    for (int i = 0; i < 9980; ++i)
        h.record(100);
    for (int i = 0; i < 20; ++i)
        h.record(1'000'000);
    EXPECT_LT(h.p99(), 1000);
    EXPECT_GT(h.p999(), 10'000);
    EXPECT_LE(h.p999(), h.max());
}

TEST(Histogram, AssignDeltaIsBucketwiseDifference)
{
    Histogram cur, prev, delta;
    prev.record(10);
    prev.record(5000);
    cur = prev;
    cur.record(10); // one more small sample
    cur.record(777'777);
    delta.assignDelta(cur, prev);
    EXPECT_EQ(delta.count(), 2u);
    EXPECT_LE(delta.min(), 10);
    EXPECT_GE(delta.max(), 700'000);
}

TEST(Histogram, AssignDeltaHandlesReset)
{
    Histogram cur, prev, delta;
    prev.record(100);
    prev.record(200);
    prev.record(300);
    cur.record(42); // fewer samples than prev: counter was reset
    delta.assignDelta(cur, prev);
    EXPECT_EQ(delta.count(), 1u);
    EXPECT_NEAR(static_cast<double>(delta.p50()), 42.0, 1.0);
}

TEST(Histogram, AssignDeltaEmptyDelta)
{
    Histogram cur, prev, delta;
    cur.record(7);
    prev = cur;
    delta.record(999); // stale contents must be cleared
    delta.assignDelta(cur, prev);
    EXPECT_EQ(delta.count(), 0u);
    EXPECT_EQ(delta.quantile(0.5), 0);
}

TEST(StatSet, CountersCreateOnUse)
{
    StatSet s;
    s.counter("a").inc();
    s.counter("a").inc(4);
    EXPECT_EQ(s.counterValue("a"), 5u);
    EXPECT_EQ(s.counterValue("missing"), 0u);
}

TEST(StatSet, MergeAddsCounters)
{
    StatSet a, b;
    a.counter("x").inc(2);
    b.counter("x").inc(3);
    b.counter("y").inc(1);
    a.merge(b);
    EXPECT_EQ(a.counterValue("x"), 5u);
    EXPECT_EQ(a.counterValue("y"), 1u);
}

TEST(Version, TotalOrder)
{
    Version a{100, 1}, b{100, 2}, c{200, 1};
    EXPECT_LT(a, b); // clientId breaks ties
    EXPECT_LT(b, c);
    EXPECT_LT(a, c);
    EXPECT_EQ(a, (Version{100, 1}));
}

TEST(Version, ZeroIsOldest)
{
    EXPECT_LT(Version::zero(), (Version{1, 0}));
    EXPECT_TRUE(Version::zero().isZero());
}

TEST(TimeHelpers, Conversions)
{
    EXPECT_DOUBLE_EQ(toMicros(kMillisecond), 1000.0);
    EXPECT_DOUBLE_EQ(toMillis(kSecond), 1000.0);
    EXPECT_DOUBLE_EQ(toSeconds(kSecond), 1.0);
}
