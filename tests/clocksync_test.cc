/**
 * @file
 * Tests for clock models and synchronization: drift behaviour,
 * monotonicity, correction math, and that the PTP/NTP presets realize
 * the average pairwise skews the paper reports (1.51 ms NTP, 53.2 us
 * PTP software, <1 us PTP hardware, ~150 ns DTP).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "clocksync/clock.hh"
#include "clocksync/sync.hh"
#include "sim/simulator.hh"

using namespace clocksync;
using common::kMicrosecond;
using common::kMillisecond;
using common::kNanosecond;
using common::kSecond;
using common::Rng;

TEST(PerfectClock, TracksTrueTime)
{
    sim::Simulator s;
    PerfectClock c(s);
    EXPECT_EQ(c.localNow(), 0);
    s.schedule(5 * kSecond, [] {});
    s.run();
    EXPECT_EQ(c.localNow(), 5 * kSecond);
    EXPECT_EQ(c.currentOffset(), 0);
}

TEST(DriftClock, DriftAccumulatesLinearly)
{
    sim::Simulator s;
    Rng rng(1);
    DriftClock::Params p;
    p.driftPpmSigma = 10.0;
    p.initialOffsetSigma = 0;
    DriftClock c(s, p, rng);
    const double ppm = c.driftPpm();
    ASSERT_NE(ppm, 0.0);

    s.schedule(10 * kSecond, [] {});
    s.run();
    const double expected = ppm * 1e-6 * 10 * kSecond;
    EXPECT_NEAR(static_cast<double>(c.currentOffset()), expected,
                std::abs(expected) * 0.01 + 2);
}

TEST(DriftClock, CorrectionCancelsMeasuredOffset)
{
    sim::Simulator s;
    Rng rng(2);
    DriftClock::Params p;
    p.driftPpmSigma = 0.0; // isolate the correction
    p.initialOffsetSigma = kMillisecond;
    DriftClock c(s, p, rng);
    const auto before = c.currentOffset();
    ASSERT_NE(before, 0);
    c.applyCorrection(before, 1.0);
    EXPECT_NEAR(static_cast<double>(c.currentOffset()), 0.0, 1.5);
}

TEST(DriftClock, PartialGainCorrectsFraction)
{
    sim::Simulator s;
    Rng rng(3);
    DriftClock::Params p;
    p.driftPpmSigma = 0.0;
    p.initialOffsetSigma = kMillisecond;
    DriftClock c(s, p, rng);
    const auto before = c.currentOffset();
    c.applyCorrection(before, 0.5);
    EXPECT_NEAR(static_cast<double>(c.currentOffset()),
                static_cast<double>(before) * 0.5,
                std::abs(static_cast<double>(before)) * 0.01 + 2);
}

TEST(DriftClock, MonotoneAcrossBackwardStep)
{
    sim::Simulator s;
    Rng rng(4);
    DriftClock::Params p;
    p.driftPpmSigma = 0.0;
    p.initialOffsetSigma = 10 * kMillisecond;
    DriftClock c(s, p, rng);
    const auto t_before = c.localNow();
    // Step the clock backwards by correcting away a large positive
    // offset (or force one).
    c.applyCorrection(c.currentOffset() + 5 * kMillisecond, 1.0);
    const auto t_after = c.localNow();
    EXPECT_GE(t_after, t_before);
}

TEST(SyncAgent, ExchangeDisciplinesClock)
{
    sim::Simulator s;
    Rng rng(5);
    DriftClock::Params p;
    p.driftPpmSigma = 0.0;
    p.initialOffsetSigma = 10 * kMillisecond;
    DriftClock c(s, p, rng);
    const auto initial = std::abs(c.currentOffset());
    ASSERT_GT(initial, kMillisecond);

    SyncAgent agent(s, c, SyncConfig::ptpSoftware(), Rng(99));
    agent.performExchange();
    // After one full-gain exchange, the offset should be down to the
    // measurement-noise level (~tens of us), far below the initial ms.
    EXPECT_LT(std::abs(c.currentOffset()), 500 * kMicrosecond);
}

TEST(SyncAgent, PerfectConfigExact)
{
    sim::Simulator s;
    Rng rng(6);
    DriftClock::Params p;
    p.driftPpmSigma = 0.0;
    p.initialOffsetSigma = 10 * kMillisecond;
    DriftClock c(s, p, rng);
    SyncAgent agent(s, c, SyncConfig::perfect(), Rng(100));
    agent.performExchange();
    EXPECT_NEAR(static_cast<double>(c.currentOffset()), 0.0, 2.0);
}

namespace {

/** Run an ensemble for a while and return its average pairwise skew. */
double
measureSkew(const SyncConfig &cfg, std::size_t nodes, int seconds,
            std::uint64_t seed)
{
    sim::Simulator s;
    Rng rng(seed);
    ClockEnsemble ensemble(s, nodes, cfg, rng);
    ensemble.start();
    s.runFor(seconds * kSecond);
    return ensemble.avgPairwiseSkew();
}

} // namespace

TEST(ClockEnsemble, PtpSoftwareSkewMatchesPaper)
{
    // Paper section 5.2: software-timestamped PTP average skew 53.2 us.
    const double skew = measureSkew(SyncConfig::ptpSoftware(), 5, 60, 42);
    EXPECT_GT(skew, 30.0 * kMicrosecond);
    EXPECT_LT(skew, 80.0 * kMicrosecond);
}

TEST(ClockEnsemble, NtpSkewMatchesPaper)
{
    // Paper section 5.2: NTP average skew 1.51 ms.
    const double skew = measureSkew(SyncConfig::ntp(), 5, 120, 43);
    EXPECT_GT(skew, 1.0 * kMillisecond);
    EXPECT_LT(skew, 2.2 * kMillisecond);
}

TEST(ClockEnsemble, PtpHardwareSubMicrosecond)
{
    // Paper section 2.1: PTP achieves < 1 us within a LAN.
    const double skew = measureSkew(SyncConfig::ptpHardware(), 5, 60, 44);
    EXPECT_LT(skew, 1.5 * kMicrosecond);
    EXPECT_GT(skew, 0.0);
}

TEST(ClockEnsemble, DtpNanosecondScale)
{
    // [37]: ~150 ns across a data center.
    const double skew = measureSkew(SyncConfig::dtp(), 5, 60, 45);
    EXPECT_LT(skew, 400.0 * kNanosecond);
}

TEST(ClockEnsemble, SkewOrderingNtpWorstDtpBest)
{
    const double ntp = measureSkew(SyncConfig::ntp(), 4, 60, 46);
    const double ptp_sw = measureSkew(SyncConfig::ptpSoftware(), 4, 60, 46);
    const double ptp_hw = measureSkew(SyncConfig::ptpHardware(), 4, 60, 46);
    const double dtp = measureSkew(SyncConfig::dtp(), 4, 60, 46);
    EXPECT_GT(ntp, ptp_sw);
    EXPECT_GT(ptp_sw, ptp_hw);
    EXPECT_GT(ptp_hw, dtp);
}

TEST(ClockEnsemble, MaxSkewBoundedUnderPtp)
{
    sim::Simulator s;
    Rng rng(47);
    ClockEnsemble ensemble(s, 5, SyncConfig::ptpSoftware(), rng);
    ensemble.start();
    s.runFor(60 * kSecond);
    // 5-sigma-ish bound: software PTP skew should stay well under 1 ms.
    EXPECT_LT(ensemble.maxPairwiseSkew(), kMillisecond);
}
