/**
 * @file
 * Unit tests for the pack buffer (ftl::PackLog): fill-triggered and
 * timer-triggered flushes, batch boundaries, relocation flagging, and
 * forced flushes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "ftl/pack_log.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"

using namespace ftl;
using common::kMicrosecond;
using common::kMillisecond;

namespace {

struct Capture
{
    sim::Simulator sim;
    std::vector<std::vector<Pending>> batches;
    PackLog log;

    explicit Capture(common::Duration timeout = kMillisecond)
        : log(sim, 4096, timeout, [this](std::vector<Pending> b) {
              // Resolve acks immediately (stand-in for a flush task).
              for (auto &p : b)
                  p.ack.set(PutStatus::Ok);
              batches.push_back(std::move(b));
          })
    {
    }

    flash::Record
    record(common::Key key, std::uint32_t bytes = 512)
    {
        flash::Record r;
        r.key = key;
        r.sizeBytes = bytes;
        return r;
    }
};

} // namespace

TEST(PackLog, FullPageFlushesImmediately)
{
    Capture c;
    for (common::Key k = 0; k < 8; ++k)
        (void)c.log.append(c.record(k), false);
    // 8 x 512B == 4096: the batch must have flushed synchronously.
    ASSERT_EQ(c.batches.size(), 1u);
    EXPECT_EQ(c.batches[0].size(), 8u);
    EXPECT_TRUE(c.log.empty());
}

TEST(PackLog, TimerFlushesPartialPage)
{
    Capture c(kMillisecond);
    auto fut = c.log.append(c.record(1), false);
    EXPECT_TRUE(c.batches.empty());
    c.sim.run(); // fires the pack timer
    ASSERT_EQ(c.batches.size(), 1u);
    EXPECT_EQ(c.batches[0].size(), 1u);
    EXPECT_EQ(c.sim.now(), kMillisecond);
    EXPECT_TRUE(fut.ready());
}

TEST(PackLog, StaleTimerDoesNotDoubleFlush)
{
    Capture c(kMillisecond);
    (void)c.log.append(c.record(1), false);
    // Fill the page before the timer fires: one flush now...
    for (common::Key k = 2; k <= 8; ++k)
        (void)c.log.append(c.record(k), false);
    ASSERT_EQ(c.batches.size(), 1u);
    // ...and the stale timer must not flush an empty buffer again.
    c.sim.run();
    EXPECT_EQ(c.batches.size(), 1u);
}

TEST(PackLog, OversizeRecordStartsNewPage)
{
    Capture c;
    (void)c.log.append(c.record(1, 2048), false);
    (void)c.log.append(c.record(2, 3000), false); // 2048+3000 > 4096
    // First record flushed alone to make room.
    ASSERT_EQ(c.batches.size(), 1u);
    EXPECT_EQ(c.batches[0].size(), 1u);
    EXPECT_EQ(c.log.bufferedBytes(), 3000u);
}

TEST(PackLog, FlushNowForcesPartial)
{
    Capture c;
    (void)c.log.append(c.record(1), false);
    (void)c.log.append(c.record(2), false);
    c.log.flushNow();
    ASSERT_EQ(c.batches.size(), 1u);
    EXPECT_EQ(c.batches[0].size(), 2u);
    c.log.flushNow(); // idempotent on empty buffer
    EXPECT_EQ(c.batches.size(), 1u);
}

TEST(PackLog, RelocationFlagPreserved)
{
    Capture c;
    (void)c.log.append(c.record(1), false);
    (void)c.log.append(c.record(2), true);
    c.log.flushNow();
    ASSERT_EQ(c.batches.size(), 1u);
    EXPECT_FALSE(c.batches[0][0].relocation);
    EXPECT_TRUE(c.batches[0][1].relocation);
}

TEST(PackLog, MixedSizesPackUntilFull)
{
    Capture c;
    // 5 x 768 = 3840; the 6th (768) would exceed 4096.
    for (common::Key k = 0; k < 6; ++k)
        (void)c.log.append(c.record(k, 768), false);
    ASSERT_EQ(c.batches.size(), 1u);
    EXPECT_EQ(c.batches[0].size(), 5u);
    EXPECT_EQ(c.log.bufferedBytes(), 768u);
}
