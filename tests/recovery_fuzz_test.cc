/**
 * @file
 * Randomized failover fuzzing: bank-style transfer transactions run
 * while a shard primary is killed at a random instant and a backup is
 * promoted (Algorithm 2 + CTP + leases). After recovery the total
 * balance — the serializability invariant — must be intact, and the
 * system must still commit new transactions.
 *
 * The crash is delivered through a ChaosEngine schedule generated
 * from the seed (`at <T>ms crash primary:<S> failover`), so the fuzz
 * exercises the same injection path as `milana-sim --chaos` and the
 * chaos sweep. Parameterized over seeds so each instance crashes at a
 * different point in the protocol (mid-prepare, mid-decision,
 * mid-replication, idle).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/chaos.hh"
#include "milana/client.hh"
#include "workload/cluster.hh"

using namespace workload;
using common::Key;
using common::kMillisecond;
using common::kSecond;
using milana::CommitResult;

namespace {

constexpr Key kAccounts = 24;
constexpr int kInitial = 100;

/** Balance parser tolerant of the pre-setup "init" marker. */
int
balanceOf(const std::string &value, bool *ok)
{
    if (value.empty() || value == "init") {
        *ok = false;
        return 0;
    }
    return std::stoi(value);
}

sim::Task<void>
transferLoop(Cluster &cluster, std::uint32_t client_index,
             std::uint64_t seed, const bool *halt)
{
    auto &client = cluster.client(client_index);
    common::Rng rng(seed);
    while (!*halt && !cluster.sim().stopRequested()) {
        const Key from = rng.nextBounded(kAccounts);
        const Key to = (from + 1 + rng.nextBounded(kAccounts - 1)) %
                       kAccounts;
        auto txn = client.beginTransaction();
        auto rf = co_await client.get(txn, from);
        auto rt = co_await client.get(txn, to);
        if (!rf.ok || !rt.ok || !rf.found || !rt.found) {
            client.abortTransaction(txn);
            continue;
        }
        bool parsed = true;
        const int bf = balanceOf(rf.value, &parsed);
        const int bt = balanceOf(rt.value, &parsed);
        if (!parsed) {
            client.abortTransaction(txn);
            continue;
        }
        const int amount = static_cast<int>(rng.nextBounded(10)) + 1;
        if (bf < amount) {
            client.abortTransaction(txn);
            continue;
        }
        client.put(txn, from, std::to_string(bf - amount));
        client.put(txn, to, std::to_string(bt + amount));
        (void)co_await client.commitTransaction(txn);
    }
}

} // namespace

class RecoveryFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RecoveryFuzz, InvariantSurvivesRandomCrashPoint)
{
    const std::uint64_t seed = GetParam();
    common::Rng rng(seed);

    // Seed-derived fault schedule: kill shard (seed % 2)'s primary at
    // a random instant once transfer traffic is flowing (the setup
    // transaction finishes by ~60 ms), promoting the first surviving
    // backup. Any protocol phase may be in flight at the crash.
    const common::ShardId shard = static_cast<common::ShardId>(seed % 2);
    const std::uint64_t crashMs = 70 + rng.nextBounded(200);
    const std::string schedule = "at " + std::to_string(crashMs) +
                                 "ms crash primary:" +
                                 std::to_string(shard) + " failover";
    common::ChaosEngine chaos(seed);
    std::string err;
    ASSERT_TRUE(chaos.parse(schedule, &err)) << err;

    ClusterConfig cfg;
    cfg.numShards = 2;
    cfg.replicasPerShard = 3;
    cfg.numClients = 4;
    cfg.backend = BackendKind::Dram;
    cfg.clocks = ClockKind::PtpSw;
    cfg.numKeys = 1000;
    cfg.seed = seed;
    cfg.chaos = &chaos;
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();
    chaos.arm(cluster.now());

    bool scenario_done = false;
    bool halt_transfers = false;
    sim::spawn([](Cluster *cluster, std::uint64_t seed, bool *halt,
                  bool *done) -> sim::Task<void> {
        auto &setup = cluster->client(0);
        // Let the disciplined clocks advance past the bulk-load stamp:
        // a client whose clock lags true time would otherwise mint a
        // commit timestamp below the loaded versions and (correctly)
        // be rejected.
        co_await sim::sleepFor(cluster->sim(), 10 * kMillisecond);
        CommitResult ir = CommitResult::Aborted;
        for (int attempt = 0;
             attempt < 5 && ir != CommitResult::Committed; ++attempt) {
            auto init = setup.beginTransaction();
            for (Key a = 0; a < kAccounts; ++a)
                setup.put(init, a, std::to_string(kInitial));
            ir = co_await setup.commitTransaction(init);
        }
        EXPECT_EQ(ir, CommitResult::Committed);
        co_await sim::sleepFor(cluster->sim(), 50 * kMillisecond);

        for (std::uint32_t c = 1; c < 4; ++c)
            sim::spawn(transferLoop(*cluster, c, seed * 31 + c, halt));

        // The chaos schedule crashes the shard's primary (and spawns
        // the failover) somewhere in the next ~210 ms; sleep past the
        // whole window plus a second of traffic.
        co_await sim::sleepFor(cluster->sim(),
                               300 * kMillisecond + kSecond);
        // Unlike the old direct `co_await failover(...)` form, the
        // chaos-driven failover runs in the background — and the
        // promoted primary refuses service until it has waited out
        // the old primary's lease. Hold the audit until recovery
        // completes.
        auto &promoted =
            cluster->primary(static_cast<common::ShardId>(seed % 2));
        while (promoted.recovering())
            co_await sim::sleepFor(cluster->sim(), 10 * kMillisecond);
        // Leave the CTP scanners running past ctpTimeout so orphaned
        // multi-shard prepares from the crash window resolve before
        // the audit.
        co_await sim::sleepFor(cluster->sim(), 150 * kMillisecond);
        // Halt the transfer loops but NOT the simulator: after
        // requestStop servers refuse reads whose timestamp their
        // current lease doesn't cover (they can no longer renew), and
        // the promoted primary starts with no lease at all.
        *halt = true;
        co_await sim::sleepFor(cluster->sim(), 200 * kMillisecond);

        auto &auditor = cluster->client(0);
        long total = -1;
        for (int attempt = 0; attempt < 30 && total < 0; ++attempt) {
            auto txn = auditor.beginTransaction();
            long sum = 0;
            bool ok = true;
            for (Key a = 0; a < kAccounts && ok; ++a) {
                auto r = co_await auditor.get(txn, a);
                ok = r.ok && r.found;
                if (ok)
                    sum += balanceOf(r.value, &ok);
            }
            if (ok && co_await auditor.commitTransaction(txn) ==
                          CommitResult::Committed)
                total = sum;
            else
                auditor.abortTransaction(txn);
        }
        EXPECT_EQ(total, static_cast<long>(kAccounts) * kInitial)
            << "seed " << seed;

        // The cluster must still accept new transactions post-crash.
        auto post = cluster->client(0).beginTransaction();
        cluster->client(0).put(post, 0,
                               std::to_string(kInitial));
        // (Note: overwrites account 0; runs after the audit.)
        auto pr = co_await cluster->client(0).commitTransaction(post);
        EXPECT_EQ(pr, CommitResult::Committed) << "seed " << seed;
        cluster->sim().requestStop();
        *done = true;
    }(&cluster, seed, &halt_transfers, &scenario_done));

    // Bounded drive through the chaos-aware façade (interleaves the
    // fault schedule at quiescent points); the scenario requests stop
    // itself.
    cluster.runUntil(cluster.now() + 30 * kSecond);
    EXPECT_TRUE(scenario_done) << "scenario wedged for seed " << seed;
    EXPECT_EQ(chaos.injections(), 1u) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, RecoveryFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u, 99u, 111u, 123u,
                                           137u));
