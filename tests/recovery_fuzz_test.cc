/**
 * @file
 * Randomized failover fuzzing: bank-style transfer transactions run
 * while a shard primary is killed at a random instant and a backup is
 * promoted (Algorithm 2 + CTP + leases). After recovery the total
 * balance — the serializability invariant — must be intact, and the
 * system must still commit new transactions.
 *
 * Parameterized over seeds so each instance crashes at a different
 * point in the protocol (mid-prepare, mid-decision, mid-replication,
 * idle).
 */

#include <gtest/gtest.h>

#include <string>

#include "milana/client.hh"
#include "workload/cluster.hh"

using namespace workload;
using common::Key;
using common::kMillisecond;
using common::kSecond;
using milana::CommitResult;

namespace {

constexpr Key kAccounts = 24;
constexpr int kInitial = 100;

/** Balance parser tolerant of the pre-setup "init" marker. */
int
balanceOf(const std::string &value, bool *ok)
{
    if (value.empty() || value == "init") {
        *ok = false;
        return 0;
    }
    return std::stoi(value);
}

sim::Task<void>
transferLoop(Cluster &cluster, std::uint32_t client_index,
             std::uint64_t seed)
{
    auto &client = cluster.client(client_index);
    common::Rng rng(seed);
    while (!cluster.sim().stopRequested()) {
        const Key from = rng.nextBounded(kAccounts);
        const Key to = (from + 1 + rng.nextBounded(kAccounts - 1)) %
                       kAccounts;
        auto txn = client.beginTransaction();
        auto rf = co_await client.get(txn, from);
        auto rt = co_await client.get(txn, to);
        if (!rf.ok || !rt.ok || !rf.found || !rt.found) {
            client.abortTransaction(txn);
            continue;
        }
        bool parsed = true;
        const int bf = balanceOf(rf.value, &parsed);
        const int bt = balanceOf(rt.value, &parsed);
        if (!parsed) {
            client.abortTransaction(txn);
            continue;
        }
        const int amount = static_cast<int>(rng.nextBounded(10)) + 1;
        if (bf < amount) {
            client.abortTransaction(txn);
            continue;
        }
        client.put(txn, from, std::to_string(bf - amount));
        client.put(txn, to, std::to_string(bt + amount));
        (void)co_await client.commitTransaction(txn);
    }
}

} // namespace

class RecoveryFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RecoveryFuzz, InvariantSurvivesRandomCrashPoint)
{
    const std::uint64_t seed = GetParam();
    common::Rng rng(seed);

    ClusterConfig cfg;
    cfg.numShards = 2;
    cfg.replicasPerShard = 3;
    cfg.numClients = 4;
    cfg.backend = BackendKind::Dram;
    cfg.clocks = ClockKind::PtpSw;
    cfg.numKeys = 1000;
    cfg.seed = seed;
    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    bool scenario_done = false;
    sim::spawn([](Cluster *cluster, common::Rng rng, std::uint64_t seed,
                  bool *done) -> sim::Task<void> {
        auto &setup = cluster->client(0);
        // Let the disciplined clocks advance past the bulk-load stamp:
        // a client whose clock lags true time would otherwise mint a
        // commit timestamp below the loaded versions and (correctly)
        // be rejected.
        co_await sim::sleepFor(cluster->sim(), 10 * kMillisecond);
        CommitResult ir = CommitResult::Aborted;
        for (int attempt = 0;
             attempt < 5 && ir != CommitResult::Committed; ++attempt) {
            auto init = setup.beginTransaction();
            for (Key a = 0; a < kAccounts; ++a)
                setup.put(init, a, std::to_string(kInitial));
            ir = co_await setup.commitTransaction(init);
        }
        EXPECT_EQ(ir, CommitResult::Committed);
        co_await sim::sleepFor(cluster->sim(), 50 * kMillisecond);

        for (std::uint32_t c = 1; c < 4; ++c)
            sim::spawn(transferLoop(*cluster, c, seed * 31 + c));

        // Crash shard (seed % 2)'s primary at a random instant within
        // the first 200 ms of traffic — any protocol phase may be
        // in flight.
        const common::ShardId shard =
            static_cast<common::ShardId>(seed % 2);
        co_await sim::sleepFor(
            cluster->sim(),
            static_cast<common::Duration>(
                rng.nextBounded(200 * kMillisecond)));
        const auto victim = cluster->master().primaryOf(shard);
        cluster->crashServer(victim);
        const auto promoted = cluster->master().backupsOf(shard)[0];
        co_await cluster->failover(shard, promoted);

        // Let traffic continue on the new primary, then audit.
        co_await sim::sleepFor(cluster->sim(), kSecond);
        cluster->sim().requestStop();
        co_await sim::sleepFor(cluster->sim(), 200 * kMillisecond);

        auto &auditor = cluster->client(0);
        long total = -1;
        for (int attempt = 0; attempt < 30 && total < 0; ++attempt) {
            auto txn = auditor.beginTransaction();
            long sum = 0;
            bool ok = true;
            for (Key a = 0; a < kAccounts && ok; ++a) {
                auto r = co_await auditor.get(txn, a);
                ok = r.ok && r.found;
                if (ok)
                    sum += balanceOf(r.value, &ok);
            }
            if (ok && co_await auditor.commitTransaction(txn) ==
                          CommitResult::Committed)
                total = sum;
            else
                auditor.abortTransaction(txn);
        }
        EXPECT_EQ(total, static_cast<long>(kAccounts) * kInitial)
            << "seed " << seed;

        // The cluster must still accept new transactions post-crash.
        auto post = cluster->client(0).beginTransaction();
        cluster->client(0).put(post, 0,
                               std::to_string(kInitial));
        // (Note: overwrites account 0; runs after the audit.)
        auto pr = co_await cluster->client(0).commitTransaction(post);
        EXPECT_EQ(pr, CommitResult::Committed) << "seed " << seed;
        *done = true;
    }(&cluster, rng.fork(), seed, &scenario_done));

    // Bounded drive: the scenario requests stop itself.
    cluster.sim().runUntil(cluster.sim().now() + 30 * kSecond);
    EXPECT_TRUE(scenario_done) << "scenario wedged for seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, RecoveryFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u, 77u, 88u));
