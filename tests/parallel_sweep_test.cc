/**
 * @file
 * SweepRunner contract tests: every cell runs exactly once regardless
 * of the job count, exceptions propagate, and — the property the whole
 * parallel-sweep design rests on — a fig6-style grid of Cluster
 * simulations produces a byte-identical milana-bench-v1 report whether
 * it runs on 1 worker or 8.
 *
 * The determinism test is the one the TSan CI job runs: it exercises
 * concurrent simulators on real worker threads, so a data race in any
 * ambient state (trace context, logging, RNG) shows up here.
 */

#include <atomic>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../bench/bench_util.hh"
#include "../bench/sweep_runner.hh"
#include "common/types.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

namespace {

using common::kSecond;
using workload::BackendKind;
using workload::ClockKind;
using workload::Cluster;
using workload::ClusterConfig;
using workload::RetwisConfig;
using workload::RetwisWorkload;

TEST(SweepRunner, RunsEveryCellExactlyOnce)
{
    for (unsigned jobs : {1u, 2u, 8u}) {
        bench::SweepRunner runner(jobs);
        constexpr std::size_t kCells = 37;
        std::vector<std::atomic<int>> hits(kCells);
        runner.run(kCells, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < kCells; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "cell " << i << " jobs "
                                         << jobs;
    }
}

TEST(SweepRunner, ZeroCellsIsANoop)
{
    bench::SweepRunner runner(4);
    runner.run(0, [](std::size_t) { FAIL() << "cell ran"; });
}

TEST(SweepRunner, PropagatesCellExceptions)
{
    bench::SweepRunner runner(4);
    EXPECT_THROW(runner.run(16,
                            [&](std::size_t i) {
                                if (i == 7)
                                    throw std::runtime_error("cell 7");
                            }),
                 std::runtime_error);
}

TEST(SweepRunner, JobsClampedToAtLeastOne)
{
    bench::SweepRunner runner(0);
    EXPECT_EQ(runner.jobs(), 1u);
    int ran = 0;
    runner.run(3, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 3);
}

/** One fig6-style cell: a private Cluster + Retwis fleet. */
double
runAbortCell(BackendKind backend, std::uint32_t clients, double alpha)
{
    ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 1;
    cfg.numClients = clients;
    cfg.backend = backend;
    cfg.clocks = ClockKind::Perfect;
    cfg.numKeys = 500;
    cfg.seed = 1;

    Cluster cluster(cfg);
    cluster.populate();
    cluster.start();

    RetwisConfig retwis;
    retwis.alpha = alpha;
    retwis.numKeys = cfg.numKeys;
    retwis.seed = cfg.seed + 100;
    RetwisWorkload fleet(cluster, retwis);
    fleet.start();

    cluster.sim().runUntil(cluster.sim().now() + kSecond / 4);
    fleet.resetMeasurement();
    cluster.sim().runFor(kSecond / 2);
    return fleet.abortRate() * 100.0;
}

/** Render the small grid as a milana-bench-v1 report string. */
std::string
sweepReport(unsigned jobs)
{
    struct Coord
    {
        BackendKind backend;
        std::uint32_t clients;
        double alpha;
    };
    std::vector<Coord> coords;
    for (double alpha : {0.6, 0.99}) {
        for (std::uint32_t clients : {4u, 8u}) {
            coords.push_back({BackendKind::SingleVersion, clients, alpha});
            coords.push_back({BackendKind::Mftl, clients, alpha});
        }
    }

    bench::SweepRunner runner(jobs);
    std::vector<double> abortPct(coords.size());
    runner.run(coords.size(), [&](std::size_t i) {
        abortPct[i] = runAbortCell(coords[i].backend,
                                   coords[i].clients, coords[i].alpha);
    });

    bench::Report report("parallel_sweep_test");
    report.params().set("keys", 500).set("seed", 1);
    for (std::size_t i = 0; i < coords.size(); ++i) {
        report.addRow()
            .set("alpha", coords[i].alpha)
            .set("clients", coords[i].clients)
            .set("backend", workload::backendName(coords[i].backend))
            .set("abort_pct", abortPct[i]);
    }
    std::ostringstream os;
    report.writeTo(os);
    return os.str();
}

TEST(ParallelSweep, ReportBytesIdenticalAcrossJobCounts)
{
    const std::string serial = sweepReport(1);
    const std::string parallel = sweepReport(8);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel);
}

} // namespace
