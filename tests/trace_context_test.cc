/**
 * @file
 * Tests for causal trace-context propagation (milana-trace-v2): the
 * ambient TraceContext across coroutine continuations, spawn, and
 * network RPC; ScopedSpan parenting; schema-v1 compatibility of the
 * parser; determinism of the exported trace; and the online invariant
 * monitor on hand-built event streams and a real cluster run.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <unordered_map>

#include "common/invariant_monitor.hh"
#include "common/trace.hh"
#include "net/network.hh"
#include "sim/future.hh"
#include "sim/simulator.hh"
#include "sim/task.hh"
#include "workload/cluster.hh"
#include "workload/retwis.hh"

using common::InvariantMonitor;
using common::ScopedSpan;
using common::TraceContext;
using common::TraceContextScope;
using common::TraceEvent;
using common::TraceKind;
using common::TraceLog;
using common::Tracer;
using common::kMicrosecond;
using common::kSecond;

namespace {

/** A tracer wired to controllable true/local clocks. */
struct TestClock
{
    common::Time trueTime = 0;
    common::Time localTime = 0;

    Tracer
    makeTracer(TraceLog &log, common::NodeId node)
    {
        Tracer tracer;
        tracer.attach(
            log, node, [this] { return trueTime; },
            [this] { return localTime; });
        return tracer;
    }
};

net::NetConfig
fastNet()
{
    net::NetConfig cfg;
    cfg.oneWayMean = 50 * kMicrosecond;
    cfg.oneWaySigma = 0;
    cfg.minLatency = 5 * kMicrosecond;
    return cfg;
}

TEST(TraceContext, InactiveByDefaultAndScopedRestore)
{
    common::setCurrentTraceContext({});
    EXPECT_FALSE(common::currentTraceContext().active());
    {
        TraceContextScope scope(TraceContext{7, 3});
        EXPECT_EQ(common::currentTraceContext().traceId, 7u);
        EXPECT_EQ(common::currentTraceContext().spanId, 3u);
        {
            TraceContextScope inner(TraceContext{9, 1});
            EXPECT_EQ(common::currentTraceContext().traceId, 9u);
        }
        EXPECT_EQ(common::currentTraceContext().traceId, 7u);
    }
    EXPECT_FALSE(common::currentTraceContext().active());
}

TEST(TraceContext, NestedScopedSpansParentCorrectly)
{
    common::setCurrentTraceContext({});
    TraceLog log;
    TestClock clock;
    Tracer tracer = clock.makeTracer(log, 1);

    const std::uint64_t txn = tracer.newTraceId();
    {
        TraceContextScope ctx(TraceContext{txn, 0});
        ScopedSpan outer(tracer, "outer");
        {
            ScopedSpan inner(tracer, "inner");
            tracer.instant("leaf");
        }
    }

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 5u); // outer B, inner B, leaf I, inner E, outer E
    const TraceEvent &outerB = events[0];
    const TraceEvent &innerB = events[1];
    const TraceEvent &leaf = events[2];
    const TraceEvent &innerE = events[3];
    const TraceEvent &outerE = events[4];

    for (const TraceEvent &e : events)
        EXPECT_EQ(e.traceId, txn);
    EXPECT_EQ(outerB.parentSpan, 0u);
    EXPECT_EQ(innerB.parentSpan, outerB.span);
    EXPECT_EQ(leaf.parentSpan, innerB.span);
    // End events carry the same causal identity as their begins.
    EXPECT_EQ(innerE.parentSpan, outerB.span);
    EXPECT_EQ(outerE.parentSpan, 0u);
}

TEST(TraceContext, SurvivesFutureContinuation)
{
    common::setCurrentTraceContext({});
    sim::Simulator s;
    sim::Promise<int> promise(s);
    std::optional<TraceContext> afterAwait;
    std::optional<TraceContext> afterSleep;

    sim::spawn([](sim::Simulator *s, sim::Future<int> f,
                  std::optional<TraceContext> *afterAwait,
                  std::optional<TraceContext> *afterSleep)
                   -> sim::Task<void> {
        TraceContextScope ctx(TraceContext{7, 3});
        (void)co_await f;
        *afterAwait = common::currentTraceContext();
        co_await sim::sleepFor(*s, 10);
        *afterSleep = common::currentTraceContext();
    }(&s, promise.future(), &afterAwait, &afterSleep));

    // The resolver runs under a *different* context; the waiter must
    // not inherit it.
    s.schedule(100, [&promise] {
        TraceContextScope resolver(TraceContext{99, 55});
        promise.set(1);
    });
    s.run();

    ASSERT_TRUE(afterAwait.has_value());
    EXPECT_EQ(afterAwait->traceId, 7u);
    EXPECT_EQ(afterAwait->spanId, 3u);
    ASSERT_TRUE(afterSleep.has_value());
    EXPECT_EQ(afterSleep->traceId, 7u);
}

TEST(TraceContext, SpawnInheritsButDoesNotLeak)
{
    common::setCurrentTraceContext({});
    sim::Simulator s;
    std::optional<TraceContext> childSaw;

    {
        TraceContextScope ctx(TraceContext{11, 4});
        sim::spawn(
            [](sim::Simulator *s,
               std::optional<TraceContext> *childSaw) -> sim::Task<void> {
                *childSaw = common::currentTraceContext();
                TraceContextScope mine(TraceContext{12, 9});
                co_await sim::sleepFor(*s, 5);
            }(&s, &childSaw));
        // The child suspended while holding its own context; the
        // spawner must still see its own.
        EXPECT_EQ(common::currentTraceContext().traceId, 11u);
        EXPECT_EQ(common::currentTraceContext().spanId, 4u);
    }
    s.run();
    ASSERT_TRUE(childSaw.has_value());
    EXPECT_EQ(childSaw->traceId, 11u);
    EXPECT_EQ(childSaw->spanId, 4u);
}

TEST(TraceContext, SurvivesNetworkRoundTrip)
{
    common::setCurrentTraceContext({});
    sim::Simulator s;
    net::Network net(s, fastNet(), common::Rng(3));
    TraceLog log;
    net.tracer().attach(
        log, net::kNetworkNode, [&s] { return s.now(); },
        [&s] { return s.now(); });

    std::optional<TraceContext> handlerSaw;
    std::optional<TraceContext> callerAfter;

    auto handler = [](std::optional<TraceContext> *saw) -> sim::Task<int> {
        *saw = common::currentTraceContext();
        co_return 1;
    };

    sim::spawn([](net::Network *net, decltype(handler) make,
                  std::optional<TraceContext> *handlerSaw,
                  std::optional<TraceContext> *callerAfter)
                   -> sim::Task<void> {
        TraceContextScope ctx(TraceContext{42, 7});
        (void)co_await net->callTyped<int>(1, 2, make(handlerSaw));
        *callerAfter = common::currentTraceContext();
    }(&net, handler, &handlerSaw, &callerAfter));
    s.run();

    // The handler ran on the remote node inside the caller's trace,
    // parented under the net.rpc span carried in the message header.
    ASSERT_TRUE(handlerSaw.has_value());
    EXPECT_EQ(handlerSaw->traceId, 42u);
    EXPECT_NE(handlerSaw->spanId, 0u);
    EXPECT_NE(handlerSaw->spanId, 7u);
    ASSERT_TRUE(callerAfter.has_value());
    EXPECT_EQ(callerAfter->traceId, 42u);
    EXPECT_EQ(callerAfter->spanId, 7u);

    // And the rpc span itself recorded the caller's causal identity.
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, "net.rpc");
    EXPECT_EQ(events[0].traceId, 42u);
    EXPECT_EQ(events[0].parentSpan, 7u);
    EXPECT_EQ(events[0].span, handlerSaw->spanId);
}

TEST(TraceParse, V1DocumentsStillParse)
{
    const char *v1 =
        "{\"schema\": \"milana-trace-v1\", \"capacity\": 8, "
        "\"recorded\": 2, \"dropped\": 0, \"events\": [\n"
        " {\"seq\": 0, \"t\": 100, \"lt\": 101, \"node\": 3, "
        "\"kind\": \"B\", \"span\": 5, \"name\": \"x\", \"tag\": \"\", "
        "\"arg\": 0},\n"
        " {\"seq\": 1, \"t\": 200, \"lt\": 201, \"node\": 3, "
        "\"kind\": \"E\", \"span\": 5, \"name\": \"x\", \"tag\": \"ok\", "
        "\"arg\": 7}\n"
        "]}";
    common::ParsedTrace trace;
    std::string error;
    ASSERT_TRUE(common::parseTraceJson(v1, trace, error)) << error;
    EXPECT_EQ(trace.schemaVersion, 1);
    ASSERT_EQ(trace.events.size(), 2u);
    EXPECT_EQ(trace.events[0].kind, TraceKind::SpanBegin);
    // v2 causal fields default to "no context".
    EXPECT_EQ(trace.events[0].traceId, 0u);
    EXPECT_EQ(trace.events[0].parentSpan, 0u);
    EXPECT_EQ(trace.events[1].arg2, 0);
    EXPECT_EQ(trace.events[1].tag, "ok");
}

// ---------------------------------------------------------------------
// Invariant monitor on hand-built event streams.

TraceEvent
instant(const char *name, std::int64_t arg = 0, std::int64_t arg2 = 0,
        std::uint64_t traceId = 0, common::NodeId node = 1)
{
    TraceEvent e;
    e.kind = TraceKind::Instant;
    e.name = name;
    e.arg = arg;
    e.arg2 = arg2;
    e.traceId = traceId;
    e.node = node;
    return e;
}

TraceEvent
spanEnd(const char *name, std::uint64_t span, std::uint64_t parent,
        const char *tag, std::int64_t arg = 0,
        std::uint64_t traceId = 0)
{
    TraceEvent e;
    e.kind = TraceKind::SpanEnd;
    e.name = name;
    e.span = span;
    e.parentSpan = parent;
    e.tag = tag;
    e.arg = arg;
    e.traceId = traceId;
    return e;
}

TEST(InvariantMonitor, DetectsCommitTimestampRegression)
{
    InvariantMonitor::Config cfg;
    cfg.failFast = false;
    InvariantMonitor monitor(cfg);
    monitor.onEvent(instant("milana.key.commit", /*key=*/9, /*ts=*/100));
    monitor.onEvent(instant("milana.key.commit", 9, 100)); // equal: legal
    monitor.onEvent(instant("milana.key.commit", 9, 150));
    EXPECT_TRUE(monitor.ok());
    monitor.onEvent(instant("milana.key.commit", 9, 120)); // regression
    EXPECT_FALSE(monitor.ok());
    ASSERT_EQ(monitor.violations().size(), 1u);
    EXPECT_EQ(monitor.violations()[0].invariant, "commit-monotonic");
    // Other keys are unaffected.
    monitor.onEvent(instant("milana.key.commit", 10, 50));
    EXPECT_EQ(monitor.violationCount(), 1u);
}

TEST(InvariantMonitor, DetectsCommittedReadPastSnapshot)
{
    InvariantMonitor::Config cfg;
    cfg.failFast = false;
    cfg.checkSnapshotReads = true;
    InvariantMonitor monitor(cfg);

    // txn 5 began at ts 100 but observed a version stamped 200.
    monitor.onEvent(instant("milana.txn.read", /*key=*/1, /*ts=*/200,
                            /*traceId=*/5));
    monitor.onEvent(spanEnd("milana.txn.commit", 30, 0, "committed",
                            /*beginTs=*/100, /*traceId=*/5));
    ASSERT_FALSE(monitor.ok());
    EXPECT_EQ(monitor.violations()[0].invariant, "snapshot-read");
    EXPECT_EQ(monitor.violations()[0].traceId, 5u);
    // The violation report carries the transaction's timeline.
    EXPECT_GE(monitor.violations()[0].timeline.size(), 2u);

    // An *aborted* txn in the same situation is fine — that is the
    // validation protocol doing its job.
    monitor.onEvent(instant("milana.txn.read", 1, 300, 6));
    monitor.onEvent(
        spanEnd("milana.txn.commit", 31, 0, "read_stale", 100, 6));
    EXPECT_EQ(monitor.violationCount(), 1u);

    // And a committed txn whose reads respect the snapshot is fine.
    monitor.onEvent(instant("milana.txn.read", 1, 90, 7));
    monitor.onEvent(
        spanEnd("milana.txn.commit", 32, 0, "committed", 100, 7));
    EXPECT_EQ(monitor.violationCount(), 1u);
}

TEST(InvariantMonitor, DetectsAckBeforeReplication)
{
    InvariantMonitor::Config cfg;
    cfg.failFast = false;
    cfg.checkReplicationBeforeAck = true;
    InvariantMonitor monitor(cfg);

    // Correct order: replication span (child of prepare span 40)
    // finishes, then the prepare acks commit.
    monitor.onEvent(
        spanEnd("milana.repl.txn_record", 41, /*parent=*/40, "", 0, 5));
    monitor.onEvent(
        spanEnd("milana.server.prepare", 40, 0, "commit", /*writes=*/2, 5));
    EXPECT_TRUE(monitor.ok());

    // Violation: prepare 50 acks with no completed replication child.
    monitor.onEvent(
        spanEnd("milana.server.prepare", 50, 0, "commit", 2, 6));
    ASSERT_FALSE(monitor.ok());
    EXPECT_EQ(monitor.violations()[0].invariant,
              "replication-before-ack");

    // Read-only prepares (no writes ⇒ arg 0) never need replication.
    monitor.onEvent(
        spanEnd("milana.server.prepare", 60, 0, "commit", 0, 7));
    EXPECT_EQ(monitor.violationCount(), 1u);
}

TEST(InvariantMonitor, DetectsQueueDepthOverflow)
{
    InvariantMonitor::Config cfg;
    cfg.failFast = false;
    cfg.maxQueueDepth = 2;
    InvariantMonitor monitor(cfg);

    monitor.onEvent(instant("flash.ssd.admit", 0, 0, 0, /*node=*/3));
    monitor.onEvent(instant("flash.ssd.admit", 0, 0, 0, 3));
    monitor.onEvent(instant("flash.ssd.release", 0, 0, 0, 3));
    monitor.onEvent(instant("flash.ssd.admit", 0, 0, 0, 3));
    EXPECT_TRUE(monitor.ok()); // depth never exceeded 2
    // A different node has its own counter.
    monitor.onEvent(instant("flash.ssd.admit", 0, 0, 0, /*node=*/4));
    monitor.onEvent(instant("flash.ssd.admit", 0, 0, 0, 4));
    EXPECT_TRUE(monitor.ok());
    monitor.onEvent(instant("flash.ssd.admit", 0, 0, 0, 4)); // 3rd in flight
    EXPECT_FALSE(monitor.ok());
    EXPECT_EQ(monitor.violations()[0].invariant, "queue-depth");
}

TEST(InvariantMonitor, AttachesToTraceLogAndSeesEvictedEvents)
{
    // The monitor must judge the full stream even when the ring is
    // tiny and evicts almost everything.
    TraceLog log(2);
    TestClock clock;
    Tracer tracer = clock.makeTracer(log, 1);
    InvariantMonitor::Config cfg;
    cfg.failFast = false;
    InvariantMonitor monitor(cfg);
    monitor.attach(log);

    tracer.instant("milana.key.commit", {}, 9, 100);
    for (int i = 0; i < 10; ++i)
        tracer.instant("noise");
    tracer.instant("milana.key.commit", {}, 9, 50); // long since evicted
    EXPECT_FALSE(monitor.ok());
}

// ---------------------------------------------------------------------
// Whole-cluster properties.

workload::ClusterConfig
tinyCluster(common::TraceLog *trace)
{
    workload::ClusterConfig cfg;
    cfg.numShards = 1;
    cfg.replicasPerShard = 1;
    cfg.numClients = 2;
    cfg.backend = workload::BackendKind::Dram;
    cfg.clocks = workload::ClockKind::Perfect;
    cfg.numKeys = 500;
    cfg.trace = trace;
    return cfg;
}

std::string
runTracedCluster()
{
    common::TraceLog log(1 << 20);
    workload::Cluster cluster(tinyCluster(&log));
    cluster.populate();
    log.clear(); // population noise is not part of the run
    cluster.start();
    workload::RetwisConfig rcfg;
    rcfg.numKeys = 500;
    workload::RetwisWorkload fleet(cluster, rcfg);
    fleet.start();
    cluster.sim().runFor(kSecond / 5);
    std::ostringstream os;
    log.writeJson(os);
    return os.str();
}

TEST(ClusterTrace, ExportIsDeterministicAcrossRuns)
{
    const std::string a = runTracedCluster();
    const std::string b = runTracedCluster();
    EXPECT_EQ(a, b) << "same seed must produce a byte-identical trace";
}

TEST(ClusterTrace, CommittedTxnFormsOneParentChain)
{
    const std::string json = runTracedCluster();
    common::ParsedTrace trace;
    std::string error;
    ASSERT_TRUE(common::parseTraceJson(json, trace, error)) << error;
    EXPECT_EQ(trace.schemaVersion, 2);

    // Pick a committed transaction.
    std::uint64_t txn = 0, commitSpan = 0;
    for (const TraceEvent &e : trace.events) {
        if (e.kind == TraceKind::SpanEnd &&
            e.name == "milana.txn.commit" && e.tag == "committed" &&
            e.traceId != 0) {
            txn = e.traceId;
            commitSpan = e.span;
            break;
        }
    }
    ASSERT_NE(txn, 0u) << "no committed transaction in the trace";

    // Every event of that transaction shares the trace id, and the
    // server-side prepare span chains up to the client's commit span.
    std::unordered_map<std::uint64_t, std::uint64_t> parentOf;
    for (const TraceEvent &e : trace.events)
        if (e.traceId == txn && e.kind == TraceKind::SpanBegin)
            parentOf[e.span] = e.parentSpan;

    std::uint64_t prepareSpan = 0;
    for (const TraceEvent &e : trace.events) {
        if (e.traceId == txn && e.kind == TraceKind::SpanBegin &&
            e.name == "milana.server.prepare") {
            prepareSpan = e.span;
            break;
        }
    }
    ASSERT_NE(prepareSpan, 0u)
        << "committed txn has no traced server prepare";

    bool reached = false;
    std::uint64_t cursor = prepareSpan;
    for (int hops = 0; hops < 16 && cursor != 0; ++hops) {
        if (cursor == commitSpan) {
            reached = true;
            break;
        }
        const auto it = parentOf.find(cursor);
        if (it == parentOf.end())
            break;
        cursor = it->second;
    }
    EXPECT_TRUE(reached) << "prepare span does not chain to the commit "
                            "span via parent links";
}

TEST(ClusterTrace, MonitorPassesOnCleanRun)
{
    common::TraceLog log(1 << 20);
    InvariantMonitor::Config mcfg;
    mcfg.checkSnapshotReads = true; // DRAM backend is multi-version
    mcfg.failFast = false;
    InvariantMonitor monitor(mcfg);
    monitor.attach(log);

    workload::Cluster cluster(tinyCluster(&log));
    cluster.populate();
    cluster.start();
    workload::RetwisConfig rcfg;
    rcfg.numKeys = 500;
    workload::RetwisWorkload fleet(cluster, rcfg);
    fleet.start();
    cluster.sim().runFor(kSecond / 5);

    std::ostringstream report;
    monitor.report(report);
    EXPECT_TRUE(monitor.ok()) << report.str();
    EXPECT_GT(fleet.totalCommits(), 0u);
}

} // namespace
