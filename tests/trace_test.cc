/**
 * @file
 * Tests for the observability layer: TraceLog ring-buffer bounding and
 * ordering, Tracer/ScopedSpan emission semantics, and the StatSet
 * JSON/CSV exporters (including a parse-back round trip and merge()).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "common/stats.hh"
#include "common/trace.hh"

using common::JsonValue;
using common::ScopedSpan;
using common::StatSet;
using common::TraceEvent;
using common::TraceKind;
using common::TraceLog;
using common::Tracer;

namespace {

/** A tracer wired to controllable true/local clocks. */
struct TestClock
{
    common::Time trueTime = 0;
    common::Time localTime = 0;

    Tracer
    makeTracer(TraceLog &log, common::NodeId node)
    {
        Tracer tracer;
        tracer.attach(
            log, node, [this] { return trueTime; },
            [this] { return localTime; });
        return tracer;
    }
};

TEST(TraceLog, BoundedRingEvictsOldest)
{
    TraceLog log(8);
    TestClock clock;
    Tracer tracer = clock.makeTracer(log, 1);

    for (int i = 0; i < 20; ++i) {
        clock.trueTime = i;
        tracer.instant("test.event", {}, i);
    }

    EXPECT_EQ(log.capacity(), 8u);
    EXPECT_EQ(log.size(), 8u);
    EXPECT_EQ(log.recorded(), 20u);
    EXPECT_EQ(log.dropped(), 12u);

    // Survivors are exactly the 8 newest, oldest first.
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 8u);
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 12 + i);
        EXPECT_EQ(events[i].arg, static_cast<std::int64_t>(12 + i));
    }
}

TEST(TraceLog, SeqBreaksTiesBetweenIdenticalTimestamps)
{
    // The simulator runs many events at the same instant; the trace
    // must preserve emission order even when every timestamp is equal.
    TraceLog log;
    TestClock clock;
    clock.trueTime = 42;
    Tracer a = clock.makeTracer(log, 1);
    Tracer b = clock.makeTracer(log, 2);

    a.instant("first");
    b.instant("second");
    a.instant("third");

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].name, "first");
    EXPECT_EQ(events[1].name, "second");
    EXPECT_EQ(events[2].name, "third");
    EXPECT_LT(events[0].seq, events[1].seq);
    EXPECT_LT(events[1].seq, events[2].seq);
    for (const TraceEvent &e : events)
        EXPECT_EQ(e.trueTime, 42);
}

TEST(TraceLog, ClearRestartsSequence)
{
    TraceLog log(4);
    TestClock clock;
    Tracer tracer = clock.makeTracer(log, 1);
    tracer.instant("x");
    tracer.instant("y");
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.dropped(), 0u);
    tracer.instant("z");
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].seq, 0u);
}

TEST(Tracer, DisabledTracerIsANoOp)
{
    Tracer tracer; // never attached
    EXPECT_FALSE(tracer.enabled());
    tracer.instant("ignored");
    EXPECT_EQ(tracer.begin("ignored"), 0u);
    {
        ScopedSpan span(tracer, "ignored");
        span.setTag("tag");
    }
    // Nothing to assert against a log — the point is no crash and no
    // span id allocation happened (begin returned 0).
}

TEST(Tracer, StampsBothClocks)
{
    TraceLog log;
    TestClock clock;
    clock.trueTime = 1000;
    clock.localTime = 1053; // 53 ns of clock error
    Tracer tracer = clock.makeTracer(log, 7);

    tracer.instant("clock.check", "tag", -5);

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].trueTime, 1000);
    EXPECT_EQ(events[0].localTime, 1053);
    EXPECT_EQ(events[0].node, 7u);
    EXPECT_EQ(events[0].tag, "tag");
    EXPECT_EQ(events[0].arg, -5);
}

TEST(ScopedSpan, PairsBeginAndEndWithLateTag)
{
    TraceLog log;
    TestClock clock;
    Tracer tracer = clock.makeTracer(log, 3);

    clock.trueTime = 100;
    {
        ScopedSpan span(tracer, "milana.txn.commit", "rw");
        clock.trueTime = 250;
        span.setTag("read_stale"); // outcome discovered mid-span
        span.setArg(9);
    }

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, TraceKind::SpanBegin);
    EXPECT_EQ(events[1].kind, TraceKind::SpanEnd);
    EXPECT_EQ(events[0].span, events[1].span);
    EXPECT_NE(events[0].span, 0u);
    EXPECT_EQ(events[0].trueTime, 100);
    EXPECT_EQ(events[1].trueTime, 250);
    EXPECT_EQ(events[0].tag, "rw");
    EXPECT_EQ(events[1].tag, "read_stale");
    EXPECT_EQ(events[1].arg, 9);
}

TEST(ScopedSpan, FinishIsIdempotent)
{
    TraceLog log;
    TestClock clock;
    Tracer tracer = clock.makeTracer(log, 1);
    {
        ScopedSpan span(tracer, "s");
        span.finish();
        span.finish(); // second finish and the destructor must no-op
    }
    EXPECT_EQ(log.snapshot().size(), 2u);
}

TEST(TraceLog, JsonExportRoundTrips)
{
    TraceLog log(4);
    TestClock clock;
    Tracer tracer = clock.makeTracer(log, 2);
    for (int i = 0; i < 6; ++i) {
        clock.trueTime = 10 * i;
        clock.localTime = 10 * i + 1;
        tracer.instant("e", "t", i);
    }

    std::ostringstream os;
    log.writeJson(os);
    std::string error;
    const JsonValue doc = JsonValue::parse(os.str(), &error);
    ASSERT_TRUE(doc.isObject()) << error;
    EXPECT_EQ(doc.at("schema").asString(), "milana-trace-v2");
    EXPECT_EQ(doc.at("recorded").asInt(), 6);
    EXPECT_EQ(doc.at("dropped").asInt(), 2);
    ASSERT_EQ(doc.at("events").size(), 4u);
    const JsonValue &first = doc.at("events")[0];
    EXPECT_EQ(first.at("seq").asInt(), 2);
    EXPECT_EQ(first.at("t").asInt(), 20);
    EXPECT_EQ(first.at("lt").asInt(), 21);
    EXPECT_EQ(first.at("kind").asString(), "I");
}

TEST(TraceLog, CsvExportHasHeaderAndRows)
{
    TraceLog log;
    TestClock clock;
    Tracer tracer = clock.makeTracer(log, 1);
    tracer.instant("a,b", "x,y"); // commas must not corrupt the CSV
    std::ostringstream os;
    log.writeCsv(os);
    std::istringstream is(os.str());
    std::string header, row;
    ASSERT_TRUE(std::getline(is, header));
    EXPECT_EQ(header, "seq,true_ns,local_ns,node,kind,span,trace,parent,"
                      "name,tag,arg,arg2");
    ASSERT_TRUE(std::getline(is, row));
    EXPECT_NE(row.find("a;b"), std::string::npos);
    EXPECT_NE(row.find("x;y"), std::string::npos);
}

TEST(StatSet, FindDoesNotCreate)
{
    StatSet stats;
    EXPECT_EQ(stats.findCounter("nope"), nullptr);
    EXPECT_EQ(stats.findHistogram("nope"), nullptr);
    EXPECT_TRUE(stats.counters().empty());
    EXPECT_TRUE(stats.histograms().empty());

    stats.counter("yes").inc(3);
    ASSERT_NE(stats.findCounter("yes"), nullptr);
    EXPECT_EQ(stats.findCounter("yes")->value(), 3u);
}

TEST(StatSet, JsonExportRoundTrips)
{
    StatSet stats;
    stats.counter("milana.prepares").inc(41);
    stats.counter("txn.aborted").inc(7);
    for (int i = 1; i <= 100; ++i)
        stats.histogram("txn.latency").record(i * 1000);

    std::ostringstream os;
    stats.writeJson(os, "client.");
    std::string error;
    const JsonValue doc = JsonValue::parse(os.str(), &error);
    ASSERT_TRUE(doc.isObject()) << error;

    const JsonValue &counters = doc.at("counters");
    EXPECT_EQ(counters.at("client.milana.prepares").asInt(), 41);
    EXPECT_EQ(counters.at("client.txn.aborted").asInt(), 7);

    const JsonValue &latency =
        doc.at("histograms").at("client.txn.latency");
    EXPECT_EQ(latency.at("count").asInt(), 100);
    EXPECT_EQ(latency.at("min").asInt(), 1000);
    EXPECT_EQ(latency.at("max").asInt(), 100'000);
    // The histogram is approximate (relative error < 2/64); check the
    // quantiles landed in the right neighborhood, not exact values.
    EXPECT_NEAR(static_cast<double>(latency.at("p50").asInt()), 50'000,
                5'000);
    EXPECT_NEAR(static_cast<double>(latency.at("p99").asInt()), 99'000,
                8'000);
    EXPECT_NEAR(latency.at("mean").asDouble(), 50'500, 2'000);
}

TEST(StatSet, MergedSetsExportCombinedValues)
{
    StatSet a, b;
    a.counter("txn.committed").inc(10);
    b.counter("txn.committed").inc(5);
    b.counter("txn.aborted").inc(2);
    for (int i = 0; i < 50; ++i) {
        a.histogram("lat").record(100);
        b.histogram("lat").record(300);
    }

    a.merge(b);

    std::ostringstream os;
    a.writeJson(os);
    std::string error;
    const JsonValue doc = JsonValue::parse(os.str(), &error);
    ASSERT_TRUE(doc.isObject()) << error;
    EXPECT_EQ(doc.at("counters").at("txn.committed").asInt(), 15);
    EXPECT_EQ(doc.at("counters").at("txn.aborted").asInt(), 2);
    const JsonValue &lat = doc.at("histograms").at("lat");
    EXPECT_EQ(lat.at("count").asInt(), 100);
    EXPECT_EQ(lat.at("min").asInt(), 100);
    EXPECT_EQ(lat.at("max").asInt(), 300);
    EXPECT_NEAR(lat.at("mean").asDouble(), 200.0, 10.0);
}

TEST(StatSet, CsvExportListsEveryMetric)
{
    StatSet stats;
    stats.counter("c").inc(9);
    stats.histogram("h").record(500);
    std::ostringstream os;
    stats.writeCsv(os, "server.");
    const std::string csv = os.str();
    EXPECT_NE(csv.find("server.c,9"), std::string::npos);
    EXPECT_NE(csv.find("server.h.count,1"), std::string::npos);
    EXPECT_NE(csv.find("server.h.p99,"), std::string::npos);
}

} // namespace
